(** Serialization of recorded computation dags (plus optional access
    logs) to a line-based text format, for post-mortem analysis:
    record an execution once, then re-analyze, visualize, or simulate
    scheduling offline ([racedetect record] / [racedetect analyze]).

    Loading replays the builder events reconstructed from the node table
    (node IDs are assigned in event order, and each node kind determines
    its creating event), so a loaded dag is bit-for-bit equivalent to the
    original: same IDs, same edges, same future records, same fake-join
    list — property-tested by round-trip. *)

type access = { node : Dag.node; loc : int; is_write : bool }

val save : out_channel -> ?accesses:access list -> Dag.t -> unit
val load : in_channel -> Dag.t * access list

val save_file : string -> ?accesses:access list -> Dag.t -> unit
val load_file : string -> Dag.t * access list
(** @raise Failure on malformed input. *)
