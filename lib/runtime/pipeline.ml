let run ~iterations ~stages body =
  if iterations <= 0 || stages <= 0 then
    invalid_arg "Pipeline.run: iterations and stages must be positive";
  let slots : int Program.handle option Atomic.t array =
    Array.init (iterations * stages) (fun _ -> Atomic.make None)
  in
  let slot i j = slots.((i * stages) + j) in
  let rec cell i j () =
    (* cross edge: stage j of the previous iteration must have finished.
       The slot is always populated: (i-1,j)'s handle is published by
       (i-1,j-1) before it creates (i,j-1)... which creates us (see the
       Smith-Waterman wiring argument in lib/workloads/sw.ml). *)
    (if i > 0 && j > 0 then
       match Atomic.get (slot (i - 1) j) with
       | Some h -> ignore (Program.get h)
       | None -> assert false);
    body ~iter:i ~stage:j;
    if j = 0 then begin
      (* publish our column-1 handle before starting the iteration below *)
      if stages > 1 then Atomic.set (slot i 1) (Some (Program.create (cell i 1)));
      if i + 1 < iterations then
        Atomic.set (slot (i + 1) 0) (Some (Program.create (cell (i + 1) 0)))
    end
    else if j + 1 < stages then
      Atomic.set (slot i (j + 1)) (Some (Program.create (cell i (j + 1))));
    0
  in
  Atomic.set (slot 0 0) (Some (Program.create (cell 0 0)))
