open Log_format

type t = {
  n_states : int;
  n_events : int;
  streams : event array array;
}

let n_workers t = Array.length t.streams
let n_events t = t.n_events
let n_states t = t.n_states
let stream t ~worker = t.streams.(worker)

let iter t f =
  Array.iteri
    (fun worker evs -> Array.iter (fun ev -> f ~worker ev) evs)
    t.streams

let ( let* ) = Result.bind

let load_bytes bytes =
  let len = Bytes.length bytes in
  let* () =
    let mlen = String.length magic in
    if len < mlen + 1 then
      Error (Truncated { offset = len; while_ = "reading header" })
    else if Bytes.sub_string bytes 0 mlen <> magic then
      Error (Bad_magic { got = Bytes.sub_string bytes 0 (min mlen len) })
    else Ok ()
  in
  let* () =
    let v = Char.code (Bytes.get bytes (String.length magic)) in
    if v <> version then Error (Bad_version { got = v }) else Ok ()
  in
  (* chunk walk: collect (worker, payload start, payload length) in file
     order, accumulate the CRC, stop at the footer *)
  let rec chunks pos crc acc =
    if pos >= len then
      Error (Truncated { offset = pos; while_ = "expecting chunk or footer" })
    else
      let tag = Char.code (Bytes.get bytes pos) in
      if tag = 1 then
        let* worker, p = read_varint bytes ~pos:(pos + 1) ~limit:len in
        let* plen, p = read_varint bytes ~pos:p ~limit:len in
        if p + plen > len then
          Error (Truncated { offset = len; while_ = "reading chunk payload" })
        else
          let crc = crc32_update crc bytes ~pos:p ~len:plen in
          chunks (p + plen) crc ((worker, p, plen) :: acc)
      else if tag = 0 then
        let* n_events, p = read_varint bytes ~pos:(pos + 1) ~limit:len in
        let* n_states, p = read_varint bytes ~pos:p ~limit:len in
        let* n_workers, p = read_varint bytes ~pos:p ~limit:len in
        if p + 4 > len then
          Error (Truncated { offset = len; while_ = "reading footer CRC" })
        else
          let expected =
            Char.code (Bytes.get bytes p)
            lor (Char.code (Bytes.get bytes (p + 1)) lsl 8)
            lor (Char.code (Bytes.get bytes (p + 2)) lsl 16)
            lor (Char.code (Bytes.get bytes (p + 3)) lsl 24)
          in
          if p + 4 <> len then
            Error
              (Corrupt { offset = p + 4; what = "trailing bytes after footer" })
          else if expected <> crc then
            Error (Bad_crc { expected; got = crc })
          else Ok (List.rev acc, n_events, n_states, n_workers)
      else Error (Bad_opcode { offset = pos; opcode = tag })
  in
  let* chunk_list, n_events, n_states, nw =
    chunks (String.length magic + 1) crc32_init []
  in
  let* () =
    if n_states < 1 then
      Error (Corrupt { offset = 0; what = "footer declares no states" })
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc (worker, pos, _) ->
        let* () = acc in
        if worker < 0 || worker >= nw then
          Error
            (Corrupt
               {
                 offset = pos;
                 what =
                   Printf.sprintf "chunk for worker %d but footer declares %d"
                     worker nw;
               })
        else Ok ())
      (Ok ()) chunk_list
  in
  (* decode each worker's stream; location deltas run across chunk
     boundaries, so [last_loc] is per worker, not per chunk *)
  let revs = Array.make (max nw 0) [] in
  let counts = Array.make (max nw 0) 0 in
  let last_locs = Array.make (max nw 0) 0 in
  let rec decode_chunk worker pos limit =
    if pos = limit then Ok ()
    else
      let* ev, p, last_loc =
        read_event bytes ~pos ~limit ~last_loc:last_locs.(worker)
          ~states:n_states
      in
      last_locs.(worker) <- last_loc;
      revs.(worker) <- ev :: revs.(worker);
      counts.(worker) <- counts.(worker) + 1;
      decode_chunk worker p limit
  in
  let* () =
    List.fold_left
      (fun acc (worker, pos, plen) ->
        let* () = acc in
        decode_chunk worker pos (pos + plen))
      (Ok ()) chunk_list
  in
  let total = Array.fold_left ( + ) 0 counts in
  let* () =
    if total <> n_events then
      Error
        (Corrupt
           {
             offset = len;
             what =
               Printf.sprintf "footer declares %d events, chunks decode to %d"
                 n_events total;
           })
    else Ok ()
  in
  let streams =
    Array.map (fun rev -> Array.of_list (List.rev rev)) revs
  in
  Ok { n_states; n_events; streams }

let load_file path =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  load_bytes (Bytes.unsafe_of_string contents)
