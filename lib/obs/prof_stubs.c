/* Monotonic nanosecond clock for Sfr_obs.Prof.

   clock_gettime(CLOCK_MONOTONIC) folded into one tagged OCaml int:
   63 bits of nanoseconds overflow after ~146 years of uptime, so the
   subtraction (stop - start) the profiler performs never wraps. The
   primitive is [@@noalloc]: no callbacks, no OCaml allocation, safe to
   call from the detectors' query path. */

#include <caml/mlvalues.h>

#ifdef _WIN32
#include <windows.h>

CAMLprim value sfr_prof_now_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return Val_long((long)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>

CAMLprim value sfr_prof_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((long)ts.tv_sec * 1000000000L + (long)ts.tv_nsec);
}

#endif
