exception Unstructured_use of string

type 'a handle = {
  mutable result : 'a option;
  mutable last : Events.state option;
  mutable fulfilled : bool;
  mutable touched : bool;
  mutable waiters : (unit -> unit) list;
  mu : Mutex.t;
}

type _ Effect.t +=
  | Spawn : (unit -> unit) -> unit Effect.t
  | Sync : unit Effect.t
  | Create : (unit -> 'a) -> 'a handle Effect.t
  | Get : 'a handle -> 'a Effect.t
  | Read : int -> unit Effect.t
  | Write : int -> unit Effect.t
  | Work : int -> unit Effect.t

let spawn f = Effect.perform (Spawn f)
let sync () = Effect.perform Sync
let create f = Effect.perform (Create f)
let get h = Effect.perform (Get h)
let work n = Effect.perform (Work n)

(* -- instrumented memory ---------------------------------------------- *)

type 'a arr = { data : 'a array; base_loc : int }

let next_loc = Atomic.make 0

let alloc n init =
  if n < 0 then invalid_arg "Program.alloc: negative length";
  let base_loc = Atomic.fetch_and_add next_loc n in
  { data = Array.make n init; base_loc }

let length a = Array.length a.data
let base a = a.base_loc

let rd a i =
  Effect.perform (Read (a.base_loc + i));
  a.data.(i)

let wr a i x =
  Effect.perform (Write (a.base_loc + i));
  a.data.(i) <- x

let rd_raw a i = a.data.(i)
let wr_raw a i x = a.data.(i) <- x

(* -- handle internals --------------------------------------------------- *)

module Handle = struct
  type status = Running | Done

  let make () =
    {
      result = None;
      last = None;
      fulfilled = false;
      touched = false;
      waiters = [];
      mu = Mutex.create ();
    }

  let fulfil h x ~last =
    Mutex.lock h.mu;
    if h.fulfilled then begin
      Mutex.unlock h.mu;
      invalid_arg "Handle.fulfil: already fulfilled"
    end
    else begin
      h.result <- Some x;
      h.last <- Some last;
      h.fulfilled <- true;
      let ws = h.waiters in
      h.waiters <- [];
      Mutex.unlock h.mu;
      List.iter (fun w -> w ()) (List.rev ws)
    end

  let status h =
    Mutex.lock h.mu;
    let s = if h.fulfilled then Done else Running in
    Mutex.unlock h.mu;
    s

  let result_exn h =
    match h.result with
    | Some x -> x
    | None -> invalid_arg "Handle.result_exn: not fulfilled"

  let last_exn h =
    match h.last with
    | Some s -> s
    | None -> invalid_arg "Handle.last_exn: not fulfilled"

  let claim_touch h =
    Mutex.lock h.mu;
    let again = h.touched in
    h.touched <- true;
    Mutex.unlock h.mu;
    if again then
      raise (Unstructured_use "get invoked twice on the same future handle")

  let add_waiter h w =
    Mutex.lock h.mu;
    if h.fulfilled then begin
      Mutex.unlock h.mu;
      false
    end
    else begin
      h.waiters <- w :: h.waiters;
      Mutex.unlock h.mu;
      true
    end
end
