(** Delta-debugging shrinker for failing synthetic programs.

    Given a program whose (detector × executor) run disagrees with the
    serial oracle — or crashes — greedily minimize its operation tree
    while the failure persists: delete subtrees, hoist spawn/create
    bodies into the parent frame, sweep to a fixpoint. Rebuilding via
    {!Sfr_workloads.Synthetic.of_tree} keeps every candidate runnable
    (orphaned gets are dropped), so [test] only has to re-run it.

    Determinism: with a deterministic [test] (serial execution, fixed
    chaos seed) the sweep order is fixed, so the reduced program is a
    pure function of the input — reproducers are stable across runs.
    Each candidate evaluation bumps the [chaos.shrink_steps] metric. *)

type result = {
  reduced : Sfr_workloads.Synthetic.t;
  steps : int;  (** candidate evaluations performed *)
  initial_size : int;  (** node count before shrinking *)
  final_size : int;  (** node count after shrinking *)
}

val shrink :
  ?max_steps:int ->
  test:(Sfr_workloads.Synthetic.t -> bool) ->
  Sfr_workloads.Synthetic.t ->
  result
(** [shrink ~test t] minimizes [t] under [test] (true = still failing).
    [max_steps] (default 10_000) bounds candidate evaluations. *)
