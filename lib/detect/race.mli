(** Race reports and their thread-safe collector.

    A determinacy race: two logically parallel accesses to one location,
    at least one a write. The detectors report every race they find; the
    collector deduplicates per location (keeping the first witnessed pair
    and a count), since the correctness guarantee race detectors give is
    per-location: a race is reported for location [l] iff the program has
    a race on [l] for this input. *)

type kind = Read_write | Write_write | Write_read
(** First component is the earlier (stored) access. *)

type report = {
  loc : int;
  kind : kind;
  prev_future : int;
  cur_future : int;
  count : int;  (** how many races were witnessed at this location *)
}

type t

val create : unit -> t
val report : t -> loc:int -> kind:kind -> prev_future:int -> cur_future:int -> unit
val racy_locations : t -> int list
(** Sorted, distinct. *)

val reports : t -> report list
(** One per racy location, sorted by location. *)

val total_witnessed : t -> int
val pp_kind : Format.formatter -> kind -> unit
