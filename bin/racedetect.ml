(* racedetect — run a benchmark or a random synthetic program under a
   chosen detector and executor, and report determinacy races.

     racedetect list
     racedetect detectors [--names]       (the detector registry + flags)
     racedetect run --workload mm --detector sf-order [--scale small]
                    [--executor serial|parallel] [--workers N]
                    [--inject-race] [--no-verify] [--check-discipline]
                    [--stats] [--trace-out FILE] [--flight-dump FILE]
     racedetect synth --seed 42 [--ops 200] [--depth 5] [--locs 16]
                      [--detector sf-order] [--oracle] [--no-verify] [--stats]
     racedetect record --workload mm -o mm.sflog          (binary event log)
     racedetect record --workload mm --format sfdag -o mm.trace
     racedetect replay mm.sflog [--detector sf-order] [--shards N]
     racedetect analyze mm.trace
     racedetect metrics-dump [--workload mm] [--check] [-o FILE]
     racedetect telemetry-lint t.jsonl [--min-samples N]
     racedetect serve --socket /tmp/rd.sock [--budget BYTES]
                      [--overload shed|park|block] [--pool N] [--shards N]
                      [--deadline-ms N] [--idle-ms N] [--max-sessions N]
     racedetect stress-client --socket /tmp/rd.sock --workload mm
                      --sessions 4 [--torn 1] [--over-budget 1] [--idle 1]

   Exit codes are uniform across subcommands (see README "Exit codes"):
   0 = clean, 1 = races detected / verification or expectation failed
   (suppress with --no-verify where it applies), 2 = usage, I/O or
   malformed-input errors. *)

module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Detectors = Sfr_detect.Registry
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order
module Naive_detector = Sfr_detect.Naive_detector
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Discipline = Sfr_detect.Discipline
module Events = Sfr_runtime.Events
module Mem_meter = Sfr_support.Mem_meter
module Stats = Sfr_support.Stats

open Cmdliner

(* Detector names resolve through the process-wide registry. "help"
   prints the listing and exits 0; an unknown name prints it and exits 2
   — every subcommand taking -d shares this behavior. *)
let resolve_detector s =
  if s = "help" || s = "list" then begin
    print_string (Detectors.listing ());
    exit 0
  end
  else
    match Detectors.find s with
    | Some e -> e
    | None ->
        Printf.eprintf "%s" (Detectors.unknown s);
        exit 2

let detector_doc =
  "Detector name (see $(b,racedetect detectors)); $(b,help) prints the \
   registry listing."

(* A registry entry may cap the workload scale it is practical at. *)
let check_scale_ceiling (e : Detectors.entry) scale =
  match e.Detectors.caps.Detectors.scale_ceiling with
  | None -> ()
  | Some c -> (
      match Workload.scale_of_string c with
      | Some ceiling when scale <= ceiling -> ()
      | Some _ ->
          Printf.eprintf
            "detector %s is capped at scale %s (registry scale ceiling)\n%s"
            e.Detectors.name c (Detectors.listing ());
          exit 2
      | None -> ())

let scale_conv =
  Arg.conv
    ( (fun s ->
        match Workload.scale_of_string s with
        | Some sc -> Ok sc
        | None -> Error (`Msg (Printf.sprintf "unknown scale %S" s))),
      fun ppf s -> Workload.pp_scale ppf s )

(* The OM backend flag shared by the subcommands that build online
   detectors. It sets the process-wide default before detector
   construction, so registry-made detectors (zero-argument [make]
   functions) pick the backend up without threading a parameter through
   every entry. *)
let om_term =
  Arg.(
    value
    & opt (some (enum [ ("list", `List); ("depa", `Depa) ])) None
    & info [ "om" ] ~docv:"BACKEND"
        ~doc:
          "Order-maintenance backend for the English/Hebrew lists: \
           $(b,list) (two-level Dietz-Sleator list, the default) or \
           $(b,depa) (DePa fork-path labels, no relabel phase). Race \
           reports are backend-invariant.")

let apply_om = function
  | Some b -> Sfr_om.Backend.set_default b
  | None -> ()

(* Race-report rendering shared by live detection and offline replay, so
   their outputs diff cleanly; returns the racy-location count. *)
let print_races reports =
  if reports = [] then print_endline "no determinacy races detected."
  else begin
    Printf.printf "RACES DETECTED at %d location(s):\n" (List.length reports);
    List.iter
      (fun (r : Race.report) ->
        Printf.printf "  loc %d: %s between future %d and future %d (%d occurrence(s))\n"
          r.Race.loc
          (Format.asprintf "%a" Race.pp_kind r.Race.kind)
          r.Race.prev_future r.Race.cur_future r.Race.count)
      reports
  end;
  List.length reports

(* Prints the run summary and returns the number of racy locations, so
   callers can turn "races found" into the exit status. *)
let print_detector_report ?(stats = false) det dt =
  Printf.printf "executed in %.3f s\n" dt;
  Printf.printf "reachability queries: %d\n" (det.Detector.queries ());
  Printf.printf "reachability memory (live): %s\n"
    (Format.asprintf "%a" Mem_meter.pp_bytes (det.Detector.reach_words ()));
  Printf.printf "access-history memory:      %s\n"
    (Format.asprintf "%a" Mem_meter.pp_bytes (det.Detector.history_words ()));
  Printf.printf "max readers per location:   %d\n" (det.Detector.max_readers ());
  let racy = print_races (Race.reports det.Detector.races) in
  if stats then begin
    print_endline "-- metrics ----------------------------------------";
    (match det.Detector.metrics () with
    | [] -> print_endline "(no metrics recorded; is Sfr_obs.Metrics disabled?)"
    | entries ->
        print_string (Format.asprintf "%a" Sfr_obs.Metrics.pp_table entries));
    match Sfr_obs.Metrics.histogram_summaries () with
    | [] -> ()
    | hs ->
        print_endline "-- latency percentiles (bucket upper bounds) ------";
        print_string (Format.asprintf "%a" Sfr_obs.Metrics.pp_summaries hs)
  end;
  racy

(* -- list ------------------------------------------------------------- *)

let list_cmd =
  let doc = "List the available benchmarks." in
  let run () =
    List.iter
      (fun (w : Workload.t) ->
        Printf.printf "%-8s %s\n" w.Workload.name w.Workload.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* -- run --------------------------------------------------------------- *)

let run_cmd =
  let doc = "Run a benchmark under a race detector." in
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Benchmark name (see list).")
  in
  let detector =
    Arg.(
      value
      & opt string "sf-order"
      & info [ "d"; "detector" ] ~docv:"NAME" ~doc:detector_doc)
  in
  let scale =
    Arg.(
      value
      & opt scale_conv Workload.Small
      & info [ "s"; "scale" ] ~doc:"Scale: tiny, small, default, large, paper.")
  in
  let executor =
    Arg.(
      value
      & opt (enum [ ("serial", `Serial); ("parallel", `Parallel) ]) `Serial
      & info [ "e"; "executor" ] ~doc:"Executor: serial or parallel.")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "j"; "workers" ] ~doc:"Parallel workers.")
  in
  let inject =
    Arg.(value & flag & info [ "inject-race" ] ~doc:"Plant a determinacy race.")
  in
  let no_verify =
    Arg.(value & flag & info [ "no-verify" ] ~doc:"Skip output verification.")
  in
  let check_discipline =
    Arg.(
      value & flag
      & info [ "check-discipline" ]
          ~doc:"Also verify the structured-futures discipline on the fly.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the detector's metric counters after the run.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write a chrome://tracing JSON of the execution to $(docv).")
  in
  let flight_dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "After the run, dump the flight recorder's recent-event window \
             as a chrome://tracing JSON to $(docv). The recorder is always \
             on; this asks for the window of a healthy run (crashes dump it \
             automatically).")
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-out" ] ~docv:"FILE"
          ~doc:
            "Sample continuous telemetry (metric deltas, scheduler probes, \
             GC) during the run and stream it as JSONL to $(docv). See \
             $(b,telemetry-lint) for validation.")
  in
  let sample_ms =
    Arg.(
      value
      & opt int Sfr_obs.Telemetry.default_sample_ms
      & info [ "sample-ms" ] ~docv:"MS"
          ~doc:"Telemetry sampling period in milliseconds.")
  in
  let run workload detector scale executor workers inject no_verify
      check_discipline stats trace_out flight_dump telemetry_out sample_ms om =
    apply_om om;
    let entry = resolve_detector detector in
    match Registry.find workload with
    | None ->
        Printf.eprintf "unknown workload %S (try: racedetect list)\n" workload;
        exit 2
    | Some w ->
        check_scale_ceiling entry scale;
        let inst = w.Workload.instantiate ~inject_race:inject scale in
        let det = entry.Detectors.make () in
        if executor = `Parallel && not det.Detector.supports_parallel then begin
          Printf.eprintf
            "%s is a sequential detector and cannot run under the parallel \
             executor\n%s"
            det.Detector.name (Detectors.listing ());
          exit 2
        end;
        Printf.printf "%s @ %s under %s (%s)\n" w.Workload.name
          (Format.asprintf "%a" Workload.pp_scale scale)
          entry.Detectors.name
          (match executor with
          | `Serial -> "serial execution"
          | `Parallel -> Printf.sprintf "parallel execution, %d workers" workers);
        let disc = if check_discipline then Some (Discipline.make ()) else None in
        let callbacks, root =
          match disc with
          | None -> (det.Detector.callbacks, det.Detector.root)
          | Some d ->
              ( Events.pair d.Discipline.callbacks det.Detector.callbacks,
                Events.Pair_state (d.Discipline.root, det.Detector.root) )
        in
        if trace_out <> None then Sfr_obs.Trace_event.start ();
        (* telemetry rides along whenever a trace is requested, so the
           chrome view always gains counter tracks; --telemetry-out adds
           the JSONL stream on top *)
        let telemetry_on = telemetry_out <> None || trace_out <> None in
        if telemetry_on then
          Sfr_obs.Telemetry.start ~sample_ms ?out:telemetry_out
            ~probe:Par_exec.probe_metrics ();
        (* latency histograms only fill while profiling is on; --stats is
           the request to see them *)
        if stats then Sfr_obs.Prof.enable ();
        let (), dt =
          Stats.time (fun () ->
              match executor with
              | `Serial ->
                  Serial_exec.run callbacks ~root inst.Workload.program |> fst
              | `Parallel ->
                  Par_exec.run ~workers callbacks ~root inst.Workload.program
                  |> fst)
        in
        (* stop telemetry before the trace is written: the final sample's
           counter events must land inside the trace buffer *)
        if telemetry_on then begin
          Sfr_obs.Telemetry.stop ();
          match telemetry_out with
          | Some f ->
              Printf.printf "wrote telemetry (%d samples) to %s\n"
                (Sfr_obs.Telemetry.sample_count ())
                f
          | None -> ()
        end;
        (match trace_out with
        | Some f -> (
            Sfr_obs.Trace_event.stop ();
            match Sfr_obs.Trace_event.write_file f with
            | () ->
                Printf.printf
                  "wrote chrome trace to %s (load in chrome://tracing)\n" f
            | exception Sys_error msg ->
                Printf.eprintf "cannot write trace: %s\n" msg;
                exit 2)
        | None -> ());
        (match flight_dump with
        | Some f -> (
            match Sfr_obs.Flight.write_chrome f with
            | () ->
                Printf.printf
                  "wrote flight window (%d events) to %s (load in \
                   chrome://tracing)\n"
                  (List.length (Sfr_obs.Flight.entries ()))
                  f
            | exception Sys_error msg ->
                Printf.eprintf "cannot write flight dump: %s\n" msg;
                exit 2)
        | None -> ());
        let racy = print_detector_report ~stats det dt in
        (match disc with
        | Some d -> (
            match d.Discipline.violations () with
            | [] -> print_endline "structured-futures discipline verified."
            | vs ->
                List.iter
                  (fun v ->
                    Printf.printf "DISCIPLINE VIOLATION: %s\n" v.Discipline.message)
                  vs)
        | None -> ());
        if (not no_verify) && not inject then
          if inst.Workload.verify () then print_endline "output verified."
          else begin
            print_endline "OUTPUT VERIFICATION FAILED";
            exit 1
          end;
        if inject && Race.reports det.Detector.races = [] then begin
          print_endline "expected the injected race to be detected!";
          exit 1
        end;
        (* Race-free runs exit 0; detected races exit 1 (unless the caller
           opted out with --no-verify, or planted them with --inject-race). *)
        if racy > 0 && (not no_verify) && not inject then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload $ detector $ scale $ executor $ workers $ inject
      $ no_verify $ check_discipline $ stats $ trace_out $ flight_dump
      $ telemetry_out $ sample_ms $ om_term)

(* -- metrics-dump / telemetry-lint -------------------------------------- *)

let metrics_dump_cmd =
  let doc =
    "Print the metric registry in Prometheus text exposition format \
     (optionally after exercising a workload to populate it)."
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:
            "Run this benchmark (serially, under sf-order) first so the \
             exposition reflects a real run instead of a cold registry.")
  in
  let scale =
    Arg.(
      value
      & opt scale_conv Workload.Small
      & info [ "s"; "scale" ] ~doc:"Scale: tiny, small, default, large, paper.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the exposition against the text-format grammar and \
             report the sample-line count on stderr (exit 2 on violation).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of stdout.")
  in
  let run workload scale check out =
    (match workload with
    | None -> ()
    | Some name -> (
        match Registry.find name with
        | None ->
            Printf.eprintf "unknown workload %S (try: racedetect list)\n" name;
            exit 2
        | Some w ->
            let inst = w.Workload.instantiate ~inject_race:false scale in
            (* profiling on, so the latency histogram families render
               with real buckets instead of empty placeholders *)
            Sfr_obs.Prof.enable ();
            let det = Sf_order.make () in
            Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
              inst.Workload.program
            |> ignore));
    let gauges = Par_exec.probe_metrics () in
    let text = Sfr_obs.Telemetry.render_prometheus ~gauges () in
    if check then begin
      match Sfr_obs.Telemetry.check_prometheus text with
      | Ok n -> Printf.eprintf "exposition OK: %d sample line(s)\n" n
      | Error e ->
          Printf.eprintf "exposition INVALID: %s\n" e;
          exit 2
    end;
    match out with
    | None -> print_string text
    | Some f -> (
        match
          let oc = open_out f in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc text)
        with
        | () -> Printf.eprintf "wrote exposition to %s\n" f
        | exception Sys_error msg ->
            Printf.eprintf "cannot write %s: %s\n" f msg;
            exit 2)
  in
  Cmd.v (Cmd.info "metrics-dump" ~doc)
    Term.(const run $ workload $ scale $ check $ out)

let telemetry_lint_cmd =
  let doc =
    "Validate a JSONL telemetry file written by $(b,run --telemetry-out) or \
     $(b,bench --telemetry-out): header, per-line JSON, required sample \
     fields. Exit 2 on malformed input, 1 when fewer than --min-samples \
     samples are present."
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Telemetry JSONL file.")
  in
  let min_samples =
    Arg.(
      value & opt int 1
      & info [ "min-samples" ] ~docv:"N"
          ~doc:"Require at least $(docv) samples.")
  in
  let run file min_samples =
    let text =
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 2
    in
    match Sfr_obs.Telemetry.lint_jsonl text with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        exit 2
    | Ok n ->
        Printf.printf "%s: %d sample(s), schema %d\n" file n
          Sfr_obs.Telemetry.schema_version;
        if n < min_samples then begin
          Printf.eprintf "expected at least %d sample(s), found %d\n"
            min_samples n;
          exit 1
        end
  in
  Cmd.v (Cmd.info "telemetry-lint" ~doc) Term.(const run $ file $ min_samples)

(* -- record / replay / analyze ----------------------------------------- *)

let record_cmd =
  let doc =
    "Run a benchmark instrumented for recording only and save the execution: \
     a compact binary event log (sflog, for $(b,replay)) or a textual dag + \
     access dump (sfdag, for $(b,analyze))."
  in
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Benchmark name (see list).")
  in
  let scale =
    Arg.(
      value
      & opt scale_conv Workload.Small
      & info [ "s"; "scale" ] ~doc:"Scale: tiny, small, default, large, paper.")
  in
  let inject =
    Arg.(value & flag & info [ "inject-race" ] ~doc:"Plant a determinacy race.")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("sflog", `Sflog); ("sfdag", `Sfdag) ]) `Sflog
      & info [ "format" ]
          ~doc:"Output format: sflog (binary event log) or sfdag (dag text).")
  in
  let executor =
    Arg.(
      value
      & opt (enum [ ("serial", `Serial); ("parallel", `Parallel) ]) `Serial
      & info [ "e"; "executor" ]
          ~doc:
            "Executor: serial or parallel (sflog only; parallel logs replay \
             under any order-insensitive detector).")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "j"; "workers" ] ~doc:"Parallel workers.")
  in
  let run workload scale inject out format executor workers =
    match Registry.find workload with
    | None ->
        Printf.eprintf "unknown workload %S (try: racedetect list)\n" workload;
        exit 2
    | Some w -> (
        let inst = w.Workload.instantiate ~inject_race:inject scale in
        match format with
        | `Sflog ->
            let rec_, cb, root =
              try Sfr_eventlog.Recorder.create ~path:out ()
              with Sys_error msg ->
                Printf.eprintf "cannot open %s: %s\n" out msg;
                exit 2
            in
            let (), dt =
              Stats.time (fun () ->
                  match executor with
                  | `Serial -> Serial_exec.run cb ~root inst.Workload.program |> fst
                  | `Parallel ->
                      Par_exec.run ~workers cb ~root inst.Workload.program |> fst)
            in
            let s = Sfr_eventlog.Recorder.close rec_ in
            Printf.printf
              "recorded %d events (%d strands, %d worker stream(s)) to %s\n"
              s.Sfr_eventlog.Recorder.events s.Sfr_eventlog.Recorder.states
              s.Sfr_eventlog.Recorder.workers out;
            Printf.printf "%d bytes in %d chunk(s), %.1f bytes/event\n"
              s.Sfr_eventlog.Recorder.bytes s.Sfr_eventlog.Recorder.flushes
              (float_of_int s.Sfr_eventlog.Recorder.bytes
              /. float_of_int (max 1 s.Sfr_eventlog.Recorder.events));
            Printf.eprintf "recorded in %.3f s (%.0f events/s)\n" dt
              (float_of_int s.Sfr_eventlog.Recorder.events /. Float.max 1e-9 dt)
        | `Sfdag ->
            if executor = `Parallel then begin
              Printf.eprintf
                "sfdag recording is serial-only (the dag dump is \
                 schedule-independent anyway)\n";
              exit 2
            end;
            let trace, cb, root = Trace.make ~log_accesses:true () in
            let (), _ = Serial_exec.run cb ~root inst.Workload.program in
            let accesses =
              List.map
                (fun (a : Trace.access) ->
                  {
                    Sfr_dag.Dag_io.node = a.Trace.node;
                    loc = a.Trace.loc;
                    is_write = a.Trace.is_write;
                  })
                (Trace.accesses trace)
            in
            Sfr_dag.Dag_io.save_file out ~accesses (Trace.dag trace);
            Printf.printf "recorded %d nodes, %d futures, %d accesses to %s\n"
              (Sfr_dag.Dag.n_nodes (Trace.dag trace))
              (Sfr_dag.Dag.n_futures (Trace.dag trace))
              (List.length accesses) out)
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(
      const run $ workload $ scale $ inject $ out $ format $ executor $ workers)

let replay_cmd =
  let doc =
    "Detect races offline by replaying a recorded event log — optionally \
     sharded by location across parallel domains. Exits 1 when races are \
     reported, like $(b,run)."
  in
  let file =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Event log.")
  in
  let detector =
    Arg.(
      value
      & opt string "sf-order"
      & info [ "d"; "detector" ] ~docv:"NAME"
          ~doc:
            (detector_doc
           ^ " Serial-only detectors accept single-worker logs; --shards \
              requires a shardable one."))
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Replay structure once, then check accesses sharded by location \
             hash on $(docv) domains (SF-Order reachability). Output is \
             identical for every shard count.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print metric counters and shard sizes after the replay.")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ] ~doc:"Exit 0 even when races are reported.")
  in
  let run file detector shards stats no_verify om =
    apply_om om;
    let entry = resolve_detector detector in
    let log =
      match Sfr_eventlog.Reader.load_file file with
      | Ok log -> log
      | Error e ->
          Printf.eprintf "%s: %s\n" file (Sfr_eventlog.Log_format.error_to_string e);
          exit 2
    in
    let racy =
      match shards with
      | Some n when n < 1 ->
          Printf.eprintf "--shards must be >= 1\n";
          exit 2
      | Some n -> (
          if not entry.Detectors.caps.Detectors.shardable then begin
            Printf.eprintf
              "detector %s does not support sharded replay (--shards %d); \
               its capabilities are below\n%s"
              entry.Detectors.name n (Detectors.listing ());
            exit 2
          end;
          let res, dt =
            Stats.time (fun () -> Sfr_eventlog.Shard_replay.run log ~shards:n)
          in
          match res with
          | Error e ->
              Printf.eprintf "%s: %s\n" file
                (Sfr_eventlog.Replay.error_to_string e);
              exit 2
          | Ok r ->
              (* stdout is shard-count-independent (diffable across N);
                 timing and the shard split go to stderr / --stats *)
              Printf.printf "replayed %d structural events, %d accesses\n"
                r.Sfr_eventlog.Shard_replay.structural
                r.Sfr_eventlog.Shard_replay.accesses;
              Printf.printf "reachability queries: %d\n"
                r.Sfr_eventlog.Shard_replay.queries;
              let racy = print_races r.Sfr_eventlog.Shard_replay.reports in
              Printf.eprintf "replayed in %.3f s on %d shard(s)\n" dt n;
              if stats then begin
                print_endline "-- shards -----------------------------------------";
                Array.iteri
                  (fun i sz -> Printf.printf "shard %d: %d accesses\n" i sz)
                  r.Sfr_eventlog.Shard_replay.shard_sizes
              end;
              racy)
      | None -> (
          let det = entry.Detectors.make () in
          if
            (not det.Detector.supports_parallel)
            && Sfr_eventlog.Reader.n_workers log > 1
          then begin
            Printf.eprintf
              "%s requires a depth-first event order; this log has %d worker \
               streams (record with the serial executor)\n%s"
              det.Detector.name
              (Sfr_eventlog.Reader.n_workers log)
              (Detectors.listing ());
            exit 2
          end;
          let res, dt =
            Stats.time (fun () -> Sfr_eventlog.Replay.run_detector log det)
          in
          match res with
          | Error e ->
              Printf.eprintf "%s: %s\n" file
                (Sfr_eventlog.Replay.error_to_string e);
              exit 2
          | Ok n ->
              Printf.printf "replayed %d events under %s\n" n
                entry.Detectors.name;
              Printf.printf "reachability queries: %d\n" (det.Detector.queries ());
              let racy = print_races (Race.reports det.Detector.races) in
              Printf.eprintf "replayed in %.3f s\n" dt;
              racy)
    in
    if stats then begin
      print_endline "-- metrics ----------------------------------------";
      print_string
        (Format.asprintf "%a" Sfr_obs.Metrics.pp_table (Sfr_obs.Metrics.snapshot ()))
    end;
    if racy > 0 && not no_verify then exit 1
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ file $ detector $ shards $ stats $ no_verify $ om_term)

let analyze_cmd =
  let doc = "Offline analysis of a recorded sfdag trace: races, work/span, speedups." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ] ~doc:"Exit 0 even when races are found.")
  in
  let run file no_verify =
    (match Sfr_eventlog.Reader.load_file file with
    | Ok _ ->
        Printf.eprintf
          "%s is a binary event log; use: racedetect replay %s\n" file file;
        exit 2
    | Error _ -> ());
    let dag, accesses =
      match Sfr_dag.Dag_io.load_file_result file with
      | Ok v -> v
      | Error e ->
          Printf.eprintf "%s: %s\n" file (Sfr_dag.Dag_io.parse_error_to_string e);
          exit 2
    in
    let module Dag = Sfr_dag.Dag in
    let module Dag_algo = Sfr_dag.Dag_algo in
    let module Dag_check = Sfr_dag.Dag_check in
    Printf.printf "dag: %d nodes, %d futures\n" (Dag.n_nodes dag) (Dag.n_futures dag);
    (match Dag_check.validate_sf dag with
    | [] -> print_endline "structure: well-formed SF-dag"
    | vs ->
        Printf.printf "structure: %d violation(s)\n" (List.length vs);
        List.iter (fun v -> Printf.printf "  %s\n" v.Dag_check.message) vs);
    let work = Dag_algo.work dag and span = Dag_algo.span dag Dag_algo.Full in
    Printf.printf "work %d, span %d, parallelism %.2f\n" work span
      (float_of_int work /. float_of_int (max 1 span));
    List.iter
      (fun p ->
        Printf.printf "  simulated speedup on %2d workers: %.2fx\n" p
          (Sfr_runtime.Sim_sched.speedup dag ~workers:p))
      [ 2; 4; 8; 16 ];
    let log =
      List.map
        (fun (a : Sfr_dag.Dag_io.access) ->
          { Trace.node = a.Sfr_dag.Dag_io.node; loc = a.loc; is_write = a.is_write })
        accesses
    in
    let v = Naive_detector.analyze dag log in
    Printf.printf "accesses: %d; racy locations: %d (%d racing pairs)\n"
      (List.length accesses)
      (List.length v.Naive_detector.racy_locations)
      v.Naive_detector.races_found;
    (* same convention as run/replay: finding races is exit 1 *)
    if v.Naive_detector.racy_locations <> [] && not no_verify then exit 1
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ file $ no_verify)

(* -- synth ------------------------------------------------------------- *)

let synth_cmd =
  let doc = "Race detect a random structured-futures program." in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.") in
  let ops = Arg.(value & opt int 200 & info [ "ops" ] ~doc:"Operation budget.") in
  let depth = Arg.(value & opt int 5 & info [ "depth" ] ~doc:"Nesting depth.") in
  let locs =
    Arg.(value & opt int 16 & info [ "locs" ] ~doc:"Shared locations.")
  in
  let detector =
    Arg.(
      value
      & opt string "sf-order"
      & info [ "d"; "detector" ] ~docv:"NAME" ~doc:detector_doc)
  in
  let oracle =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:"Also run the exhaustive ground-truth analysis and compare.")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Exit 0 even when races are detected (synthetic programs \
                are frequently racy by construction).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the detector's metric counters after the run.")
  in
  let run seed ops depth locs detector oracle no_verify stats om =
    apply_om om;
    let entry = resolve_detector detector in
    let t = Synthetic.generate ~seed ~ops ~depth ~locs () in
    let n_ops, futures, gets = Synthetic.stats t in
    Printf.printf "synthetic program: %d ops, %d futures, %d gets\n" n_ops futures gets;
    let inst = Synthetic.instantiate t in
    if stats then Sfr_obs.Prof.enable ();
    let det = entry.Detectors.make () in
    let (), dt =
      Stats.time (fun () ->
          Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
            inst.Synthetic.program
          |> fst)
    in
    let racy = print_detector_report ~stats det dt in
    if oracle then begin
      let inst2 = Synthetic.instantiate t in
      let trace, cb, root = Trace.make ~log_accesses:true () in
      let (), _ = Serial_exec.run cb ~root inst2.Synthetic.program in
      let v = Naive_detector.analyze (Trace.dag trace) (Trace.accesses trace) in
      let norm base locs = List.map (fun l -> l - base) locs in
      let expected = norm inst2.Synthetic.mem_base v.Naive_detector.racy_locations in
      let got = norm inst.Synthetic.mem_base (Detector.racy_locations det) in
      Printf.printf "oracle: %d racy location(s); detector %s the oracle\n"
        (List.length expected)
        (if expected = got then "MATCHES" else "DISAGREES WITH");
      if expected <> got then exit 1
    end;
    if racy > 0 && not no_verify then exit 1
  in
  Cmd.v (Cmd.info "synth" ~doc)
    Term.(
      const run $ seed $ ops $ depth $ locs $ detector $ oracle $ no_verify
      $ stats $ om_term)

(* -- chaos -------------------------------------------------------------- *)

let chaos_cmd =
  let doc =
    "Differential soak: random programs under seeded fault injection, \
     parallel detector vs serial oracle, shrinking failures."
  in
  let seeds =
    Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of seeds to sweep.")
  in
  let base_seed =
    Arg.(value & opt int 1 & info [ "base-seed" ] ~doc:"First seed.")
  in
  let ops =
    Arg.(value & opt int 120 & info [ "ops" ] ~doc:"Op budget per program.")
  in
  let depth = Arg.(value & opt int 4 & info [ "depth" ] ~doc:"Nesting depth.") in
  let locs = Arg.(value & opt int 6 & info [ "locs" ] ~doc:"Shared locations.") in
  let detector =
    Arg.(
      value
      & opt string "sf-order"
      & info [ "d"; "detector" ] ~docv:"NAME" ~doc:detector_doc)
  in
  let oracle =
    Arg.(
      value
      & opt string "naive"
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Ground truth: $(b,naive) (exhaustive offline analysis, tiny \
             scales only) or any oracle-grade registry detector (e.g. \
             $(b,vc-order)) run serially without chaos — cheap enough for \
             10-100x larger --ops.")
  in
  let workers =
    Arg.(
      value & opt int 4
      & info [ "j"; "workers" ] ~doc:"Parallel workers (1 forces serial).")
  in
  let no_chaos =
    Arg.(
      value & flag
      & info [ "no-chaos" ] ~doc:"Disable injection (pure differential sweep).")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ]
          ~doc:
            "Probability of raising a synthetic fault at each eligible chaos \
             point (exercises the exception-safety paths; faulted seeds are \
             counted, not compared).")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ] ~doc:"Delta-debug failures to minimal reproducers.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR" ~doc:"Dump failing programs as sfdag files.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print chaos metric counters.")
  in
  let run seeds base_seed ops depth locs detector oracle workers no_chaos
      fault_rate shrink out stats om =
    apply_om om;
    let module Chaos = Sfr_chaos.Chaos in
    let module Runner = Sfr_chaos_driver.Chaos_runner in
    let entry = resolve_detector detector in
    let oracle_spec =
      if oracle = "naive" then Runner.Naive
      else begin
        let e = resolve_detector oracle in
        if not e.Detectors.caps.Detectors.oracle_grade then begin
          Printf.eprintf
            "detector %s is not oracle-grade and cannot serve as chaos \
             ground truth\n%s"
            e.Detectors.name (Detectors.listing ());
          exit 2
        end;
        Runner.Oracle_detector e.Detectors.make
      end
    in
    let chaos =
      if no_chaos then None
      else
        Some
          (if fault_rate > 0.0 then
             { Chaos.default_config with Chaos.fault_rate }
           else Chaos.default_config)
    in
    let cfg =
      {
        Runner.seeds;
        base_seed;
        ops;
        depth;
        locs;
        workers;
        chaos;
        shrink;
        out_dir = out;
        oracle = oracle_spec;
      }
    in
    Printf.printf
      "chaos: %d seeds, %d workers, oracle %s, injection %s, fault rate \
       %.3f, shrink %b\n%!"
      seeds workers oracle
      (if no_chaos then "off" else "on")
      fault_rate shrink;
    let report, dt =
      Stats.time (fun () ->
          Runner.run cfg ~make:entry.Detectors.make ~progress:(fun n ->
              if n mod 25 = 0 then Printf.printf "  ...%d/%d seeds\n%!" n seeds))
    in
    Printf.printf
      "swept %d seeds in %.3f s: %d matched, %d faults surfaced, %d faults \
       injected, %d mismatches\n"
      report.Runner.seeds_run dt report.Runner.matched
      report.Runner.faults_surfaced report.Runner.injected
      (List.length report.Runner.mismatches);
    List.iter
      (fun m -> Format.printf "  MISMATCH %a@." Runner.pp_mismatch m)
      report.Runner.mismatches;
    if stats then begin
      print_endline "-- metrics ----------------------------------------";
      print_string
        (Format.asprintf "%a" Sfr_obs.Metrics.pp_table
           (Sfr_obs.Metrics.snapshot ()))
    end;
    if report.Runner.mismatches <> [] then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ seeds $ base_seed $ ops $ depth $ locs $ detector $ oracle
      $ workers $ no_chaos $ fault_rate $ shrink $ out $ stats $ om_term)

(* -- detectors ---------------------------------------------------------- *)

let detectors_cmd =
  let doc =
    "List the registered race-detector backends with their capability \
     flags (parallel/serial, shardable, oracle-grade, scale ceiling)."
  in
  let names_only =
    Arg.(
      value & flag
      & info [ "names" ]
          ~doc:
            "Print bare detector names, one per line — the scriptable form \
             the registry-driven smoke matrix iterates.")
  in
  let run names_only =
    if names_only then List.iter print_endline (Detectors.names ())
    else print_string (Detectors.listing ())
  in
  Cmd.v (Cmd.info "detectors" ~doc) Term.(const run $ names_only)

(* -- serve / stress-client ---------------------------------------------- *)

module Serve = Sfr_serve.Server
module Serve_frame = Sfr_serve.Frame
module Serve_session = Sfr_serve.Session

(* Both commands address the daemon the same way. *)
let addr_of ~socket ~tcp =
  match (socket, tcp) with
  | Some path, None -> Ok (Unix.ADDR_UNIX path)
  | None, Some port -> Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  | _ -> Error "exactly one of --socket PATH or --tcp PORT is required"

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  (try
     while !off < len do
       off := !off + Unix.write fd bytes !off (len - !off)
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     (* peer hung up; its disconnect surfaces through the read path *)
     ())

let serve_cmd =
  let doc =
    "Run the streaming ingest daemon: concurrent clients stream .sflog \
     bytes over a Unix or TCP socket and receive per-session race \
     verdicts. Exits 1 when any served session reported races, 2 on a \
     fatal server error."
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix domain socket.")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on loopback TCP $(docv).")
  in
  let budget =
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "budget" ] ~docv:"BYTES"
          ~doc:"Global byte budget across all session queues.")
  in
  let overload =
    Arg.(
      value
      & opt (enum [ ("shed", Serve.Shed); ("park", Serve.Park); ("block", Serve.Block) ])
          Serve.Shed
      & info [ "overload" ]
          ~doc:
            "Policy when the budget is exceeded: shed (finish the offending \
             session with ERR_OVERLOAD), park (freeze credit until \
             pressure halves), or block (refuse new sessions).")
  in
  let credit_window =
    Arg.(
      value
      & opt int (256 * 1024)
      & info [ "credit-window" ] ~docv:"BYTES"
          ~doc:"Per-session in-flight byte window (bounds each queue).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-session wall-clock deadline (ERR_DEADLINE, retryable).")
  in
  let idle_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "idle-ms" ] ~docv:"MS"
          ~doc:"Per-session idle timeout (ERR_IDLE, retryable).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Location-sharded access checking per session, as replay.")
  in
  let pool =
    Arg.(
      value & opt int 0
      & info [ "pool" ] ~docv:"N"
          ~doc:
            "Detection pool domains (0 = analyze inline in the accept loop).")
  in
  let max_sessions =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Exit after $(docv) sessions have finished (smoke tests).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print serve metric counters on exit.")
  in
  let audit_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-out" ] ~docv:"FILE"
          ~doc:
            "Stream a structured audit log (one JSONL record per \
             session-lifecycle edge: hello, credit, park/thaw, shed, \
             timeout, disconnect, verdict) to $(docv). See \
             $(b,audit-lint) for validation.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a chrome://tracing JSON of the daemon's lifetime to \
             $(docv): per-session lifecycle spans (hello to verdict) \
             over the per-domain decode/ingest work spans.")
  in
  let telemetry_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry-out" ] ~docv:"FILE"
          ~doc:
            "Sample continuous telemetry during serving and stream it as \
             JSONL to $(docv). See $(b,telemetry-lint) for validation.")
  in
  let sample_ms =
    Arg.(
      value
      & opt int Sfr_obs.Telemetry.default_sample_ms
      & info [ "sample-ms" ] ~docv:"MS"
          ~doc:"Telemetry sampling period in milliseconds.")
  in
  let run socket tcp budget overload credit_window deadline_ms idle_ms shards
      pool max_sessions stats audit_out trace_out telemetry_out sample_ms =
    let addr =
      match addr_of ~socket ~tcp with
      | Ok a -> a
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    let listen_fd =
      try
        let domain = Unix.domain_of_sockaddr addr in
        let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
        (match addr with
        | Unix.ADDR_UNIX path when Sys.file_exists path -> Unix.unlink path
        | _ -> ());
        if domain = Unix.PF_INET then Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd addr;
        Unix.listen fd 64;
        fd
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot listen: %s\n" (Unix.error_message e);
        exit 2
    in
    (* a client that vanishes mid-write must not kill the daemon *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* observability sinks arm before the first accept so session 0's
       whole lifecycle is covered *)
    if trace_out <> None then Sfr_obs.Trace_event.start ();
    let telemetry_on = telemetry_out <> None || trace_out <> None in
    if telemetry_on then
      Sfr_obs.Telemetry.start ~sample_ms ?out:telemetry_out ();
    (match audit_out with
    | None -> ()
    | Some f -> (
        try Sfr_serve.Audit.open_sink ~path:f ()
        with Sys_error msg ->
          Printf.eprintf "cannot open audit log: %s\n" msg;
          exit 2));
    let cfg =
      {
        Serve.session =
          {
            Serve_session.credit_window;
            deadline_ms;
            idle_ms;
            shards;
            access_batch = 8192;
          };
        global_budget = budget;
        overload;
        pool_domains = pool;
        defer_ingest = false;
      }
    in
    let server = Serve.create cfg in
    Printf.printf "serving on %s (budget %dB, %s, pool %d)\n%!"
      (match addr with
      | Unix.ADDR_UNIX p -> p
      | Unix.ADDR_INET (_, port) -> Printf.sprintf "tcp:%d" port)
      budget
      (Serve.overload_to_string overload)
      pool;
    let clients : (Unix.file_descr, Serve.conn) Hashtbl.t = Hashtbl.create 16 in
    let buf = Bytes.create 65536 in
    let running = ref true in
    let fatal = ref None in
    (try
       while !running do
         (* The session limit counts connections that can still produce
            outcomes (live ones) plus outcomes already latched — an
            admin probe connects, answers, disconnects, and frees its
            slot without ever counting as served. *)
         let accepting =
           match max_sessions with
           | Some m ->
               Hashtbl.length clients + List.length (Serve.outcomes server)
               < m
           | None -> true
         in
         let fds =
           (if accepting then [ listen_fd ] else [])
           @ Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
         in
         let readable, _, _ =
           match Unix.select fds [] [] 0.05 with
           | r -> r
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
         in
         List.iter
           (fun fd ->
             if fd = listen_fd then begin
               let cfd, _ = Unix.accept listen_fd in
               let conn = Serve.connect server ~send:(write_all cfd) in
               Hashtbl.replace clients cfd conn
             end
             else
               match Hashtbl.find_opt clients fd with
               | None -> ()
               | Some conn -> (
                   match Unix.read fd buf 0 (Bytes.length buf) with
                   | 0 | (exception Unix.Unix_error _) ->
                       Hashtbl.remove clients fd;
                       (try Unix.close fd with Unix.Unix_error _ -> ());
                       Serve.on_disconnect server conn
                   | n -> Serve.on_bytes server conn buf ~pos:0 ~len:n))
           readable;
         Serve.tick server;
         (match max_sessions with
         | Some m when List.length (Serve.outcomes server) >= m ->
             running := false
         | _ -> ())
       done
     with e ->
       Sfr_obs.Flight.crash_dump
         ~reason:(Printf.sprintf "serve: %s" (Printexc.to_string e));
       fatal := Some (Printexc.to_string e));
    Serve.quiesce server;
    Serve.shutdown server;
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      clients;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (match addr with
    | Unix.ADDR_UNIX path when Sys.file_exists path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ());
    (match audit_out with
    | None -> ()
    | Some f ->
        let n = Sfr_serve.Audit.record_count () in
        Sfr_serve.Audit.close_sink ();
        Printf.printf "wrote audit log (%d records) to %s\n" n f);
    (* telemetry stops before the trace is written so the final sample's
       counter events land inside the trace buffer, as `run` *)
    if telemetry_on then begin
      Sfr_obs.Telemetry.stop ();
      match telemetry_out with
      | Some f ->
          Printf.printf "wrote telemetry (%d samples) to %s\n"
            (Sfr_obs.Telemetry.sample_count ())
            f
      | None -> ()
    end;
    (match trace_out with
    | Some f -> (
        Sfr_obs.Trace_event.stop ();
        match Sfr_obs.Trace_event.write_file f with
        | () -> Printf.printf "wrote chrome trace to %s\n" f
        | exception Sys_error msg ->
            Printf.eprintf "cannot write trace: %s\n" msg;
            exit 2)
    | None -> ());
    let outcomes = Serve.outcomes server in
    List.iter
      (fun (o : Serve_session.outcome) ->
        Printf.printf
          "session %d: %s races=%d events=%d bytes=%d%s%s\n"
          o.Serve_session.session
          (Serve_frame.reply_code_name o.Serve_session.code)
          o.Serve_session.races o.Serve_session.events
          o.Serve_session.bytes_analyzed
          (if Serve_frame.retryable o.Serve_session.code then " (retryable)"
           else "")
          (if o.Serve_session.message = "" then ""
           else ": " ^ o.Serve_session.message))
      outcomes;
    Printf.printf "served %d session(s)\n" (List.length outcomes);
    if stats then begin
      print_endline "-- metrics ----------------------------------------";
      print_string
        (Format.asprintf "%a" Sfr_obs.Metrics.pp_table
           (List.filter
              (fun (n, _) -> String.length n >= 5 && String.sub n 0 5 = "serve")
              (Sfr_obs.Metrics.snapshot ())))
    end;
    match !fatal with
    | Some msg ->
        Printf.eprintf "FATAL: %s\n" msg;
        exit 2
    | None ->
        if
          List.exists
            (fun (o : Serve_session.outcome) ->
              o.Serve_session.code = Serve_frame.Ok_races)
            outcomes
        then exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket $ tcp $ budget $ overload $ credit_window
      $ deadline_ms $ idle_ms $ shards $ pool $ max_sessions $ stats
      $ audit_out $ trace_out $ telemetry_out $ sample_ms)

(* One stress-client session: its own socket, its own behaviour mode. *)
type stress_mode = M_healthy | M_torn | M_over_budget | M_idle

let stress_mode_name = function
  | M_healthy -> "healthy"
  | M_torn -> "torn"
  | M_over_budget -> "over-budget"
  | M_idle -> "idle"

type stress_result = {
  sr_index : int;
  sr_mode : stress_mode;
  sr_reply : Serve_frame.frame option;  (** terminal, if one arrived *)
  sr_error : string option;
}

let stress_session ~addr ~image ~frame ~idle_park_s index mode =
  let fd =
    Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
  in
  match Unix.connect fd addr with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      {
        sr_index = index;
        sr_mode = mode;
        sr_reply = None;
        sr_error = Some (Unix.error_message e);
      }
  | () ->
      let dec = Serve_frame.decoder () in
      let credit = ref 0 in
      let window = ref 0 in
      let terminal = ref None in
      let rbuf = Bytes.create 65536 in
      let peer_gone = ref false in
      (* Drain whatever the server has sent; [block] waits up to 100 ms. *)
      let pump_replies ~block =
        let readable, _, _ =
          try Unix.select [ fd ] [] [] (if block then 0.1 else 0.0)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if readable <> [] then begin
          match Unix.read fd rbuf 0 (Bytes.length rbuf) with
          | 0 | (exception Unix.Unix_error _) -> peer_gone := true
          | n ->
              Serve_frame.decoder_feed dec rbuf ~pos:0 ~len:n;
              let continue_ = ref true in
              while !continue_ do
                match Serve_frame.decoder_next dec with
                | Ok (Some f) -> (
                    match f with
                    | Serve_frame.Welcome { credit = c; _ } ->
                        credit := !credit + c;
                        window := c
                    | Serve_frame.Credit c -> credit := !credit + c
                    | Serve_frame.Verdict _ | Serve_frame.Reject _ ->
                        terminal := Some f
                    | _ -> ())
                | Ok None | Error _ -> continue_ := false
              done
        end
      in
      let send frame_v = write_all fd (Serve_frame.to_bytes frame_v) in
      let wait_terminal ~timeout_s =
        let t0 = Unix.gettimeofday () in
        while
          !terminal = None && (not !peer_gone)
          && Unix.gettimeofday () -. t0 < timeout_s
        do
          pump_replies ~block:true
        done
      in
      send (Serve_frame.Hello { version = Serve_frame.protocol_version });
      let len = Bytes.length image in
      (match mode with
      | M_healthy ->
          let sent = ref 0 in
          while !sent < len && !terminal = None && not !peer_gone do
            if !credit <= 0 then pump_replies ~block:true
            else begin
              let n = min frame (min !credit (len - !sent)) in
              send (Serve_frame.Data (Bytes.sub image !sent n));
              credit := !credit - n;
              sent := !sent + n;
              pump_replies ~block:false
            end
          done;
          if !terminal = None && not !peer_gone then begin
            send Serve_frame.Close;
            wait_terminal ~timeout_s:30.0
          end
      | M_torn ->
          (* stream roughly half, then tear the connection mid-frame *)
          let target = max 1 (len / 2) in
          let sent = ref 0 in
          while !sent < target && !terminal = None && not !peer_gone do
            if !credit <= 0 then pump_replies ~block:true
            else begin
              let n = min frame (min !credit (target - !sent)) in
              send (Serve_frame.Data (Bytes.sub image !sent n));
              credit := !credit - n;
              sent := !sent + n;
              pump_replies ~block:false
            end
          done;
          (* half a frame header: the server sees a truncated uplink *)
          write_all fd (Bytes.make 1 '\x02')
      | M_over_budget ->
          (* hostile: one DATA frame bigger than the whole credit window —
             a deterministic overrun no matter how fast ingest drains *)
          let t0 = Unix.gettimeofday () in
          while
            !window = 0 && (not !peer_gone)
            && Unix.gettimeofday () -. t0 < 10.0
          do
            pump_replies ~block:true
          done;
          let n = !window + 1 in
          let payload = Bytes.create n in
          for i = 0 to n - 1 do
            Bytes.set payload i (Bytes.get image (i mod len))
          done;
          send (Serve_frame.Data payload);
          wait_terminal ~timeout_s:30.0
      | M_idle ->
          (* a trickle, then silence past the server's idle timeout *)
          pump_replies ~block:true;
          let n = min frame (min (max 1 !credit) len) in
          send (Serve_frame.Data (Bytes.sub image 0 n));
          let t0 = Unix.gettimeofday () in
          while
            !terminal = None && (not !peer_gone)
            && Unix.gettimeofday () -. t0 < idle_park_s
          do
            pump_replies ~block:true
          done;
          wait_terminal ~timeout_s:30.0);
      (try Unix.close fd with Unix.Unix_error _ -> ());
      { sr_index = index; sr_mode = mode; sr_reply = !terminal; sr_error = None }

let stress_client_cmd =
  let doc =
    "Stress a running $(b,serve) daemon: stream a recorded workload log \
     over N concurrent sessions, optionally making some misbehave (tear \
     mid-frame, ignore credit, go idle) to exercise the typed error \
     paths. Exits 1 when any session's reply deviates from its mode's \
     expectation, 2 on connection failures."
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket.")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Daemon loopback TCP port.")
  in
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Benchmark to record and stream.")
  in
  let scale =
    Arg.(
      value
      & opt scale_conv Workload.Tiny
      & info [ "s"; "scale" ] ~doc:"Scale: tiny, small, default, large, paper.")
  in
  let inject =
    Arg.(value & flag & info [ "inject-race" ] ~doc:"Plant a determinacy race.")
  in
  let sessions =
    Arg.(
      value & opt int 4
      & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent sessions.")
  in
  let torn =
    Arg.(
      value & opt int 0
      & info [ "torn" ] ~docv:"K" ~doc:"Sessions that tear mid-frame.")
  in
  let over_budget =
    Arg.(
      value & opt int 0
      & info [ "over-budget" ] ~docv:"K"
          ~doc:"Sessions that ignore credit (expect ERR_PROTOCOL/ERR_OVERLOAD).")
  in
  let idle =
    Arg.(
      value & opt int 0
      & info [ "idle" ] ~docv:"K"
          ~doc:"Sessions that go silent (expect ERR_IDLE; give the daemon \
                --idle-ms).")
  in
  let idle_park_s =
    Arg.(
      value & opt float 5.0
      & info [ "idle-park-s" ] ~docv:"S"
          ~doc:"How long idle sessions stay silent before giving up.")
  in
  let frame =
    Arg.(
      value & opt int 4096
      & info [ "frame" ] ~docv:"BYTES" ~doc:"DATA frame payload size.")
  in
  let run socket tcp workload scale inject sessions torn over_budget idle
      idle_park_s frame =
    let addr =
      match addr_of ~socket ~tcp with
      | Ok a -> a
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    if torn + over_budget + idle > sessions then begin
      Printf.eprintf "--torn + --over-budget + --idle exceed --sessions\n";
      exit 2
    end;
    let w =
      match Registry.find workload with
      | Some w -> w
      | None ->
          Printf.eprintf "unknown workload %S (try: racedetect list)\n" workload;
          exit 2
    in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* record once, stream the same image from every session *)
    let tmp = Filename.temp_file "stress" ".sflog" in
    let image =
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let inst = w.Workload.instantiate ~inject_race:inject scale in
          let rec_, cb, root = Sfr_eventlog.Recorder.create ~path:tmp () in
          ignore (Serial_exec.run cb ~root inst.Workload.program);
          ignore (Sfr_eventlog.Recorder.close rec_);
          let ic = open_in_bin tmp in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let n = in_channel_length ic in
              really_input_string ic n |> Bytes.of_string))
    in
    Printf.printf "streaming %d-byte log x %d session(s) (%d torn, %d \
                   over-budget, %d idle)\n%!"
      (Bytes.length image) sessions torn over_budget idle;
    let mode_of i =
      if i < torn then M_torn
      else if i < torn + over_budget then M_over_budget
      else if i < torn + over_budget + idle then M_idle
      else M_healthy
    in
    let domains =
      List.init sessions (fun i ->
          Domain.spawn (fun () ->
              stress_session ~addr ~image ~frame ~idle_park_s i (mode_of i)))
    in
    let results = List.map Domain.join domains in
    let failures = ref 0 in
    List.iter
      (fun r ->
        let describe =
          match r.sr_reply with
          | Some (Serve_frame.Verdict { code; races; events; bytes_analyzed; _ })
            ->
              Printf.sprintf "%s races=%d events=%d bytes=%d"
                (Serve_frame.reply_code_name code)
                races events bytes_analyzed
          | Some (Serve_frame.Reject { code; _ }) ->
              Printf.sprintf "REJECT %s" (Serve_frame.reply_code_name code)
          | Some f -> Format.asprintf "%a" Serve_frame.pp f
          | None -> "no terminal reply"
        in
        let ok =
          match (r.sr_error, r.sr_mode, r.sr_reply) with
          | Some _, _, _ -> false
          | None, M_healthy, Some (Serve_frame.Verdict { code; _ }) ->
              code = Serve_frame.Ok_clean || code = Serve_frame.Ok_races
          | None, M_torn, _ ->
              (* tore the uplink on purpose; the server-side verdict is
                 checked by the daemon, not here *)
              true
          | None, M_over_budget, Some (Serve_frame.Verdict { code; _ }) ->
              code = Serve_frame.Err_protocol
              || code = Serve_frame.Err_overload
          | None, M_over_budget, Some (Serve_frame.Reject { code; _ }) ->
              code = Serve_frame.Err_overload
          | None, M_idle, Some (Serve_frame.Verdict { code; _ }) ->
              code = Serve_frame.Err_idle
          | _ -> false
        in
        if not ok then incr failures;
        (match r.sr_error with
        | Some e ->
            Printf.printf "client %d (%s): CONNECT FAILED: %s\n" r.sr_index
              (stress_mode_name r.sr_mode) e
        | None ->
            Printf.printf "client %d (%s): %s%s\n" r.sr_index
              (stress_mode_name r.sr_mode) describe
              (if ok then "" else " [UNEXPECTED]")))
      results;
    if List.exists (fun r -> r.sr_error <> None) results then exit 2;
    if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "stress-client" ~doc)
    Term.(
      const run $ socket $ tcp $ workload $ scale $ inject $ sessions $ torn
      $ over_budget $ idle $ idle_park_s $ frame)

(* -- serve-stats / audit-lint ------------------------------------------- *)

let serve_stats_cmd =
  let doc =
    "Query a running $(b,serve) daemon's admin plane over its own wire \
     protocol: one-bit health with a detail line, the live session table \
     as JSON, and a Prometheus metrics scrape. Exits 1 when the daemon \
     reports itself degraded, 2 on connection failure, timeout, or (with \
     $(b,--check)) an invalid exposition."
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket.")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Daemon loopback TCP port.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the metrics scrape against the Prometheus text-format \
             grammar (exit 2 on violation).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the metrics scrape to $(docv) instead of stdout.")
  in
  let timeout_s =
    Arg.(
      value & opt float 10.0
      & info [ "timeout-s" ] ~docv:"S"
          ~doc:"Give up if the daemon has not answered within $(docv).")
  in
  let run socket tcp check metrics_out timeout_s =
    let addr =
      match addr_of ~socket ~tcp with
      | Ok a -> a
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
    in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match Unix.connect fd addr with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot connect: %s\n" (Unix.error_message e);
        exit 2
    | () -> ());
    write_all fd (Serve_frame.to_bytes Serve_frame.Health_req);
    write_all fd (Serve_frame.to_bytes Serve_frame.Stats_req);
    write_all fd (Serve_frame.to_bytes Serve_frame.Metrics_req);
    let dec = Serve_frame.decoder () in
    let health = ref None in
    let stats = ref None in
    let metrics = ref None in
    let gone = ref false in
    let rbuf = Bytes.create 65536 in
    let t0 = Unix.gettimeofday () in
    while
      (!health = None || !stats = None || !metrics = None)
      && (not !gone)
      && Unix.gettimeofday () -. t0 < timeout_s
    do
      let readable, _, _ =
        try Unix.select [ fd ] [] [] 0.1
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if readable <> [] then
        match Unix.read fd rbuf 0 (Bytes.length rbuf) with
        | 0 | (exception Unix.Unix_error _) -> gone := true
        | n ->
            Serve_frame.decoder_feed dec rbuf ~pos:0 ~len:n;
            let continue_ = ref true in
            while !continue_ do
              match Serve_frame.decoder_next dec with
              | Ok (Some (Serve_frame.Health_reply { healthy; detail })) ->
                  health := Some (healthy, detail)
              | Ok (Some (Serve_frame.Stats_reply s)) -> stats := Some s
              | Ok (Some (Serve_frame.Metrics_reply m)) -> metrics := Some m
              | Ok (Some _) -> ()
              | Ok None | Error _ -> continue_ := false
            done
    done;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match (!health, !stats, !metrics) with
    | Some (healthy, detail), Some stats_doc, Some scrape ->
        Printf.printf "health: %s (%s)\n"
          (if healthy then "healthy" else "degraded")
          detail;
        print_endline stats_doc;
        if check then begin
          match Sfr_obs.Telemetry.check_prometheus scrape with
          | Ok n -> Printf.eprintf "exposition OK: %d sample line(s)\n" n
          | Error e ->
              Printf.eprintf "exposition INVALID: %s\n" e;
              exit 2
        end;
        (match metrics_out with
        | None -> print_string scrape
        | Some f -> (
            match
              let oc = open_out f in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc scrape)
            with
            | () -> Printf.eprintf "wrote metrics scrape to %s\n" f
            | exception Sys_error msg ->
                Printf.eprintf "cannot write %s: %s\n" f msg;
                exit 2));
        if not healthy then exit 1
    | _ ->
        Printf.eprintf "daemon did not answer within %.1fs%s\n" timeout_s
          (if !gone then " (connection closed)" else "");
        exit 2
  in
  Cmd.v (Cmd.info "serve-stats" ~doc)
    Term.(const run $ socket $ tcp $ check $ metrics_out $ timeout_s)

let audit_lint_cmd =
  let doc =
    "Validate a JSONL audit log written by $(b,serve --audit-out): schema \
     header, per-line JSON, known event names, strictly increasing \
     sequence numbers, per-event required fields. Exit 2 on malformed \
     input, 1 when fewer than --min-records records are present."
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Audit JSONL file.")
  in
  let min_records =
    Arg.(
      value & opt int 1
      & info [ "min-records" ] ~docv:"N"
          ~doc:"Require at least $(docv) records.")
  in
  let run file min_records =
    let text =
      try
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 2
    in
    match Sfr_serve.Audit.lint_jsonl text with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        exit 2
    | Ok n ->
        Printf.printf "%s: %d record(s), schema %d\n" file n
          Sfr_serve.Audit.schema_version;
        if n < min_records then begin
          Printf.eprintf "expected at least %d record(s), found %d\n"
            min_records n;
          exit 1
        end
  in
  Cmd.v (Cmd.info "audit-lint" ~doc) Term.(const run $ file $ min_records)

let () =
  let doc = "on-the-fly determinacy race detection for structured futures" in
  let info = Cmd.info "racedetect" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            detectors_cmd;
            run_cmd;
            synth_cmd;
            record_cmd;
            replay_cmd;
            analyze_cmd;
            chaos_cmd;
            metrics_dump_cmd;
            telemetry_lint_cmd;
            serve_cmd;
            stress_client_cmd;
            serve_stats_cmd;
            audit_lint_cmd;
          ]))
