(** Minimal JSON parser — just enough to round-trip {!Trace_event} output
    and the bench profile dump in tests without an external dependency.

    Handles the full JSON value grammar; [\u] escapes are decoded for
    code points below 256 (all this repo's emitters ever produce) and
    replaced with ['?'] otherwise. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val member : string -> t -> t option
(** [member key (Obj kvs)] looks up [key]; [None] on non-objects. *)
