(* Chrome trace_event JSON emitter (the "JSON Array/Object Format" that
   chrome://tracing and Perfetto load). Collection is opt-in: while off,
   [with_span] costs a flag load and runs its thunk directly. While on,
   events append to a mutex-guarded buffer — span emission happens on
   parallel-construct events (create/get/steal), not per memory access,
   so the lock is not on the detectors' hot path. *)

type phase = Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float; (* microseconds since trace start *)
  dur : float; (* microseconds; Complete only *)
  pid : int;
  tid : int;
  args : (string * float) list; (* Counter series; empty otherwise *)
}

let on = Atomic.make false
let mu = Mutex.create ()
let buf : event list ref = ref []
let epoch = ref 0.0

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

let clear () =
  Mutex.lock mu;
  buf := [];
  Mutex.unlock mu

let start () =
  clear ();
  epoch := Unix.gettimeofday ();
  Atomic.set on true

let stop () = Atomic.set on false

let is_on () = Atomic.get on

let push e =
  Mutex.lock mu;
  buf := e :: !buf;
  Mutex.unlock mu

let tid () = (Domain.self () :> int)

let emit ?(cat = "sfr") ?(args = []) ?tid:tid_arg name ph ~ts ~dur =
  let tid = match tid_arg with Some v -> v | None -> tid () in
  push { name; cat; ph; ts; dur; pid = 1; tid; args }

let instant ?cat ?args name =
  if Atomic.get on then emit ?cat ?args name Instant ~ts:(now_us ()) ~dur:0.0

let counter ?(cat = "telemetry") name v =
  if Atomic.get on then
    emit ~cat
      ~args:[ ("value", float_of_int v) ]
      name Counter ~ts:(now_us ()) ~dur:0.0

let with_span ?cat ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        emit ?cat ?args name Complete ~ts:t0 ~dur:(now_us () -. t0))
      f
  end

let complete ?cat ?args ?tid name ~ts_us ~dur_us =
  if Atomic.get on then emit ?cat ?args ?tid name Complete ~ts:ts_us ~dur:dur_us

let events () =
  Mutex.lock mu;
  let es = List.rev !buf in
  Mutex.unlock mu;
  es

(* -- JSON rendering ----------------------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let render_event b e =
  Buffer.add_string b "{\"name\":\"";
  escape b e.name;
  Buffer.add_string b "\",\"cat\":\"";
  escape b e.cat;
  Buffer.add_string b "\",\"ph\":\"";
  Buffer.add_string b
    (match e.ph with Complete -> "X" | Instant -> "i" | Counter -> "C");
  Buffer.add_string b "\"";
  (match e.ph with
  | Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Complete -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" e.dur)
  | Counter -> ());
  if e.args <> [] then begin
    (* arg keys pass through the same escaper as names: a control
       character or quote in a series label must not break the writer *)
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b (Printf.sprintf "\":%.3f" v))
      e.args;
    Buffer.add_char b '}'
  end;
  Buffer.add_string b
    (Printf.sprintf ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}" e.ts e.pid e.tid)

let to_json_string () =
  let es = events () in
  let b = Buffer.create (256 + (96 * List.length es)) in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      render_event b e)
    es;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json_string ()))
