.PHONY: all build test bench profile perfdiff scaling examples replay-smoke detector-smoke om-smoke telemetry-smoke serve-smoke serve-obs-smoke clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all --scale default --repeats 3

profile:
	dune exec bench/main.exe -- profile --scale small

# Fresh tiny-scale profile vs the committed baseline; exits 1 if any
# (workload, detector) median regressed beyond max(10%, 3xMAD).
perfdiff:
	dune exec bench/main.exe -- profile --scale tiny --repeats 3 --profile-out /tmp/perfdiff_new.json
	dune exec bench/main.exe -- perfdiff BENCH_profile.json /tmp/perfdiff_new.json

# Measured multicore runs (work-stealing executor) per domain count,
# with the contention counters the hot-path optimizations target.
# Regenerates the committed BENCH_scaling.json baseline (tiny scale,
# matching BENCH_profile.json and the CI perf-smoke lane).
scaling:
	dune exec bench/main.exe -- scaling --scale tiny --repeats 3 --domains 1,2,4,8

examples:
	dune exec examples/quickstart.exe
	dune exec examples/smith_waterman.exe
	dune exec examples/pipeline_search.exe
	dune exec examples/race_debugging.exe
	dune exec examples/video_pipeline.exe

# Record mm and sw, replay each with 1 and 4 shards, and require the
# reports to be byte-identical (stdout is shard-count-invariant).
replay-smoke:
	dune build bin/racedetect.exe
	@set -e; for w in mm sw; do \
	  dune exec bin/racedetect.exe -- record -w $$w -s small -o /tmp/$$w.sflog; \
	  dune exec bin/racedetect.exe -- replay /tmp/$$w.sflog --shards 1 > /tmp/$$w.s1.out; \
	  dune exec bin/racedetect.exe -- replay /tmp/$$w.sflog --shards 4 > /tmp/$$w.s4.out; \
	  diff /tmp/$$w.s1.out /tmp/$$w.s4.out && echo "$$w: 1-shard and 4-shard reports identical"; \
	  rm -f /tmp/$$w.sflog /tmp/$$w.s1.out /tmp/$$w.s4.out; \
	done

# Run one workload under every registered detector, driven by the
# registry itself (`racedetect detectors --names`) so a detector added
# to the registry cannot be silently skipped by a stale hard-coded list.
detector-smoke:
	dune build bin/racedetect.exe
	@set -e; \
	names=$$(dune exec bin/racedetect.exe -- detectors --names); \
	for d in multibags f-order sf-order sf-order-2pf vc-order; do \
	  echo "$$names" | grep -qx $$d || { echo "detector-smoke: $$d missing from registry" >&2; exit 2; }; \
	done; \
	n=0; \
	for d in $$names; do \
	  echo "== $$d =="; \
	  dune exec bin/racedetect.exe -- run -w mm -s tiny -d $$d; \
	  n=$$((n + 1)); \
	done; \
	echo "detector-smoke: $$n registered detectors ran mm/tiny clean"

# The OM backend seam end to end: the list-vs-depa differential suite,
# then a 2-domain depa scaling run perfdiffed (report-only — the depa
# keys are new relative to the committed both-backend baseline's list
# rows, and diff compares intersecting keys only).
om-smoke:
	dune build bench/main.exe test/test_depa.exe
	dune exec test/test_depa.exe
	@set -e; \
	dune exec bench/main.exe -- scaling --om depa --scale tiny --repeats 2 \
	  --domains 1,2 --scaling-out /tmp/om_scaling.json; \
	dune exec bench/main.exe -- perfdiff BENCH_scaling.json \
	  /tmp/om_scaling.json --report-only; \
	rm -f /tmp/om_scaling.json; \
	echo "om-smoke: depa differential + 2-domain depa scaling OK"

telemetry-smoke:
	dune build bin/racedetect.exe bench/main.exe
	@set -e; \
	dune exec bench/main.exe -- profile --scale tiny --repeats 2 \
	  --telemetry-out /tmp/telemetry.jsonl --sample-ms 5 \
	  --profile-out /tmp/telemetry_profile.json; \
	dune exec bin/racedetect.exe -- telemetry-lint /tmp/telemetry.jsonl --min-samples 2; \
	dune exec bin/racedetect.exe -- metrics-dump -w mm -s tiny --check > /tmp/metrics.prom; \
	rm -f /tmp/telemetry.jsonl /tmp/telemetry_profile.json /tmp/metrics.prom

serve-smoke:
	dune build bin/racedetect.exe
	@set -e; \
	sock=/tmp/serve_smoke.sock; rm -f $$sock /tmp/serve_smoke.log; \
	dune exec bin/racedetect.exe -- serve --socket $$sock \
	  --max-sessions 4 --stats > /tmp/serve_smoke.log 2>&1 & \
	srv=$$!; \
	for i in $$(seq 1 100); do [ -S $$sock ] && break; sleep 0.1; done; \
	[ -S $$sock ] || { echo "serve-smoke: daemon never listened" >&2; exit 2; }; \
	dune exec bin/racedetect.exe -- stress-client --socket $$sock \
	  --workload mm --sessions 4 --torn 1; \
	wait $$srv; \
	cat /tmp/serve_smoke.log; \
	grep -q "served 4 session(s)" /tmp/serve_smoke.log; \
	grep -q "ERR_TORN" /tmp/serve_smoke.log; \
	echo "serve-smoke: 4 sessions served (1 torn), clean shutdown"; \
	rm -f /tmp/serve_smoke.log $$sock

# The observability surface end to end against a live daemon: probe the
# admin plane (health + grammar-checked Prometheus scrape) before any
# stream exists, serve a stress mix, then lint the audit log and check
# the trace recorded per-session lifecycle spans.
serve-obs-smoke:
	dune build bin/racedetect.exe
	@set -e; \
	sock=/tmp/serve_obs.sock; \
	rm -f $$sock /tmp/serve_obs.log /tmp/serve_obs_audit.jsonl \
	  /tmp/serve_obs_trace.json /tmp/serve_obs_stats.log; \
	dune exec bin/racedetect.exe -- serve --socket $$sock \
	  --max-sessions 4 --stats \
	  --audit-out /tmp/serve_obs_audit.jsonl \
	  --trace-out /tmp/serve_obs_trace.json > /tmp/serve_obs.log 2>&1 & \
	srv=$$!; \
	for i in $$(seq 1 100); do [ -S $$sock ] && break; sleep 0.1; done; \
	[ -S $$sock ] || { echo "serve-obs-smoke: daemon never listened" >&2; exit 2; }; \
	dune exec bin/racedetect.exe -- serve-stats --socket $$sock --check \
	  > /tmp/serve_obs_stats.log; \
	grep -q "health: healthy" /tmp/serve_obs_stats.log; \
	dune exec bin/racedetect.exe -- stress-client --socket $$sock \
	  --workload mm --sessions 4 --torn 1; \
	wait $$srv; \
	cat /tmp/serve_obs.log; \
	grep -q "served 4 session(s)" /tmp/serve_obs.log; \
	dune exec bin/racedetect.exe -- audit-lint /tmp/serve_obs_audit.jsonl \
	  --min-records 10; \
	grep -q "serve.session" /tmp/serve_obs_trace.json; \
	echo "serve-obs-smoke: admin probe + audit lint + session spans OK"; \
	rm -f /tmp/serve_obs.log /tmp/serve_obs_audit.jsonl \
	  /tmp/serve_obs_trace.json /tmp/serve_obs_stats.log $$sock

clean:
	dune clean
