module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Detector = Sfr_detect.Detector
module Detectors = Sfr_detect.Registry
module Sf_order = Sfr_detect.Sf_order
module F_order = Sfr_detect.F_order
module Multibags = Sfr_detect.Multibags
module Tablefmt = Sfr_support.Tablefmt
module Mem_meter = Sfr_support.Mem_meter
module Sim_sched = Sfr_runtime.Sim_sched
module Dag = Sfr_dag.Dag

let instance_maker (w : Workload.t) scale () = w.Workload.instantiate scale

let pp_bytes words = Format.asprintf "%a" Mem_meter.pp_bytes words

(* ---------------------------------------------------------------- *)
(* Figure 3: benchmark characteristics                                *)
(* ---------------------------------------------------------------- *)

let fig3 ~scale =
  Format.printf "Figure 3: benchmark characteristics (measured at scale %a; \
                 'paper' columns are the published values at paper scale)@."
    Workload.pp_scale scale;
  let t =
    Tablefmt.create
      ~title:""
      [
        ("bench", Tablefmt.Left);
        ("# reads", Tablefmt.Right);
        ("# writes", Tablefmt.Right);
        ("# queries", Tablefmt.Right);
        ("# futures", Tablefmt.Right);
        ("# nodes", Tablefmt.Right);
        ("paper reads", Tablefmt.Right);
        ("paper futures", Tablefmt.Right);
        ("paper nodes", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let recorded = Runner.record (instance_maker w scale) in
      (* queries = what full SF-Order performs on this input *)
      let m = Runner.time_serial ~repeats:1 (instance_maker w scale) (Runner.Full (fun () -> Sf_order.make ())) in
      let paper = w.Workload.paper_figure3 in
      let nth i = List.nth paper i in
      Tablefmt.add_row t
        [
          w.Workload.name;
          Tablefmt.cell_int_compact recorded.Runner.reads;
          Tablefmt.cell_int_compact recorded.Runner.writes;
          Tablefmt.cell_int_compact m.Runner.queries;
          string_of_int (Dag.n_futures recorded.Runner.dag);
          string_of_int (Dag.n_nodes recorded.Runner.dag);
          nth 2;
          nth 5;
          nth 6;
        ])
    Registry.all;
  Tablefmt.print t

(* ---------------------------------------------------------------- *)
(* Figure 4: execution times                                          *)
(* ---------------------------------------------------------------- *)

type detcol = { label : string; make : unit -> Detector.t; parallel : bool }

(* The figure tables' detector columns come straight from the registry
   ([caps.figure] entries, registration order), so the historical
   MultiBags / F-Order / SF-Order output is byte-identical and a future
   paper-grade backend only has to register itself. Computed per call:
   tests may register entries after this module initializes. *)
let detcols () =
  List.filter_map
    (fun (e : Detectors.entry) ->
      if e.Detectors.caps.Detectors.figure then
        Some
          {
            label = e.Detectors.label;
            make = e.Detectors.make;
            parallel = e.Detectors.caps.Detectors.supports_parallel;
          }
      else None)
    (Detectors.all ())

let fig4 ~scale ~repeats ~workers =
  let detcols = detcols () in
  Format.printf
    "Figure 4: execution times (seconds). T1 measured on one core; T%d \
     simulated by greedy scheduling of the recorded dag scaled by measured \
     T1 (DESIGN.md 5.1). (x) = overhead vs base; [x] = scalability vs own \
     T1.@."
    workers;
  let t =
    Tablefmt.create ~title:""
      ([ ("bench", Tablefmt.Left); ("base T1", Tablefmt.Right);
         (Printf.sprintf "base T%d" workers, Tablefmt.Right);
         ("config", Tablefmt.Left) ]
      @ List.map (fun d -> (d.label ^ " T1", Tablefmt.Right)) detcols
      @ List.filter_map
          (fun d ->
            if d.parallel then
              Some (Printf.sprintf "%s T%d" d.label workers, Tablefmt.Right)
            else None)
          detcols)
  in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      let recorded = Runner.record mk in
      let base = Runner.time_serial ~repeats mk Runner.Base in
      let base_tp =
        Runner.simulated_time recorded ~measured_t1:base.Runner.seconds ~workers
      in
      let row_for config_label mode_of =
        let cells_t1 =
          List.map
            (fun d ->
              let m = Runner.time_serial ~repeats mk (mode_of d) in
              Printf.sprintf "%.3f %s" m.Runner.seconds
                (Tablefmt.cell_times (m.Runner.seconds /. base.Runner.seconds)))
            detcols
        in
        let cells_tp =
          List.filter_map
            (fun d ->
              if not d.parallel then None
              else begin
                let m = Runner.time_serial ~repeats mk (mode_of d) in
                let tp =
                  Runner.simulated_time recorded ~measured_t1:m.Runner.seconds
                    ~workers
                in
                Some
                  (Printf.sprintf "%.3f %s" tp
                     (Tablefmt.cell_speedup (m.Runner.seconds /. tp)))
              end)
            detcols
        in
        Tablefmt.add_row t
          ([ w.Workload.name;
             Printf.sprintf "%.3f" base.Runner.seconds;
             Printf.sprintf "%.3f %s" base_tp
               (Tablefmt.cell_speedup (base.Runner.seconds /. base_tp));
             config_label ]
          @ cells_t1 @ cells_tp)
      in
      row_for "reach" (fun d -> Runner.Reach d.make);
      row_for "full" (fun d -> Runner.Full d.make);
      Tablefmt.add_separator t)
    Registry.all;
  Tablefmt.print t

(* ---------------------------------------------------------------- *)
(* Figure 5: memory usage of reachability structures                  *)
(* ---------------------------------------------------------------- *)

let fig5 ~scale =
  Format.printf
    "Figure 5: memory of the per-node reachability tables (gp/cp bitmaps \
     vs nsp hash tables), cumulative allocation over a reach run — the \
     retain-per-node measurement of the paper (EXPERIMENTS.md).@.";
  let t =
    Tablefmt.create ~title:""
      [
        ("bench", Tablefmt.Left);
        ("F-Order", Tablefmt.Right);
        ("SF-Order", Tablefmt.Right);
        ("SF/F ratio", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      let mf = Runner.time_serial ~repeats:1 mk (Runner.Reach (fun () -> F_order.make ())) in
      let ms = Runner.time_serial ~repeats:1 mk (Runner.Reach (fun () -> Sf_order.make ())) in
      Tablefmt.add_row t
        [
          w.Workload.name;
          pp_bytes mf.Runner.reach_table_words;
          pp_bytes ms.Runner.reach_table_words;
          Printf.sprintf "%.2f%%"
            (100.0 *. float_of_int ms.Runner.reach_table_words
            /. float_of_int (max 1 mf.Runner.reach_table_words));
        ])
    Registry.all;
  Tablefmt.print t

(* ---------------------------------------------------------------- *)
(* Scalability sweep (the curve behind Figure 4's brackets)           *)
(* ---------------------------------------------------------------- *)

let sweep ~scale ~repeats =
  Format.printf
    "Scalability sweep: simulated time (seconds) vs workers, per benchmark \
     and configuration.@.";
  let ps = [ 1; 2; 4; 8; 12; 16; 20; 32 ] in
  let t =
    Tablefmt.create ~title:""
      ([ ("bench", Tablefmt.Left); ("config", Tablefmt.Left) ]
      @ List.map (fun p -> ("P=" ^ string_of_int p, Tablefmt.Right)) ps)
  in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      let recorded = Runner.record mk in
      let add label t1 =
        Tablefmt.add_row t
          ([ w.Workload.name; label ]
          @ List.map
              (fun p ->
                Printf.sprintf "%.3f"
                  (Runner.simulated_time recorded ~measured_t1:t1 ~workers:p))
              ps)
      in
      let base = Runner.time_serial ~repeats mk Runner.Base in
      add "base" base.Runner.seconds;
      List.iter
        (fun (e : Detectors.entry) ->
          if e.Detectors.caps.Detectors.figure then begin
            let m =
              Runner.time_serial ~repeats mk (Runner.Full e.Detectors.make)
            in
            if e.Detectors.caps.Detectors.supports_parallel then
              add (e.Detectors.name ^ " full") m.Runner.seconds
            else
              (* a sequential detector cannot run in parallel: constant
                 across P *)
              Tablefmt.add_row t
                ([ w.Workload.name; e.Detectors.name ^ " full (serial only)" ]
                @ List.map (fun _ -> Printf.sprintf "%.3f" m.Runner.seconds) ps)
          end)
        (Detectors.all ());
      Tablefmt.add_separator t)
    Registry.all;
  Tablefmt.print t

(* ---------------------------------------------------------------- *)
(* Ablations                                                          *)
(* ---------------------------------------------------------------- *)

let ablation_locks ~scale ~repeats =
  Format.printf
    "Ablation A (paper section 4): access-history locking cost. Full \
     detection with and without per-location locks (serial runs).@.";
  let t =
    Tablefmt.create ~title:""
      [
        ("bench", Tablefmt.Left);
        ("detector", Tablefmt.Left);
        ("locked T1", Tablefmt.Right);
        ("lock-free T1", Tablefmt.Right);
        ("lock overhead", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      List.iter
        (fun (name, locked, unlocked) ->
          let ml = Runner.time_serial ~repeats mk (Runner.Full locked) in
          let mu = Runner.time_serial ~repeats mk (Runner.Full unlocked) in
          Tablefmt.add_row t
            [
              w.Workload.name;
              name;
              Printf.sprintf "%.3f" ml.Runner.seconds;
              Printf.sprintf "%.3f" mu.Runner.seconds;
              Tablefmt.cell_times (ml.Runner.seconds /. mu.Runner.seconds);
            ])
        [
          ( "sf-order",
            (fun () -> Sf_order.make ~history:`Mutex ()),
            fun () -> Sf_order.make ~history:`Unsynchronized () );
          ( "f-order",
            (fun () -> F_order.make ~history:`Mutex ()),
            fun () -> F_order.make ~history:`Unsynchronized () );
        ])
    Registry.all;
  Tablefmt.print t

let ablation_sets ~scale ~repeats =
  Format.printf
    "Ablation B (paper section 4): gp/cp as bitmaps (SF-Order) vs hash \
     tables (what general-futures detectors need).@.";
  let t =
    Tablefmt.create ~title:""
      [
        ("bench", Tablefmt.Left);
        ("bitmap T1", Tablefmt.Right);
        ("hashed T1", Tablefmt.Right);
        ("bitmap reach mem", Tablefmt.Right);
        ("hashed reach mem", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      let mb =
        Runner.time_serial ~repeats mk (Runner.Full (fun () -> Sf_order.make ~sets:`Bitmap ()))
      in
      let mh =
        Runner.time_serial ~repeats mk (Runner.Full (fun () -> Sf_order.make ~sets:`Hashed ()))
      in
      Tablefmt.add_row t
        [
          w.Workload.name;
          Printf.sprintf "%.3f" mb.Runner.seconds;
          Printf.sprintf "%.3f" mh.Runner.seconds;
          pp_bytes mb.Runner.reach_words;
          pp_bytes mh.Runner.reach_words;
        ])
    Registry.all;
  Tablefmt.print t

let ablation_readers ~scale ~repeats =
  Format.printf
    "Ablation C (paper sections 3.5 vs 4): keep-all readers (what the \
     paper's implementation does) vs the proved 2-per-future bound.@.";
  let t =
    Tablefmt.create ~title:""
      [
        ("bench", Tablefmt.Left);
        ("keep-all T1", Tablefmt.Right);
        ("2-per-future T1", Tablefmt.Right);
        ("keep-all max rdrs", Tablefmt.Right);
        ("2pf max rdrs", Tablefmt.Right);
        ("2k bound", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      let recorded = Runner.record mk in
      let k = Dag.n_futures recorded.Runner.dag in
      let ma =
        Runner.time_serial ~repeats mk (Runner.Full (fun () -> Sf_order.make ~readers:`All ()))
      in
      let m2 =
        Runner.time_serial ~repeats mk
          (Runner.Full (fun () -> Sf_order.make ~readers:`Two_per_future ()))
      in
      Tablefmt.add_row t
        [
          w.Workload.name;
          Printf.sprintf "%.3f" ma.Runner.seconds;
          Printf.sprintf "%.3f" m2.Runner.seconds;
          string_of_int ma.Runner.max_readers;
          string_of_int m2.Runner.max_readers;
          string_of_int (2 * k);
        ])
    Registry.all;
  Tablefmt.print t

let ablation_history ~scale ~repeats =
  Format.printf
    "Ablation D (extension; paper conclusion): redesigned access-history \
     synchronization under full SF-Order detection. `Unsynchronized` is the \
     serial-only lower bound; `Lockfree` is parallel-safe.@.";
  let t =
    Tablefmt.create ~title:""
      [
        ("bench", Tablefmt.Left);
        ("mutex T1", Tablefmt.Right);
        ("lockfree T1", Tablefmt.Right);
        ("unsync T1", Tablefmt.Right);
        ("lockfree vs mutex", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      let time history =
        (Runner.time_serial ~repeats mk
           (Runner.Full (fun () -> Sf_order.make ~history ())))
          .Runner.seconds
      in
      let tm = time `Mutex and tl = time `Lockfree and tu = time `Unsynchronized in
      Tablefmt.add_row t
        [
          w.Workload.name;
          Printf.sprintf "%.3f" tm;
          Printf.sprintf "%.3f" tl;
          Printf.sprintf "%.3f" tu;
          Tablefmt.cell_times (tm /. tl);
        ])
    Registry.all;
  Tablefmt.print t

let motivation ~scale =
  Format.printf
    "Motivation (paper section 1, via Singer et al.): Smith-Waterman with \
     structured futures vs fork-join anti-diagonal barriers. Same work, \
     lower span.@.";
  let module Sw = Sfr_workloads.Sw in
  let module Serial_exec = Sfr_runtime.Serial_exec in
  let module Trace = Sfr_runtime.Trace in
  let module Dag_algo = Sfr_dag.Dag_algo in
  let record instantiate =
    let inst = instantiate scale in
    let trace, cb, root = Trace.make () in
    let (), _ = Serial_exec.run cb ~root inst.Workload.program in
    Trace.dag trace
  in
  let t =
    Tablefmt.create ~title:""
      ([ ("version", Tablefmt.Left); ("work", Tablefmt.Right);
         ("span", Tablefmt.Right); ("parallelism", Tablefmt.Right) ]
      @ List.map
          (fun p -> ("speedup P=" ^ string_of_int p, Tablefmt.Right))
          [ 4; 8; 16; 32 ])
  in
  List.iter
    (fun (label, instantiate) ->
      let dag = record instantiate in
      let work = Dag_algo.work dag in
      let span = Dag_algo.span dag Dag_algo.Full in
      Tablefmt.add_row t
        ([ label;
           Tablefmt.cell_int_compact work;
           Tablefmt.cell_int_compact span;
           Printf.sprintf "%.1f" (float_of_int work /. float_of_int (max 1 span)) ]
        @ List.map
            (fun p -> Printf.sprintf "%.2fx" (Sim_sched.speedup dag ~workers:p))
            [ 4; 8; 16; 32 ]))
    [
      ("futures, uniform blocks", fun s -> Sw.instantiate s);
      ("fork-join, uniform blocks", fun s -> Sw.instantiate_forkjoin s);
      ("futures, skewed blocks", fun s -> Sw.instantiate ~skew:true s);
      ("fork-join, skewed blocks", fun s -> Sw.instantiate_forkjoin ~skew:true s);
    ];
  Tablefmt.print t

(* ---------------------------------------------------------------- *)
(* Profile dump: per-configuration metric snapshots                   *)
(* ---------------------------------------------------------------- *)

(* Every registered backend gets a profile row (and hence a perfdiff
   series): new detectors join the BENCH_profile.json trajectory the
   moment they register. *)
let profile_cols () =
  List.map
    (fun (e : Detectors.entry) -> (e.Detectors.name, e.Detectors.make))
    (Detectors.all ())

(* The OM A/B rows: the two OM-based detectors pinned to the DePa
   backend, keyed "+depa" so the registry-named list rows keep their
   historical perfdiff series. *)
let depa_cols =
  [
    ("sf-order+depa", fun () -> Sf_order.make ~om:`Depa ());
    ("f-order+depa", fun () -> F_order.make ~om:`Depa ());
  ]

let profile ~om_backends ~scale ~repeats ~out =
  Format.printf
    "Profile: per-configuration metric snapshots (full detection) -> %s@." out;
  (* latency histograms (prof.*.ns) only fill while profiling is on; the
     flag costs the instrumented hot paths one atomic load otherwise *)
  let prof_was_on = Sfr_obs.Prof.enabled () in
  Sfr_obs.Prof.enable ();
  let t =
    Tablefmt.create ~title:""
      [
        ("bench", Tablefmt.Left);
        ("detector", Tablefmt.Left);
        ("T1 median", Tablefmt.Right);
        ("MAD", Tablefmt.Right);
        ("queries", Tablefmt.Right);
        ("metrics", Tablefmt.Right);
      ]
  in
  let cols =
    (if List.mem `List om_backends then profile_cols () else [])
    @ if List.mem `Depa om_backends then depa_cols else []
  in
  let entries = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      List.iter
        (fun (label, make) ->
          let m = Runner.time_serial ~repeats mk (Runner.Full make) in
          entries :=
            Bench_schema.of_measurement ~workload:w.Workload.name
              ~detector:label ~repeats m
            :: !entries;
          Tablefmt.add_row t
            [
              w.Workload.name;
              label;
              Printf.sprintf "%.3f" m.Runner.median;
              (if repeats < 2 then "-" else Printf.sprintf "%.4f" m.Runner.mad);
              Tablefmt.cell_int_compact m.Runner.queries;
              string_of_int (List.length m.Runner.metrics);
            ])
        cols;
      Tablefmt.add_separator t)
    Registry.all;
  if not prof_was_on then Sfr_obs.Prof.disable ();
  let result =
    {
      Bench_schema.version = Bench_schema.version;
      env =
        Bench_schema.capture_env
          ~scale:(Format.asprintf "%a" Workload.pp_scale scale);
      entries = List.rev !entries;
    }
  in
  Bench_schema.write out result;
  Tablefmt.print t;
  Format.printf "wrote %s (schema v%d)@." out Bench_schema.version

(* ---------------------------------------------------------------- *)
(* Domain scaling: measured multicore runs                            *)
(* ---------------------------------------------------------------- *)

(* Unlike [sweep] (simulated times from a recorded dag), these are real
   runs on the work-stealing executor — the numbers that move when the
   synchronization hot paths change: stripe-lock contention, CAS retries
   under the lock-free history, cp-container growth. *)
let scaling ~om_backends ~scale ~repeats ~domains ~out =
  Format.printf
    "Domain scaling: measured wall-clock per domain count (work-stealing \
     executor, %d hardware core(s) available), full SF-Order detection \
     plus reach-only, per OM backend, with contention counters -> %s@."
    (Domain.recommended_domain_count ())
    out;
  let t =
    Tablefmt.create ~title:""
      [
        ("bench", Tablefmt.Left);
        ("config", Tablefmt.Left);
        ("domains", Tablefmt.Right);
        ("median (s)", Tablefmt.Right);
        ("speedup", Tablefmt.Right);
        ("lock cont.", Tablefmt.Right);
        ("cas retry", Tablefmt.Right);
        ("om relabels", Tablefmt.Right);
        ("depa spills", Tablefmt.Right);
        ("table words", Tablefmt.Right);
      ]
  in
  let metric m name =
    match List.assoc_opt name m.Runner.metrics with Some v -> v | None -> 0
  in
  let entries = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let mk = instance_maker w scale in
      List.iter
        (fun (config, mode) ->
          let base_median = ref None in
          List.iter
            (fun d ->
              let m = Runner.time_parallel ~repeats ~domains:d mk mode in
              let speedup =
                match !base_median with
                | None ->
                    base_median := Some m.Runner.median;
                    1.0
                | Some t1 -> t1 /. m.Runner.median
              in
              entries :=
                Bench_schema.of_measurement ~workload:w.Workload.name
                  ~detector:(Printf.sprintf "sf-order-%s@d%d" config d)
                  ~repeats m
                :: !entries;
              Tablefmt.add_row t
                [
                  w.Workload.name;
                  config;
                  string_of_int d;
                  Printf.sprintf "%.4f" m.Runner.median;
                  Printf.sprintf "%.2fx" speedup;
                  Tablefmt.cell_int_compact (metric m "history.lock.contended");
                  Tablefmt.cell_int_compact (metric m "history.cas.retry");
                  Tablefmt.cell_int_compact (metric m "om.relabels");
                  Tablefmt.cell_int_compact (metric m "om.depa.heap_spills");
                  Tablefmt.cell_int_compact (metric m "reach.table.alloc_words");
                ])
            domains)
        (List.concat_map
           (fun b ->
             (* list-backend keys keep their historical spelling so the
                committed baseline's perfdiff series are unbroken *)
             let tag =
               match b with `List -> "" | `Depa -> "+depa"
             in
             [
               ("reach" ^ tag, Runner.Reach (fun () -> Sf_order.make ~om:b ()));
               ("full" ^ tag, Runner.Full (fun () -> Sf_order.make ~om:b ()));
             ])
           om_backends);
      Tablefmt.add_separator t)
    Registry.all;
  let result =
    {
      Bench_schema.version = Bench_schema.version;
      env =
        Bench_schema.capture_env
          ~scale:(Format.asprintf "%a" Workload.pp_scale scale);
      entries = List.rev !entries;
    }
  in
  Bench_schema.write out result;
  Tablefmt.print t;
  Format.printf "wrote %s (schema v%d)@." out Bench_schema.version

let complexity () =
  Format.printf
    "Complexity validation (Lemma 3.12): reachability construction is \
     O(T1 + k^2). Superlinear growth: words/k grows with k while words/k^2 \
     approaches a constant (the per-table O(k) terms wash out).@.";
  let module P = Sfr_runtime.Program in
  let module Serial_exec = Sfr_runtime.Serial_exec in
  (* k futures in a get chain: gp(f_i) accumulates i bits *)
  let get_chain k () =
    let prev = ref None in
    for _ = 1 to k do
      let p = !prev in
      let h =
        P.create (fun () ->
            (match p with Some p -> ignore (P.get p) | None -> ());
            P.work 1;
            0)
      in
      prev := Some h
    done;
    match !prev with Some h -> ignore (P.get h) | None -> ()
  in
  (* k nested creates: cp(f_i) accumulates i bits *)
  let rec create_nest k () =
    if k = 0 then 0
    else begin
      let h = P.create (create_nest (k - 1)) in
      P.work 1;
      P.get h
    end
  in
  let t =
    Tablefmt.create ~title:""
      [
        ("program", Tablefmt.Left);
        ("k", Tablefmt.Right);
        ("reach T1 (s)", Tablefmt.Right);
        ("table words", Tablefmt.Right);
        ("words / k", Tablefmt.Right);
        ("words / k^2", Tablefmt.Right);
        ("queries", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (name, prog_of_k) ->
      List.iter
        (fun k ->
          let det = Sf_order.make () in
          let cb = Runner.reach_only det.Detector.callbacks in
          let (), dt =
            Sfr_support.Stats.time (fun () ->
                Sfr_runtime.Serial_exec.run cb ~root:det.Detector.root
                  (prog_of_k k)
                |> fst)
          in
          let words = det.Detector.reach_table_words () in
          Tablefmt.add_row t
            [
              name;
              string_of_int k;
              Printf.sprintf "%.4f" dt;
              string_of_int words;
              Printf.sprintf "%.1f" (float_of_int words /. float_of_int k);
              Printf.sprintf "%.4f" (float_of_int words /. float_of_int (k * k));
              string_of_int (det.Detector.queries ());
            ])
        [ 128; 256; 512; 1024 ];
      Tablefmt.add_separator t)
    [
      ("get chain (gp growth)", fun k () -> get_chain k ());
      ("create nest (cp growth)", fun k () -> ignore (create_nest k ()));
    ];
  Tablefmt.print t
