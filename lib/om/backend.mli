(** The order-maintenance backend registry.

    Two implementations of {!Om_intf.S} exist: the two-level
    Dietz–Sleator / Bender list ({!Om}, [`List]) and DePa fork-path
    labels ({!Depa}, [`Depa]). This module names them for CLI flags and
    bench matrices, and holds the process-wide default backend that
    {!Sfr_reach.Sp_order.create} uses when its caller doesn't pass one —
    which is how [--om depa] reaches detectors constructed through the
    zero-argument registry [make] functions. *)

type name = [ `List | `Depa ]

val all : name list
(** Every backend, in bench/report order ([`List] first). *)

val to_string : name -> string
(** ["list"] / ["depa"] — the CLI and bench-row spellings. *)

val of_string : string -> name option

val get : name -> (module Om_intf.S)

val default : unit -> name
(** The process-wide default backend ([`List] at startup). *)

val set_default : name -> unit
(** Set the process-wide default. Call before constructing detectors;
    lists already created keep the backend they were built with. *)
