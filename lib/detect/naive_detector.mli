(** Ground-truth race detection by exhaustive offline analysis.

    Consumes a recorded dag and access log (from {!Sfr_runtime.Trace}
    with [~log_accesses:true]) and decides, per location, whether any
    conflicting pair of accesses is logically parallel — using all-pairs
    dag reachability. O(V²/w + A² per location): the oracle the on-the-fly
    detectors are differential-tested against, not a practical detector. *)

type verdict = {
  racy_locations : int list;  (** sorted, distinct *)
  pairs_checked : int;
  races_found : int;  (** total racing pairs (not deduplicated) *)
}

val analyze : Sfr_dag.Dag.t -> Sfr_runtime.Trace.access list -> verdict
