(** Vector-clock determinacy detector — the async-finish algorithm of
    Kumar & Agrawal (arXiv 2112.04352) mapped onto structured futures.

    Each task owns a slot in a grow-on-demand integer clock; every
    state-producing event publishes a fresh immutable snapshot with the
    owner's component bumped, so [Precedes] is exact dag reachability:

    - {b spawn/create} (async): the child inherits the parent's snapshot
      plus its own slot at its first tick; the continuation self-ticks.
    - {b sync} (finish): pointwise max over the joined children's final
      snapshots, then a self-tick. The children's slots are recycled
      through a pool that travels with the strand state — reuse is
      happens-after the freeing sync by construction, and a reused slot
      resumes past its previous incarnation's ticks, so old and new
      incarnations can never be conflated (the paper's task-id-reuse
      idea, restated for this event vocabulary).
    - {b get}: join with the put node's snapshot, then self-tick. Future
      slots are never recycled, since a get can happen arbitrarily late.
    - [created_firsts] at a sync fake-join in the pseudo-SP-dag only and
      carry no happens-before edge; the clocks ignore them.

    Against the O(1)-amortized-query SF-Order this is the classic
    space/query trade: O(live tasks + futures) words per strand snapshot
    and O(1) queries with no order-maintenance structure at all — which
    makes it an independent, far-cheaper-than-naive oracle for
    differential tests and the chaos shrinker at large DAG sizes.

    Race checks share {!Access_history} (Keep_all policy) and {!Race}
    attribution with SF-Order; under a serial execution the reports,
    query totals, and reader high-water marks are byte-identical to
    [Sf_order.make]'s. Counters: [vc.query.same_task] / [vc.query.clock]
    partition [queries ()]; [vc.clock.alloc_words], [vc.slots.fresh],
    [vc.slots.reused] track clock churn. *)

val make :
  ?history:[ `Mutex | `Unsynchronized | `Lockfree ] ->
  ?fast:bool ->
  unit ->
  Detector.t
(** [history] and [fast] configure the shared access history exactly as
    in {!Sf_order.make}. Parallel-capable ([supports_parallel = true]). *)

val strand_task : Sfr_runtime.Events.state -> int
(** The clock slot owned by this strand's task (tests). *)
