type access = { node : Dag.node; loc : int; is_write : bool }

let kind_tag = function
  | Dag.Root -> "root"
  | Dag.Spawned -> "spawned"
  | Dag.Created -> "created"
  | Dag.Cont -> "cont"
  | Dag.Sync -> "sync"
  | Dag.Get -> "get"

let save oc ?(accesses = []) t =
  let pr fmt = Printf.fprintf oc fmt in
  pr "sfdag 1\n";
  pr "counts %d %d\n" (Dag.n_nodes t) (Dag.n_futures t);
  for v = 0 to Dag.n_nodes t - 1 do
    pr "node %d %d %s %d\n" v (Dag.future_of t v) (kind_tag (Dag.kind_of t v))
      (Dag.cost_of t v);
    (* preds in stored (prepend) order so the loader can replay exactly *)
    List.iter
      (fun (ek, u) ->
        let tag =
          match ek with Dag.Sp -> "sp" | Dag.Create_edge -> "cr" | Dag.Get_edge -> "gt"
        in
        pr "pred %d %s %d\n" v tag u)
      (Dag.preds t v)
  done;
  for f = 0 to Dag.n_futures t - 1 do
    pr "future %d last %d\n" f
      (match Dag.last_of t f with Some l -> l | None -> -1)
  done;
  List.iter (fun (g, s) -> pr "fake %d %d\n" g s) (Dag.fake_joins t);
  List.iter
    (fun a -> pr "access %d %d %c\n" a.node a.loc (if a.is_write then 'w' else 'r'))
    accesses

(* -- loading: parse, then replay the builder events ------------------- *)

type raw_node = {
  rfuture : int;
  rkind : string;
  rcost : int;
  mutable rpreds : (string * int) list; (* stored order *)
}

let load ic =
  let fail fmt = Printf.ksprintf failwith fmt in
  let line () = try Some (input_line ic) with End_of_file -> None in
  (match line () with
  | Some "sfdag 1" -> ()
  | Some l -> fail "Dag_io.load: bad magic %S" l
  | None -> fail "Dag_io.load: empty input");
  let n_nodes, n_futures =
    match line () with
    | Some l -> Scanf.sscanf l "counts %d %d" (fun a b -> (a, b))
    | None -> fail "Dag_io.load: missing counts"
  in
  let raw =
    Array.make n_nodes { rfuture = 0; rkind = "root"; rcost = 0; rpreds = [] }
  in
  let lasts = Array.make n_futures (-1) in
  let fakes = ref [] in
  let accesses = ref [] in
  let rec read () =
    match line () with
    | None -> ()
    | Some l ->
        (match String.split_on_char ' ' l with
        | [ "node"; id; fut; kind; cost ] ->
            raw.(int_of_string id) <-
              {
                rfuture = int_of_string fut;
                rkind = kind;
                rcost = int_of_string cost;
                rpreds = [];
              }
        | [ "pred"; v; tag; u ] ->
            let v = int_of_string v in
            raw.(v) <- { (raw.(v)) with rpreds = raw.(v).rpreds @ [ (tag, int_of_string u) ] }
        | [ "future"; f; "last"; l ] -> lasts.(int_of_string f) <- int_of_string l
        | [ "fake"; g; s ] -> fakes := (int_of_string g, int_of_string s) :: !fakes
        | [ "access"; node; loc; rw ] ->
            accesses :=
              {
                node = int_of_string node;
                loc = int_of_string loc;
                is_write = rw = "w";
              }
              :: !accesses
        | _ -> fail "Dag_io.load: bad line %S" l);
        read ()
  in
  read ();
  (* replay *)
  let t, root = Dag.create () in
  if n_nodes > 0 && raw.(0).rkind <> "root" then fail "Dag_io.load: node 0 not root";
  ignore root;
  (* fake joins grouped by sync node, in recorded (reversed-prepend) order *)
  let fakes_by_sync = Hashtbl.create 16 in
  List.iter
    (fun (g, s) ->
      Hashtbl.replace fakes_by_sync s
        (g :: Option.value ~default:[] (Hashtbl.find_opt fakes_by_sync s)))
    !fakes;
  let put_done = Array.make n_futures false in
  let emit_put f =
    if not put_done.(f) then begin
      put_done.(f) <- true;
      if lasts.(f) < 0 then fail "Dag_io.load: future %d gotten but has no last" f;
      Dag.put t ~cur:lasts.(f)
    end
  in
  let v = ref 1 in
  while !v < n_nodes do
    let node = raw.(!v) in
    (match node.rkind with
    | "spawned" | "created" -> (
        (* this event created nodes !v (child) and !v+1 (continuation) *)
        let cur =
          match node.rpreds with
          | [ (_, u) ] -> u
          | _ -> fail "Dag_io.load: child node %d must have one pred" !v
        in
        if node.rkind = "spawned" then begin
          let child, cont = Dag.spawn t ~cur in
          if child <> !v || cont <> !v + 1 then fail "Dag_io.load: replay drift"
        end
        else begin
          let child, cont, _fid = Dag.create_future t ~cur in
          if child <> !v || cont <> !v + 1 then fail "Dag_io.load: replay drift"
        end;
        incr v (* skip the continuation node: same event *))
    | "sync" ->
        (* preds stored as [s_n; ...; s_1; cur] *)
        let cur, spawned =
          match List.rev node.rpreds with
          | (_, cur) :: rest -> (cur, List.map snd rest)
          | [] -> fail "Dag_io.load: sync node %d has no preds" !v
        in
        let created =
          List.rev (Option.value ~default:[] (Hashtbl.find_opt fakes_by_sync !v))
        in
        let s = Dag.sync t ~cur ~spawned_lasts:spawned ~created in
        if s <> !v then fail "Dag_io.load: replay drift at sync"
    | "get" ->
        let cur, last =
          match node.rpreds with
          | [ ("gt", last); ("sp", cur) ] | [ ("sp", cur); ("gt", last) ] ->
              (cur, last)
          | _ -> fail "Dag_io.load: get node %d has bad preds" !v
        in
        let f = raw.(last).rfuture in
        emit_put f;
        let g = Dag.get t ~cur ~future:f in
        if g <> !v then fail "Dag_io.load: replay drift at get"
    | k -> fail "Dag_io.load: unexpected kind %s for node %d" k !v);
    incr v
  done;
  (* costs, remaining puts *)
  for i = 0 to n_nodes - 1 do
    if raw.(i).rcost > 0 then Dag.add_cost t i raw.(i).rcost
  done;
  for f = 0 to n_futures - 1 do
    if lasts.(f) >= 0 then emit_put f
  done;
  (t, List.rev !accesses)

let save_file path ?accesses t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save oc ?accesses t)

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)
