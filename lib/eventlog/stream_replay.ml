module Events = Sfr_runtime.Events
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Access_history = Sfr_detect.Access_history
module Race = Sfr_detect.Race
module Detect_error = Sfr_detect.Detect_error
module Metrics = Sfr_obs.Metrics

let m_events = Metrics.counter "eventlog.stream.events"
let m_steps = Metrics.counter "eventlog.stream.steps"
let m_shard_checks = Metrics.counter "eventlog.stream.shard_checks"

(* Hot-path attribution for the serve layer's ingest: one [step] is the
   analysis work a drained chunk pays for. *)
let t_step = Sfr_obs.Prof.timer "prof.eventlog.stream_step.ns"

type status =
  | Complete
  | Torn of Log_format.error
  | Inconsistent of Replay.error
  | Detector_failed of string

let status_to_string = function
  | Complete -> "complete"
  | Torn e -> Printf.sprintf "torn stream: %s" (Log_format.error_to_string e)
  | Inconsistent e -> Replay.error_to_string e
  | Detector_failed msg -> Printf.sprintf "detector failed: %s" msg

type verdict = {
  status : status;
  reports : Race.report list;
  racy_locations : int list;
  events_applied : int;
  bytes_analyzed : int;
  queries : int;
}

(* One worker stream's undecoded-but-arrived events: a FIFO whose head
   is the only candidate for application (stream order is program order
   on that worker). *)
type wstream = { q : Log_format.event Queue.t; mutable applied : int }

type access = { state : Events.state; loc : int; is_write : bool }

type shard_state = {
  n : int;
  histories : Events.state Access_history.t array;
  races : Race.t array;
  pending : access list ref array;  (** newest-first; reversed at check *)
  mutable n_pending : int;
  batch : int;
  precedes : Events.state -> Events.state -> bool;
}

type t = {
  reader : Stream_reader.t;
  det : Detector.t;
  shards : shard_state option;  (** [None] = inline checking *)
  mutable streams : wstream array;
  mutable states : Events.state option array;
  mutable applied : int;
  mutable failed : status option;  (** first latched failure, sticky *)
  mutable final : verdict option;  (** close is idempotent *)
}

let create ?(shards = 1) ?(access_batch = 8192) () =
  if shards < 1 then invalid_arg "Stream_replay.create: shards must be >= 1";
  let det, precedes = Sf_order.make_with_precedes () in
  let shard_state =
    if shards = 1 then None
    else
      Some
        {
          n = shards;
          histories =
            Array.init shards (fun _ ->
                Access_history.create ~sync:`Unsynchronized
                  Access_history.Keep_all);
          races = Array.init shards (fun _ -> Race.create ());
          pending = Array.init shards (fun _ -> ref []);
          n_pending = 0;
          batch = max 1 access_batch;
          precedes;
        }
  in
  {
    reader = Stream_reader.create ();
    det;
    shards = shard_state;
    streams = [||];
    states = Array.make 64 None;
    applied = 0;
    failed = None;
    final = None;
  }

let events_applied t = t.applied
let bytes_analyzed t = Stream_reader.consumed t.reader

let feed t bytes ~pos ~len =
  if t.failed = None && t.final = None then
    Stream_reader.feed t.reader bytes ~pos ~len

let ensure_stream t w =
  if w >= Array.length t.streams then begin
    let a =
      Array.init
        (max (w + 1) (2 * Array.length t.streams))
        (fun i ->
          if i < Array.length t.streams then t.streams.(i)
          else { q = Queue.create (); applied = 0 })
    in
    t.streams <- a
  end

let ensure_state t id =
  if id >= Array.length t.states then begin
    let a =
      Array.make (max (id + 1) (2 * Array.length t.states)) None
    in
    Array.blit t.states 0 a 0 (Array.length t.states);
    t.states <- a
  end

let lookup t id =
  match t.states.(id) with
  | Some s -> s
  | None -> assert false (* readiness-checked before apply *)

exception Redefined_exn of int

let define t id s =
  ensure_state t id;
  match t.states.(id) with
  | None -> t.states.(id) <- Some s
  | Some _ -> raise (Redefined_exn id)

let ready t ev =
  List.for_all
    (fun id -> id < Array.length t.states && t.states.(id) <> None)
    (Log_format.inputs ev)

(* -- sharded access checking ------------------------------------------- *)

let check_shard_batch sh s (accesses : access array) =
  let history = sh.histories.(s) in
  let races = sh.races.(s) in
  let precedes = sh.precedes in
  let future_of = Sf_order.strand_future in
  Array.iter
    (fun { state; loc; is_write } ->
      if is_write then
        Access_history.on_write history ~loc ~accessor:state
          ~check:(fun ~prev ~prev_is_writer ->
            if not (precedes prev state) then
              Race.report races ~loc
                ~kind:
                  (if prev_is_writer then Race.Write_write else Race.Read_write)
                ~prev_future:(future_of prev) ~cur_future:(future_of state))
      else
        Access_history.on_read history ~loc ~accessor:state
          ~check_writer:(fun w ->
            if not (precedes w state) then
              Race.report races ~loc ~kind:Race.Write_read
                ~prev_future:(future_of w) ~cur_future:(future_of state)))
    accesses

(* Drain every pending per-shard batch, shard 0 on the calling domain
   and the rest on freshly spawned ones — the streaming counterpart of
   Shard_replay's phase 2. Runs while the structural merge is paused,
   so the frozen-prefix reachability structures are read-only. *)
let flush_shards sh =
  if sh.n_pending > 0 then begin
    Metrics.incr m_shard_checks;
    let batches =
      Array.map
        (fun p ->
          let b = Array.of_list (List.rev !p) in
          p := [];
          b)
        sh.pending
    in
    sh.n_pending <- 0;
    let work = ref [] in
    for s = sh.n - 1 downto 1 do
      if Array.length batches.(s) > 0 then
        work := (s, Domain.spawn (fun () -> check_shard_batch sh s batches.(s))) :: !work
    done;
    if Array.length batches.(0) > 0 then check_shard_batch sh 0 batches.(0);
    List.iter (fun (_, d) -> Domain.join d) !work
  end

(* -- the merge loop ----------------------------------------------------- *)

let latch t status = if t.failed = None then t.failed <- Some status

let apply_event t ev =
  match t.shards with
  | Some sh -> (
      match (ev : Log_format.event) with
      | Read { cur; loc } | Write { cur; loc } ->
          let is_write =
            match ev with Log_format.Write _ -> true | _ -> false
          in
          let s = Shard_replay.shard_of ~loc ~shards:sh.n in
          sh.pending.(s) := { state = lookup t cur; loc; is_write } :: !(sh.pending.(s));
          sh.n_pending <- sh.n_pending + 1;
          if sh.n_pending >= sh.batch then flush_shards sh
      | _ ->
          Replay.apply_callbacks t.det.Detector.callbacks
            ~lookup:(lookup t)
            ~define:(fun id s -> define t id s)
            ev)
  | None ->
      Replay.apply_callbacks t.det.Detector.callbacks
        ~lookup:(lookup t)
        ~define:(fun id s -> define t id s)
        ev

(* Sweep the streams, applying every ready head, until a full sweep makes
   no progress (then: wait for more input; whether that's a deadlock is
   only decidable at close). *)
let merge t =
  let progress = ref true in
  while !progress && t.failed = None do
    progress := false;
    Array.iteri
      (fun w st ->
        let continue_ = ref true in
        while !continue_ && t.failed = None && not (Queue.is_empty st.q) do
          let ev = Queue.peek st.q in
          if ready t ev then begin
            (match apply_event t ev with
            | () ->
                ignore (Queue.pop st.q);
                st.applied <- st.applied + 1;
                t.applied <- t.applied + 1;
                Metrics.incr m_events;
                progress := true
            | exception Redefined_exn id ->
                latch t
                  (Inconsistent
                     (Replay.Redefined { worker = w; index = st.applied; id }))
            | exception Detect_error.Error e ->
                latch t (Detector_failed (Detect_error.to_string e))
            | exception exn ->
                latch t (Detector_failed (Printexc.to_string exn)))
          end
          else continue_ := false
        done)
      t.streams
  done

let step t =
  if t.failed = None && t.final = None then begin
    Metrics.incr m_steps;
    let pt = Sfr_obs.Prof.start () in
    (match Stream_reader.drain t.reader with
    | Ok evs ->
        List.iter
          (fun (w, ev) ->
            ensure_stream t w;
            Queue.push ev t.streams.(w).q)
          evs
    | Error e -> latch t (Torn e));
    if t.failed = None then begin
      (* root state exists before any event *)
      if t.states.(0) = None then t.states.(0) <- Some t.det.Detector.root;
      merge t
    end;
    Sfr_obs.Prof.stop t_step pt
  end

(* The first blocked stream head and the state it waits on — mirrors
   Replay.drive's stuck diagnostics. *)
let find_blocked t =
  let blocked = ref None in
  Array.iteri
    (fun w st ->
      if !blocked = None && not (Queue.is_empty st.q) then
        let ev = Queue.peek st.q in
        match
          List.find_opt
            (fun id -> id >= Array.length t.states || t.states.(id) = None)
            (Log_format.inputs ev)
        with
        | Some missing -> blocked := Some (w, st.applied, missing)
        | None -> ())
    t.streams;
  !blocked

let undrained t =
  Array.exists (fun st -> not (Queue.is_empty st.q)) t.streams

let make_verdict t status =
  (match t.shards with Some sh -> flush_shards sh | None -> ());
  let reports =
    match t.shards with
    | None -> Race.reports t.det.Detector.races
    | Some sh ->
        Array.to_list sh.races
        |> List.concat_map Race.reports
        |> List.sort (fun (a : Race.report) b -> compare a.Race.loc b.Race.loc)
  in
  {
    status;
    reports;
    racy_locations = List.map (fun (r : Race.report) -> r.Race.loc) reports;
    events_applied = t.applied;
    bytes_analyzed = Stream_reader.consumed t.reader;
    queries = t.det.Detector.queries ();
  }

let partial t =
  match t.final with
  | Some v -> v
  | None ->
      let status =
        match t.failed with
        | Some s -> s
        | None -> (
            match Stream_reader.finished t.reader with
            | Some _ when not (undrained t) -> Complete
            | _ ->
                Torn
                  (Log_format.Truncated
                     {
                       offset = Stream_reader.consumed t.reader;
                       while_ = "stream still open";
                     }))
      in
      make_verdict t status

let close t ~abrupt =
  match t.final with
  | Some v -> v
  | None ->
      step t;
      let status =
        match t.failed with
        | Some s -> s
        | None -> (
            match Stream_reader.finish t.reader with
            | Ok _ when not (undrained t) -> Complete
            | Ok _ -> (
                match find_blocked t with
                | Some (worker, index, missing) ->
                    Inconsistent
                      (Replay.Stuck
                         { replayed = t.applied; worker; index; missing })
                | None ->
                    Inconsistent
                      (Replay.Stuck
                         { replayed = t.applied; worker = 0; index = 0; missing = 0 }))
            | Error e ->
                (* abrupt or not: an incomplete stream is torn; [abrupt]
                   only distinguishes how the transport ended, the
                   analyzed-prefix verdict is the same *)
                ignore abrupt;
                Torn e)
      in
      let v = make_verdict t status in
      t.final <- Some v;
      v
