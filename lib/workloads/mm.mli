(** Divide-and-conquer matrix multiplication (paper benchmark [mm];
    N=2048, B=64 at paper scale).

    [C = A·B] by quadrant recursion: the four first-half products
    ([C11 += A11·B11], …) run as structured futures, are gotten, and the
    four second-half products run as spawns joined by a sync — four
    futures per internal recursion node, which at paper scale gives
    [4·(1 + 8 + 8² + 8³ + 8⁴) = 18724] futures, the exact Figure 3 count.
    Integer matrices, so [verify] compares exactly against a serial
    reference. [inject_race] skips the root-level gets, making the
    second-half updates race the first-half futures. *)

val workload : Workload.t
