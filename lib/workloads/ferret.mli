(** Ferret content-based similarity search (paper benchmark [ferret],
    from PARSEC; [simlarge] at paper scale).

    The image database is synthetic (DESIGN.md §5.6): deterministic
    feature vectors with an LSH-style bucket index. Each query runs the
    original's four-stage pipeline — segment → extract → index → rank —
    with one structured future per stage instance chained by gets
    (4 stages × 64 queries = 256 futures, the Figure 3 count, with
    ~5 dag nodes per query). The root gets every rank handle and
    aggregates the global best matches serially.

    [inject_race] makes rank stages write a shared best-match cell
    directly instead, racing across queries. *)

val workload : Workload.t
