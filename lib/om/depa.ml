(* DePa-style order maintenance (Westrick/Wang/Acar, arXiv 2204.14168):
   immutable fork-path labels instead of relabeled list positions.

   A label is a dyadic rational split into an integer part and a bit path
   (the fork path): value = ipart + 0.path·1 in binary, where the
   trailing 1 is the path's sentinel. The padded stream [path·1·0^ω] is
   stored left-aligned in 62-bit chunks: the first chunk packs into one
   immediate word ([w0]); longer paths spill the continuation chunks to a
   heap array ([ext], empty in the common case). Left-alignment makes
   plain integer comparison of chunks the lexicographic (= numeric)
   comparison of streams, so [compare_items] is ipart, then [w0], then a
   chunk walk of the spill arrays.

   Insertion picks a fresh label strictly between the anchor and its
   successor:
   - after the tail: bump the integer part — O(1) bits, so serial append
     chains (Sp_order [step], English-order spawn runs) never grow paths;
   - between integer parts >= 2 apart: the midpoint integer, empty path;
   - otherwise: extend the smaller label's bit path by the shortest
     suffix that stays below the successor (at most the anchor's path
     length + 2 bits) — path length tracks the nesting depth of the
     insertion pattern, the fork depth of DePa's analysis.

   Why there is no relabel window: labels are immutable once assigned, so
   the relative order of two items can never be observed mid-change.
   Queries read labels with no lock, no seqlock version, and no retry
   loop; the per-list mutex serializes mutations only, matching the list
   backend's discipline. The cost moves from relabel storms to path
   length (om.depa.path_bits) and spill allocation (om.depa.heap_spills),
   which the bench A/B surfaces next to om.relabels. *)

module Metrics = Sfr_obs.Metrics
module Chaos = Sfr_chaos.Chaos

(* The DePa analogues of the list backend's relabel counters: the high
   water of significant path bits per label, and the inserts whose label
   overflowed the packed word into a heap path. *)
let m_path_bits = Metrics.counter ~kind:`Max "om.depa.path_bits"
let m_heap_spills = Metrics.counter "om.depa.heap_spills"

let chunk_bits = 62
let top_bit = 1 lsl (chunk_bits - 1)

type item = {
  ipart : int;  (* integer part of the label *)
  w0 : int;  (* first 62 stream bits, left-aligned, in [0, 2^62) *)
  ext : int array;  (* spilled continuation chunks; [||] in the common case *)
  mutable next : item;  (* circular list threading; guarded by t.lock *)
}

type t = {
  base : item;
  mutable nitems : int;
  mutable ext_words : int;  (* live spill words incl. array headers *)
  lock : Mutex.t;
}

let create () =
  let rec base = { ipart = 0; w0 = top_bit; ext = [||]; next = base } in
  ({ base; nitems = 1; ext_words = 0; lock = Mutex.create () }, base)

(* -- bit-stream helpers ------------------------------------------------ *)

(* chunk c of the padded stream; 0 past the label's support *)
let[@inline] chunk x c =
  if c = 0 then x.w0
  else if c - 1 < Array.length x.ext then x.ext.(c - 1)
  else 0

let[@inline] get_bit x k =
  (chunk x (k / chunk_bits) lsr (chunk_bits - 1 - (k mod chunk_bits))) land 1

let trailing_zeros w =
  let rec go w acc = if w land 1 = 1 then acc else go (w lsr 1) (acc + 1) in
  go w 0

(* position of the sentinel (last 1 bit) of x's stream; every label's
   stream is nonzero and spill arrays keep their last chunk nonzero *)
let last_one x =
  let nx = Array.length x.ext in
  if nx > 0 then
    ((nx * chunk_bits) + chunk_bits - 1) - trailing_zeros x.ext.(nx - 1)
  else chunk_bits - 1 - trailing_zeros x.w0

(* a bit buffer under construction: chunks indexed from 0 *)
let set_bit buf k =
  let c = k / chunk_bits and o = k mod chunk_bits in
  buf.(c) <- buf.(c) lor (1 lsl (chunk_bits - 1 - o))

(* first bit position where the streams of a and b differ; chunk-wise so
   deep-nesting chains cost O(path/62) per insert, not O(path) *)
let divergence a b =
  let rec go c =
    let wa = chunk a c and wb = chunk b c in
    if wa = wb then go (c + 1)
    else begin
      let x = wa lxor wb in
      let rec msb o =
        if (x lsr (chunk_bits - 1 - o)) land 1 = 1 then o else msb (o + 1)
      in
      (c * chunk_bits) + msb 0
    end
  in
  go 0

(* a's stream bits strictly before position j, then a sentinel 1 at j —
   requires a's bit j to be 0, which makes the result > a. Chunk-wise
   copy, then mask off a's bits at and past j. Returns (buffer, bits). *)
let extend a j =
  let jc = j / chunk_bits in
  let buf = Array.make (jc + 1) 0 in
  for c = 0 to jc do
    buf.(c) <- chunk a c
  done;
  let oj = j mod chunk_bits in
  buf.(jc) <- buf.(jc) land lnot ((1 lsl (chunk_bits - 1 - oj)) - 1);
  set_bit buf j;
  (buf, j + 1)

(* a's path extended by one 1 bit past its sentinel: strictly above a,
   still below 1.0 — used when the successor's integer part is exactly
   one higher *)
let frac_above a = extend a (last_one a + 1)

(* Shortest-suffix dyadic strictly between adjacent fracs a < b (equal
   integer parts). At the first divergent bit d, a has 0 and b has 1:
   - if b's stream has another 1 past d, terminating the result right
     there ([prefix·1]) already sits strictly below b;
   - otherwise b = prefix·1·0^ω exactly, so keep a's 0 at d, copy a's
     following 1-run, and terminate at a's first 0 after it (the result
     then beats a at that position and loses to b back at d).
   Either way the result is at most max(|a|, d) + 2 bits. *)
let frac_between a b =
  let d = divergence a b in
  if last_one b > d then extend a d
  else
    let rec first_zero k = if get_bit a k = 0 then k else first_zero (k + 1) in
    extend a (first_zero (d + 1))

(* -- insertion --------------------------------------------------------- *)

let mk t ~ipart (buf, nbits) next =
  let nwords = (nbits + chunk_bits - 1) / chunk_bits in
  let ext = if nwords <= 1 then [||] else Array.sub buf 1 (nwords - 1) in
  if Array.length ext > 0 then begin
    Metrics.incr m_heap_spills;
    t.ext_words <- t.ext_words + Array.length ext + 1;
    (* the label-extension window — the DePa analogue of the list
       backend's Relabel chaos site (perturb-only: t.lock is held) *)
    Chaos.point Chaos.Label_extend
  end;
  Metrics.add m_path_bits nbits;
  { ipart; w0 = buf.(0); ext; next }

let insert_after t x =
  Mutex.lock t.lock;
  let y = x.next in
  let fresh =
    if y == t.base then begin
      (* x is the tail: O(1)-bit append via the integer part *)
      Metrics.add m_path_bits 1;
      { ipart = x.ipart + 1; w0 = top_bit; ext = [||]; next = y }
    end
    else if y.ipart - x.ipart >= 2 then begin
      Metrics.add m_path_bits 1;
      {
        ipart = x.ipart + ((y.ipart - x.ipart) / 2);
        w0 = top_bit;
        ext = [||];
        next = y;
      }
    end
    else if y.ipart > x.ipart then mk t ~ipart:x.ipart (frac_above x) y
    else mk t ~ipart:x.ipart (frac_between x y) y
  in
  x.next <- fresh;
  t.nitems <- t.nitems + 1;
  Mutex.unlock t.lock;
  fresh

(* -- queries ----------------------------------------------------------- *)

(* Labels are immutable: no seqlock, no retry, no fence beyond the plain
   loads — this is the relabel-window elimination the backend exists for. *)
let compare_items _t x y =
  if x == y then 0
  else if x.ipart <> y.ipart then Int.compare x.ipart y.ipart
  else if x.w0 <> y.w0 then Int.compare x.w0 y.w0
  else begin
    let nx = Array.length x.ext and ny = Array.length y.ext in
    let n = if nx > ny then nx else ny in
    let rec go i =
      if i = n then 0
      else
        let a = if i < nx then x.ext.(i) else 0
        and b = if i < ny then y.ext.(i) else 0 in
        if a <> b then Int.compare a b else go (i + 1)
    in
    go 0
  end

let precedes t x y = compare_items t x y < 0
let size t = t.nitems

(* Backend-honest accounting: item records (header + 4 fields) plus the
   live spill arrays plus the list header. *)
let words t = (5 * t.nitems) + t.ext_words + 6

(* -- test hooks -------------------------------------------------------- *)

let to_list t =
  let rec walk (x : item) acc =
    let acc = x :: acc in
    if x.next == t.base then List.rev acc else walk x.next acc
  in
  walk t.base []

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let items = to_list t in
  if List.length items <> t.nitems then
    fail "nitems mismatch: %d vs %d" (List.length items) t.nitems;
  let spill = ref 0 in
  List.iter
    (fun x ->
      (* path labels well-formed: chunks in range, stream nonzero, spill
         arrays canonical (last chunk carries a bit of the path) *)
      if x.ipart < 0 then fail "negative ipart %d" x.ipart;
      if x.w0 < 0 || x.w0 lsr chunk_bits <> 0 then
        fail "w0 out of range: %d" x.w0;
      Array.iter
        (fun w ->
          if w < 0 || w lsr chunk_bits <> 0 then fail "ext chunk out of range: %d" w)
        x.ext;
      let n = Array.length x.ext in
      if n = 0 then begin
        if x.w0 = 0 then fail "empty path stream (no sentinel)"
      end
      else begin
        if x.ext.(n - 1) = 0 then fail "spill array not canonical (zero tail)";
        spill := !spill + n + 1
      end)
    items;
  if !spill <> t.ext_words then
    fail "ext_words mismatch: %d live vs %d accounted" !spill t.ext_words;
  let rec check_pairs = function
    | a :: (b :: _ as rest) ->
        if compare_items t a b >= 0 then
          fail "items not ascending: (%d,%d,+%d words) then (%d,%d,+%d words)"
            a.ipart a.w0 (Array.length a.ext) b.ipart b.w0
            (Array.length b.ext);
        check_pairs rest
    | [ _ ] | [] -> ()
  in
  check_pairs items
