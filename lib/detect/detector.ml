type t = {
  name : string;
  callbacks : Sfr_runtime.Events.callbacks;
  root : Sfr_runtime.Events.state;
  races : Race.t;
  queries : unit -> int;
  reach_words : unit -> int;
  reach_table_words : unit -> int;
  history_words : unit -> int;
  max_readers : unit -> int;
  metrics : unit -> (string * int) list;
  supports_parallel : bool;
}

let no_metrics () = []

(* The registry is process-global, so a per-instance view is a diff
   against the registration state when the detector was made. GC growth
   is diffed the same way (gc.* entries); Gc.quick_stat minor figures
   are per-domain on OCaml 5, so the attribution covers the domain that
   made and ran the detector — exact for the harness's serial runs. *)
let metrics_since_creation () =
  let base = Sfr_obs.Metrics.snapshot () in
  let gc_base = Sfr_obs.Prof.gc_snapshot () in
  fun () -> Sfr_obs.Metrics.since base @ Sfr_obs.Prof.gc_delta gc_base

let racy_locations t = Race.racy_locations t.races
