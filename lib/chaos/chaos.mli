(** Seeded fault injection for the runtime and the detectors.

    The parallel implementation (worker deques, access-history CAS/lock
    paths, OM relabel windows) is only exercised on the schedules the OS
    happens to produce. This module plants {!point} hooks at the
    scheduling-sensitive boundaries; when armed with a seed, a
    deterministic per-site policy decides at each arrival to do nothing,
    yield, busy-delay (widening race windows), or raise a synthetic
    {!Injected} fault — so schedule-dependent bugs become reproducible
    inputs instead of heisenbugs.

    {b Determinism.} A decision is a pure function of
    [(seed, site, arrival index)]: the k-th arrival at a site draws the
    same verdict on every run. Under the serial executor arrival orders
    are themselves deterministic, so the whole decision {!trace} is
    reproducible from the seed alone; under the parallel executor the
    per-site decision {e streams} are reproducible while their
    interleaving (and the winner of the shared fault budget) may vary.

    {b Cost.} Disarmed (the default), {!point} and {!force_steal} are one
    atomic flag load and a branch — the same discipline as
    {!Sfr_obs.Metrics.disable}, cheap enough to compile into hot paths
    unconditionally.

    Arming is process-global (one chaos campaign at a time), matching the
    one-run-at-a-time constraint of {!Sfr_runtime.Par_exec}. *)

type site =
  | Spawn  (** a spawn event is being processed *)
  | Create  (** a future-create event is being processed *)
  | Get  (** a get/touch event is being processed *)
  | Sync  (** a sync/join event is being processed *)
  | Steal  (** a worker stole a task (perturb-only site) *)
  | Lock_acquire  (** an access-history stripe lock / CAS publication *)
  | Relabel  (** an OM relabel window is open (perturb-only site) *)
  | Task  (** a scheduled task is about to run *)
  | Record  (** an event-log structural record is being appended *)
  | Log_flush  (** an event-log buffer is about to flush to the file *)
  | Wire
      (** a protocol frame is crossing a (loopback) transport — decided
          through {!wire_fault}, not {!point} *)
  | Label_extend
      (** a DePa OM label spilled its bit path to a heap array — the
          label-extension window, the {!Depa} backend's analogue of the
          list backend's {!Relabel} window (perturb-only site: it sits
          inside the per-list mutation lock) *)

val all_sites : site list
val site_name : site -> string

type action = Pass | Yield | Delay of int | Fault | Force_steal

val action_name : action -> string

exception Injected of { site : site; seq : int }
(** The synthetic fault. [seq] is the arrival index at [site], so a crash
    report names the exact replayable decision that fired. *)

type config = {
  yield_rate : float;  (** P(yield) per point *)
  delay_rate : float;  (** P(busy delay) per point *)
  fault_rate : float;  (** P(raise {!Injected}) per point at fault sites *)
  steal_rate : float;  (** P([force_steal] returns true) *)
  wire_rate : float;
      (** P({!wire_fault} mangles a frame); 0 in the default configs *)
  max_delay_spins : int;  (** upper bound on one delay's spin count *)
  fault_sites : site list;
      (** sites where [Fault] may fire. Keep {!Steal}, {!Lock_acquire},
          {!Relabel} and {!Label_extend} out of this list: those points sit
          inside scheduler loops or critical sections where a synthetic
          raise would test the injector, not the system. {!Record} and {!Log_flush} are valid
          fault sites: a raise there abandons an event-log mid-write,
          which is exactly how the torn/truncated-log corpus for
          {!Sfr_eventlog.Reader} is produced. *)
  max_faults : int;  (** cap on faults raised per armed campaign *)
}

val default_config : config
(** Perturbation only: yields, delays and forced steals, no faults. *)

val fault_config : config
(** {!default_config} plus a small fault rate, one fault per campaign. *)

val arm : ?config:config -> seed:int -> unit -> unit
(** Start a campaign: same [seed] (and config) ⇒ same per-site decision
    streams. Replaces any previous campaign. *)

val disarm : unit -> unit
(** Stop injecting. The campaign's {!trace} and {!injected_count} remain
    readable until the next {!arm}. *)

val armed : unit -> bool

val with_armed : ?config:config -> seed:int -> (unit -> 'a) -> 'a
(** [with_armed ~seed f] arms, runs [f], and disarms (also on raise). *)

val point : site -> unit
(** The injection hook. No-op (one atomic load) while disarmed; armed, it
    draws the site's next decision and yields / delays / raises
    {!Injected} accordingly.

    @raise Injected when the decision is [Fault], [site] is in
    [fault_sites], and the campaign's fault budget is not exhausted. *)

val force_steal : unit -> bool
(** Scheduler decision hook: [true] tells the worker to try stealing
    before popping its own deque, forcing help-first schedules that
    rarely arise naturally. Never raises. *)

(** {2 Wire faults}

    Transport-level mangling for the frame protocol of
    [Sfr_serve]: the deterministic loopback harness asks before
    delivering each frame and applies the drawn fault to the frame's
    byte image — no real sockets needed to exercise torn frames, CRC
    corruption, duplication, and mid-frame disconnects. *)

type wire_fault =
  | Wire_pass  (** deliver untouched *)
  | Wire_truncate of int
      (** deliver only the first [n] bytes, then nothing more of this
          frame ([n < frame_len]) *)
  | Wire_duplicate  (** deliver the frame twice *)
  | Wire_corrupt of int  (** flip a bit of the byte at this offset *)
  | Wire_disconnect  (** drop the frame and hang up mid-stream *)

val wire_fault_name : wire_fault -> string

val wire_fault : frame_len:int -> wire_fault
(** Draw the next wire decision ([Wire_pass] while disarmed, and with
    probability [1 - wire_rate] while armed). Deterministic per
    [(seed, arrival index)] like every other stream; truncation points
    and corruption offsets land in [\[0, frame_len)]. Recorded in the
    campaign {!trace} at site {!Wire} with action [Fault]. Never
    raises. *)

val trace : unit -> (site * int * action) list
(** Non-[Pass] decisions of the current (or last) campaign, sorted by
    (site, arrival index) — the canonical form compared by the
    fixed-seed determinism tests. *)

val trace_strings : unit -> string list
(** {!trace} rendered ["site#seq:action"], for reports and diffs. *)

val injected_count : unit -> int
(** Faults actually raised by the current (or last) campaign. *)
