(** Regeneration of the paper's evaluation tables and figures.

    Each function prints one table to stdout in the paper's layout, using
    measured one-core times and simulated multi-worker times (see
    {!Runner}). The [ablation_*] tables back the design-choice
    discussions in the paper's Section 4 (locking cost, bitmap vs hash
    representation, reader-bound policy). *)

val fig3 : scale:Sfr_workloads.Workload.scale -> unit
(** Benchmark characteristics: reads, writes, queries, futures, nodes —
    measured at [scale], with the paper's published values alongside. *)

val fig4 : scale:Sfr_workloads.Workload.scale -> repeats:int -> workers:int -> unit
(** Execution times: base / reach / full × detectors × {T1, T_workers}. *)

val fig5 : scale:Sfr_workloads.Workload.scale -> unit
(** Reachability-structure memory: F-Order vs SF-Order. *)

val sweep : scale:Sfr_workloads.Workload.scale -> repeats:int -> unit
(** Simulated-time curves for P ∈ {1,2,4,8,12,16,20,32} per benchmark
    and configuration — the scalability "figure" behind Figure 4's
    bracketed columns. *)

val motivation : scale:Sfr_workloads.Workload.scale -> unit
(** The introduction's motivating comparison (via Singer et al.): the
    Smith-Waterman wavefront with structured futures vs plain fork-join
    barriers — same work, lower span, better simulated scalability. *)

val complexity : unit -> unit
(** Empirical validation of Lemma 3.12: reachability construction is
    O(T1 + k²). Two adversarial programs scale k — a get chain (quadratic
    [gp] growth) and a create nest (quadratic [cp] growth) — and the
    per-k² normalized table memory stays flat. *)

val ablation_locks : scale:Sfr_workloads.Workload.scale -> repeats:int -> unit

val ablation_history : scale:Sfr_workloads.Workload.scale -> repeats:int -> unit
(** The paper-conclusion extension: mutex-striped vs lock-free vs
    unsynchronized access histories under full SF-Order detection. *)

val ablation_sets : scale:Sfr_workloads.Workload.scale -> repeats:int -> unit
val ablation_readers : scale:Sfr_workloads.Workload.scale -> repeats:int -> unit

val scaling :
  om_backends:Sfr_om.Backend.name list ->
  scale:Sfr_workloads.Workload.scale ->
  repeats:int ->
  domains:int list ->
  out:string ->
  unit
(** Measured (not simulated) multicore runs: every workload × {reach,
    full} SF-Order configuration × OM backend on the work-stealing
    executor for each domain count in [domains], written to [out] as a
    {!Bench_schema} v2 file whose detector keys are
    ["sf-order-<config>@d<domains>"] for the list backend and
    ["sf-order-<config>+depa@d<domains>"] for DePa ([om_backends]
    selects which run). The printed table adds speedup vs the first
    domain count and the synchronization counters the hot-path
    optimizations target ([history.lock.contended], [history.cas.retry],
    [om.relabels] vs [om.depa.heap_spills] — the backend A/B contrast —
    and [reach.table.alloc_words]). Wall-clock speedup needs as many
    hardware cores as domains; the counters are meaningful regardless. *)

val profile :
  om_backends:Sfr_om.Backend.name list ->
  scale:Sfr_workloads.Workload.scale ->
  repeats:int ->
  out:string ->
  unit
(** Run full detection for every workload × detector configuration and
    write a {!Bench_schema} v2 result file to [out]: environment block,
    median/MAD over the measured repeats (one warmup excluded), and each
    run's {!Sfr_obs.Metrics} snapshot — including the [prof.*.ns] latency
    histograms, since profiling is enabled for the duration, and [gc.*]
    allocation deltas. Including [`Depa] in [om_backends] adds the A/B
    rows ["sf-order+depa"] / ["f-order+depa"] next to the registry-named
    list-backend detectors. The cross-PR trajectory artifact behind
    [bench profile] and the input format of [bench perfdiff]. Also prints
    a summary table. *)
