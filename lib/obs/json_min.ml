type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

type cursor = { s : string; mutable i : int }

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.i))

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let advance c = c.i <- c.i + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char b '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; loop ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char b (Option.get (peek c));
            advance c;
            loop ()
        | Some 'u' ->
            advance c;
            if c.i + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.i 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
            in
            c.i <- c.i + 4;
            (* ASCII/Latin-1 only — all this emitter ever escapes *)
            if code < 0x100 then Buffer.add_char b (Char.chr code)
            else Buffer.add_char b '?';
            loop ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek c with Some ch when is_num_char ch -> true | _ -> false do
    advance c
  done;
  if c.i = start then fail c "expected number";
  match float_of_string_opt (String.sub c.s start (c.i - start)) with
  | Some f -> f
  | None -> fail c "malformed number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)
  | None -> fail c "unexpected end of input"

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          advance c;
          members ((key, v) :: acc)
      | Some '}' ->
          advance c;
          Obj (List.rev ((key, v) :: acc))
      | _ -> fail c "expected ',' or '}'"
    in
    members []
  end

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    Arr []
  end
  else begin
    let rec elems acc =
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
          advance c;
          elems (v :: acc)
      | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
      | _ -> fail c "expected ',' or ']'"
    in
    elems []
  end

let parse s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.i <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
