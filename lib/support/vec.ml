type 'a t = { dummy : 'a; mutable data : 'a array; mutable len : int }

let create ?(capacity = 8) ~dummy () =
  { dummy; data = Array.make (max 1 capacity) dummy; len = 0 }

let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let data = Array.make (2 * cap) t.dummy in
    Array.blit t.data 0 data 0 cap;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let words t = Array.length t.data + 3
