module Program = Sfr_runtime.Program
module Prng = Sfr_support.Prng

type params = { n : int; b : int }

let params_of = function
  | Workload.Tiny -> { n = 16; b = 4 }
  | Workload.Small -> { n = 32; b = 8 }
  | Workload.Default -> { n = 96; b = 12 }
  | Workload.Large -> { n = 256; b = 32 }
  | Workload.Paper -> { n = 2048; b = 64 }

let match_score = 5
let mismatch_score = -3
let gap d = 4 + d

(* the arbitrary-gap-penalty local-alignment recurrence (O(i+j) per cell):
     S[i][j] = max(0, S[i-1][j-1] + score, max_k S[i][k] - gap(j-k),
                   max_k S[k][j] - gap(i-k)) *)
let cell_best rd x y s ~stride i j =
  let best = ref 0 in
  let sc = if rd x (i - 1) = rd y (j - 1) then match_score else mismatch_score in
  let diag = rd s (((i - 1) * stride) + (j - 1)) + sc in
  if diag > !best then best := diag;
  for k = 0 to j - 1 do
    let v = rd s ((i * stride) + k) - gap (j - k) in
    if v > !best then best := v
  done;
  for k = 0 to i - 1 do
    let v = rd s ((k * stride) + j) - gap (i - k) in
    if v > !best then best := v
  done;
  !best

(* deterministic per-block cost skew (breaks anti-diagonal uniformity so
   barriers must wait for stragglers while futures pipeline past them);
   amplitude comparable to the largest block cost *)
let skew_work ~b ~blocks bi bj =
  Program.work (b * b * (((bi * 37) + (bj * 53)) mod (8 * blocks)))

let instantiate ?(inject_race = false) ?(skew = false) scale =
  let { n; b } = params_of scale in
  let blocks = n / b in
  let stride = n + 1 in
  let x = Program.alloc n 0 in
  let y = Program.alloc n 0 in
  let s = Program.alloc (stride * stride) 0 in
  let rng = Prng.create 0x5357 in
  for i = 0 to n - 1 do
    Program.wr_raw x i (Prng.int rng 4);
    Program.wr_raw y i (Prng.int rng 4)
  done;
  (* the block to deprive of its above-get when injecting a race: one in
     the last column, whose get no downstream block's handle publication
     depends on (it creates no right neighbour) *)
  let racy_block = (blocks / 2, blocks - 1) in
  let program () =
    let handles : int Program.handle option Atomic.t array =
      Array.init (blocks * blocks) (fun _ -> Atomic.make None)
    in
    let slot bi bj = handles.((bi * blocks) + bj) in
    let compute_block bi bj =
      if skew then skew_work ~b ~blocks bi bj;
      for i = (bi * b) + 1 to (bi + 1) * b do
        for j = (bj * b) + 1 to (bj + 1) * b do
          Program.wr s ((i * stride) + j) (cell_best Program.rd x y s ~stride i j)
        done
      done
    in
    (* block (bi,bj) for bj >= 1: created by (bi,bj-1); gets above handle.
       block (bi,0): created by (bi-1,0); no get needed. *)
    let rec block bi bj () =
      (if bi > 0 && bj > 0 && not (inject_race && (bi, bj) = racy_block) then
         match Atomic.get (slot (bi - 1) bj) with
         | Some h -> ignore (Program.get h)
         | None -> assert false);
      compute_block bi bj;
      if bj = 0 then begin
        (* create right first (publishing our column-1 handle before the
           row below starts), then the block below *)
        if blocks > 1 then
          Atomic.set (slot bi 1) (Some (Program.create (block bi 1)));
        if bi + 1 < blocks then
          Atomic.set (slot (bi + 1) 0) (Some (Program.create (block (bi + 1) 0)))
      end
      else if bj + 1 < blocks then
        Atomic.set (slot bi (bj + 1)) (Some (Program.create (block bi (bj + 1))));
      0
    in
    let h00 = Program.create (block 0 0) in
    Atomic.set (slot 0 0) (Some h00)
  in
  let verify () =
    (* uninstrumented reference *)
    let ref_s = Array.make (stride * stride) 0 in
    let rdx i = Program.rd_raw x i and rdy i = Program.rd_raw y i in
    for i = 1 to n do
      for j = 1 to n do
        let best = ref 0 in
        let sc = if rdx (i - 1) = rdy (j - 1) then match_score else mismatch_score in
        let diag = ref_s.(((i - 1) * stride) + (j - 1)) + sc in
        if diag > !best then best := diag;
        for k = 0 to j - 1 do
          let v = ref_s.((i * stride) + k) - gap (j - k) in
          if v > !best then best := v
        done;
        for k = 0 to i - 1 do
          let v = ref_s.((k * stride) + j) - gap (i - k) in
          if v > !best then best := v
        done;
        ref_s.((i * stride) + j) <- !best
      done
    done;
    let ok = ref true in
    for i = 0 to (stride * stride) - 1 do
      if Program.rd_raw s i <> ref_s.(i) then ok := false
    done;
    !ok
  in
  { Workload.program; verify; mem_base = Program.base x }

let workload =
  {
    Workload.name = "sw";
    description = "Smith-Waterman wavefront, one structured future per block";
    instantiate = (fun ?inject_race scale -> instantiate ?inject_race scale);
    paper_figure3 = [ "2048"; "64"; "8.59e9"; "4.20e6"; "8.58e9"; "1024"; "2054" ];
  }

(* fork-join wavefront: barrier per anti-diagonal. Work is identical to
   the futures version; the span picks up a full barrier per diagonal. *)
let instantiate_forkjoin ?(inject_race = false) ?(skew = false) scale =
  let { n; b } = params_of scale in
  let blocks = n / b in
  let stride = n + 1 in
  let x = Program.alloc n 0 in
  let y = Program.alloc n 0 in
  let s = Program.alloc (stride * stride) 0 in
  let rng = Prng.create 0x5357 in
  for i = 0 to n - 1 do
    Program.wr_raw x i (Prng.int rng 4);
    Program.wr_raw y i (Prng.int rng 4)
  done;
  let compute_block bi bj =
    if skew then skew_work ~b ~blocks bi bj;
    for i = (bi * b) + 1 to (bi + 1) * b do
      for j = (bj * b) + 1 to (bj + 1) * b do
        Program.wr s ((i * stride) + j) (cell_best Program.rd x y s ~stride i j)
      done
    done
  in
  let program () =
    (* anti-diagonal d holds blocks (bi, d - bi) *)
    for d = 0 to (2 * blocks) - 2 do
      let lo = max 0 (d - blocks + 1) and hi = min (blocks - 1) d in
      for bi = lo to hi do
        Program.spawn (fun () -> compute_block bi (d - bi))
      done;
      (* the barrier: skip one when injecting, racing two diagonals *)
      if not (inject_race && d = blocks - 1) then Program.sync ()
    done;
    Program.sync ()
  in
  let verify () =
    let ref_s = Array.make (stride * stride) 0 in
    let rdx i = Program.rd_raw x i and rdy i = Program.rd_raw y i in
    for i = 1 to n do
      for j = 1 to n do
        let best = ref 0 in
        let sc = if rdx (i - 1) = rdy (j - 1) then match_score else mismatch_score in
        let diag = ref_s.(((i - 1) * stride) + (j - 1)) + sc in
        if diag > !best then best := diag;
        for k = 0 to j - 1 do
          let v = ref_s.((i * stride) + k) - gap (j - k) in
          if v > !best then best := v
        done;
        for k = 0 to i - 1 do
          let v = ref_s.((k * stride) + j) - gap (i - k) in
          if v > !best then best := v
        done;
        ref_s.((i * stride) + j) <- !best
      done
    done;
    let ok = ref true in
    for i = 0 to (stride * stride) - 1 do
      if Program.rd_raw s i <> ref_s.(i) then ok := false
    done;
    !ok
  in
  { Workload.program; verify; mem_base = Program.base x }
