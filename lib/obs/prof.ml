external now_ns : unit -> int = "sfr_prof_now_ns" [@@noalloc]

let on = Atomic.make false

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

type timer = Metrics.histogram

let timer name = Metrics.histogram name

(* 0 doubles as the "profiling was off at start" sentinel: CLOCK_MONOTONIC
   is strictly positive on a running system, and even a racing disable
   between start and stop only records one stray sample. *)
let start () = if Atomic.get on then now_ns () else 0

let stop t t0 = if t0 <> 0 then Metrics.observe t (now_ns () - t0)

let with_timer t f =
  let t0 = start () in
  Fun.protect ~finally:(fun () -> stop t t0) f

(* -- GC attribution ----------------------------------------------------- *)

type gc_snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

let gc_snapshot () =
  let s = Gc.quick_stat () in
  {
    (* Gc.minor_words reads the domain's allocation pointer directly;
       quick_stat's own field only advances at collection points, so a
       delta over an allocation-light region would read 0 *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
  }

let gc_delta base =
  let now = gc_snapshot () in
  let words f = max 0 (int_of_float f) in
  [
    ("gc.minor_words", words (now.minor_words -. base.minor_words));
    ("gc.promoted_words", words (now.promoted_words -. base.promoted_words));
    ("gc.major_words", words (now.major_words -. base.major_words));
    ("gc.minor_collections", max 0 (now.minor_collections - base.minor_collections));
    ("gc.major_collections", max 0 (now.major_collections - base.major_collections));
    ("gc.compactions", max 0 (now.compactions - base.compactions));
  ]
