let magic = "SFLG"
let version = 1

type event =
  | Spawn of { cur : int; child : int; cont : int }
  | Create of { cur : int; child : int; cont : int }
  | Sync of {
      cur : int;
      spawned_lasts : int list;
      created_firsts : int list;
      next : int;
    }
  | Put of { cur : int }
  | Get of { cur : int; put : int; next : int }
  | Returned of { cont : int; child_last : int }
  | Read of { cur : int; loc : int }
  | Write of { cur : int; loc : int }
  | Work of { cur : int; amount : int }

let is_access = function Read _ | Write _ -> true | _ -> false

let inputs = function
  | Spawn { cur; _ } | Create { cur; _ } -> [ cur ]
  | Sync { cur; spawned_lasts; created_firsts; _ } ->
      cur :: (spawned_lasts @ created_firsts)
  | Put { cur } -> [ cur ]
  | Get { cur; put; _ } -> [ cur; put ]
  | Returned { cont; child_last } -> [ cont; child_last ]
  | Read { cur; _ } | Write { cur; _ } | Work { cur; _ } -> [ cur ]

let defines = function
  | Spawn { child; cont; _ } | Create { child; cont; _ } -> [ child; cont ]
  | Sync { next; _ } | Get { next; _ } -> [ next ]
  | Put _ | Returned _ | Read _ | Write _ | Work _ -> []

type error =
  | Bad_magic of { got : string }
  | Bad_version of { got : int }
  | Truncated of { offset : int; while_ : string }
  | Bad_varint of { offset : int }
  | Bad_opcode of { offset : int; opcode : int }
  | Bad_crc of { expected : int; got : int }
  | State_out_of_range of { offset : int; id : int; bound : int }
  | Corrupt of { offset : int; what : string }

let error_to_string = function
  | Bad_magic { got } ->
      Printf.sprintf "not an sflog file (magic %S, expected %S)" got magic
  | Bad_version { got } ->
      Printf.sprintf "unsupported sflog version %d (this reader speaks %d)" got
        version
  | Truncated { offset; while_ } ->
      Printf.sprintf "truncated log: unexpected end of file at byte %d (%s)"
        offset while_
  | Bad_varint { offset } ->
      Printf.sprintf "malformed varint at byte %d (overflows a 63-bit int)"
        offset
  | Bad_opcode { offset; opcode } ->
      Printf.sprintf "unknown opcode 0x%02x at byte %d" opcode offset
  | Bad_crc { expected; got } ->
      Printf.sprintf "checksum mismatch: footer says 0x%08x, payload is 0x%08x"
        expected got
  | State_out_of_range { offset; id; bound } ->
      Printf.sprintf
        "state/future id %d at byte %d out of range (footer declares %d states)"
        id offset bound
  | Corrupt { offset; what } ->
      Printf.sprintf "corrupt log at byte %d: %s" offset what

(* -- varints ----------------------------------------------------------- *)

let write_varint buf n =
  if n < 0 then invalid_arg "Log_format.write_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag z = (z lsr 1) lxor (-(z land 1))
let write_zigzag buf n = write_varint buf (zigzag n)

let read_varint bytes ~pos ~limit =
  let rec go p shift acc =
    if p >= limit then Error (Truncated { offset = p; while_ = "reading varint" })
    else
      let b = Char.code (Bytes.get bytes p) in
      let payload = b land 0x7F in
      (* 9 full groups of 7 bits = 63 bits fill an OCaml int; a 10th group
         (shift 63) or high bits that would shift out overflow it. *)
      if shift > Sys.int_size - 1
         || (shift > 0 && payload lsl shift asr shift <> payload)
      then Error (Bad_varint { offset = pos })
      else
        let acc = acc lor (payload lsl shift) in
        if b land 0x80 = 0 then Ok (acc, p + 1) else go (p + 1) (shift + 7) acc
  in
  go pos 0 0

let read_zigzag bytes ~pos ~limit =
  match read_varint bytes ~pos ~limit with
  | Ok (z, p) -> Ok (unzigzag z, p)
  | Error _ as e -> e

(* -- events ------------------------------------------------------------ *)

let op_spawn = 1
let op_create = 2
let op_sync = 3
let op_put = 4
let op_get = 5
let op_returned = 6
let op_read = 7
let op_write = 8
let op_work = 9

let write_event buf ~last_loc ev =
  let op n = Buffer.add_char buf (Char.chr n) in
  let v n = write_varint buf n in
  match ev with
  | Spawn { cur; child; cont } ->
      op op_spawn;
      v cur;
      v child;
      v cont;
      last_loc
  | Create { cur; child; cont } ->
      op op_create;
      v cur;
      v child;
      v cont;
      last_loc
  | Sync { cur; spawned_lasts; created_firsts; next } ->
      op op_sync;
      v cur;
      v (List.length spawned_lasts);
      List.iter v spawned_lasts;
      v (List.length created_firsts);
      List.iter v created_firsts;
      v next;
      last_loc
  | Put { cur } ->
      op op_put;
      v cur;
      last_loc
  | Get { cur; put; next } ->
      op op_get;
      v cur;
      v put;
      v next;
      last_loc
  | Returned { cont; child_last } ->
      op op_returned;
      v cont;
      v child_last;
      last_loc
  | Read { cur; loc } ->
      op op_read;
      v cur;
      write_zigzag buf (loc - last_loc);
      loc
  | Write { cur; loc } ->
      op op_write;
      v cur;
      write_zigzag buf (loc - last_loc);
      loc
  | Work { cur; amount } ->
      op op_work;
      v cur;
      v amount;
      last_loc

let read_event bytes ~pos ~limit ~last_loc ~states =
  let ( let* ) = Result.bind in
  let sid p (v, p') =
    (* every state reference is bounds-checked against the footer's
       declared state count before the event is surfaced *)
    if v < 0 || v >= states then
      Error (State_out_of_range { offset = p; id = v; bound = states })
    else Ok (v, p')
  in
  let* opcode, p =
    if pos >= limit then
      Error (Truncated { offset = pos; while_ = "reading opcode" })
    else Ok (Char.code (Bytes.get bytes pos), pos + 1)
  in
  let rv p = read_varint bytes ~pos:p ~limit in
  let rs p =
    let* r = rv p in
    sid p r
  in
  if opcode = op_spawn || opcode = op_create then
    let* cur, p = rs p in
    let* child, p = rs p in
    let* cont, p = rs p in
    let ev =
      if opcode = op_spawn then Spawn { cur; child; cont }
      else Create { cur; child; cont }
    in
    Ok (ev, p, last_loc)
  else if opcode = op_sync then
    let* cur, p = rs p in
    let rec list n p acc =
      if n = 0 then Ok (List.rev acc, p)
      else
        let* s, p = rs p in
        list (n - 1) p (s :: acc)
    in
    let* nsp, p = rv p in
    let* spawned_lasts, p = list nsp p [] in
    let* ncr, p = rv p in
    let* created_firsts, p = list ncr p [] in
    let* next, p = rs p in
    Ok (Sync { cur; spawned_lasts; created_firsts; next }, p, last_loc)
  else if opcode = op_put then
    let* cur, p = rs p in
    Ok (Put { cur }, p, last_loc)
  else if opcode = op_get then
    let* cur, p = rs p in
    let* put, p = rs p in
    let* next, p = rs p in
    Ok (Get { cur; put; next }, p, last_loc)
  else if opcode = op_returned then
    let* cont, p = rs p in
    let* child_last, p = rs p in
    Ok (Returned { cont; child_last }, p, last_loc)
  else if opcode = op_read || opcode = op_write then
    let* cur, p = rs p in
    let* delta, p' = read_zigzag bytes ~pos:p ~limit in
    let loc = last_loc + delta in
    if loc < 0 then
      Error (Corrupt { offset = p; what = "negative access location" })
    else
      let ev = if opcode = op_read then Read { cur; loc } else Write { cur; loc } in
      Ok (ev, p', loc)
  else if opcode = op_work then
    let* cur, p = rs p in
    let* amount, p = rv p in
    Ok (Work { cur; amount }, p, last_loc)
  else Error (Bad_opcode { offset = pos; opcode })

(* -- crc32 ------------------------------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_init = 0

let crc32_update crc bytes ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get bytes i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
