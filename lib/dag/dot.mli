(** Graphviz DOT export of recorded dags — regenerates the paper's
    Figure 1 (an SF-dag, with create edges red and get edges blue) and
    Figure 2 (its pseudo-SP-dag, with fake join edges dashed). *)

val of_dag : ?name:string -> Dag.t -> Dag_algo.view -> string
(** DOT source. Nodes are labelled with their ID and clustered by future;
    in the [Psp] view get edges disappear and fake join edges appear
    dashed. *)

val write_file : path:string -> ?name:string -> Dag.t -> Dag_algo.view -> unit
