let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

type t = { mutable words : int array }

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create ?(capacity = 0) () = { words = Array.make (max 1 (words_for capacity)) 0 }

let ensure s w =
  let n = Array.length s.words in
  if w >= n then begin
    let words = Array.make (max (w + 1) (2 * n)) 0 in
    Array.blit s.words 0 words 0 n;
    s.words <- words
  end

let mem s i =
  let w = i / bits_per_word in
  w < Array.length s.words
  && s.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  let w = i / bits_per_word in
  ensure s w;
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let singleton i =
  let s = create ~capacity:(i + 1) () in
  add s i;
  s

let remove s i =
  let w = i / bits_per_word in
  if w < Array.length s.words then
    s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let union_into ~dst src =
  ensure dst (Array.length src.words - 1);
  Array.iteri (fun i w -> if w <> 0 then dst.words.(i) <- dst.words.(i) lor w) src.words

let copy s = { words = Array.copy s.words }

let subset a b =
  let nb = Array.length b.words in
  let ok = ref true in
  Array.iteri
    (fun i w ->
      if w <> 0 && (i >= nb || w land lnot b.words.(i) <> 0) then ok := false)
    a.words;
  !ok

let equal a b = subset a b && subset b a

let each_side_has_private_bit a b = not (subset a b) && not (subset b a)

let iter f s =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    s.words

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let words s = Array.length s.words

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements s)
