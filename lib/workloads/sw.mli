(** Smith-Waterman sequence alignment with arbitrary gap penalties (paper
    benchmark [sw]; N=2048, B=64 at paper scale — the O(N³) recurrence,
    matching the paper's 8.59e9 reads for N=2048).

    The block grid runs as a wavefront of structured futures, exactly one
    per block (N/B = 32 ⇒ 1024 futures at paper scale, the Figure 3
    count): block [(i,j)] is created by its left neighbor (the create
    path orders the left dependence), gets the handle of the block above
    (the get edge orders the upward dependence), and creates its right
    neighbor when done; column-0 blocks are created by the block above
    instead. This is the Cilk-F-style structured-future wavefront of
    Singer et al. that motivates the paper.

    [inject_race] drops one interior block's above-get, so its reads race
    the block above. *)

val workload : Workload.t

val instantiate : ?inject_race:bool -> ?skew:bool -> Workload.scale -> Workload.instance
(** As {!workload}'s instantiate; [skew] adds deterministic per-block
    extra work, breaking the anti-diagonal cost uniformity (used by the
    motivation bench). *)

val instantiate_forkjoin :
  ?inject_race:bool -> ?skew:bool -> Workload.scale -> Workload.instance
(** The same computation with fork-join wavefront parallelism instead of
    futures: one spawn/sync barrier per anti-diagonal of blocks. Same
    work, higher span — the comparison (Singer et al., PPoPP'19) that
    motivates structured futures in the paper's introduction. The
    [motivation] bench target contrasts the two dags. *)
