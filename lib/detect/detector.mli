(** Uniform view of an on-the-fly race detector instance.

    A detector is an {!Events.callbacks} client plus introspection used by
    the benchmark harness (query counts, reachability-structure memory for
    Figure 5) and the tests (per-location race verdicts). Instances are
    single-use: make one per execution. *)

type t = {
  name : string;
  callbacks : Sfr_runtime.Events.callbacks;
  root : Sfr_runtime.Events.state;
  races : Race.t;
  queries : unit -> int;
      (** reachability queries performed (Figure 3's "# queries"). *)
  reach_words : unit -> int;
      (** live machine words in reachability structures. *)
  reach_table_words : unit -> int;
      (** cumulative words allocated into the per-node future tables
          (gp/cp bitmaps or nsp hash tables) — the Figure 5 metric; our
          tables are reference-counted and freed, whereas the paper's
          implementations retain one per node, so the cumulative count is
          what corresponds to their measurement. *)
  history_words : unit -> int;
  max_readers : unit -> int;
      (** access-history high-water mark of readers per location. *)
  metrics : unit -> (string * int) list;
      (** named-counter snapshot attributed to this instance (see
          {!Sfr_obs.Metrics} and DESIGN.md §8 for the name taxonomy) —
          e.g. the [reach.query.*] case breakdown whose entries sum to
          [queries ()]. Meaningful only while no other detector instance
          runs concurrently in the process; [no_metrics] otherwise. *)
  supports_parallel : bool;
      (** false for the sequential (MultiBags-style) detector, whose
          reachability is only meaningful under depth-first execution. *)
}

val racy_locations : t -> int list

val no_metrics : unit -> (string * int) list
(** Always empty — for detectors (or tests) that opt out. *)

val metrics_since_creation : unit -> unit -> (string * int) list
(** [metrics_since_creation ()] captures the global {!Sfr_obs.Metrics}
    state now and returns a thunk reporting the growth since — the
    standard implementation of the [metrics] field. *)
