module Stream_replay = Sfr_eventlog.Stream_replay
module Race = Sfr_detect.Race
module Metrics = Sfr_obs.Metrics
module Flight = Sfr_obs.Flight
module Prof = Sfr_obs.Prof
module Trace_event = Sfr_obs.Trace_event

let m_frames_in = Metrics.counter "serve.frames.in"
let m_frames_out = Metrics.counter "serve.frames.out"
let m_bytes_in = Metrics.counter "serve.bytes.in"
let m_credit_granted = Metrics.counter "serve.credit.granted"
let m_credit_violations = Metrics.counter "serve.credit.violations"
let m_protocol_errors = Metrics.counter "serve.protocol.errors"
let m_admin_requests = Metrics.counter "serve.admin.requests"

(* Hot-path attribution (one-atomic-load disarmed, as everywhere):
   frame decode, the ingest drain, and credit-grant computation. *)
let t_decode = Prof.timer "prof.serve.decode.ns"
let t_ingest = Prof.timer "prof.serve.ingest.ns"
let t_credit = Prof.timer "prof.serve.credit.ns"

(* End-to-end service latencies, always on (two clock reads per DATA
   frame / per session — nothing near the per-access hot path). *)
let h_frame_ack = Metrics.histogram "serve.latency.frame_ack.ns"
let h_hello_verdict = Metrics.histogram "serve.latency.hello_verdict.ms"

(* Each session's lifecycle span lives on its own synthetic trace
   track, keyed by the correlation id: work spans (decode/ingest) land
   on the executing domain's track and nest there; the per-session
   track shows hello -> verdict as one containing span. *)
let session_track sid = 1000 + sid

type config = {
  credit_window : int;
  deadline_ms : int option;
  idle_ms : int option;
  shards : int;
  access_batch : int;
}

let default_config =
  {
    credit_window = 256 * 1024;
    deadline_ms = None;
    idle_ms = None;
    shards = 1;
    access_batch = 8192;
  }

type outcome = {
  session : int;
  code : Frame.reply_code;
  races : int;
  events : int;
  bytes_analyzed : int;
  message : string;
  reports : Race.report list;
}

let verdict_frame o =
  Frame.Verdict
    {
      code = o.code;
      races = o.races;
      events = o.events;
      bytes_analyzed = o.bytes_analyzed;
      message = o.message;
    }

type phase = Awaiting_hello | Streaming | Finished

type t = {
  sid : int;
  cfg : config;
  decoder : Frame.decoder;
  replay : Stream_replay.t;
  queue : (Bytes.t * int) Queue.t;
      (** accepted DATA payloads (with arrival [Prof.now_ns] stamps for
          the frame->ack latency histogram), not yet ingested *)
  mutable queued : int;
  mutable credit : int;  (** bytes the client may still send *)
  mutable grant_credit : bool;
  mutable phase : phase;
  mutable close_received : bool;
  mutable result : outcome option;
  started : int;
  mutable last_activity : int;
  mutable admin : bool;
      (** admin requests arrived before any HELLO: this connection is
          an admin session and must latch no outcome *)
  mutable hello_ns : int;  (** [Prof.now_ns] at HELLO; 0 before *)
  mutable span_t0 : float;
      (** [Trace_event.now_us] at HELLO while tracing was on; 0.0
          otherwise — the lifecycle span's start *)
}

let create ~id ~now_ms cfg =
  if cfg.credit_window < 1 then
    invalid_arg "Session.create: credit_window must be >= 1";
  Flight.note ~arg:id "serve.session.open";
  {
    sid = id;
    cfg;
    decoder = Frame.decoder ();
    replay =
      Stream_replay.create ~shards:cfg.shards ~access_batch:cfg.access_batch ();
    queue = Queue.create ();
    queued = 0;
    credit = 0;
    grant_credit = true;
    phase = Awaiting_hello;
    close_received = false;
    result = None;
    started = now_ms;
    last_activity = now_ms;
    admin = false;
    hello_ns = 0;
    span_t0 = 0.0;
  }

let id t = t.sid
let finished t = t.phase = Finished
let outcome t = t.result
let queued_bytes t = t.queued
let last_activity_ms t = t.last_activity
let started_ms t = t.started
let awaiting_hello t = t.phase = Awaiting_hello
let admin_only t = t.admin
let credit t = t.credit

let phase_name t =
  match t.phase with
  | Awaiting_hello -> if t.admin then "admin" else "hello"
  | Streaming -> "streaming"
  | Finished -> "finished"

let needs_ingest t =
  t.phase <> Finished && (t.queued > 0 || t.close_received)

(* Admin-plane requests answered by the server from live state — the
   session only records that one arrived; building the reply needs the
   whole session table, which lives a layer up. *)
type admin_request = Admin_stats | Admin_health | Admin_metrics

type effect_ = {
  send : Frame.frame list;
  accepted : int;
  released : int;
  finished : bool;
  admin : admin_request list;
}

let no_effect =
  { send = []; accepted = 0; released = 0; finished = false; admin = [] }

let merge a b =
  {
    send = a.send @ b.send;
    accepted = a.accepted + b.accepted;
    released = a.released + b.released;
    finished = a.finished || b.finished;
    admin = a.admin @ b.admin;
  }

let set_grant_credit t v = t.grant_credit <- v

(* Book-keeping shared by every grant site: metrics, the audit record
   and the correlation instant on the trace. *)
let note_grant t grant =
  Metrics.add m_credit_granted grant;
  Metrics.incr m_frames_out;
  Audit.emit (Audit.Credit { session = t.sid; grant });
  Trace_event.instant
    ~args:[ ("session", float_of_int t.sid); ("grant", float_of_int grant) ]
    "serve.credit.grant"

let replenish_credit t =
  if t.phase <> Streaming || t.close_received || not t.grant_credit then
    no_effect
  else begin
    let pt = Prof.start () in
    let grant = t.cfg.credit_window - t.credit - t.queued in
    let eff =
      if grant > 0 then begin
        t.credit <- t.credit + grant;
        note_grant t grant;
        { no_effect with send = [ Frame.Credit grant ] }
      end
      else no_effect
    in
    Prof.stop t_credit pt;
    eff
  end

(* Latch an outcome: the one-and-only terminal transition. Any payloads
   still queued are dropped and surfaced as [released] so the server's
   global byte accounting stays exact. *)
let latch t o reply =
  match t.result with
  | Some _ -> no_effect
  | None ->
      t.result <- Some o;
      t.phase <- Finished;
      let released = t.queued in
      Queue.clear t.queue;
      t.queued <- 0;
      Flight.note ~arg:t.sid "serve.session.finish";
      Metrics.incr m_frames_out;
      if t.hello_ns > 0 then
        Metrics.observe h_hello_verdict
          ((Prof.now_ns () - t.hello_ns) / 1_000_000);
      Audit.emit
        (Audit.Verdict
           {
             session = t.sid;
             code = Frame.reply_code_name o.code;
             races = o.races;
             events = o.events;
             bytes_analyzed = o.bytes_analyzed;
           });
      if Trace_event.is_on () then begin
        Trace_event.instant
          ~args:
            [
              ("session", float_of_int t.sid);
              ("verdict", float_of_int (Frame.reply_code_to_int o.code));
              ("races", float_of_int o.races);
            ]
          "serve.session.verdict";
        (* the hello -> verdict lifecycle span, on the session's own
           logical track so the per-domain work spans stay well nested *)
        if t.span_t0 > 0.0 then
          Trace_event.complete
            ~tid:(session_track t.sid)
            ~args:
              [
                ("session", float_of_int t.sid);
                ("verdict", float_of_int (Frame.reply_code_to_int o.code));
                ("races", float_of_int o.races);
                ("events", float_of_int o.events);
              ]
            "serve.session" ~ts_us:t.span_t0
            ~dur_us:(Trace_event.now_us () -. t.span_t0)
      end;
      { send = [ reply ]; accepted = 0; released; finished = true; admin = [] }

(* Terminal with a typed non-verdict code: REJECT before the session
   ever streamed (no stats worth reporting), partial-stats VERDICT
   after. *)
let finish_code t code message =
  if t.phase = Awaiting_hello then
    latch t
      {
        session = t.sid;
        code;
        races = 0;
        events = 0;
        bytes_analyzed = 0;
        message;
        reports = [];
      }
      (Frame.Reject { code; message })
  else begin
    let v = Stream_replay.partial t.replay in
    let o =
      {
        session = t.sid;
        code;
        races = List.length v.Stream_replay.racy_locations;
        events = v.Stream_replay.events_applied;
        bytes_analyzed = v.Stream_replay.bytes_analyzed;
        message;
        reports = v.Stream_replay.reports;
      }
    in
    latch t o (verdict_frame o)
  end

(* Terminal driven by the stream's own verdict (clean CLOSE, or abrupt
   disconnect after draining what arrived). *)
let finish_with_verdict t (v : Stream_replay.verdict) extra_message =
  let code, message =
    match v.Stream_replay.status with
    | Stream_replay.Complete ->
        if v.Stream_replay.racy_locations = [] then (Frame.Ok_clean, "")
        else (Frame.Ok_races, "")
    | Stream_replay.Torn e ->
        ( Frame.Err_torn,
          Printf.sprintf "%s; analyzed prefix up to byte %d%s"
            (Sfr_eventlog.Log_format.error_to_string e)
            v.Stream_replay.bytes_analyzed extra_message )
    | Stream_replay.Inconsistent e ->
        (Frame.Err_inconsistent, Sfr_eventlog.Replay.error_to_string e)
    | Stream_replay.Detector_failed m -> (Frame.Err_detector, m)
  in
  let o =
    {
      session = t.sid;
      code;
      races = List.length v.Stream_replay.racy_locations;
      events = v.Stream_replay.events_applied;
      bytes_analyzed = v.Stream_replay.bytes_analyzed;
      message;
      reports = v.Stream_replay.reports;
    }
  in
  latch t o (verdict_frame o)

let protocol_error t what =
  Metrics.incr m_protocol_errors;
  finish_code t Frame.Err_protocol what

let on_frame t frame =
  Metrics.incr m_frames_in;
  match (t.phase, frame) with
  | Finished, _ -> no_effect
  | ( (Awaiting_hello | Streaming),
      ((Frame.Stats_req | Frame.Health_req | Frame.Metrics_req) as req) ) ->
      (* Admin requests are legal before or during a stream. A
         connection that asks before any HELLO is an admin session: it
         latches no outcome and never counts against --max-sessions. *)
      if t.phase = Awaiting_hello then t.admin <- true;
      Metrics.incr m_admin_requests;
      let a =
        match req with
        | Frame.Stats_req -> Admin_stats
        | Frame.Health_req -> Admin_health
        | _ -> Admin_metrics
      in
      { no_effect with admin = [ a ] }
  | Awaiting_hello, Frame.Hello { version } ->
      if version <> Frame.protocol_version then
        protocol_error t
          (Printf.sprintf "unsupported protocol version %d (want %d)" version
             Frame.protocol_version)
      else begin
        t.phase <- Streaming;
        t.admin <- false;
        t.credit <- t.cfg.credit_window;
        t.hello_ns <- Prof.now_ns ();
        if Trace_event.is_on () then begin
          t.span_t0 <- Trace_event.now_us ();
          Trace_event.instant
            ~args:
              [
                ("session", float_of_int t.sid);
                ("version", float_of_int version);
              ]
            "serve.session.hello"
        end;
        Audit.emit (Audit.Hello { session = t.sid; version });
        Audit.emit
          (Audit.Credit { session = t.sid; grant = t.cfg.credit_window });
        Metrics.incr m_frames_out;
        {
          no_effect with
          send =
            [ Frame.Welcome { session = t.sid; credit = t.cfg.credit_window } ];
        }
      end
  | Awaiting_hello, _ -> protocol_error t "expected HELLO"
  | Streaming, Frame.Data b ->
      if t.close_received then protocol_error t "DATA after CLOSE"
      else begin
        let len = Bytes.length b in
        Metrics.add m_bytes_in len;
        if len > t.credit then begin
          Metrics.incr m_credit_violations;
          finish_code t Frame.Err_protocol
            (Printf.sprintf "credit exceeded: %d bytes sent, %d available" len
               t.credit)
        end
        else begin
          t.credit <- t.credit - len;
          Queue.push (b, Prof.now_ns ()) t.queue;
          t.queued <- t.queued + len;
          { no_effect with accepted = len }
        end
      end
  | Streaming, Frame.Close ->
      t.close_received <- true;
      no_effect
  | Streaming, Frame.Hello _ -> protocol_error t "duplicate HELLO"
  | ( _,
      ( Frame.Welcome _ | Frame.Credit _ | Frame.Verdict _ | Frame.Reject _
      | Frame.Stats_reply _ | Frame.Health_reply _ | Frame.Metrics_reply _ ) )
    ->
      protocol_error t "server-to-client frame from client"

let on_bytes t ~now_ms bytes ~pos ~len =
  if t.phase = Finished then no_effect
  else begin
    t.last_activity <- now_ms;
    let pt = Prof.start () in
    (* capture the tracing flag once: collection starting mid-region
       must not produce a span with a garbage start timestamp *)
    let tracing = Trace_event.is_on () in
    let t0 = if tracing then Trace_event.now_us () else 0.0 in
    Frame.decoder_feed t.decoder bytes ~pos ~len;
    let eff = ref no_effect in
    let continue_ = ref true in
    while !continue_ && t.phase <> Finished do
      match Frame.decoder_next t.decoder with
      | Ok None -> continue_ := false
      | Ok (Some frame) -> eff := merge !eff (on_frame t frame)
      | Error e ->
          eff := merge !eff (protocol_error t (Frame.error_to_string e));
          continue_ := false
    done;
    Prof.stop t_decode pt;
    if tracing then
      Trace_event.complete
        ~args:
          [ ("session", float_of_int t.sid); ("bytes", float_of_int len) ]
        "serve.frame.decode" ~ts_us:t0
        ~dur_us:(Trace_event.now_us () -. t0);
    !eff
  end

let ingest t =
  if t.phase = Finished then no_effect
  else begin
    let pt = Prof.start () in
    let tracing = Trace_event.is_on () in
    let t0 = if tracing then Trace_event.now_us () else 0.0 in
    let drained = ref 0 in
    while not (Queue.is_empty t.queue) do
      let b, arrived_ns = Queue.pop t.queue in
      let len = Bytes.length b in
      t.queued <- t.queued - len;
      drained := !drained + len;
      Metrics.observe h_frame_ack (Prof.now_ns () - arrived_ns);
      Stream_replay.feed t.replay b ~pos:0 ~len
    done;
    if !drained > 0 then Stream_replay.step t.replay;
    Prof.stop t_ingest pt;
    if tracing && !drained > 0 then
      Trace_event.complete
        ~args:
          [
            ("session", float_of_int t.sid);
            ("chunk", float_of_int !drained);
          ]
        "serve.session.ingest" ~ts_us:t0
        ~dur_us:(Trace_event.now_us () -. t0);
    let credit_frames =
      if !drained > 0 && t.grant_credit && not t.close_received then begin
        let cpt = Prof.start () in
        let grant = min !drained (t.cfg.credit_window - t.credit) in
        let frames =
          if grant > 0 then begin
            t.credit <- t.credit + grant;
            note_grant t grant;
            [ Frame.Credit grant ]
          end
          else []
        in
        Prof.stop t_credit cpt;
        frames
      end
      else []
    in
    let base = { no_effect with send = credit_frames; released = !drained } in
    if t.close_received then
      merge base
        (finish_with_verdict t (Stream_replay.close t.replay ~abrupt:false) "")
    else base
  end

let on_disconnect t =
  if t.phase = Finished then no_effect
  else if t.admin then begin
    (* an admin session ends quietly: no stream was ever opened, so
       there is no outcome to latch and nothing to audit but the close *)
    t.phase <- Finished;
    Flight.note ~arg:t.sid "serve.session.finish";
    { no_effect with finished = true }
  end
  else begin
    let eff = ingest t in
    if t.phase = Finished then eff
    else begin
      (* transport gone without CLOSE: record the analyzed-prefix
         offset before latching the torn verdict *)
      let v = Stream_replay.close t.replay ~abrupt:true in
      Audit.emit
        (Audit.Disconnect
           {
             session = t.sid;
             bytes_analyzed = v.Stream_replay.bytes_analyzed;
           });
      merge eff (finish_with_verdict t v " (client disconnected)")
    end
  end

let finish_overload t ~message = finish_code t Frame.Err_overload message

let check_timeout t ~now_ms =
  (* admin sessions are interactive probes — they neither stream nor
     hold budget, so the stream deadlines don't apply *)
  if t.phase = Finished || t.admin then None
  else
    let deadline_hit =
      match t.cfg.deadline_ms with
      | Some d -> now_ms - t.started >= d
      | None -> false
    in
    let idle_hit =
      match t.cfg.idle_ms with
      | Some d -> now_ms - t.last_activity >= d
      | None -> false
    in
    if deadline_hit then begin
      Audit.emit
        (Audit.Deadline { session = t.sid; age_ms = now_ms - t.started });
      Some
        (finish_code t Frame.Err_deadline
           (Printf.sprintf "session deadline (%d ms) exceeded"
              (Option.get t.cfg.deadline_ms)))
    end
    else if idle_hit then begin
      Audit.emit
        (Audit.Idle { session = t.sid; quiet_ms = now_ms - t.last_activity });
      Some
        (finish_code t Frame.Err_idle
           (Printf.sprintf "idle for %d ms" (now_ms - t.last_activity)))
    end
    else None
