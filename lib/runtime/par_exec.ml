type task = unit -> unit

module Metrics = Sfr_obs.Metrics
module Trace_event = Sfr_obs.Trace_event
module Flight = Sfr_obs.Flight
module Telemetry = Sfr_obs.Telemetry
module Chaos = Sfr_chaos.Chaos

let m_spawns = Metrics.counter "runtime.spawns"
let m_creates = Metrics.counter "runtime.creates"
let m_gets = Metrics.counter "runtime.gets"
let m_tasks = Metrics.counter "runtime.tasks"
let m_steals = Metrics.counter "runtime.steals"

(* -- per-worker deque: LIFO at the bottom (owner), FIFO steals at the
   top. A mutex-protected ring buffer: simple, correct, and uncontended
   enough for the worker counts we target (the paper's bottleneck is the
   access-history locking, not the deques). *)
module Deque = struct
  type t = {
    mu : Mutex.t;
    mutable items : task array;
    mutable head : int; (* steal end *)
    mutable tail : int; (* owner end; valid range is [head, tail) *)
  }

  let nop : task = fun () -> ()

  let create () = { mu = Mutex.create (); items = Array.make 64 nop; head = 0; tail = 0 }

  let grow d =
    let n = Array.length d.items in
    let items = Array.make (2 * n) nop in
    let len = d.tail - d.head in
    for i = 0 to len - 1 do
      items.(i) <- d.items.((d.head + i) mod n)
    done;
    d.items <- items;
    d.head <- 0;
    d.tail <- len

  let push_bottom d x =
    Mutex.lock d.mu;
    if d.tail - d.head = Array.length d.items then grow d;
    d.items.(d.tail mod Array.length d.items) <- x;
    d.tail <- d.tail + 1;
    Mutex.unlock d.mu

  let pop_bottom d =
    Mutex.lock d.mu;
    let r =
      if d.tail = d.head then None
      else begin
        d.tail <- d.tail - 1;
        let i = d.tail mod Array.length d.items in
        let x = d.items.(i) in
        d.items.(i) <- nop;
        Some x
      end
    in
    Mutex.unlock d.mu;
    r

  let steal_top d =
    Mutex.lock d.mu;
    let r =
      if d.tail = d.head then None
      else begin
        let i = d.head mod Array.length d.items in
        let x = d.items.(i) in
        d.items.(i) <- nop;
        d.head <- d.head + 1;
        Some x
      end
    in
    Mutex.unlock d.mu;
    r

  (* unlocked racy read for the telemetry probe: head/tail are plain
     mutable ints, so a sample can be momentarily stale or torn against
     a concurrent push/pop — clamped, never negative, never a crash *)
  let depth d = max 0 (d.tail - d.head)
end

(* Per-worker scheduler statistics, written by the owning worker only
   (plain mutable ints, no sharing) and only while the telemetry sampler
   is armed — the disarmed cost at each site is the one atomic load in
   [Telemetry.armed]. The sampler domain reads them racily, which is the
   deal every gauge in the telemetry stream makes. *)
type wstat = {
  mutable p_tasks : int;
  mutable p_steals : int;
  mutable p_idle_spins : int;
}

type frame = {
  fmu : Mutex.t;
  mutable outstanding : int; (* spawned children not yet returned *)
  mutable spawned_lasts : Events.state list;
  mutable created_firsts : Events.state list;
  mutable pending_sync : task option;
}

let new_frame () =
  {
    fmu = Mutex.create ();
    outstanding = 0;
    spawned_lasts = [];
    created_firsts = [];
    pending_sync = None;
  }

(* Domain-local worker identity and current strand state. *)
let worker_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)
let cur_key : Events.state ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref Events.Unit_state)

let get_cur () = !(Domain.DLS.get cur_key)
let set_cur s = Domain.DLS.get cur_key := s

type sched = {
  cb : Events.callbacks;
  deques : Deque.t array;
  wstats : wstat array;
  live : int Atomic.t; (* pushed-but-unfinished task closures *)
  quiescent : bool Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first failure wins; its backtrace is preserved to the join *)
}

(* The scheduler currently executing a [run], if any — the telemetry
   probe reads it from the sampler domain. *)
let live_sched : sched option Atomic.t = Atomic.make None

type probe = {
  workers : int;
  deque_depths : int array;
  tasks : int array;
  steals : int array;
  idle_spins : int array;
}

let probe_of_sched s =
  {
    workers = Array.length s.deques;
    deque_depths = Array.map Deque.depth s.deques;
    tasks = Array.map (fun w -> w.p_tasks) s.wstats;
    steals = Array.map (fun w -> w.p_steals) s.wstats;
    idle_spins = Array.map (fun w -> w.p_idle_spins) s.wstats;
  }

(* [run] freezes its final probe here before clearing [live_sched], so
   end-of-run consumers (tests, the final telemetry sample's caller) can
   still reconcile per-worker totals against the Metrics counters. *)
let last_probe_v : probe option Atomic.t = Atomic.make None

let probe () =
  match Atomic.get live_sched with
  | Some s -> Some (probe_of_sched s)
  | None -> Atomic.get last_probe_v

let last_probe () = Atomic.get last_probe_v

let probe_metrics () =
  match probe () with
  | None -> []
  | Some p ->
      let sum a = Array.fold_left ( + ) 0 a in
      let agg =
        [
          ("sched.workers", p.workers);
          ("sched.deque_depth", sum p.deque_depths);
          ("sched.tasks", sum p.tasks);
          ("sched.steals", sum p.steals);
          ("sched.idle_spins", sum p.idle_spins);
        ]
      in
      let per_worker =
        List.concat
          (List.init p.workers (fun i ->
               [
                 (Printf.sprintf "sched.w%d.deque_depth" i, p.deque_depths.(i));
                 (Printf.sprintf "sched.w%d.tasks" i, p.tasks.(i));
                 (Printf.sprintf "sched.w%d.steals" i, p.steals.(i));
                 (Printf.sprintf "sched.w%d.idle_spins" i, p.idle_spins.(i));
               ]))
      in
      agg @ per_worker

(* Record the first exception (with its backtrace) and let every worker
   observe it: the failure flag doubles as the stop signal, so a raising
   task fails the whole run instead of wedging it. *)
let record_failure sched e =
  let bt = Printexc.get_raw_backtrace () in
  ignore (Atomic.compare_and_set sched.failure None (Some (e, bt)))

let push_task sched t =
  let w = Domain.DLS.get worker_key in
  let w = if w >= 0 then w else 0 in
  Atomic.incr sched.live;
  Deque.push_bottom sched.deques.(w) t

(* A spawned child finished: deliver its last state to the parent frame
   and wake a parked sync if this was the last outstanding child. *)
let child_returned_to sched frame child_last =
  Mutex.lock frame.fmu;
  frame.spawned_lasts <- child_last :: frame.spawned_lasts;
  frame.outstanding <- frame.outstanding - 1;
  let wake =
    if frame.outstanding = 0 then begin
      let w = frame.pending_sync in
      frame.pending_sync <- None;
      w
    end
    else None
  in
  Mutex.unlock frame.fmu;
  match wake with Some go -> push_task sched go | None -> ()

(* Emit the on_sync event for this frame if there is anything to join. *)
let emit_sync sched frame ~pre_state =
  Mutex.lock frame.fmu;
  let sp = frame.spawned_lasts and crf = frame.created_firsts in
  frame.spawned_lasts <- [];
  frame.created_firsts <- [];
  Mutex.unlock frame.fmu;
  if sp <> [] || crf <> [] then
    set_cur
      (sched.cb.Events.on_sync ~cur:pre_state ~spawned_lasts:sp
         ~created_firsts:crf)
  else set_cur pre_state

(* Run one frame body (which must end by performing Sync and then its own
   epilogue) under the effect handler. Suspensions abandon the handler:
   match_with returns () and the worker moves on; resumption re-enters the
   captured continuation from a fresh task. *)
let rec exec_frame sched (body : frame -> unit) =
  let frame = new_frame () in
  Effect.Deep.match_with body frame
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Program.Spawn f ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  Chaos.point Chaos.Spawn;
                  Metrics.incr m_spawns;
                  let child_state, cont_state = sched.cb.Events.on_spawn (get_cur ()) in
                  Mutex.lock frame.fmu;
                  frame.outstanding <- frame.outstanding + 1;
                  Mutex.unlock frame.fmu;
                  push_task sched (fun () ->
                      set_cur child_state;
                      exec_frame sched (fun _child_frame ->
                          f ();
                          Effect.perform Program.Sync;
                          let child_last = get_cur () in
                          sched.cb.Events.on_returned ~cont:cont_state ~child_last;
                          child_returned_to sched frame child_last));
                  set_cur cont_state;
                  Effect.Deep.continue k ())
          | Program.Create f ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  Chaos.point Chaos.Create;
                  Metrics.incr m_creates;
                  Trace_event.instant ~cat:"runtime" "create";
                  Flight.note "create";
                  let h = Program.Handle.make () in
                  let child_state, cont_state = sched.cb.Events.on_create (get_cur ()) in
                  Mutex.lock frame.fmu;
                  frame.created_firsts <- child_state :: frame.created_firsts;
                  Mutex.unlock frame.fmu;
                  push_task sched (fun () ->
                      set_cur child_state;
                      exec_frame sched (fun _child_frame ->
                          let r = f () in
                          Effect.perform Program.Sync;
                          let last = get_cur () in
                          sched.cb.Events.on_put last;
                          Program.Handle.fulfil h r ~last;
                          sched.cb.Events.on_returned ~cont:cont_state
                            ~child_last:last));
                  set_cur cont_state;
                  Effect.Deep.continue k h)
          | Program.Sync ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  Chaos.point Chaos.Sync;
                  let pre_state = get_cur () in
                  Mutex.lock frame.fmu;
                  if frame.outstanding = 0 then begin
                    Mutex.unlock frame.fmu;
                    emit_sync sched frame ~pre_state;
                    Effect.Deep.continue k ()
                  end
                  else begin
                    frame.pending_sync <-
                      Some
                        (fun () ->
                          emit_sync sched frame ~pre_state;
                          Effect.Deep.continue k ());
                    Mutex.unlock frame.fmu
                    (* abandon: the worker returns to its scheduler loop *)
                  end)
          | Program.Get h ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  Chaos.point Chaos.Get;
                  Metrics.incr m_gets;
                  Trace_event.instant ~cat:"runtime" "get";
                  Flight.note "get";
                  Program.Handle.claim_touch h;
                  let saved = get_cur () in
                  let resume () =
                    set_cur
                      (sched.cb.Events.on_get ~cur:saved
                         ~put:(Program.Handle.last_exn h));
                    Effect.Deep.continue k (Program.Handle.result_exn h)
                  in
                  if Program.Handle.add_waiter h (fun () -> push_task sched resume)
                  then () (* parked until the future is fulfilled *)
                  else resume ())
          | Program.Read loc ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  sched.cb.Events.on_read (get_cur ()) loc;
                  Effect.Deep.continue k ())
          | Program.Write loc ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  sched.cb.Events.on_write (get_cur ()) loc;
                  Effect.Deep.continue k ())
          | Program.Work n ->
              Some
                (fun (k : (b, _) Effect.Deep.continuation) ->
                  sched.cb.Events.on_work (get_cur ()) n;
                  Effect.Deep.continue k ())
          | _ -> None);
    }

let find_task sched me =
  let steal () =
    let n = Array.length sched.deques in
    let rec try_steal i =
      if i >= n then None
      else
        let victim = (me + 1 + i) mod n in
        match Deque.steal_top sched.deques.(victim) with
        | Some t ->
            Metrics.incr m_steals;
            if Telemetry.armed () then begin
              let st = sched.wstats.(me) in
              st.p_steals <- st.p_steals + 1
            end;
            Trace_event.instant ~cat:"runtime" "steal";
            Flight.note ~arg:victim "steal";
            Chaos.point Chaos.Steal;
            Some t
        | None -> try_steal (i + 1)
    in
    try_steal 0
  in
  let own () = Deque.pop_bottom sched.deques.(me) in
  (* chaos can invert the pop-before-steal preference, forcing help-first
     schedules (remote continuations) that rarely arise naturally *)
  if Chaos.force_steal () then
    match steal () with Some t -> Some t | None -> own ()
  else match own () with Some t -> Some t | None -> steal ()

let worker_loop sched me =
  Domain.DLS.set worker_key me;
  Metrics.domain_enter ();
  let st = sched.wstats.(me) in
  let idle_spins = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get sched.quiescent || Atomic.get sched.failure <> None then
      continue_ := false
    else begin
      match
        (* a raise from the scheduler itself (e.g. an injected steal
           fault) must fail the run, not kill the domain *)
        try find_task sched me
        with e ->
          record_failure sched e;
          None
      with
      | Some t ->
          idle_spins := 0;
          Metrics.incr m_tasks;
          if Telemetry.armed () then st.p_tasks <- st.p_tasks + 1;
          (try
             Chaos.point Chaos.Task;
             Flight.wrap "task" (fun () ->
                 Trace_event.with_span ~cat:"runtime" "task" t)
           with e -> record_failure sched e);
          if Atomic.fetch_and_add sched.live (-1) = 1 then
            Atomic.set sched.quiescent true
      | None ->
          incr idle_spins;
          if Telemetry.armed () then st.p_idle_spins <- st.p_idle_spins + 1;
          if !idle_spins < 100 then Domain.cpu_relax ()
          else begin
            idle_spins := 0;
            Unix.sleepf 1e-4
          end
    end
  done;
  Metrics.domain_exit ()

let run ?workers cb ~root main =
  let nw =
    match workers with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Par_exec.run: workers must be >= 1"
    | None -> Domain.recommended_domain_count ()
  in
  let sched =
    {
      cb;
      deques = Array.init nw (fun _ -> Deque.create ());
      wstats =
        Array.init nw (fun _ ->
            { p_tasks = 0; p_steals = 0; p_idle_spins = 0 });
      live = Atomic.make 0;
      quiescent = Atomic.make false;
      failure = Atomic.make None;
    }
  in
  Atomic.set live_sched (Some sched);
  let result = ref None in
  let final = ref root in
  (* the root task *)
  Atomic.incr sched.live;
  Deque.push_bottom sched.deques.(0) (fun () ->
      set_cur root;
      exec_frame sched (fun _root_frame ->
          let r = main () in
          Effect.perform Program.Sync;
          let last = get_cur () in
          cb.Events.on_put last;
          result := Some r;
          final := last));
  Fun.protect ~finally:(fun () ->
      (* freeze the end-of-run probe before unpublishing the scheduler *)
      Atomic.set last_probe_v (Some (probe_of_sched sched));
      Atomic.set live_sched None)
  @@ fun () ->
  let others = List.init (nw - 1) (fun i -> Domain.spawn (fun () -> worker_loop sched (i + 1))) in
  worker_loop sched 0;
  List.iter Domain.join others;
  (match Atomic.get sched.failure with
  | Some (e, bt) ->
      (* cancel cleanly: every worker has stopped on the failure flag;
         drain the queued-but-unstarted tasks (and any continuations they
         capture) so nothing lingers, then surface the first exception at
         the join with its original backtrace *)
      Array.iter
        (fun d ->
          let rec drain () =
            match Deque.steal_top d with Some _ -> drain () | None -> ()
          in
          drain ())
        sched.deques;
      (* injected chaos faults are expected synthetic failures and would
         bury the flight window of a real crash behind them *)
      (match e with
      | Sfr_chaos.Chaos.Injected _ -> ()
      | _ -> Flight.crash_dump ~reason:"uncaught executor exception");
      Printexc.raise_with_backtrace e bt
  | None -> ());
  match !result with
  | Some r -> (r, !final)
  | None ->
      raise
        (Program.Unstructured_use
           "parallel execution reached quiescence without completing: the \
            program deadlocks (futures are not structured)")
