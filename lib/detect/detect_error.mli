(** Typed errors for detector misuse.

    Detectors are [Events.callbacks] clients whose per-strand state is an
    extensible [Events.state]. Mixing states from two different detectors
    (e.g. feeding an [Sf_order] state into [F_order]'s callbacks) is a
    programming error in the harness, not a property of the analyzed
    program. Historically these surfaced as bare [Invalid_argument]
    strings; the chaos layer needs to distinguish "the system under test
    misbehaved" from "the harness wired detectors wrongly", so they are
    now a typed exception carrying structured context. *)

type t =
  | Foreign_state of { detector : string; context : string }
      (** [detector] received an [Events.state] it did not create.
          [context] names the callback or query that unwrapped it. *)
  | Unsupported of { detector : string; feature : string }
      (** [detector] was asked for a capability it does not provide
          (e.g. a parallel run of a serial-only detector). *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val foreign_state : detector:string -> context:string -> 'a
(** [foreign_state ~detector ~context] raises [Error (Foreign_state _)]. *)

val unsupported : detector:string -> feature:string -> 'a
(** [unsupported ~detector ~feature] raises [Error (Unsupported _)]. *)
