(** Deterministic in-memory transport for {!Server}: a client that
    "connects" by function call, so protocol, backpressure, overload
    and fault behaviour are all testable single-threaded with a
    synthetic clock — no sockets anywhere.

    Wire faults come from {!Sfr_chaos.Chaos.wire_fault}: when a chaos
    campaign is armed with a non-zero [wire_rate], each client frame
    crossing {!send_frame} may be truncated, duplicated, bit-flipped
    or dropped-with-hangup, deterministically per (seed, frame index).
    Faults mangle the {e byte image} after encoding — exactly what a
    broken network would do to a real socket.

    The client tracks credit like a well-behaved real client: {!pump}
    sends DATA only up to the granted window (override with
    [~ignore_credit:true] to simulate a hostile one). With an inline
    server ([pool_domains = 0]) every reply is available as soon as
    the call returns; with a pool, {!await_replies} spins until the
    server's drain catches up. *)

type client

val connect : Server.t -> client

val raw_send : client -> Bytes.t -> unit
(** Push raw bytes (no framing, no chaos) — for malformed-stream
    tests. *)

val send_frame : ?chaos:bool -> client -> Frame.frame -> unit
(** Encode and deliver one frame, applying a chaos wire fault when
    [chaos] (default [true]) and a campaign is armed. A truncation
    delivers the mangled prefix and marks the client {!torn} (later
    sends are suppressed, like a broken pipe); a disconnect also
    reports the hangup to the server. *)

val disconnect : client -> unit
(** Report transport hangup (idempotent). *)

val replies : client -> Frame.frame list
(** Every frame the server has sent so far, in order. *)

val last_terminal : client -> Frame.frame option
(** The final [VERDICT] / [REJECT], if one arrived. *)

val credit : client -> int
(** Unused send credit (from WELCOME plus CREDIT minus sent DATA). *)

val torn : client -> bool
(** A chaos fault tore this client's uplink. *)

val session_id : client -> int option

val hello : ?chaos:bool -> client -> unit

val pump : ?chaos:bool -> ?ignore_credit:bool -> ?frame:int ->
  client -> Bytes.t -> pos:int -> len:int -> int
(** Stream a slice of a .sflog image as DATA frames of at most [frame]
    bytes (default 4096), never exceeding the current credit unless
    [ignore_credit]. Returns how many bytes were actually framed and
    sent — less than [len] when credit ran dry or the uplink tore. *)

val close : ?chaos:bool -> client -> unit

val run_log : ?chaos:bool -> ?frame:int -> client -> Bytes.t -> unit
(** The whole client lifecycle: {!hello}, {!pump} in credit-sized
    bursts until the image is fully sent (waiting for credit as
    needed), then {!close}. Stops early if the uplink tears or a
    terminal reply arrives. *)

val await_replies : ?min:int -> ?spin:int -> client -> bool
(** Spin (with [Domain.cpu_relax]) until at least [min] (default 1)
    reply frames arrived or ~[spin] iterations passed. [true] iff
    satisfied. Inline servers satisfy immediately. *)
