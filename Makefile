.PHONY: all build test bench profile examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all --scale default --repeats 3

profile:
	dune exec bench/main.exe -- profile --scale small

examples:
	dune exec examples/quickstart.exe
	dune exec examples/smith_waterman.exe
	dune exec examples/pipeline_search.exe
	dune exec examples/race_debugging.exe
	dune exec examples/video_pipeline.exe

clean:
	dune clean
