(** Random structured-futures programs for differential testing.

    A program is first generated as a pure operation tree (so its dag
    shape is a function of the seed alone, independent of executor and
    schedule), then interpreted over the {!Sfr_runtime.Program} DSL.
    Handles flow in the three structured-legal ways: gotten later in the
    creating frame; passed down to tasks started after the create; and
    handed up from a spawned child to its parent across the joining sync.
    Single-touch is respected by construction; memory accesses hit a small
    shared location space, so determinacy races occur naturally — the
    differential tests compare every detector's verdicts (and the
    ground-truth oracle's) on exactly the same dag.

    The interpreter's internal bookkeeping (handle table, result
    accumulation) uses unmonitored memory, so detectors see only the
    generated accesses. *)

type t

type op =
  | OSpawn of int * op list  (** task id, body *)
  | OCreate of int * int * op list  (** task id, future index, body *)
  | OSync
  | OGet of int
  | ORead of int
  | OWrite of int  (** in race-free mode: index into the task's private row *)
  | OWork of int
      (** The pure operation tree. Public so the chaos shrinker can
          delta-debug a failing program: edit the tree, then rebuild a
          runnable [t] with {!of_tree}. *)

val generate : ?race_free:bool -> seed:int -> ops:int -> depth:int -> locs:int -> unit -> t
(** Deterministic in all arguments. [ops] bounds the total operation
    count, [depth] the task-nesting depth, [locs] the shared-location
    space size. With [race_free] (default false), writes target a region
    private to the issuing task and reads a read-only shared region, so
    the program provably has no determinacy race — the soundness (no
    false positives) counterpart to the default racy mode. *)

type instance = {
  program : unit -> unit;
  checksum : unit -> int;
      (** call only after the executor returns: futures may outlive the
          root computation, and their gets contribute. Accumulates future
          results, which are deterministic by construction, so executors
          and schedules can be cross-checked. *)
  mem_base : int;
      (** location ID of the shared array's element 0 — subtract it to
          compare race verdicts across runs (each instance allocates a
          fresh location range). *)
}

val instantiate : t -> instance
(** Instantiate afresh per run. *)

val stats : t -> int * int * int
(** [(ops, futures, gets)] of the generated tree. *)

val tree : t -> op list
val locs : t -> int
val race_free : t -> bool

val size : t -> int
(** Total node count of the operation tree. *)

val of_tree : ?race_free:bool -> locs:int -> op list -> t
(** Rebuild a runnable program from an edited tree, recomputing the
    future/task tables. OGets whose creating OCreate no longer precedes
    them in preorder are dropped (an edit may have removed the create),
    so any tree edit yields a program that is safe to instantiate. *)
