(* Event-log record/replay tests.

   The contract under test: (1) round trip — replaying a recorded log
   under SF-Order reports exactly the races the live detector reports on
   the same execution; (2) sharded replay is shard-count-invariant;
   (3) every malformed log (bad magic, truncated anywhere, bit flips,
   out-of-range state IDs, overlong varints) is a typed [Error] with a
   byte offset, never an exception — including the torn logs produced by
   chaos faults at the Record/Log_flush sites; (4) Trace.accesses is in
   its documented deterministic order. *)

module Log_format = Sfr_eventlog.Log_format
module Recorder = Sfr_eventlog.Recorder
module Reader = Sfr_eventlog.Reader
module Replay = Sfr_eventlog.Replay
module Shard_replay = Sfr_eventlog.Shard_replay
module Events = Sfr_runtime.Events
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Race = Sfr_detect.Race
module Chaos = Sfr_chaos.Chaos

let check = Alcotest.check

(* -- helpers ----------------------------------------------------------- *)

let with_temp_log f =
  let path = Filename.temp_file "sfr_test" ".sflog" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

(* Record [program] serially and return the loaded log. *)
let record program =
  with_temp_log (fun path ->
      let rec_, cb, root = Recorder.create ~path () in
      program cb root;
      let stats = Recorder.close rec_ in
      match Reader.load_file path with
      | Ok log -> (log, stats, read_file path)
      | Error e -> Alcotest.failf "fresh log unreadable: %s" (Log_format.error_to_string e))

let serial p cb root = ignore (Serial_exec.run cb ~root p)

(* Races of a live serial SF-Order run, normalized against [base] so
   verdicts compare across program instantiations. *)
let norm base reports =
  List.map
    (fun (r : Race.report) ->
      Printf.sprintf "loc+%d %s f%d f%d x%d" (r.Race.loc - base)
        (Format.asprintf "%a" Race.pp_kind r.Race.kind)
        r.Race.prev_future r.Race.cur_future r.Race.count)
    reports

let live_races base run =
  let det = Sf_order.make () in
  run det.Detector.callbacks det.Detector.root;
  norm base (Race.reports det.Detector.races)

let replay_races base log =
  let det = Sf_order.make () in
  match Replay.run_detector log det with
  | Ok _ -> norm base (Race.reports det.Detector.races)
  | Error e -> Alcotest.failf "replay failed: %s" (Replay.error_to_string e)

let slist = Alcotest.list Alcotest.string

(* -- round trips -------------------------------------------------------- *)

let test_round_trip_workloads () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun inject_race ->
          let live =
            let i = w.Workload.instantiate ~inject_race Workload.Tiny in
            live_races i.Workload.mem_base (fun cb root ->
                serial (fun () -> i.Workload.program ()) cb root)
          in
          let i = w.Workload.instantiate ~inject_race Workload.Tiny in
          let log, stats, _ =
            record (fun cb root -> serial (fun () -> i.Workload.program ()) cb root)
          in
          check Alcotest.int "one worker stream" 1 stats.Recorder.workers;
          check Alcotest.bool "events recorded" true (stats.Recorder.events > 0);
          check slist
            (Printf.sprintf "%s inject:%b replay == live" w.Workload.name inject_race)
            live
            (replay_races i.Workload.mem_base log);
          if inject_race then
            check Alcotest.bool
              (w.Workload.name ^ " injected race replays")
              true
              (replay_races i.Workload.mem_base log <> []))
        [ false; true ])
    Registry.all

let test_round_trip_synthetic () =
  for seed = 1 to 10 do
    let t = Synthetic.generate ~seed ~ops:150 ~depth:4 ~locs:8 () in
    let live =
      let i = Synthetic.instantiate t in
      live_races i.Synthetic.mem_base (fun cb root ->
          serial (fun () -> i.Synthetic.program ()) cb root)
    in
    let i = Synthetic.instantiate t in
    let log, _, _ =
      record (fun cb root -> serial (fun () -> i.Synthetic.program ()) cb root)
    in
    check slist
      (Printf.sprintf "seed %d replay == live" seed)
      live
      (replay_races i.Synthetic.mem_base log)
  done

(* A parallel recording has no canonical event order, but the race
   verdict is schedule-independent: racy locations must match the serial
   live run. *)
let test_parallel_log_replays () =
  let locs_of races =
    List.sort_uniq compare
      (List.filter_map
         (fun s -> Scanf.sscanf_opt s "loc+%d " (fun l -> l))
         races)
  in
  for seed = 1 to 5 do
    let t = Synthetic.generate ~seed ~ops:120 ~depth:4 ~locs:6 () in
    let live =
      let i = Synthetic.instantiate t in
      live_races i.Synthetic.mem_base (fun cb root ->
          serial (fun () -> i.Synthetic.program ()) cb root)
    in
    let i = Synthetic.instantiate t in
    let log, _, _ =
      record (fun cb root ->
          ignore (Par_exec.run ~workers:3 cb ~root (fun () -> i.Synthetic.program ())))
    in
    check
      (Alcotest.list Alcotest.int)
      (Printf.sprintf "seed %d parallel-log racy locations" seed)
      (locs_of live)
      (locs_of (replay_races i.Synthetic.mem_base log))
  done

(* -- sharded replay ----------------------------------------------------- *)

let shard_races base log shards =
  match Shard_replay.run log ~shards with
  | Ok r -> norm base r.Shard_replay.reports
  | Error e -> Alcotest.failf "shard replay failed: %s" (Replay.error_to_string e)

let test_shard_invariance () =
  for seed = 1 to 5 do
    let t = Synthetic.generate ~seed ~ops:150 ~depth:4 ~locs:6 () in
    let i = Synthetic.instantiate t in
    let base = i.Synthetic.mem_base in
    let log, _, _ =
      record (fun cb root -> serial (fun () -> i.Synthetic.program ()) cb root)
    in
    let one = shard_races base log 1 in
    check slist (Printf.sprintf "seed %d: 2 shards == 1" seed) one
      (shard_races base log 2);
    check slist (Printf.sprintf "seed %d: 8 shards == 1" seed) one
      (shard_races base log 8);
    (* and the sharded checker agrees with plain replay detection *)
    check slist
      (Printf.sprintf "seed %d: sharded == replayed detector" seed)
      (replay_races base log) one
  done

let test_shard_of () =
  check Alcotest.int "1 shard is shard 0" 0 (Shard_replay.shard_of ~loc:12345 ~shards:1);
  let hit = Array.make 8 0 in
  for loc = 0 to 1023 do
    let s = Shard_replay.shard_of ~loc ~shards:8 in
    check Alcotest.bool "in range" true (s >= 0 && s < 8);
    hit.(s) <- hit.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      check Alcotest.bool (Printf.sprintf "shard %d populated" i) true (n > 32))
    hit

(* -- malformed logs ----------------------------------------------------- *)

let expect_error name bytes pred =
  match Reader.load_bytes bytes with
  | Ok _ -> Alcotest.failf "%s: accepted a malformed log" name
  | Error e ->
      check Alcotest.bool
        (Printf.sprintf "%s: %s" name (Log_format.error_to_string e))
        true (pred e)

let valid_log_image () =
  let t = Synthetic.generate ~seed:3 ~ops:80 ~depth:3 ~locs:4 () in
  let i = Synthetic.instantiate t in
  let _, _, bytes =
    record (fun cb root -> serial (fun () -> i.Synthetic.program ()) cb root)
  in
  bytes

let test_malformed_corpus () =
  let img = valid_log_image () in
  expect_error "empty" Bytes.empty (function
    | Log_format.Truncated _ | Log_format.Bad_magic _ -> true
    | _ -> false);
  let bad_magic = Bytes.copy img in
  Bytes.blit_string "XXXX" 0 bad_magic 0 4;
  expect_error "bad magic" bad_magic (function
    | Log_format.Bad_magic { got } -> got = "XXXX"
    | _ -> false);
  let bad_version = Bytes.copy img in
  Bytes.set bad_version 4 '\042';
  expect_error "bad version" bad_version (function
    | Log_format.Bad_version { got } -> got = 42
    | _ -> false);
  let flipped = Bytes.copy img in
  let mid = 5 + ((Bytes.length img - 5) / 2) in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xFF));
  expect_error "flipped payload byte" flipped (fun _ -> true);
  let bad_crc = Bytes.copy img in
  let last = Bytes.length img - 1 in
  Bytes.set bad_crc last (Char.chr (Char.code (Bytes.get bad_crc last) lxor 1));
  expect_error "bad crc" bad_crc (function
    | Log_format.Bad_crc _ -> true
    | _ -> false)

(* Any strict prefix of a valid log is invalid (the footer is mandatory)
   and must surface as a typed error with a sane offset — this is the
   torn/truncated sweep at every byte boundary. *)
let test_every_prefix_rejected () =
  let img = valid_log_image () in
  for len = 0 to Bytes.length img - 1 do
    expect_error
      (Printf.sprintf "prefix %d/%d" len (Bytes.length img))
      (Bytes.sub img 0 len)
      (fun e ->
        match e with
        | Log_format.Truncated { offset; _ }
        | Log_format.Bad_varint { offset }
        | Log_format.Bad_opcode { offset; _ }
        | Log_format.State_out_of_range { offset; _ }
        | Log_format.Corrupt { offset; _ } ->
            offset <= len
        | Log_format.Bad_magic _ | Log_format.Bad_version _ | Log_format.Bad_crc _
          ->
            true)
  done

(* Hand-crafted chunks: state IDs past the footer bound, and an overlong
   varint, both named by offset. *)
let craft_log ~payload ~events ~states ~workers =
  let b = Buffer.create 64 in
  Buffer.add_string b Log_format.magic;
  Buffer.add_char b (Char.chr Log_format.version);
  Buffer.add_char b '\001';
  Log_format.write_varint b 0;
  Log_format.write_varint b (Bytes.length payload);
  Buffer.add_bytes b payload;
  Buffer.add_char b '\000';
  Log_format.write_varint b events;
  Log_format.write_varint b states;
  Log_format.write_varint b workers;
  let crc =
    Log_format.crc32_update Log_format.crc32_init payload ~pos:0
      ~len:(Bytes.length payload)
  in
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((crc lsr (8 * i)) land 0xFF))
  done;
  Buffer.to_bytes b

let test_crafted_corruption () =
  (* Put { cur = 9 } against a footer declaring only 3 states *)
  let p = Buffer.create 8 in
  let _ = Log_format.write_event p ~last_loc:0 (Log_format.Put { cur = 9 }) in
  expect_error "state out of range"
    (craft_log ~payload:(Buffer.to_bytes p) ~events:1 ~states:3 ~workers:1)
    (function
      | Log_format.State_out_of_range { id = 9; bound = 3; offset } -> offset >= 5
      | _ -> false);
  (* opcode 0x3F is unused *)
  expect_error "bad opcode"
    (craft_log ~payload:(Bytes.make 1 '\063') ~events:1 ~states:1 ~workers:1)
    (function
      | Log_format.Bad_opcode { opcode = 0x3F; _ } -> true
      | _ -> false);
  (* 11 continuation bytes: varint longer than any 63-bit int *)
  let overlong = Bytes.make 12 '\xFF' in
  Bytes.set overlong 0 '\007' (* Read opcode *);
  expect_error "overlong varint"
    (craft_log ~payload:overlong ~events:1 ~states:1 ~workers:1)
    (function
      | Log_format.Bad_varint { offset } -> offset >= 5
      | _ -> false);
  (* footer undercounts the recorded events *)
  let p = Buffer.create 8 in
  let _ = Log_format.write_event p ~last_loc:0 (Log_format.Put { cur = 0 }) in
  let _ = Log_format.write_event p ~last_loc:0 (Log_format.Put { cur = 0 }) in
  expect_error "event count mismatch"
    (craft_log ~payload:(Buffer.to_bytes p) ~events:1 ~states:1 ~workers:1)
    (function
      | Log_format.Corrupt _ -> true
      | _ -> false)

(* Chaos faults at the Record / Log_flush sites abandon recordings
   mid-write; whatever ends up on disk must never crash the reader. *)
let test_chaos_torn_logs () =
  let cfg =
    {
      Chaos.default_config with
      Chaos.fault_rate = 0.02;
      fault_sites = [ Chaos.Record; Chaos.Log_flush ];
      max_faults = 1;
    }
  in
  let faulted = ref 0 in
  for seed = 1 to 20 do
    let t = Synthetic.generate ~seed ~ops:120 ~depth:4 ~locs:6 () in
    let i = Synthetic.instantiate t in
    with_temp_log (fun path ->
        let rec_, cb, root = Recorder.create ~buf_size:256 ~path () in
        let torn =
          match
            Chaos.with_armed ~config:cfg ~seed (fun () ->
                serial (fun () -> i.Synthetic.program ()) cb root)
          with
          | () ->
              ignore (Recorder.close rec_);
              false
          | exception Chaos.Injected _ ->
              incr faulted;
              true
        in
        match Reader.load_file path with
        | Ok log ->
            check Alcotest.bool "complete log is complete" false torn;
            check Alcotest.bool "events readable" true (Reader.n_events log >= 0)
        | Error e ->
            check Alcotest.bool
              (Printf.sprintf "seed %d torn log is a typed error: %s" seed
                 (Log_format.error_to_string e))
              true torn)
  done;
  check Alcotest.bool "some recordings actually faulted" true (!faulted > 0)

(* -- recorder odds and ends --------------------------------------------- *)

let test_close_idempotent () =
  let t = Synthetic.generate ~seed:1 ~ops:60 ~depth:3 ~locs:4 () in
  let i = Synthetic.instantiate t in
  with_temp_log (fun path ->
      let rec_, cb, root = Recorder.create ~path () in
      serial (fun () -> i.Synthetic.program ()) cb root;
      let a = Recorder.close rec_ in
      let b = Recorder.close rec_ in
      check Alcotest.bool "same stats" true (a = b))

(* The recorder/replay counters are process-global and accumulate across
   every test above; [Metrics.reset_all] is the test-only escape hatch
   that lets this accounting check start from zero. *)
let test_metrics_accounting () =
  let module Metrics = Sfr_obs.Metrics in
  Metrics.enable ();
  Metrics.reset_all ();
  let t = Synthetic.generate ~seed:11 ~ops:100 ~depth:4 ~locs:6 () in
  let i = Synthetic.instantiate t in
  let log, stats, _ =
    record (fun cb root -> serial (fun () -> i.Synthetic.program ()) cb root)
  in
  let get name =
    Option.value ~default:0 (List.assoc_opt name (Metrics.snapshot ()))
  in
  check Alcotest.int "eventlog.events matches recorder stats"
    stats.Recorder.events (get "eventlog.events");
  check Alcotest.bool "bytes_written is positive" true
    (get "eventlog.bytes_written" > 0);
  let det = Sf_order.make () in
  (match Replay.run_detector log det with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "replay failed: %s" (Replay.error_to_string e));
  check Alcotest.int "replay consumed every recorded event"
    stats.Recorder.events
    (get "eventlog.replay.events");
  Metrics.reset_all ()

let test_trace_accesses_sorted () =
  let w = Option.get (Registry.find "mm") in
  let i = w.Workload.instantiate ~inject_race:false Workload.Tiny in
  let trace, cb, root = Trace.make ~log_accesses:true () in
  serial (fun () -> i.Workload.program ()) cb root;
  let accs = Trace.accesses trace in
  check Alcotest.bool "accesses logged" true (accs <> []);
  let key (a : Trace.access) = (a.Trace.node, a.Trace.loc, a.Trace.is_write) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> key a <= key b && sorted rest
    | _ -> true
  in
  check Alcotest.bool "sorted by (node, loc, kind)" true (sorted accs)

let () =
  Alcotest.run "eventlog"
    [
      ( "round-trip",
        [
          Alcotest.test_case "registry workloads" `Quick test_round_trip_workloads;
          Alcotest.test_case "synthetic seeds" `Quick test_round_trip_synthetic;
          Alcotest.test_case "parallel recording" `Quick test_parallel_log_replays;
        ] );
      ( "shards",
        [
          Alcotest.test_case "shard-count invariance" `Quick test_shard_invariance;
          Alcotest.test_case "partition function" `Quick test_shard_of;
        ] );
      ( "malformed",
        [
          Alcotest.test_case "corpus" `Quick test_malformed_corpus;
          Alcotest.test_case "every prefix rejected" `Quick
            test_every_prefix_rejected;
          Alcotest.test_case "crafted corruption" `Quick test_crafted_corruption;
          Alcotest.test_case "chaos-torn logs" `Quick test_chaos_torn_logs;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "close is idempotent" `Quick test_close_idempotent;
          Alcotest.test_case "metrics accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "trace accesses sorted" `Quick
            test_trace_accesses_sorted;
        ] );
    ]
