(** F-Order — the parallel general-futures baseline (Xu et al. PPoPP'20;
    see DESIGN.md §5.4 for the substitution note).

    Without the structured-future restrictions, a bit per future is not
    enough: for a previous accessor [u ∈ F] and current strand [v ∈ G]
    with [F ≠ G], F-Order must know {e which} NSP exit points of [F]
    (create nodes, put node) reach [v], and check [u ⪯ w] against each in
    [F]'s series-parallel order. Hence a full hash table per strand
    mapping future ID to exit positions ({!Sfr_reach.Exit_map}) — the
    higher space and time overhead the paper contrasts with SF-Order's
    bitmaps (Figures 4, 5).

    Queries scan the stored exits of the queried future (O(k̂) worst
    case; the original's O(lg k̂) dominance search is not implemented).
    The access history keeps all readers between writes — general futures
    admit no 2k bound (paper Section 3.5). *)

val make :
  ?history:Access_history.sync_mode ->
  ?om:Sfr_om.Backend.name ->
  unit ->
  Detector.t
(** [om] selects the order-maintenance backend (default: the
    process-wide {!Sfr_om.Backend.default}). *)
