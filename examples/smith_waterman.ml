(* Smith-Waterman wavefront with one structured future per block — the
   dynamic-programming pattern (Singer et al., PPoPP'19) that motivates
   structured futures: lower span than the fork-join equivalent.

   Runs the alignment twice: once under full SF-Order detection (serial),
   once under the multicore work-stealing executor, and compares the
   wavefront's dag-derived parallelism against a fork-join version.

     dune exec examples/smith_waterman.exe                                 *)

module Workload = Sfr_workloads.Workload
module Sw = Sfr_workloads.Sw
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Sim_sched = Sfr_runtime.Sim_sched
module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Stats = Sfr_support.Stats

let () =
  let scale = Workload.Small in
  print_endline "Smith-Waterman with structured futures";

  (* 1. full race detection, serial execution *)
  let inst = Sw.workload.Workload.instantiate scale in
  let det = Sf_order.make () in
  let (), dt =
    Stats.time (fun () ->
        Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
          inst.Workload.program
        |> fst)
  in
  Printf.printf "serial + SF-Order: %.3f s, %d queries, races: %d, verified: %b\n"
    dt (det.Detector.queries ())
    (List.length (Detector.racy_locations det))
    (inst.Workload.verify ());

  (* 2. multicore execution (no detection) *)
  let inst = Sw.workload.Workload.instantiate scale in
  let (), dt =
    Stats.time (fun () ->
        Par_exec.run ~workers:2 Sfr_runtime.Events.null
          ~root:Sfr_runtime.Events.Unit_state inst.Workload.program
        |> fst)
  in
  Printf.printf "parallel x2 (no detection): %.3f s, verified: %b\n" dt
    (inst.Workload.verify ());

  (* 3. the structured-futures advantage: dag parallelism *)
  let inst = Sw.workload.Workload.instantiate scale in
  let trace, cb, root = Trace.make () in
  let (), _ = Serial_exec.run cb ~root inst.Workload.program in
  let dag = Trace.dag trace in
  let work = Dag_algo.work dag in
  let span = Dag_algo.span dag Dag_algo.Full in
  Printf.printf
    "wavefront dag: %d futures, work %d, span %d => parallelism %.1f\n"
    (Dag.n_futures dag) work span
    (float_of_int work /. float_of_int (max 1 span));
  List.iter
    (fun p ->
      Printf.printf "  simulated speedup on %2d workers: %.2fx\n" p
        (Sim_sched.speedup dag ~workers:p))
    [ 2; 4; 8; 16 ]
