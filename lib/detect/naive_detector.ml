module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Trace = Sfr_runtime.Trace

type verdict = {
  racy_locations : int list;
  pairs_checked : int;
  races_found : int;
}

let analyze dag accesses =
  let oracle = Dag_algo.build_oracle dag Dag_algo.Full in
  let by_loc : (int, Trace.access list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (a : Trace.access) ->
      Hashtbl.replace by_loc a.loc
        (a :: Option.value ~default:[] (Hashtbl.find_opt by_loc a.loc)))
    accesses;
  let pairs = ref 0 and races = ref 0 in
  let racy = ref [] in
  Hashtbl.iter
    (fun loc accs ->
      let arr = Array.of_list accs in
      let n = Array.length arr in
      let loc_racy = ref false in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = arr.(i) and b = arr.(j) in
          if a.Trace.is_write || b.Trace.is_write then begin
            incr pairs;
            if
              a.Trace.node <> b.Trace.node
              && Dag_algo.logically_parallel oracle a.Trace.node b.Trace.node
            then begin
              incr races;
              loc_racy := true
            end
          end
        done
      done;
      if !loc_racy then racy := loc :: !racy)
    by_loc;
  {
    racy_locations = List.sort compare !racy;
    pairs_checked = !pairs;
    races_found = !races;
  }
