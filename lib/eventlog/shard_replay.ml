module Events = Sfr_runtime.Events
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Access_history = Sfr_detect.Access_history
module Race = Sfr_detect.Race
module Metrics = Sfr_obs.Metrics

let m_accesses = Metrics.counter "eventlog.shard.accesses"
let m_shard_max = Metrics.counter ~kind:`Max "eventlog.shard.max_accesses"

type result = {
  reports : Race.report list;
  racy_locations : int list;
  structural : int;
  accesses : int;
  shard_sizes : int array;
  queries : int;
}

(* Fibonacci multiplicative hash: spreads clustered location ranges (each
   workload allocates a contiguous block) evenly over the shards. *)
let shard_of ~loc ~shards =
  if shards = 1 then 0 else (loc * 0x9E3779B1 land max_int) mod shards

type access = { state : Events.state; loc : int; is_write : bool }

let check_shard ~precedes ~future_of (accesses : access array) =
  let history = Access_history.create ~sync:`Unsynchronized Access_history.Keep_all in
  let races = Race.create () in
  Array.iter
    (fun { state; loc; is_write } ->
      if is_write then
        Access_history.on_write history ~loc ~accessor:state
          ~check:(fun ~prev ~prev_is_writer ->
            if not (precedes prev state) then
              Race.report races ~loc
                ~kind:(if prev_is_writer then Race.Write_write else Race.Read_write)
                ~prev_future:(future_of prev) ~cur_future:(future_of state))
      else
        Access_history.on_read history ~loc ~accessor:state
          ~check_writer:(fun w ->
            if not (precedes w state) then
              Race.report races ~loc ~kind:Race.Write_read
                ~prev_future:(future_of w) ~cur_future:(future_of state)))
    accesses;
  races

let run reader ~shards =
  if shards < 1 then invalid_arg "Shard_replay.run: shards must be >= 1";
  let det, precedes = Sf_order.make_with_precedes () in
  let future_of = Sf_order.strand_future in
  let dummy = { state = Events.Unit_state; loc = 0; is_write = false } in
  let accesses = Sfr_support.Vec.create ~dummy () in
  let structural = ref 0 in
  (* phase 1: structural replay + access collection, in linearized order *)
  let apply ~lookup ~define ev =
    match (ev : Log_format.event) with
    | Read { cur; loc } ->
        ignore
          (Sfr_support.Vec.push accesses
             { state = lookup cur; loc; is_write = false })
    | Write { cur; loc } ->
        ignore
          (Sfr_support.Vec.push accesses
             { state = lookup cur; loc; is_write = true })
    | _ ->
        incr structural;
        Replay.apply_callbacks det.Detector.callbacks ~lookup ~define ev
  in
  match Replay.drive reader ~apply ~root:det.Detector.root with
  | Error _ as e -> e
  | Ok _ ->
      let n_accesses = Sfr_support.Vec.length accesses in
      Metrics.add m_accesses n_accesses;
      (* phase 2: partition by location hash, preserving phase-1 order *)
      let shard_sizes = Array.make shards 0 in
      Sfr_support.Vec.iter
        (fun a ->
          let s = shard_of ~loc:a.loc ~shards in
          shard_sizes.(s) <- shard_sizes.(s) + 1)
        accesses;
      Array.iter (fun n -> Metrics.add m_shard_max n) shard_sizes;
      let parts = Array.init shards (fun s -> Array.make shard_sizes.(s) dummy) in
      let fill = Array.make shards 0 in
      Sfr_support.Vec.iter
        (fun a ->
          let s = shard_of ~loc:a.loc ~shards in
          parts.(s).(fill.(s)) <- a;
          fill.(s) <- fill.(s) + 1)
        accesses;
      let shard_races = Array.make shards (Race.create ()) in
      if shards = 1 then
        shard_races.(0) <- check_shard ~precedes ~future_of parts.(0)
      else begin
        let domains =
          Array.init (shards - 1) (fun i ->
              Domain.spawn (fun () ->
                  check_shard ~precedes ~future_of parts.(i + 1)))
        in
        shard_races.(0) <- check_shard ~precedes ~future_of parts.(0);
        Array.iteri
          (fun i d -> shard_races.(i + 1) <- Domain.join d)
          domains
      end;
      (* deterministic merge: shards partition locations, so sorting the
         concatenated per-shard reports by location is a disjoint merge *)
      let reports =
        Array.to_list shard_races
        |> List.concat_map Race.reports
        |> List.sort (fun (a : Race.report) b -> compare a.Race.loc b.Race.loc)
      in
      Ok
        {
          reports;
          racy_locations = List.map (fun (r : Race.report) -> r.Race.loc) reports;
          structural = !structural;
          accesses = n_accesses;
          shard_sizes;
          queries = det.Detector.queries ();
        }
