(** Incremental .sflog decoder for streaming ingestion.

    {!Reader} wants the whole file before it decodes anything — it
    validates the footer CRC first, then walks the chunks. A long-lived
    ingestion service cannot wait for the footer: chunks arrive over a
    socket, the stream may stop at any byte, and detection should track
    the prefix received so far. This module decodes the same wire format
    {e as bytes arrive}: feed it arbitrary byte slices, drain whatever
    events became fully decodable, and settle the footer (CRC over every
    payload byte, declared counts) when — if ever — it shows up.

    Differences from the offline reader, by necessity of streaming:

    - State IDs cannot be bounds-checked against the footer's declared
      count mid-stream (the footer hasn't arrived); the decoder instead
      tracks the maximum ID referenced and validates it against the
      footer once seen. {!Stream_replay} additionally treats a reference
      that never resolves as a typed inconsistency.
    - A decode that runs out of {e fed} bytes is not an error, it is
      "wait for more". Only {!finish} — the caller declaring end of
      input — turns an incomplete decode into the typed
      [Truncated]/[Bad_*] error the offline reader would report.

    Errors are sticky: after the first [Error], every subsequent
    {!drain}/{!finish} returns the same error and fed bytes are
    discarded. All offsets in errors are absolute stream offsets, as in
    {!Reader}. *)

type summary = {
  s_events : int;  (** footer-declared (and verified) event count *)
  s_states : int;  (** exclusive upper bound on state IDs *)
  s_workers : int;  (** declared worker-stream count *)
}

type t

val create : ?max_workers:int -> unit -> t
(** [max_workers] (default 1024) bounds the worker IDs accepted in chunk
    headers before the footer arrives — a corrupt varint must not make
    the decoder allocate per-worker state for a garbage ID. *)

val feed : t -> Bytes.t -> pos:int -> len:int -> unit
(** Append a byte slice to the decode buffer (copied; the caller may
    reuse the bytes). No-op after an error. *)

val drain : t -> ((int * Log_format.event) list, Log_format.error) result
(** Decode as far as the fed bytes allow and return the newly complete
    [(worker, event)] pairs in file order. [Ok []] means "need more
    bytes" (or the footer already settled). Decode problems that more
    bytes cannot fix — bad magic, unknown opcode, a footer whose CRC or
    counts disagree with the payload — are returned (and latched)
    immediately. *)

val finish : t -> (summary, Log_format.error) result
(** Declare end of input. [Ok summary] iff a footer arrived, validated,
    and no bytes trail it; otherwise the typed error the torn stream
    amounts to (for a mid-chunk tear: [Truncated] at the exact absolute
    offset). Idempotent. *)

val finished : t -> summary option
(** [Some] once the footer has validated (before or after {!finish}). *)

val consumed : t -> int
(** Absolute stream offset fully decoded so far — the "analyzed prefix
    up to byte N" a torn-stream verdict reports. *)

val buffered : t -> int
(** Bytes fed but not yet decodable (awaiting the rest of an event,
    chunk header, or footer). *)

val events_decoded : t -> int
