module Bitset = Sfr_support.Bitset

type view = Full | Psp

(* Fake join edges (G, s) become last(G) -> s in the PSP view; index them
   by source node on demand. *)
let fake_succs_of t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (g, s) ->
      match Dag.last_of t g with
      | None -> () (* future never completed: dag recorded mid-flight *)
      | Some last ->
          let existing = try Hashtbl.find tbl last with Not_found -> [] in
          Hashtbl.replace tbl last (s :: existing))
    (Dag.fake_joins t);
  tbl

let fake_preds_of t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (g, s) ->
      match Dag.last_of t g with
      | None -> ()
      | Some last ->
          let existing = try Hashtbl.find tbl s with Not_found -> [] in
          Hashtbl.replace tbl s (last :: existing))
    (Dag.fake_joins t);
  tbl

let succs t view v =
  match view with
  | Full -> List.map snd (Dag.succs t v)
  | Psp ->
      let base =
        List.filter_map
          (fun (ek, w) ->
            match ek with Dag.Get_edge -> None | Dag.Sp | Dag.Create_edge -> Some w)
          (Dag.succs t v)
      in
      base @ (try Hashtbl.find (fake_succs_of t) v with Not_found -> [])

let preds t view v =
  match view with
  | Full -> List.map snd (Dag.preds t v)
  | Psp ->
      let base =
        List.filter_map
          (fun (ek, w) ->
            match ek with Dag.Get_edge -> None | Dag.Sp | Dag.Create_edge -> Some w)
          (Dag.preds t v)
      in
      base @ (try Hashtbl.find (fake_preds_of t) v with Not_found -> [])

(* Single-source BFS; uses a visited array sized to the dag. *)
let reaches t view u v =
  if u = v then true
  else begin
    let n = Dag.n_nodes t in
    let visited = Array.make n false in
    let fakes = match view with Psp -> Some (fake_succs_of t) | Full -> None in
    let node_succs x =
      match view with
      | Full -> List.map snd (Dag.succs t x)
      | Psp ->
          let base =
            List.filter_map
              (fun (ek, w) ->
                match ek with
                | Dag.Get_edge -> None
                | Dag.Sp | Dag.Create_edge -> Some w)
              (Dag.succs t x)
          in
          let extra =
            match fakes with
            | Some tbl -> ( try Hashtbl.find tbl x with Not_found -> [])
            | None -> []
          in
          base @ extra
    in
    let queue = Queue.create () in
    Queue.push u queue;
    visited.(u) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      List.iter
        (fun y ->
          if y = v then found := true
          else if not visited.(y) then begin
            visited.(y) <- true;
            Queue.push y queue
          end)
        (node_succs x)
    done;
    !found
  end

type reach_oracle = { anc : Bitset.t array }

(* Node IDs are topological by construction (see Dag doc), so a single
   left-to-right pass computes ancestor closures. *)
let build_oracle t view =
  let n = Dag.n_nodes t in
  let fake_preds = match view with Psp -> Some (fake_preds_of t) | Full -> None in
  let anc = Array.init n (fun _ -> Bitset.create ()) in
  for v = 0 to n - 1 do
    let ps =
      match view with
      | Full -> List.map snd (Dag.preds t v)
      | Psp ->
          let base =
            List.filter_map
              (fun (ek, w) ->
                match ek with
                | Dag.Get_edge -> None
                | Dag.Sp | Dag.Create_edge -> Some w)
              (Dag.preds t v)
          in
          let extra =
            match fake_preds with
            | Some tbl -> ( try Hashtbl.find tbl v with Not_found -> [])
            | None -> []
          in
          base @ extra
    in
    List.iter
      (fun u ->
        assert (u < v);
        Bitset.union_into ~dst:anc.(v) anc.(u);
        Bitset.add anc.(v) u)
      ps
  done;
  { anc }

let oracle_reaches o u v = u = v || Bitset.mem o.anc.(v) u
let precedes o u v = u <> v && Bitset.mem o.anc.(v) u
let logically_parallel o u v = u <> v && (not (precedes o u v)) && not (precedes o v u)

let work t = Dag.total_cost t

let span t view =
  let n = Dag.n_nodes t in
  let fake_preds = match view with Psp -> Some (fake_preds_of t) | Full -> None in
  let depth = Array.make n 0 in
  let best = ref 0 in
  for v = 0 to n - 1 do
    let ps =
      match view with
      | Full -> List.map snd (Dag.preds t v)
      | Psp ->
          let base =
            List.filter_map
              (fun (ek, w) ->
                match ek with
                | Dag.Get_edge -> None
                | Dag.Sp | Dag.Create_edge -> Some w)
              (Dag.preds t v)
          in
          let extra =
            match fake_preds with
            | Some tbl -> ( try Hashtbl.find tbl v with Not_found -> [])
            | None -> []
          in
          base @ extra
    in
    let before = List.fold_left (fun acc u -> max acc depth.(u)) 0 ps in
    depth.(v) <- before + Dag.cost_of t v;
    if depth.(v) > !best then best := depth.(v)
  done;
  !best

let topological_order t =
  let n = Dag.n_nodes t in
  let order = Array.init n Fun.id in
  (if n < 10_000 then
     Array.iter
       (fun v ->
         List.iter (fun (_, u) -> assert (u < v)) (Dag.preds t v))
       order);
  order

type counts = {
  nodes : int;
  futures : int;
  sp_edges : int;
  create_edges : int;
  get_edges : int;
}

let counts t =
  let sp = ref 0 and cr = ref 0 and ge = ref 0 in
  for v = 0 to Dag.n_nodes t - 1 do
    List.iter
      (fun (ek, _) ->
        match ek with
        | Dag.Sp -> incr sp
        | Dag.Create_edge -> incr cr
        | Dag.Get_edge -> incr ge)
      (Dag.succs t v)
  done;
  {
    nodes = Dag.n_nodes t;
    futures = Dag.n_futures t;
    sp_edges = !sp;
    create_edges = !cr;
    get_edges = !ge;
  }
