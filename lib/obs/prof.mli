(** Latency and allocation profiling for the detection hot paths.

    The paper's running-time bound is per-phase — reachability queries,
    access-history maintenance, OM relabels — so this module attributes
    wall time (monotonic-clock nanoseconds into {!Sfr_obs.Metrics}
    log-scale histograms) and GC work ({!Gc.quick_stat} deltas) to those
    phases.

    Timing is process-global and {b off by default}. The hot-path
    discipline matches {!Metrics.disable} and the chaos points: an
    instrumented site compiles to

    {[
      let t0 = Prof.start () in   (* one atomic flag load while off *)
      ... the timed region ...
      Prof.stop timer t0          (* one immediate-int compare while off *)
    ]}

    so with profiling disabled the cost is one atomic load and a branch
    (verified by [bench prof-overhead]'s A/B microbenchmark). While on,
    each region pays two [clock_gettime(CLOCK_MONOTONIC)] calls and one
    per-domain histogram bucket increment.

    Timer histograms are ordinary {!Metrics} histograms named
    [prof.<site>.ns], so they ride along in {!Metrics.snapshot},
    [Detector.metrics] diffs, [racedetect --stats] and [bench profile]
    for free, as [prof.*.ns.le_N] / [prof.*.ns.count] entries. *)

external now_ns : unit -> int = "sfr_prof_now_ns" [@@noalloc]
(** Monotonic nanoseconds (arbitrary epoch; subtract two samples). *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

type timer
(** A named latency histogram ({!Metrics.histogram} of nanoseconds). *)

val timer : string -> timer
(** Register (or look up) the timer histogram named [name]; by
    convention names are [prof.<layer>.<site>.ns].
    @raise Invalid_argument on a name clash with a counter. *)

val start : unit -> int
(** A timestamp to later pass to {!stop} — [0] while profiling is
    disabled (the monotonic clock never reads 0 on a running system). *)

val stop : timer -> int -> unit
(** [stop t t0] records [now_ns () - t0] into [t], or nothing when [t0]
    is the disabled sentinel. *)

val with_timer : timer -> (unit -> 'a) -> 'a
(** Closure convenience for non-hot call sites; exception-safe. *)

(** {1 GC attribution}

    Per-run allocation accounting by {!Gc.quick_stat} deltas. On OCaml 5
    the minor-heap figures are those of the {e calling} domain, so
    capture and diff from the domain that runs the measured region (the
    harness's serial T1 runs, [racedetect run --stats]); counts from
    other domains of a parallel run are not included. *)

type gc_snapshot

val gc_snapshot : unit -> gc_snapshot

val gc_delta : gc_snapshot -> (string * int) list
(** Growth since the snapshot, as metric-style entries (words and
    counts, clamped at 0): [gc.minor_words], [gc.promoted_words],
    [gc.major_words], [gc.minor_collections], [gc.major_collections],
    [gc.compactions]. *)
