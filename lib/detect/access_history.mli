(** Shadow memory — the access-history component (paper Sections 3.5, 4).

    A two-level structure: locations hash to striped buckets, each stripe
    guarded by its own mutex (the paper's fine-grained locking over
    16-byte granules). Per location the history keeps the last writer and
    previous readers under one of two policies:

    - [Keep_all]: every reader since the last write (collapsing
      consecutive same-strand reads) — what both F-Order and the paper's
      own SF-Order implementation store;
    - [Lr_per_future]: only the leftmost and rightmost reader per future
      dag — the ≤ 2k bound this paper proves sufficient for structured
      futures (Lemmas 3.10/3.11). Requires English/Hebrew comparators.

    Three synchronization modes address the paper's closing observation
    that access-history synchronization dominates full-detection overhead:

    - [`Mutex] (default): per-stripe locks; the [check] callbacks run
      inside the location's critical section, so each location's access
      sequence is linearized. The paper's design.
    - [`Unsynchronized]: no synchronization at all — sound only under a
      serial execution; isolates the locking cost (ablation A).
    - [`Lockfree]: the "redesigned access history" the paper's conclusion
      asks for. Writers install themselves with an atomic exchange and
      drain the reader set with another; readers push onto a Treiber
      stack and then validate against the current writer. Per-location
      completeness is preserved: for any conflicting parallel pair, either
      the reader is in the set a writer drains, or (by the real-time order
      that dag precedence forces) the reader observes that writer or a
      racing successor of it, so some check on that location fires.
      [`Lockfree] supports the [Keep_all] policy only.

    On a write the readers are drained/cleared and the writer replaced —
    the standard update preserving the per-location reported-iff-exists
    guarantee.

    {2 Fast paths}

    [create ~fast:true] (the default) layers three optimizations over the
    modes above; [~fast:false] is the reference ablation, and the two must
    produce byte-identical race reports and identical query counts:

    - {b Last-writer filter}: a direct-mapped cache of (location,
      accessor) pairs. A write whose strand is already the installed
      writer for the location — and with no reader registered since —
      skips the lock/evict/install cycle entirely; only the
      writer-vs-writer race check runs (so the query count matches the
      unfiltered path exactly). The cache is read without
      synchronization; this is sound because a hit can only be stale if
      some other access to the location has gone through the locked path
      since this strand's write installed itself — and that access was
      then checked against this strand's installed write, so the pair was
      already examined. Reads and foreign writes invalidate the slot.
      Counted by [history.write.fastpath].
    - {b Inline readers}: under [Keep_all], the first 8 readers of each
      write epoch live in a mutable array reused across epochs — the
      common case allocates no cons cell per read — spilling to a list
      past 8. Eviction iterates newest-first, reproducing the list
      path's order, so first-race attribution is unchanged.
    - {b Mixed stripe hashing}: stripe (and cache-slot) selection
      multiplies the location by the golden-ratio constant and takes the
      high bits, so power-of-two strided access patterns spread across
      stripes instead of serializing on one lock. *)

type 'a policy =
  | Keep_all
  | Lr_per_future of {
      future_of : 'a -> int;
      more_left : 'a -> 'a -> bool;
          (** [more_left a b]: [a] strictly before [b] in English order. *)
      more_right : 'a -> 'a -> bool;
          (** [more_right a b]: [a] strictly before [b] in Hebrew order
              (i.e. further right in the dag). *)
      covers : 'a -> 'a -> bool;
          (** [covers a b]: [a ≺ b] in the dag — [a] is redundant once [b]
              is stored (Mellor-Crummey's replacement rule). *)
    }

type sync_mode = [ `Mutex | `Unsynchronized | `Lockfree ]

type 'a t

val create : ?stripes:int -> ?sync:sync_mode -> ?fast:bool -> 'a policy -> 'a t
(** Defaults: 64 stripes, [`Mutex], [~fast:true] (see {e Fast paths}
    above; [~fast:false] selects the reference slow paths for ablation).
    @raise Invalid_argument for [`Lockfree] with [Lr_per_future]. *)

val on_read : 'a t -> loc:int -> accessor:'a -> check_writer:('a -> unit) -> unit
(** Calls [check_writer] on the stored last writer (if any), then records
    the reader per policy. *)

val on_write :
  'a t -> loc:int -> accessor:'a -> check:(prev:'a -> prev_is_writer:bool -> unit) -> unit
(** Calls [check] on the stored writer and on every stored reader, then
    clears the readers and installs the new writer. *)

val locations_tracked : 'a t -> int
val readers_stored : 'a t -> int
(** Currently stored readers across all locations. *)

val max_readers_at_once : 'a t -> int
(** High-water mark of readers stored for a single location — the
    quantity the paper bounds by 2k for structured futures. (Approximate
    under [`Lockfree].) *)

val words : 'a t -> int
