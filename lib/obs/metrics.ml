(* Counters are arrays of per-domain slots of plain mutable ints. A slot
   is only ever written by domains whose ID is congruent to its index
   modulo [nslots]; domain IDs are consecutive, so under fewer than
   [nslots] domains each slot has a unique writer and merging at snapshot
   time is exact. Slots are separate heap blocks, so two domains never
   bounce the same cache line on their hot increments. Snapshot reads are
   unsynchronized (a torn *count* is impossible for an immediate int;
   a slightly stale one is acceptable for reporting). *)

let nslots = 128
let slot_mask = nslots - 1

type slot = { mutable v : int }

type kind = Sum | Max

type counter = { c_kind : kind; c_slots : slot array }

type histogram = { h_slots : int array array }

let nbuckets = 64

type metric = Counter of counter | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()
let on = Atomic.make true

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let slot_index () = (Domain.self () :> int) land slot_mask

let counter ?(kind = `Sum) name =
  let kind = match kind with `Sum -> Sum | `Max -> Max in
  Mutex.lock registry_mu;
  let c =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) when c.c_kind = kind -> c
    | Some _ ->
        Mutex.unlock registry_mu;
        invalid_arg
          (Printf.sprintf "Metrics.counter: %S already registered differently"
             name)
    | None ->
        let c = { c_kind = kind; c_slots = Array.init nslots (fun _ -> { v = 0 }) } in
        Hashtbl.add registry name (Counter c);
        c
  in
  Mutex.unlock registry_mu;
  c

let add c n =
  if Atomic.get on then begin
    let slot = c.c_slots.(slot_index ()) in
    match c.c_kind with
    | Sum -> slot.v <- slot.v + n
    | Max -> if n > slot.v then slot.v <- n
  end

let incr c = add c 1

let merge_counter c =
  match c.c_kind with
  | Sum -> Array.fold_left (fun acc s -> acc + s.v) 0 c.c_slots
  | Max -> Array.fold_left (fun acc s -> max acc s.v) 0 c.c_slots

let value = merge_counter

let histogram name =
  Mutex.lock registry_mu;
  let h =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some (Counter _) ->
        Mutex.unlock registry_mu;
        invalid_arg
          (Printf.sprintf "Metrics.histogram: %S already registered as a counter"
             name)
    | None ->
        let h = { h_slots = Array.init nslots (fun _ -> Array.make nbuckets 0) } in
        Hashtbl.add registry name (Histogram h);
        h
  in
  Mutex.unlock registry_mu;
  h

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* smallest i with v <= 2^i; the bound must not be doubled past
       2^61 — 2^62 wraps to min_int on 63-bit ints — and any v beyond
       2^61 fits the next bucket anyway (max_int = 2^62 - 1) *)
    let rec go i bound =
      if i >= nbuckets - 1 || bound >= v then i
      else if bound > max_int / 2 then i + 1
      else go (i + 1) (bound * 2)
    in
    go 0 1
  end

let bucket_bound i = if i >= nbuckets - 1 then max_int else 1 lsl i

let observe h v =
  if Atomic.get on then begin
    let row = h.h_slots.(slot_index ()) in
    let i = bucket_index v in
    row.(i) <- row.(i) + 1
  end

let merge_buckets h =
  let acc = Array.make nbuckets 0 in
  Array.iter (fun row -> Array.iteri (fun i n -> acc.(i) <- acc.(i) + n) row) h.h_slots;
  acc

let buckets h =
  let acc = merge_buckets h in
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if acc.(i) > 0 then out := (bucket_bound i, acc.(i)) :: !out
  done;
  !out

(* -- snapshots ---------------------------------------------------------- *)

let snapshot_entries () =
  Mutex.lock registry_mu;
  let entries =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | Counter c -> (name, c.c_kind, merge_counter c) :: acc
        | Histogram h ->
            let bs = merge_buckets h in
            let total = Array.fold_left ( + ) 0 bs in
            let acc = (name ^ ".count", Sum, total) :: acc in
            let acc = ref acc in
            Array.iteri
              (fun i n ->
                if n > 0 then
                  let label =
                    if i >= nbuckets - 1 then name ^ ".le_inf"
                    else Printf.sprintf "%s.le_%d" name (bucket_bound i)
                  in
                  acc := (label, Sum, n) :: !acc)
              bs;
            !acc)
      registry []
  in
  Mutex.unlock registry_mu;
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) entries

let snapshot () = List.map (fun (n, _, v) -> (n, v)) (snapshot_entries ())

let since base =
  List.map
    (fun (name, kind, v) ->
      match kind with
      | Max -> (name, v)
      | Sum ->
          let b = match List.assoc_opt name base with Some b -> b | None -> 0 in
          (name, max 0 (v - b)))
    (snapshot_entries ())

let reset_all () =
  Mutex.lock registry_mu;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Array.iter (fun s -> s.v <- 0) c.c_slots
      | Histogram h -> Array.iter (fun row -> Array.fill row 0 nbuckets 0) h.h_slots)
    registry;
  Mutex.unlock registry_mu

let pp_table ppf entries =
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 entries
  in
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-*s %d@." width name v)
    entries
