let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

type t = { mutable words : int array }

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create ?(capacity = 0) () = { words = Array.make (max 1 (words_for capacity)) 0 }

let ensure s w =
  let n = Array.length s.words in
  if w >= n then begin
    let words = Array.make (max (w + 1) (2 * n)) 0 in
    Array.blit s.words 0 words 0 n;
    s.words <- words
  end

let mem s i =
  let w = i / bits_per_word in
  w < Array.length s.words
  && s.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  let w = i / bits_per_word in
  ensure s w;
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let singleton i =
  let s = create ~capacity:(i + 1) () in
  add s i;
  s

let remove s i =
  let w = i / bits_per_word in
  if w < Array.length s.words then
    s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

(* SWAR masks, built by saturating fill so they fit OCaml's 63-bit ints
   (the 64-bit literals 0x5555… overflow the int literal range; the
   fixpoint fills every lane of whatever the native word width is). *)
let swar_fill seed shift =
  let rec go acc =
    let acc' = acc lor (acc lsl shift) in
    if acc' = acc then acc else go acc'
  in
  go seed

let m1 = swar_fill 1 2 (* 0b0101…01 *)
let m2 = swar_fill 3 4 (* 0b0011…11 *)
let m4 = swar_fill 0xF 8 (* 0x0F0F…0F *)
let h01 = swar_fill 1 8 (* 0x0101…01 *)

(* Constant-time SWAR popcount: pairwise lane sums then one multiply
   that accumulates every byte lane into the top one. The top lane of a
   63-bit word is only 7 bits wide, but the maximum count (63) still
   fits, so shifting down [bits_per_word - 7] recovers the exact sum. *)
let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * h01) lsr (bits_per_word - 7)

let popcount_word = popcount

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let union_into ~dst src =
  ensure dst (Array.length src.words - 1);
  Array.iteri (fun i w -> if w <> 0 then dst.words.(i) <- dst.words.(i) lor w) src.words

let copy s = { words = Array.copy s.words }

let subset a b =
  let nb = Array.length b.words in
  let ok = ref true in
  Array.iteri
    (fun i w ->
      if w <> 0 && (i >= nb || w land lnot b.words.(i) <> 0) then ok := false)
    a.words;
  !ok

let equal a b = subset a b && subset b a

let each_side_has_private_bit a b = not (subset a b) && not (subset b a)

(* Lowest-set-bit iteration: O(cardinal) calls instead of O(words × w)
   bit probes. [b land (-b)] isolates the lowest set bit; its index is
   the popcount of the mask of bits below it. *)
let iter f s =
  Array.iteri
    (fun wi w ->
      if w <> 0 then begin
        let base = wi * bits_per_word in
        let w = ref w in
        while !w <> 0 do
          let b = !w land - !w in
          f (base + popcount (b - 1));
          w := !w land (!w - 1)
        done
      end)
    s.words

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let words s = Array.length s.words

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements s)
