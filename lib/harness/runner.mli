(** Measurement driver for the benchmark harness.

    Mirrors the paper's experimental configurations (Section 4):
    - [Base]: no detection (the baseline columns);
    - [Reach]: reachability maintenance only — detector callbacks run for
      parallel constructs but memory accesses are not instrumented;
    - [Full]: complete race detection.

    Executions here are serial and wall-clock timed (the T1 columns);
    multi-worker times are produced by {!Sfr_runtime.Sim_sched} over the
    recorded dag (DESIGN.md §5.1), scaled by the measured T1. *)

type mode =
  | Base
  | Reach of (unit -> Sfr_detect.Detector.t)
  | Full of (unit -> Sfr_detect.Detector.t)

type measurement = {
  seconds : float;  (** mean over measured repeats *)
  stddev : float;  (** sample stddev; [0.0] when repeats < 2 *)
  median : float;  (** robust center — what perfdiff compares *)
  mad : float;  (** median absolute deviation; [0.0] when repeats < 2 *)
  samples : float list;  (** the measured times, in run order *)
  warmup : int;  (** discarded repeats that preceded [samples] *)
  queries : int;
  reach_words : int;
  reach_table_words : int;
  history_words : int;
  max_readers : int;
  racy_locations : int;
  metrics : (string * int) list;
      (** the last repeat's {!Sfr_detect.Detector}[.metrics] snapshot —
          named counters (including [gc.*] deltas) attributed to that
          detector instance. *)
}

val time_serial :
  ?warmup:int ->
  repeats:int ->
  (unit -> Sfr_workloads.Workload.instance) ->
  mode ->
  measurement
(** Each repeat instantiates a fresh workload instance and (for detector
    modes) a fresh detector; introspection fields come from the last
    repeat. [warmup] (default 1) extra repeats run first and are excluded
    from every statistic. *)

val time_parallel :
  ?warmup:int ->
  repeats:int ->
  domains:int ->
  (unit -> Sfr_workloads.Workload.instance) ->
  mode ->
  measurement
(** [time_serial] with the work-stealing executor
    ({!Sfr_runtime.Par_exec}) on [domains] domains — real parallel
    execution, not the scheduling simulation, so detector-internal
    contention ([history.lock.contended], [history.cas.retry]) is
    exercised and captured in [metrics]. Wall-clock speedup additionally
    requires that many hardware cores. *)

type recorded = {
  dag : Sfr_dag.Dag.t;
  reads : int;
  writes : int;
  trace_seconds : float;
}

val record : (unit -> Sfr_workloads.Workload.instance) -> recorded
(** One serial traced run: the dag with per-strand costs plus access
    counts (Figure 3, and the input to the scheduling simulation). *)

val simulated_time :
  recorded -> measured_t1:float -> workers:int -> float
(** [measured_t1 × makespan_P / makespan_1]: the measured one-core time
    of a configuration spread over [workers] by greedy scheduling of the
    recorded dag. *)

val reach_only : Sfr_runtime.Events.callbacks -> Sfr_runtime.Events.callbacks
(** Strip the memory-access hooks, keeping the parallel-construct ones. *)
