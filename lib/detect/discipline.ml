module Events = Sfr_runtime.Events
module Sp_order = Sfr_reach.Sp_order
module Fp_sets = Sfr_reach.Fp_sets

type violation = { future : int; message : string }

(* same strand state as SF-Order, minus the access history *)
type strand = {
  pos : Sp_order.pos;
  block : Sp_order.block option;
  fid : int;
  gp : Fp_sets.table;
}

type Events.state += Dc of strand

let as_dc = function
  | Dc s -> s
  | _ -> Detect_error.foreign_state ~detector:"Discipline" ~context:"state unwrap"

type t = {
  callbacks : Events.callbacks;
  root : Events.state;
  violations : unit -> violation list;
}

let make () =
  let spo, root_pos = Sp_order.create () in
  let eng = Fp_sets.create Fp_sets.Bitmap in
  let cp : Fp_sets.table array Atomic.t = Atomic.make [| Fp_sets.empty eng |] in
  let cp_mu = Mutex.create () in
  (* continuation strand of each future's create, for the get check *)
  let conts : strand option array Atomic.t = Atomic.make [| None |] in
  let violations = ref [] in
  let violations_mu = Mutex.create () in
  let precedes (u : strand) (v : strand) =
    if u == v then true
    else if u.fid = v.fid then Sp_order.precedes spo u.pos v.pos
    else if Fp_sets.mem (Atomic.get cp).(v.fid) u.fid then
      Sp_order.precedes spo u.pos v.pos
    else Fp_sets.mem v.gp u.fid
  in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let cur = as_dc cur in
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          ( Dc { pos = c_pos; block = None; fid = cur.fid; gp = Fp_sets.share cur.gp },
            Dc { pos = t_pos; block = Some blk; fid = cur.fid; gp = cur.gp } ));
      on_create =
        (fun cur ->
          let cur = as_dc cur in
          Mutex.lock cp_mu;
          let old = Atomic.get cp in
          let fid = Array.length old in
          let parent_cp = Fp_sets.share old.(cur.fid) in
          let child_cp = Fp_sets.with_added eng parent_cp cur.fid in
          Atomic.set cp (Array.append old [| child_cp |]);
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          let child =
            { pos = c_pos; block = None; fid; gp = Fp_sets.share cur.gp }
          in
          let cont =
            { pos = t_pos; block = Some blk; fid = cur.fid; gp = cur.gp }
          in
          Atomic.set conts (Array.append (Atomic.get conts) [| Some cont |]);
          Mutex.unlock cp_mu;
          (Dc child, Dc cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts:_ ->
          let cur = as_dc cur in
          let pos = Sp_order.sync spo ~cur:cur.pos ~block:cur.block in
          let gp =
            Fp_sets.merge eng cur.gp (List.map (fun s -> (as_dc s).gp) spawned_lasts)
          in
          Dc { pos; block = None; fid = cur.fid; gp });
      on_put = (fun _ -> ());
      on_get =
        (fun ~cur ~put ->
          let cur = as_dc cur and put = as_dc put in
          (* the structured-use check: the create's continuation must
             reach the getting strand without the future's own edges *)
          (match (Atomic.get conts).(put.fid) with
          | Some cont when precedes cont cur -> ()
          | Some _ ->
              Mutex.lock violations_mu;
              violations :=
                {
                  future = put.fid;
                  message =
                    Printf.sprintf
                      "get on future %d is not reachable from its create's \
                       continuation: unstructured use"
                      put.fid;
                }
                :: !violations;
              Mutex.unlock violations_mu
          | None -> () (* conts grows with cp under cp_mu; fid always present *));
          let pos = Sp_order.step spo ~cur:cur.pos in
          let gp =
            Fp_sets.with_added eng (Fp_sets.merge eng cur.gp [ put.gp ]) put.fid
          in
          Dc { pos; block = cur.block; fid = cur.fid; gp });
      on_returned = (fun ~cont:_ ~child_last:_ -> ());
      on_read = (fun _ _ -> ());
      on_write = (fun _ _ -> ());
      on_work = (fun _ _ -> ());
    }
  in
  {
    callbacks;
    root = Dc { pos = root_pos; block = None; fid = 0; gp = Fp_sets.empty eng };
    violations =
      (fun () ->
        Mutex.lock violations_mu;
        let v = List.rev !violations in
        Mutex.unlock violations_mu;
        v);
  }
