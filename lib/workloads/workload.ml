type scale = Tiny | Small | Default | Large | Paper

type instance = {
  program : unit -> unit;
  verify : unit -> bool;
  mem_base : int;
}

type t = {
  name : string;
  description : string;
  instantiate : ?inject_race:bool -> scale -> instance;
  paper_figure3 : string list;
}

let pp_scale ppf s =
  Format.pp_print_string ppf
    (match s with
    | Tiny -> "tiny"
    | Small -> "small"
    | Default -> "default"
    | Large -> "large"
    | Paper -> "paper")

let scale_of_string = function
  | "tiny" -> Some Tiny
  | "small" -> Some Small
  | "default" -> Some Default
  | "large" -> Some Large
  | "paper" -> Some Paper
  | _ -> None
