type t = {
  name : string;
  callbacks : Sfr_runtime.Events.callbacks;
  root : Sfr_runtime.Events.state;
  races : Race.t;
  queries : unit -> int;
  reach_words : unit -> int;
  reach_table_words : unit -> int;
  history_words : unit -> int;
  max_readers : unit -> int;
  supports_parallel : bool;
}

let racy_locations t = Race.racy_locations t.races
