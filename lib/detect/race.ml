type kind = Read_write | Write_write | Write_read

type report = {
  loc : int;
  kind : kind;
  prev_future : int;
  cur_future : int;
  count : int;
}

type t = {
  mu : Mutex.t;
  by_loc : (int, report) Hashtbl.t;
  total : int Atomic.t;
}

let create () = { mu = Mutex.create (); by_loc = Hashtbl.create 64; total = Atomic.make 0 }

let report t ~loc ~kind ~prev_future ~cur_future =
  Atomic.incr t.total;
  (* a race report is exactly the kind of event a post-mortem wants to
     see in context with the surrounding scheduling activity *)
  Sfr_obs.Flight.note ~arg:loc "race.report";
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.by_loc loc with
  | Some r -> Hashtbl.replace t.by_loc loc { r with count = r.count + 1 }
  | None -> Hashtbl.add t.by_loc loc { loc; kind; prev_future; cur_future; count = 1 });
  Mutex.unlock t.mu

let racy_locations t =
  Mutex.lock t.mu;
  let locs = Hashtbl.fold (fun loc _ acc -> loc :: acc) t.by_loc [] in
  Mutex.unlock t.mu;
  List.sort compare locs

let reports t =
  Mutex.lock t.mu;
  let rs = Hashtbl.fold (fun _ r acc -> r :: acc) t.by_loc [] in
  Mutex.unlock t.mu;
  List.sort (fun a b -> compare a.loc b.loc) rs

let total_witnessed t = Atomic.get t.total

let pp_kind ppf = function
  | Read_write -> Format.pp_print_string ppf "read-write"
  | Write_write -> Format.pp_print_string ppf "write-write"
  | Write_read -> Format.pp_print_string ppf "write-read"
