module Chaos = Sfr_chaos.Chaos

type client = {
  server : Server.t;
  conn : Server.conn;
  rmu : Mutex.t;  (** guards the reply side: pool workers write it *)
  rdec : Frame.decoder;
  mutable rframes_rev : Frame.frame list;
  mutable rcredit : int;  (** granted-but-unspent send credit *)
  mutable is_torn : bool;
  mutable is_disconnected : bool;
}

let on_reply c bytes =
  Mutex.lock c.rmu;
  Frame.decoder_feed c.rdec bytes ~pos:0 ~len:(Bytes.length bytes);
  let continue_ = ref true in
  while !continue_ do
    match Frame.decoder_next c.rdec with
    | Ok (Some f) ->
        c.rframes_rev <- f :: c.rframes_rev;
        (match f with
        | Frame.Welcome { credit; _ } -> c.rcredit <- c.rcredit + credit
        | Frame.Credit n -> c.rcredit <- c.rcredit + n
        | _ -> ())
    | Ok None | Error _ -> continue_ := false
  done;
  Mutex.unlock c.rmu

let connect server =
  let rec c =
    lazy
      {
        server;
        conn = Server.connect server ~send:(fun b -> on_reply (Lazy.force c) b);
        rmu = Mutex.create ();
        rdec = Frame.decoder ();
        rframes_rev = [];
        rcredit = 0;
        is_torn = false;
        is_disconnected = false;
      }
  in
  Lazy.force c

let replies c =
  Mutex.lock c.rmu;
  let fs = List.rev c.rframes_rev in
  Mutex.unlock c.rmu;
  fs

let last_terminal c =
  List.find_opt
    (function Frame.Verdict _ | Frame.Reject _ -> true | _ -> false)
    (replies c)

let credit c =
  Mutex.lock c.rmu;
  let n = c.rcredit in
  Mutex.unlock c.rmu;
  n

let torn c = c.is_torn
let session_id c = Server.session_id c.conn

let raw_send c bytes =
  if not (c.is_torn || c.is_disconnected) then
    Server.on_bytes c.server c.conn bytes ~pos:0 ~len:(Bytes.length bytes)

let disconnect c =
  if not c.is_disconnected then begin
    c.is_disconnected <- true;
    Server.on_disconnect c.server c.conn
  end

let deliver c bytes ~len =
  Server.on_bytes c.server c.conn bytes ~pos:0 ~len

let send_frame ?(chaos = true) c frame =
  if not (c.is_torn || c.is_disconnected) then begin
    let image = Frame.to_bytes frame in
    let n = Bytes.length image in
    let fault =
      if chaos then Chaos.wire_fault ~frame_len:n else Chaos.Wire_pass
    in
    match fault with
    | Chaos.Wire_pass -> deliver c image ~len:n
    | Chaos.Wire_truncate k ->
        (* the peer saw a prefix and then the pipe broke *)
        deliver c image ~len:(min k n);
        c.is_torn <- true
    | Chaos.Wire_duplicate ->
        deliver c image ~len:n;
        deliver c image ~len:n
    | Chaos.Wire_corrupt off ->
        let image = Bytes.copy image in
        Bytes.set image off
          (Char.chr (Char.code (Bytes.get image off) lxor 0x40));
        deliver c image ~len:n
    | Chaos.Wire_disconnect ->
        c.is_torn <- true;
        disconnect c
  end

let hello ?chaos c =
  send_frame ?chaos c (Frame.Hello { version = Frame.protocol_version })

let close ?chaos c = send_frame ?chaos c Frame.Close

let pump ?chaos ?(ignore_credit = false) ?(frame = 4096) c bytes ~pos ~len =
  if frame < 1 then invalid_arg "Loopback.pump: frame must be >= 1";
  let sent = ref 0 in
  let continue_ = ref true in
  while !continue_ && !sent < len && not (c.is_torn || c.is_disconnected) do
    let budget = if ignore_credit then len - !sent else credit c in
    let n = min frame (min (len - !sent) budget) in
    if n <= 0 then continue_ := false
    else begin
      if not ignore_credit then begin
        Mutex.lock c.rmu;
        c.rcredit <- c.rcredit - n;
        Mutex.unlock c.rmu
      end;
      send_frame ?chaos c (Frame.Data (Bytes.sub bytes (pos + !sent) n));
      sent := !sent + n
    end
  done;
  !sent

let await_replies ?(min = 1) ?(spin = 1_000_000) c =
  let n () =
    Mutex.lock c.rmu;
    let k = List.length c.rframes_rev in
    Mutex.unlock c.rmu;
    k
  in
  let i = ref 0 in
  while n () < min && !i < spin do
    incr i;
    Domain.cpu_relax ()
  done;
  n () >= min

let run_log ?chaos ?frame c image =
  hello ?chaos c;
  let len = Bytes.length image in
  let sent = ref 0 in
  let stalled = ref 0 in
  while
    !sent < len
    && (not (c.is_torn || c.is_disconnected))
    && last_terminal c = None
    && !stalled < 1_000_000
  do
    let n = pump ?chaos ?frame c image ~pos:!sent ~len:(len - !sent) in
    if n = 0 then begin
      (* out of credit: wait for the server to grant more *)
      incr stalled;
      Domain.cpu_relax ()
    end
    else begin
      stalled := 0;
      sent := !sent + n
    end
  done;
  if (not (c.is_torn || c.is_disconnected)) && last_terminal c = None then
    close ?chaos c
