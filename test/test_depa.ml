(* Differential tests for the DePa order-maintenance backend.

   The backend contract: [Sf_order.make ~om:`List] is the reference and
   [~om:`Depa] must be observationally identical — byte-identical race
   reports (location, kind, attributed futures, witness count),
   identical reachability-query totals, and the identical reader
   high-water mark — on every workload, every synthetic program, serial
   and 4-domain, with and without chaos perturbation. The OM-internal
   counters are the only thing allowed to differ, and they must differ
   in the advertised direction: depa runs perform zero relabels. *)

module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order
module F_order = Sfr_detect.F_order
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Chaos = Sfr_chaos.Chaos

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type outcome = {
  o_reports : (int * Race.kind * int * int * int) list;
  o_queries : int;
  o_max_readers : int;
}

let outcome_pp ppf o =
  Format.fprintf ppf "{queries=%d; max_readers=%d; reports=[%a]}" o.o_queries
    o.o_max_readers
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (l, k, p, c, n) ->
         Format.fprintf ppf "%d:%a:%d->%d x%d" l Race.pp_kind k p c n))
    o.o_reports

let outcome = Alcotest.testable outcome_pp ( = )

(* [base] rebases locations: each instantiation allocates fresh global
   location IDs, so reports are only comparable relative to the
   instance's own memory base *)
let run_full ?workers ?(base = 0) det prog =
  (match workers with
  | None ->
      Serial_exec.run det.Detector.callbacks ~root:det.Detector.root prog |> fst
  | Some w ->
      Par_exec.run ~workers:w det.Detector.callbacks ~root:det.Detector.root
        prog
      |> fst);
  {
    o_reports =
      List.map
        (fun (r : Race.report) ->
          (r.Race.loc - base, r.Race.kind, r.Race.prev_future,
           r.Race.cur_future, r.Race.count))
        (Race.reports det.Detector.races);
    o_queries = det.Detector.queries ();
    o_max_readers = det.Detector.max_readers ();
  }

let metric det name =
  match List.assoc_opt name (det.Detector.metrics ()) with
  | Some v -> v
  | None -> 0

let histories = [ (`Mutex, "mutex"); (`Lockfree, "lockfree") ]

(* depa and list must agree on every real workload, both history
   synchronization modes, serial execution (deterministic schedule, so
   the outcomes must be exactly equal, not just race-equivalent) — and a
   depa run must never open a relabel window *)
let test_workloads_differential () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun (history, hname) ->
          let run om =
            let inst = w.Workload.instantiate Workload.Tiny in
            let det = Sf_order.make ~history ~om () in
            let o = run_full det inst.Workload.program in
            (o, det)
          in
          (* list first: Detector.metrics diffs against a creation-time
             snapshot of the process-global counters, so the reference
             run's relabels must land before the depa detector exists *)
          let ref_, _ = run `List in
          let depa, ddet = run `Depa in
          check outcome
            (Printf.sprintf "%s/%s depa = list" w.Workload.name hname)
            ref_ depa;
          check bool
            (Printf.sprintf "%s/%s nonzero queries" w.Workload.name hname)
            true (depa.o_queries > 0);
          check int
            (Printf.sprintf "%s/%s depa run has no relabels" w.Workload.name
               hname)
            0 (metric ddet "om.relabels"))
        histories)
    Registry.all

(* ... and on random synthetic dags, racy and race-free *)
let test_synthetic_differential () =
  List.iter
    (fun race_free ->
      for seed = 1 to 12 do
        let t = Synthetic.generate ~race_free ~seed ~ops:150 ~depth:5 ~locs:8 () in
        List.iter
          (fun (history, hname) ->
            let run om =
              let inst = Synthetic.instantiate t in
              run_full ~base:inst.Synthetic.mem_base
                (Sf_order.make ~history ~om ())
                inst.Synthetic.program
            in
            check outcome
              (Printf.sprintf "seed %d race_free=%b %s" seed race_free hname)
              (run `List) (run `Depa))
          histories
      done)
    [ false; true ]

(* the F-Order detector shares Sp_order, so the backend seam must hold
   there too *)
let test_forder_differential () =
  for seed = 1 to 6 do
    let t = Synthetic.generate ~seed ~ops:150 ~depth:5 ~locs:8 () in
    let run om =
      let inst = Synthetic.instantiate t in
      run_full ~base:inst.Synthetic.mem_base
        (F_order.make ~om ())
        inst.Synthetic.program
    in
    check outcome
      (Printf.sprintf "f-order seed %d depa = list" seed)
      (run `List) (run `Depa)
  done

(* under a parallel schedule the witnessed interleaving (hence counts and
   query totals) may differ run to run, but the racy-location set is
   schedule-independent — both backends must find the serial one *)
let racy_set o = List.map (fun (l, _, _, _, _) -> l) o.o_reports

let test_parallel_differential () =
  for seed = 1 to 6 do
    let t = Synthetic.generate ~seed ~ops:200 ~depth:5 ~locs:8 () in
    let run om workers =
      let inst = Synthetic.instantiate t in
      run_full ?workers ~base:inst.Synthetic.mem_base (Sf_order.make ~om ())
        inst.Synthetic.program
    in
    let serial = run `List None in
    let par_depa = run `Depa (Some 4) in
    let par_list = run `List (Some 4) in
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: 4-domain depa = serial race set" seed)
      (racy_set serial) (racy_set par_depa);
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: 4-domain list = serial race set" seed)
      (racy_set serial) (racy_set par_list)
  done

(* chaos-perturbed schedules stress label publication (including the
   Label_extend window on heap spills) without injecting faults: the
   race set must still match the serial run's *)
let test_chaos_parallel () =
  for seed = 1 to 4 do
    let t = Synthetic.generate ~seed:(100 + seed) ~ops:200 ~depth:5 ~locs:8 () in
    let serial =
      let inst = Synthetic.instantiate t in
      run_full ~base:inst.Synthetic.mem_base
        (Sf_order.make ~om:`Depa ())
        inst.Synthetic.program
    in
    let perturbed =
      Chaos.arm ~seed ();
      Fun.protect ~finally:Chaos.disarm (fun () ->
          let inst = Synthetic.instantiate t in
          run_full ~workers:4 ~base:inst.Synthetic.mem_base
            (Sf_order.make ~om:`Depa ())
            inst.Synthetic.program)
    in
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: chaos 4-domain depa race set = serial" seed)
      (racy_set serial) (racy_set perturbed)
  done

(* the backend-selection plumbing: the process-wide default must reach
   detectors built through the zero-argument registry makes (that is
   what `racedetect --om depa` relies on) *)
let test_backend_default () =
  let orig = Sfr_om.Backend.default () in
  Fun.protect
    ~finally:(fun () -> Sfr_om.Backend.set_default orig)
    (fun () ->
      Sfr_om.Backend.set_default `Depa;
      let inst =
        Synthetic.instantiate
          (Synthetic.generate ~seed:7 ~ops:150 ~depth:5 ~locs:8 ())
      in
      let det = Sf_order.make () in
      let _ = run_full ~base:inst.Synthetic.mem_base det inst.Synthetic.program in
      check int "default-backend run has no relabels" 0
        (metric det "om.relabels");
      check bool "default-backend run exercised depa labels" true
        (metric det "om.depa.path_bits" > 0))

let () =
  Alcotest.run "depa"
    [
      ( "differential",
        [
          Alcotest.test_case "workloads depa=list" `Quick
            test_workloads_differential;
          Alcotest.test_case "synthetic depa=list" `Quick
            test_synthetic_differential;
          Alcotest.test_case "f-order depa=list" `Quick test_forder_differential;
          Alcotest.test_case "4-domain race sets" `Quick
            test_parallel_differential;
          Alcotest.test_case "chaos 4-domain race sets" `Quick
            test_chaos_parallel;
        ] );
      ( "plumbing",
        [ Alcotest.test_case "process-wide default" `Quick test_backend_default ]
      );
    ]
