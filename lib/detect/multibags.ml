module Events = Sfr_runtime.Events
module Sp_bags = Sfr_reach.Sp_bags
module Fp_sets = Sfr_reach.Fp_sets
module Vec = Sfr_support.Vec
module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof

(* Same three-way split as SF-Order's Algorithm 1, with bags standing in
   for the order-maintenance comparison in the first two cases. *)
let m_q_same = Metrics.counter "reach.query.same_future"
let m_q_cp = Metrics.counter "reach.query.cp"
let m_q_gp = Metrics.counter "reach.query.gp"
let t_q_same = Prof.timer "prof.reach.query.same_future.ns"
let t_q_cp = Prof.timer "prof.reach.query.cp.ns"
let t_q_gp = Prof.timer "prof.reach.query.gp.ns"

type strand = {
  frame : Sp_bags.frame;
  fid : int;
  gp : Fp_sets.table;
}

type Events.state += Mb of strand

let as_mb = function
  | Mb s -> s
  | _ -> Detect_error.foreign_state ~detector:"Multibags" ~context:"state unwrap"

let make () =
  let bags, root_frame = Sp_bags.create () in
  let eng = Fp_sets.create Fp_sets.Bitmap in
  let cp : Fp_sets.table Vec.t = Vec.create ~dummy:(Fp_sets.empty eng) () in
  let (_ : int) = Vec.push cp (Fp_sets.empty eng) in
  let races = Race.create () in
  let queries = ref 0 in
  let precedes (u : strand) (v : strand) =
    incr queries;
    let t0 = Prof.start () in
    if u == v then begin
      Metrics.incr m_q_same;
      Prof.stop t_q_same t0;
      true
    end
    else if u.fid = v.fid then begin
      Metrics.incr m_q_same;
      (* Cases 1-2: pseudo-SP-dag reachability relative to the current
         (depth-first) execution point, via the bags *)
      let r = Sp_bags.is_serial_with_current bags u.frame in
      Prof.stop t_q_same t0;
      r
    end
    else if Fp_sets.mem (Vec.get cp v.fid) u.fid then begin
      Metrics.incr m_q_cp;
      let r = Sp_bags.is_serial_with_current bags u.frame in
      Prof.stop t_q_cp t0;
      r
    end
    else begin
      Metrics.incr m_q_gp;
      let r = Fp_sets.mem v.gp u.fid (* Case 3 *) in
      Prof.stop t_q_gp t0;
      r
    end
  in
  let history = Access_history.create ~sync:`Unsynchronized Access_history.Keep_all in
  let metrics = Detector.metrics_since_creation () in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let cur = as_mb cur in
          let child_frame = Sp_bags.spawn_child bags in
          let child = { frame = child_frame; fid = cur.fid; gp = Fp_sets.share cur.gp } in
          let cont = { frame = cur.frame; fid = cur.fid; gp = cur.gp } in
          (Mb child, Mb cont));
      on_create =
        (fun cur ->
          let cur = as_mb cur in
          let parent_cp = Fp_sets.share (Vec.get cp cur.fid) in
          let child_cp = Fp_sets.with_added eng parent_cp cur.fid in
          let fid = Vec.push cp child_cp in
          let child_frame = Sp_bags.spawn_child bags in
          let child = { frame = child_frame; fid; gp = Fp_sets.share cur.gp } in
          let cont = { frame = cur.frame; fid = cur.fid; gp = cur.gp } in
          (Mb child, Mb cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts:_ ->
          let cur = as_mb cur in
          Sp_bags.sync bags cur.frame;
          let gp =
            Fp_sets.merge eng cur.gp (List.map (fun s -> (as_mb s).gp) spawned_lasts)
          in
          Mb { frame = cur.frame; fid = cur.fid; gp });
      on_put = (fun _ -> ());
      on_get =
        (fun ~cur ~put ->
          let cur = as_mb cur and put = as_mb put in
          let gp =
            Fp_sets.with_added eng (Fp_sets.merge eng cur.gp [ put.gp ]) put.fid
          in
          Mb { frame = cur.frame; fid = cur.fid; gp });
      on_returned =
        (fun ~cont ~child_last ->
          let cont = as_mb cont and child_last = as_mb child_last in
          Sp_bags.child_returned bags ~parent:cont.frame ~child:child_last.frame);
      on_read =
        (fun state loc ->
          let v = as_mb state in
          Access_history.on_read history ~loc ~accessor:v ~check_writer:(fun w ->
              if not (precedes w v) then
                Race.report races ~loc ~kind:Race.Write_read ~prev_future:w.fid
                  ~cur_future:v.fid));
      on_write =
        (fun state loc ->
          let v = as_mb state in
          Access_history.on_write history ~loc ~accessor:v
            ~check:(fun ~prev ~prev_is_writer ->
              if not (precedes prev v) then
                Race.report races ~loc
                  ~kind:(if prev_is_writer then Race.Write_write else Race.Read_write)
                  ~prev_future:prev.fid ~cur_future:v.fid));
      on_work = (fun _ _ -> ());
    }
  in
  {
    Detector.name = "multibags";
    callbacks;
    root = Mb { frame = root_frame; fid = 0; gp = Fp_sets.empty eng };
    races;
    queries = (fun () -> !queries);
    reach_words = (fun () -> Sp_bags.words bags + Fp_sets.live_words eng);
    reach_table_words = (fun () -> Fp_sets.total_words eng);
    history_words = (fun () -> Access_history.words history);
    max_readers = (fun () -> Access_history.max_readers_at_once history);
    metrics;
    supports_parallel = false;
  }
