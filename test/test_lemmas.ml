(* The paper's Section 3 structural results as executable properties over
   randomly generated structured-futures programs. Lemmas 3.4, 3.7 and
   3.9 are covered in test_dag.ml next to the PSP machinery; this suite
   adds the remaining ones:

   - Properties 1 and 2 (edge structure of dags with futures)
   - Lemma 3.1 (a valid execution finishes future descendants first —
     witnessed by the depth-first serial execution)
   - Lemma 3.2 (canonical paths: gets before creates)
   - Lemma 3.3 (same-future reachability has an SP-only path)
   - Lemma 3.5 (ancestor-future reachability has a get-free path)       *)

module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Bitset = Sfr_support.Bitset
module Serial_exec = Sfr_runtime.Serial_exec
module Trace = Sfr_runtime.Trace
module Synthetic = Sfr_workloads.Synthetic

let record_random seed =
  let t = Synthetic.generate ~seed ~ops:90 ~depth:5 ~locs:8 () in
  let inst = Synthetic.instantiate t in
  let trace, cb, root = Trace.make () in
  let (), _ = Serial_exec.run cb ~root inst.Synthetic.program in
  Trace.dag trace

let gen_dag = QCheck2.Gen.map record_random QCheck2.Gen.(int_bound 1_000_000)

(* ancestor sets over a restricted edge relation *)
let restricted_ancestors dag ~keep =
  let n = Dag.n_nodes dag in
  let anc = Array.init n (fun _ -> Bitset.create ()) in
  for v = 0 to n - 1 do
    List.iter
      (fun (ek, u) ->
        if keep ek then begin
          Bitset.union_into ~dst:anc.(v) anc.(u);
          Bitset.add anc.(v) u
        end)
      (Dag.preds dag v)
  done;
  anc

let reaches_in anc u v = u = v || Bitset.mem anc.(v) u

(* Property 1: any path between nodes of distinct futures crosses a
   non-SP edge — equivalently, SP-only reachability never crosses
   futures. *)
let prop_property1 =
  QCheck2.Test.make ~name:"property 1: SP paths stay within a future" ~count:60
    gen_dag (fun dag ->
      let sp = restricted_ancestors dag ~keep:(fun ek -> ek = Dag.Sp) in
      let ok = ref true in
      for v = 0 to Dag.n_nodes dag - 1 do
        Bitset.iter
          (fun u -> if Dag.future_of dag u <> Dag.future_of dag v then ok := false)
          sp.(v)
      done;
      !ok)

(* Property 2: only first(F) has an incoming create edge; only last(F)
   has an outgoing get edge. *)
let prop_property2 =
  QCheck2.Test.make ~name:"property 2: create targets first, get leaves last"
    ~count:60 gen_dag (fun dag ->
      let ok = ref true in
      for u = 0 to Dag.n_nodes dag - 1 do
        List.iter
          (fun (ek, w) ->
            match ek with
            | Dag.Create_edge ->
                if Dag.first_of dag (Dag.future_of dag w) <> w then ok := false
            | Dag.Get_edge ->
                if Dag.last_of dag (Dag.future_of dag u) <> Some u then ok := false
            | Dag.Sp -> ())
          (Dag.succs dag u)
      done;
      !ok)

(* Lemma 3.1: some valid execution completes all future descendants of F
   before F completes. The depth-first serial execution is such a
   witness, and node IDs are its execution order: id(last(G)) <
   id(last(F)) for every G in f-descs(F). *)
let prop_lemma_3_1 =
  QCheck2.Test.make ~name:"lemma 3.1: serial execution finishes descendants first"
    ~count:60 gen_dag (fun dag ->
      let ok = ref true in
      for g = 1 to Dag.n_futures dag - 1 do
        match Dag.last_of dag g with
        | None -> ok := false
        | Some last_g ->
            List.iter
              (fun f ->
                match Dag.last_of dag f with
                | None -> ok := false
                | Some last_f -> if last_g >= last_f then ok := false)
              (Dag.f_ancestors dag g)
      done;
      !ok)

(* Lemma 3.2: whenever u reaches v, there is a canonical path — a
   (possibly empty) get+SP section followed by a (possibly empty)
   create+SP section. Check: exists w with u ->(SP|get)* w ->(SP|create)* v. *)
let prop_lemma_3_2 =
  QCheck2.Test.make ~name:"lemma 3.2: canonical paths exist" ~count:40 gen_dag
    (fun dag ->
      let full = Dag_algo.build_oracle dag Dag_algo.Full in
      let getsp =
        restricted_ancestors dag ~keep:(fun ek -> ek = Dag.Sp || ek = Dag.Get_edge)
      in
      let createsp =
        restricted_ancestors dag ~keep:(fun ek -> ek = Dag.Sp || ek = Dag.Create_edge)
      in
      let n = Dag.n_nodes dag in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Dag_algo.precedes full u v then begin
            (* find a middle node w reachable from u via get+SP that
               reaches v via create+SP *)
            let found = ref false in
            for w = 0 to n - 1 do
              if
                (not !found)
                && reaches_in getsp u w
                && reaches_in createsp w v
              then found := true
            done;
            if not !found then ok := false
          end
        done
      done;
      !ok)

(* Lemma 3.3: if u ≺ v within one future, an SP-only path exists. *)
let prop_lemma_3_3 =
  QCheck2.Test.make ~name:"lemma 3.3: same-future implies SP path" ~count:60
    gen_dag (fun dag ->
      let full = Dag_algo.build_oracle dag Dag_algo.Full in
      let sp = restricted_ancestors dag ~keep:(fun ek -> ek = Dag.Sp) in
      let n = Dag.n_nodes dag in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Dag.future_of dag u = Dag.future_of dag v && Dag_algo.precedes full u v
          then if not (reaches_in sp u v) then ok := false
        done
      done;
      !ok)

(* Lemma 3.5: if u ∈ F ≺ v ∈ G and F is a future ancestor of G, a path
   with only create and SP edges exists. *)
let prop_lemma_3_5 =
  QCheck2.Test.make ~name:"lemma 3.5: ancestor reachability avoids gets" ~count:60
    gen_dag (fun dag ->
      let full = Dag_algo.build_oracle dag Dag_algo.Full in
      let createsp =
        restricted_ancestors dag ~keep:(fun ek -> ek = Dag.Sp || ek = Dag.Create_edge)
      in
      let n = Dag.n_nodes dag in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let fu = Dag.future_of dag u and fv = Dag.future_of dag v in
          if
            fu <> fv
            && List.mem fu (Dag.f_ancestors dag fv)
            && Dag_algo.precedes full u v
          then if not (reaches_in createsp u v) then ok := false
        done
      done;
      !ok)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_property1;
      prop_property2;
      prop_lemma_3_1;
      prop_lemma_3_2;
      prop_lemma_3_3;
      prop_lemma_3_5;
    ]

let () = Alcotest.run "lemmas" [ ("paper section 3", qtests) ]
