(** Multicore work-stealing executor over OCaml 5 domains.

    The substrate the parallel detectors (SF-Order, F-Order) run on — the
    analogue of the paper's extended Cilk-F runtime. Scheduling is
    help-first: a spawn/create pushes the child task onto the worker's
    deque (stealable) and the parent continues; [sync] and [get] suspend
    by parking their one-shot continuation and returning the worker to the
    scheduler, to be re-enqueued when the join count reaches zero / the
    future is fulfilled. Help-first explores schedules a depth-first
    execution never produces, which is exactly what the on-the-fly
    detectors must be robust to.

    Client callbacks must be thread-safe; {!Events.null} and the detectors
    in [sfr_detect] are. One [run] at a time per process (worker identity
    lives in domain-local storage).

    On a deadlocked program (possible only with unstructured future use)
    [run] raises {!Program.Unstructured_use} instead of hanging.

    {b Failure semantics.} If any task — however deeply nested — raises,
    the first exception (with its backtrace) is captured, every worker
    stops at its next scheduling decision, the remaining queued tasks are
    drained and dropped, and the exception is re-raised at the join. A
    raising task can therefore never wedge the run or kill a lone domain.
    This includes synthetic {!Sfr_chaos.Chaos.Injected} faults: the
    executor's spawn/create/get/sync/steal/task boundaries are
    {!Sfr_chaos.Chaos.point} injection sites (free unless armed). *)

module Deque : sig
  type t

  val create : unit -> t
  val push_bottom : t -> (unit -> unit) -> unit
  val pop_bottom : t -> (unit -> unit) option
  val steal_top : t -> (unit -> unit) option
end
(** The per-worker deque (owner LIFO bottom, thief FIFO top). Exposed so
    the randomized model test can audit the ring-buffer grow/wraparound
    indexing; not part of the stable API. *)

val run :
  ?workers:int ->
  Events.callbacks ->
  root:Events.state ->
  (unit -> 'a) ->
  'a * Events.state
(** [run ~workers callbacks ~root main] — defaults to
    [Domain.recommended_domain_count ()] workers. Returns [main]'s result
    and the root computation's final (put-node) state. Returns only after
    {e all} tasks, including created futures whose handles escaped, have
    completed. *)
