(* A video-filter chain on the pipeline skeleton: frames stream through
   decode -> blur -> sharpen -> encode stages (Cilk-P style), expressed
   entirely with structured futures via Sfr_runtime.Pipeline. Race
   detection runs during parallel execution; a buggy filter variant that
   writes outside its frame is caught.

     dune exec examples/video_pipeline.exe                                 *)

module P = Sfr_runtime.Program
module Pipeline = Sfr_runtime.Pipeline
module Par_exec = Sfr_runtime.Par_exec
module Detector = Sfr_detect.Detector
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order

let frames = 8
let width = 64

(* stage s reads its input plane for the frame and writes its output
   plane; planes.(s) holds stage s's output for every frame *)
let make_pipeline ~buggy () =
  let stages = 4 in
  let planes = Array.init (stages + 1) (fun _ -> P.alloc (frames * width) 0) in
  (* "decoded" source data *)
  for i = 0 to (frames * width) - 1 do
    P.wr_raw planes.(0) i ((i * 31) mod 256)
  done;
  let filter ~iter:frame ~stage =
    let src = planes.(stage) and dst = planes.(stage + 1) in
    let base = frame * width in
    for x = 0 to width - 1 do
      let a = P.rd src (base + x) in
      let b = P.rd src (base + ((x + 1) mod width)) in
      P.wr dst (base + x) ((a + b + stage) / 2)
    done;
    if buggy && stage = 2 && frame = 3 then
      (* scribbles on an earlier stage's plane for the next frame — that
         cell belongs to pipeline cell (frame+1, 0), which is parallel
         with us (it is below-left in the wavefront) *)
      P.wr planes.(1) ((frame + 1) * width) 0
  in
  (planes, fun () -> Pipeline.run ~iterations:frames ~stages filter)

let detect ~buggy ~workers =
  let _planes, prog = make_pipeline ~buggy () in
  let det = Sf_order.make () in
  let (), _ = Par_exec.run ~workers det.Detector.callbacks ~root:det.Detector.root prog in
  Race.reports det.Detector.races

let () =
  Printf.printf "video pipeline: %d frames x 4 stages, parallel execution\n" frames;
  List.iter
    (fun workers ->
      let races = detect ~buggy:false ~workers in
      Printf.printf "  clean filters, %d worker(s): %d race(s)\n" workers
        (List.length races))
    [ 1; 2; 4 ];
  let races = detect ~buggy:true ~workers:2 in
  Printf.printf "  buggy sharpen stage: %d racy location(s), e.g. %s\n"
    (List.length races)
    (match races with
    | r :: _ ->
        Format.asprintf "loc %d (%a, future %d vs %d)" r.Race.loc Race.pp_kind
          r.Race.kind r.Race.prev_future r.Race.cur_future
    | [] -> "none?!");
  assert (races <> []);
  print_endline "the pipeline skeleton keeps stage order; the detector catches the bug."
