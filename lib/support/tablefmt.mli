(** Plain-text table rendering for the benchmark harness.

    The bench executable reproduces the paper's figures as aligned ASCII
    tables; this module owns column sizing and alignment. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] — column headers with their alignment. *)

val add_row : t -> string list -> unit
(** Row cells must match the column count. *)

val add_separator : t -> unit

val render : t -> string
val print : t -> unit

val cell_float : ?decimals:int -> float -> string
val cell_times : float -> string
(** Multiplicative overhead, rendered like the paper: ["(37.84x)"]. *)

val cell_speedup : float -> string
(** Scalability, rendered like the paper: ["[19.10x]"]. *)

val cell_int_compact : int -> string
(** Large counts in scientific-ish form: [1.72e10] like Figure 3. *)
