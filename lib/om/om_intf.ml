(** The order-maintenance signature, extracted from {!Om} so WSP-Order's
    English/Hebrew lists ({!Sfr_reach.Sp_order}) are backend-agnostic.

    Two implementations satisfy it:
    - {!Om} — the two-level Dietz–Sleator / Bender list (mutable labels,
      density-threshold relabeling, seqlock-validated queries);
    - {!Depa} — DePa-style immutable fork-path labels (arXiv 2204.14168):
      no relabel phase ever, so label reads need no seqlock.

    Contract every backend must honor:
    - [create] returns the list and its permanent minimum (insertion is
      only ever {e after} an existing item; items are never removed);
    - [insert_after] is serialized per list (internal mutex) and safe
      against concurrent queries;
    - [precedes]/[compare_items] are thread-safe against concurrent
      inserts and never reorder already-inserted items — that is what
      makes {!Sfr_reach.Sp_order.precedes} linearizable;
    - [words] reports the backend's honest live-word footprint (group
      arrays for the list, heap path spills for DePa) for Figure-5 style
      accounting. *)

module type S = sig
  type t
  (** An ordered list. *)

  type item
  (** An element of an ordered list. Items are never removed. *)

  val create : unit -> t * item
  (** A fresh list containing a single base item. *)

  val insert_after : t -> item -> item
  (** [insert_after t x] inserts a new item immediately after [x]. *)

  val precedes : t -> item -> item -> bool
  (** [precedes t x y] is true iff [x] is strictly before [y]. The two
      items must belong to [t]. Thread-safe against concurrent inserts. *)

  val compare_items : t -> item -> item -> int

  val size : t -> int
  (** Number of items. *)

  val words : t -> int
  (** Approximate live machine words, for Figure-5 style accounting. *)

  val check_invariants : t -> unit
  (** Raises [Failure] if internal labeling invariants are violated.
      Test hook; walks the whole list. *)

  val to_list : t -> item list
  (** All items in list order. Test hook. *)
end
