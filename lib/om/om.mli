(** Order-maintenance lists (Dietz–Sleator / Bender-style two-level
    list labeling).

    WSP-Order keeps executed strands in two total orders (English and
    Hebrew) and answers series-parallel reachability by comparing a node's
    relative position in both. This module provides the underlying ordered
    list with:

    - [insert_after] in O(1) amortized (two-level labeling: items carry a
      label within a group, groups carry a label in the top-level list;
      overflowing groups are split and the top list is relabeled with the
      Bender et al. density-threshold strategy),
    - [precedes] in O(1) worst case on a quiescent list.

    Concurrency: mutations are serialized by a per-list mutex, and label
    reads are validated with a seqlock so queries racing a relabel retry
    rather than misorder. This substitutes for WSP-Order's
    scheduler-integrated parallel rebalancing (DESIGN.md §5.2): asymptotics
    per operation are unchanged; only the contention constant differs. *)

type t
(** An ordered list. *)

type item
(** An element of an ordered list. Items are never removed. *)

val create : unit -> t * item
(** A fresh list containing a single base item. *)

val insert_after : t -> item -> item
(** [insert_after t x] inserts a new item immediately after [x]. *)

val precedes : t -> item -> item -> bool
(** [precedes t x y] is true iff [x] is strictly before [y]. The two items
    must belong to [t]. Thread-safe against concurrent inserts. *)

val compare_items : t -> item -> item -> int

val size : t -> int
(** Number of items. *)

val words : t -> int
(** Approximate live machine words, for Figure-5 style accounting. *)

val check_invariants : t -> unit
(** Raises [Failure] if internal labeling invariants are violated.
    Test hook; walks the whole list. *)

val to_list : t -> item list
(** All items in list order. Test hook. *)
