(* Tests for the reachability layer.

   The centerpiece is a serial interpreter of random structured-futures
   programs that simultaneously (a) records the dag, (b) maintains
   SP-Order positions (English/Hebrew OM lists over the pseudo-SP-dag) and
   (c) maintains SP-bags; both online structures are then differential-
   tested against ground-truth PSP reachability from the recorded dag. *)

module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Sp_order = Sfr_reach.Sp_order
module Sp_bags = Sfr_reach.Sp_bags
module Fp_sets = Sfr_reach.Fp_sets
module Prng = Sfr_support.Prng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Sp_order unit tests                                                  *)
(* ------------------------------------------------------------------ *)

let test_sporder_spawn_relations () =
  let t, root = Sp_order.create () in
  let child, cont, _b = Sp_order.spawn t ~cur:root ~block:None in
  check bool "root -> child" true (Sp_order.precedes t root child);
  check bool "root -> cont" true (Sp_order.precedes t root cont);
  check bool "child || cont" true (Sp_order.parallel t child cont);
  check bool "not child -> root" false (Sp_order.precedes t child root)

let test_sporder_sync_joins () =
  let t, root = Sp_order.create () in
  let child, cont, b = Sp_order.spawn t ~cur:root ~block:None in
  let s = Sp_order.sync t ~cur:cont ~block:(Some b) in
  check bool "child -> sync" true (Sp_order.precedes t child s);
  check bool "cont -> sync" true (Sp_order.precedes t cont s);
  check bool "root -> sync" true (Sp_order.precedes t root s)

let test_sporder_two_spawns_one_block () =
  let t, root = Sp_order.create () in
  let c1, t1, b = Sp_order.spawn t ~cur:root ~block:None in
  let c2, t2, b = Sp_order.spawn t ~cur:t1 ~block:(Some b) in
  check bool "c1 || c2" true (Sp_order.parallel t c1 c2);
  check bool "c1 || t2" true (Sp_order.parallel t c1 t2);
  check bool "c2 || t2" true (Sp_order.parallel t c2 t2);
  check bool "t1 -> t2" true (Sp_order.precedes t t1 t2);
  let s = Sp_order.sync t ~cur:t2 ~block:(Some b) in
  check bool "c1 -> s" true (Sp_order.precedes t c1 s);
  check bool "c2 -> s" true (Sp_order.precedes t c2 s)

let test_sporder_sync_without_block () =
  let t, root = Sp_order.create () in
  let s = Sp_order.sync t ~cur:root ~block:None in
  check bool "no-op sync keeps position" false (Sp_order.precedes t root s);
  check bool "and stays ordered with later inserts" true
    (let later = Sp_order.step t ~cur:s in
     Sp_order.precedes t root later)

let test_sporder_step_serial () =
  let t, root = Sp_order.create () in
  let a = Sp_order.step t ~cur:root in
  let b = Sp_order.step t ~cur:a in
  check bool "root -> a" true (Sp_order.precedes t root a);
  check bool "a -> b" true (Sp_order.precedes t a b);
  check bool "root -> b" true (Sp_order.precedes t root b)

(* ------------------------------------------------------------------ *)
(* Sp_bags unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_spbags_spawn_sync () =
  let t, rootf = Sp_bags.create () in
  let child = Sp_bags.spawn_child t in
  (* while the child executes, the parent frame is serial with it? No:
     queries are about *previous accessors* vs the current point. Simulate:
     child executes and returns. *)
  Sp_bags.sync t child;
  Sp_bags.child_returned t ~parent:rootf ~child;
  (* now executing the parent continuation: the child's accesses are
     logically parallel *)
  check bool "child parallel after return" false
    (Sp_bags.is_serial_with_current t child);
  check bool "own frame serial" true (Sp_bags.is_serial_with_current t rootf);
  Sp_bags.sync t rootf;
  check bool "child serial after sync" true (Sp_bags.is_serial_with_current t child)

let test_spbags_nested () =
  let t, rootf = Sp_bags.create () in
  let a = Sp_bags.spawn_child t in
  (* inside a: spawn b *)
  let b = Sp_bags.spawn_child t in
  Sp_bags.sync t b;
  Sp_bags.child_returned t ~parent:a ~child:b;
  check bool "b parallel inside a" false (Sp_bags.is_serial_with_current t b);
  Sp_bags.sync t a;
  check bool "b serial after a's sync" true (Sp_bags.is_serial_with_current t b);
  Sp_bags.child_returned t ~parent:rootf ~child:a;
  check bool "a parallel after return" false (Sp_bags.is_serial_with_current t a);
  check bool "b parallel too (inside a's bag)" false
    (Sp_bags.is_serial_with_current t b);
  Sp_bags.sync t rootf;
  check bool "all serial after root sync" true
    (Sp_bags.is_serial_with_current t a && Sp_bags.is_serial_with_current t b)

(* ------------------------------------------------------------------ *)
(* Fp_sets unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_fpsets_basic backend () =
  let eng = Fp_sets.create backend in
  let e = Fp_sets.empty eng in
  check bool "empty has no members" false (Fp_sets.mem e 3);
  let a = Fp_sets.with_added eng e 3 in
  check bool "added" true (Fp_sets.mem a 3);
  (* the canonical empty table must not have been mutated *)
  let e2 = Fp_sets.empty eng in
  check bool "empty still empty" false (Fp_sets.mem e2 3);
  Fp_sets.release e2;
  Fp_sets.release a

let test_fpsets_share_forces_copy backend () =
  let eng = Fp_sets.create backend in
  let a = Fp_sets.with_added eng (Fp_sets.empty eng) 1 in
  let b = Fp_sets.share a in
  (* a is shared; adding must not disturb b's view *)
  let a' = Fp_sets.with_added eng a 2 in
  check bool "a' has both" true (Fp_sets.mem a' 1 && Fp_sets.mem a' 2);
  check bool "b unchanged" false (Fp_sets.mem b 2);
  Fp_sets.release a';
  Fp_sets.release b

let test_fpsets_immutable_add backend () =
  let eng = Fp_sets.create backend in
  let a = Fp_sets.with_added eng (Fp_sets.empty eng) 1 in
  let keep = Fp_sets.share a in
  let a = Fp_sets.with_added eng a 2 in
  let a = Fp_sets.with_added eng a 3 in
  check (Alcotest.list int) "elements" [ 1; 2; 3 ] (Fp_sets.elements a);
  (* published tables are immutable: the old reference is untouched *)
  check (Alcotest.list int) "snapshot unchanged" [ 1 ] (Fp_sets.elements keep);
  (* adding a present element is the identity *)
  let allocs = Fp_sets.allocations eng in
  let a = Fp_sets.with_added eng a 2 in
  check int "present add allocates nothing" allocs (Fp_sets.allocations eng);
  Fp_sets.release keep;
  Fp_sets.release a

let test_fpsets_merge_subsume backend () =
  let eng = Fp_sets.create backend in
  let big = Fp_sets.with_added eng (Fp_sets.empty eng) 1 in
  let big = Fp_sets.with_added eng big 2 in
  let small = Fp_sets.with_added eng (Fp_sets.empty eng) 1 in
  let allocs_before = Fp_sets.allocations eng in
  let m = Fp_sets.merge eng small [ big ] in
  check int "subsuming merge allocates nothing" allocs_before
    (Fp_sets.allocations eng);
  check (Alcotest.list int) "merge result" [ 1; 2 ] (Fp_sets.elements m);
  Fp_sets.release m

let test_fpsets_merge_allocates backend () =
  let eng = Fp_sets.create backend in
  let a = Fp_sets.with_added eng (Fp_sets.empty eng) 1 in
  let b = Fp_sets.with_added eng (Fp_sets.empty eng) 2 in
  let allocs_before = Fp_sets.allocations eng in
  let m = Fp_sets.merge eng a [ b ] in
  check int "true merge allocates once" (allocs_before + 1)
    (Fp_sets.allocations eng);
  check (Alcotest.list int) "merge result" [ 1; 2 ] (Fp_sets.elements m);
  Fp_sets.release m

let test_fpsets_merge_duplicates backend () =
  let eng = Fp_sets.create backend in
  let a = Fp_sets.with_added eng (Fp_sets.empty eng) 1 in
  let dup = Fp_sets.share a in
  let m = Fp_sets.merge eng a [ dup ] in
  check (Alcotest.list int) "dup merge" [ 1 ] (Fp_sets.elements m);
  let m = Fp_sets.with_added eng m 2 in
  check (Alcotest.list int) "extended" [ 1; 2 ] (Fp_sets.elements m);
  Fp_sets.release m

let test_fpsets_live_words backend () =
  let eng = Fp_sets.create backend in
  let live0 = Fp_sets.live_words eng in
  let a = Fp_sets.with_added eng (Fp_sets.empty eng) 100 in
  check bool "live grows" true (Fp_sets.live_words eng > live0);
  Fp_sets.release a;
  check bool "live shrinks on release" true
    (Fp_sets.live_words eng <= Fp_sets.peak_words eng)

(* ------------------------------------------------------------------ *)
(* Differential testing against ground-truth PSP reachability           *)
(* ------------------------------------------------------------------ *)

type frame_sim = {
  bags_frame : Sp_bags.frame;
  mutable block : Sp_order.block option;
  mutable spawned_lasts : Dag.node list;
  mutable created : Dag.future list;
}

type sim = {
  dag : Dag.t;
  spo : Sp_order.t;
  bags : Sp_bags.t;
  mutable pos_of : (Dag.node * Sp_order.pos) list;
  (* snapshot of SP-bags answers taken when each strand became current:
     (v, u, was_serial) *)
  mutable bags_obs : (Dag.node * Dag.node * bool) list;
  mutable executed : (Dag.node * Sp_bags.frame) list; (* most recent first *)
}

let observe sim v frame =
  List.iter
    (fun (u, uframe) ->
      sim.bags_obs <-
        (v, u, Sp_bags.is_serial_with_current sim.bags uframe) :: sim.bags_obs)
    sim.executed;
  sim.executed <- (v, frame) :: sim.executed

let register sim v pos = sim.pos_of <- (v, pos) :: sim.pos_of

(* Serial interpreter of a random structured program driving all three
   structures. Returns the frame's final (node, pos). *)
let run_random_program seed ~max_ops ~max_depth =
  let rng = Prng.create seed in
  let dag, root = Dag.create () in
  let spo, root_pos = Sp_order.create () in
  let bags, root_frame = Sp_bags.create () in
  let sim = { dag; spo; bags; pos_of = []; bags_obs = []; executed = [] } in
  register sim root root_pos;
  observe sim root root_frame;
  let budget = ref max_ops in
  let rec run_frame ~first ~first_pos frame depth =
    let cur = ref first and pos = ref first_pos in
    let handles = ref [] in
    let steps = 2 + Prng.int rng 8 in
    for _ = 0 to steps do
      if !budget > 0 then begin
        decr budget;
        match Prng.int rng 8 with
        | 0 | 1 when depth < max_depth ->
            let child, cont = Dag.spawn sim.dag ~cur:!cur in
            let cpos, tpos, block =
              Sp_order.spawn sim.spo ~cur:!pos ~block:frame.block
            in
            frame.block <- Some block;
            register sim child cpos;
            register sim cont tpos;
            let child_frame =
              {
                bags_frame = Sp_bags.spawn_child sim.bags;
                block = None;
                spawned_lasts = [];
                created = [];
              }
            in
            observe sim child child_frame.bags_frame;
            let child_last, _ = run_frame ~first:child ~first_pos:cpos child_frame (depth + 1) in
            Sp_bags.child_returned sim.bags ~parent:frame.bags_frame
              ~child:child_frame.bags_frame;
            frame.spawned_lasts <- child_last :: frame.spawned_lasts;
            cur := cont;
            pos := tpos;
            observe sim cont frame.bags_frame
        | 2 | 3 when depth < max_depth ->
            let child, cont, fid = Dag.create_future sim.dag ~cur:!cur in
            let cpos, tpos, block =
              Sp_order.spawn sim.spo ~cur:!pos ~block:frame.block
            in
            frame.block <- Some block;
            register sim child cpos;
            register sim cont tpos;
            let child_frame =
              {
                bags_frame = Sp_bags.spawn_child sim.bags;
                block = None;
                spawned_lasts = [];
                created = [];
              }
            in
            observe sim child child_frame.bags_frame;
            let child_last, _ = run_frame ~first:child ~first_pos:cpos child_frame (depth + 1) in
            Dag.put sim.dag ~cur:child_last;
            Sp_bags.child_returned sim.bags ~parent:frame.bags_frame
              ~child:child_frame.bags_frame;
            frame.created <- fid :: frame.created;
            handles := fid :: !handles;
            cur := cont;
            pos := tpos;
            observe sim cont frame.bags_frame
        | 4 when frame.spawned_lasts <> [] || frame.created <> [] ->
            let s =
              Dag.sync sim.dag ~cur:!cur ~spawned_lasts:frame.spawned_lasts
                ~created:frame.created
            in
            let spos = Sp_order.sync sim.spo ~cur:!pos ~block:frame.block in
            Sp_bags.sync sim.bags frame.bags_frame;
            frame.spawned_lasts <- [];
            frame.created <- [];
            frame.block <- None;
            register sim s spos;
            cur := s;
            pos := spos;
            observe sim s frame.bags_frame
        | 5 | 6 when !handles <> [] ->
            let i = Prng.int rng (List.length !handles) in
            let h = List.nth !handles i in
            handles := List.filteri (fun j _ -> j <> i) !handles;
            let g = Dag.get sim.dag ~cur:!cur ~future:h in
            let gpos = Sp_order.step sim.spo ~cur:!pos in
            register sim g gpos;
            cur := g;
            pos := gpos;
            observe sim g frame.bags_frame
        | _ -> ()
      end
    done;
    (* frame-end implicit sync *)
    if frame.spawned_lasts <> [] || frame.created <> [] then begin
      let s =
        Dag.sync sim.dag ~cur:!cur ~spawned_lasts:frame.spawned_lasts
          ~created:frame.created
      in
      let spos = Sp_order.sync sim.spo ~cur:!pos ~block:frame.block in
      Sp_bags.sync sim.bags frame.bags_frame;
      frame.spawned_lasts <- [];
      frame.created <- [];
      frame.block <- None;
      register sim s spos;
      cur := s;
      pos := spos;
      observe sim s frame.bags_frame
    end;
    (!cur, !pos)
  in
  let root_frame_sim =
    { bags_frame = root_frame; block = None; spawned_lasts = []; created = [] }
  in
  let final, _ = run_frame ~first:root ~first_pos:root_pos root_frame_sim 0 in
  Dag.put sim.dag ~cur:final;
  sim

let prop_sporder_matches_psp =
  QCheck2.Test.make ~name:"sp_order precedes = ground-truth PSP reachability"
    ~count:120
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sim = run_random_program seed ~max_ops:100 ~max_depth:5 in
      let oracle = Dag_algo.build_oracle sim.dag Dag_algo.Psp in
      List.for_all
        (fun (u, upos) ->
          List.for_all
            (fun (v, vpos) ->
              Sp_order.precedes sim.spo upos vpos = Dag_algo.precedes oracle u v)
            sim.pos_of)
        sim.pos_of)

let prop_spbags_matches_psp =
  QCheck2.Test.make ~name:"sp_bags answers = ground-truth PSP reachability"
    ~count:120
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let sim = run_random_program seed ~max_ops:100 ~max_depth:5 in
      let oracle = Dag_algo.build_oracle sim.dag Dag_algo.Psp in
      List.for_all
        (fun (v, u, was_serial) -> was_serial = Dag_algo.precedes oracle u v)
        sim.bags_obs)

(* The differential properties are only meaningful if the generator
   produces real structure; pin that down. *)
let test_generator_nontrivial () =
  let nodes = ref 0 and futures = ref 0 and gets = ref 0 and biggest = ref 0 in
  for seed = 0 to 49 do
    let sim = run_random_program seed ~max_ops:100 ~max_depth:5 in
    let n = Dag.n_nodes sim.dag in
    nodes := !nodes + n;
    futures := !futures + Dag.n_futures sim.dag - 1;
    biggest := max !biggest n;
    for f = 1 to Dag.n_futures sim.dag - 1 do
      if Dag.get_node_of sim.dag f <> None then incr gets
    done
  done;
  check bool "enough nodes overall" true (!nodes > 1_500);
  check bool "enough futures overall" true (!futures > 100);
  check bool "some gets happen" true (!gets > 30);
  check bool "some big programs" true (!biggest >= 40)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sporder_matches_psp; prop_spbags_matches_psp ]

let fpsets_cases backend tag =
  [
    Alcotest.test_case (tag ^ ": basic") `Quick (test_fpsets_basic backend);
    Alcotest.test_case (tag ^ ": share forces copy") `Quick
      (test_fpsets_share_forces_copy backend);
    Alcotest.test_case (tag ^ ": immutable additions") `Quick
      (test_fpsets_immutable_add backend);
    Alcotest.test_case (tag ^ ": merge subsumes") `Quick
      (test_fpsets_merge_subsume backend);
    Alcotest.test_case (tag ^ ": merge allocates") `Quick
      (test_fpsets_merge_allocates backend);
    Alcotest.test_case (tag ^ ": merge duplicates") `Quick
      (test_fpsets_merge_duplicates backend);
    Alcotest.test_case (tag ^ ": live words") `Quick
      (test_fpsets_live_words backend);
  ]

let () =
  if Sys.getenv_opt "SFR_SIZES" <> None then begin
    let nodes = ref 0 and futures = ref 0 and gets = ref 0 and biggest = ref 0 in
    for seed = 0 to 49 do
      let sim = run_random_program seed ~max_ops:100 ~max_depth:5 in
      let n = Dag.n_nodes sim.dag in
      nodes := !nodes + n;
      futures := !futures + Dag.n_futures sim.dag - 1;
      biggest := max !biggest n;
      for f = 1 to Dag.n_futures sim.dag - 1 do
        if Dag.get_node_of sim.dag f <> None then incr gets
      done
    done;
    Printf.printf "nodes=%d futures=%d gets=%d biggest=%d\n" !nodes !futures !gets !biggest;
    exit 0
  end

let () =
  Alcotest.run "reach"
    [
      ( "sp_order",
        [
          Alcotest.test_case "spawn relations" `Quick test_sporder_spawn_relations;
          Alcotest.test_case "sync joins" `Quick test_sporder_sync_joins;
          Alcotest.test_case "two spawns one block" `Quick
            test_sporder_two_spawns_one_block;
          Alcotest.test_case "sync without block" `Quick
            test_sporder_sync_without_block;
          Alcotest.test_case "step serial" `Quick test_sporder_step_serial;
        ] );
      ( "sp_bags",
        [
          Alcotest.test_case "spawn/sync" `Quick test_spbags_spawn_sync;
          Alcotest.test_case "nested" `Quick test_spbags_nested;
        ] );
      ( "fp_sets",
        fpsets_cases Fp_sets.Bitmap "bitmap" @ fpsets_cases Fp_sets.Hashed "hashed" );
      ( "differential",
        Alcotest.test_case "generator is nontrivial" `Quick test_generator_nontrivial
        :: qtests );
    ]

