module Union_find = Sfr_support.Union_find
module Vec = Sfr_support.Vec

type kind = S | P

type frame = {
  id : int;
  elem : int; (* the frame's identity element; starts in its own S-bag *)
  mutable p_rep : int option; (* representative of the P-bag, if nonempty *)
}

type t = {
  uf : Union_find.t;
  kinds : kind Vec.t; (* indexed by union-find element; valid at reps *)
  mutable nframes : int;
}

let new_elem t k =
  let e = Union_find.make_set t.uf in
  let i = Vec.push t.kinds k in
  assert (i = e);
  e

let create () =
  let t = { uf = Union_find.create (); kinds = Vec.create ~dummy:S (); nframes = 0 } in
  let elem = new_elem t S in
  t.nframes <- 1;
  (t, { id = 0; elem; p_rep = None })

let spawn_child t =
  let elem = new_elem t S in
  let id = t.nframes in
  t.nframes <- id + 1;
  { id; elem; p_rep = None }

let child_returned t ~parent ~child =
  (* S(child) joins P(parent); the child must have implicitly synced *)
  assert (child.p_rep = None);
  let child_rep = Union_find.find t.uf child.elem in
  match parent.p_rep with
  | None ->
      Vec.set t.kinds child_rep P;
      parent.p_rep <- Some child_rep
  | Some p ->
      let rep = Union_find.union t.uf p child_rep in
      Vec.set t.kinds rep P;
      parent.p_rep <- Some rep

let sync t frame =
  match frame.p_rep with
  | None -> ()
  | Some p ->
      let rep = Union_find.union t.uf p frame.elem in
      Vec.set t.kinds rep S;
      frame.p_rep <- None

let is_serial_with_current t frame =
  Vec.get t.kinds (Union_find.find t.uf frame.elem) = S

let frame_id frame = frame.id

let words t = Union_find.words t.uf + Vec.words t.kinds + 2
