module Dag = Sfr_dag.Dag

type Events.state += Node of Dag.node

type access = { node : Dag.node; loc : int; is_write : bool }

type t = {
  dag : Dag.t;
  root : Dag.node;
  reads : int Atomic.t;
  writes : int Atomic.t;
  log : bool;
  log_mu : Mutex.t;
  mutable log_items : access list;
}

let node_of = function
  | Node v -> v
  | _ -> invalid_arg "Trace.node_of: foreign state"

let make ?(log_accesses = false) () =
  let dag, root = Dag.create () in
  let t =
    {
      dag;
      root;
      reads = Atomic.make 0;
      writes = Atomic.make 0;
      log = log_accesses;
      log_mu = Mutex.create ();
      log_items = [];
    }
  in
  let log_access node loc is_write =
    if t.log then begin
      Mutex.lock t.log_mu;
      t.log_items <- { node; loc; is_write } :: t.log_items;
      Mutex.unlock t.log_mu
    end
  in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let child, cont = Dag.spawn dag ~cur:(node_of cur) in
          (Node child, Node cont));
      on_create =
        (fun cur ->
          let child, cont, _fid = Dag.create_future dag ~cur:(node_of cur) in
          (Node child, Node cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts ->
          let s =
            Dag.sync dag ~cur:(node_of cur)
              ~spawned_lasts:(List.map node_of spawned_lasts)
              ~created:
                (List.map (fun st -> Dag.future_of dag (node_of st)) created_firsts)
          in
          Node s);
      on_put = (fun cur -> Dag.put dag ~cur:(node_of cur));
      on_get =
        (fun ~cur ~put ->
          let future = Dag.future_of dag (node_of put) in
          Node (Dag.get dag ~cur:(node_of cur) ~future));
      on_returned = (fun ~cont:_ ~child_last:_ -> ());
      on_read =
        (fun cur loc ->
          Atomic.incr t.reads;
          let v = node_of cur in
          Dag.add_cost dag v 1;
          log_access v loc false);
      on_write =
        (fun cur loc ->
          Atomic.incr t.writes;
          let v = node_of cur in
          Dag.add_cost dag v 1;
          log_access v loc true);
      on_work = (fun cur n -> Dag.add_cost dag (node_of cur) n);
    }
  in
  (t, callbacks, Node root)

let dag t = t.dag
let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes

let accesses t =
  Mutex.lock t.log_mu;
  let items = t.log_items in
  Mutex.unlock t.log_mu;
  (* Deterministic order regardless of executor and schedule: node IDs
     are assigned in event order, so (node, loc, is_write) is a total
     key up to indistinguishable duplicates — oracle comparisons and log
     round-trip tests can diff access lists structurally. *)
  List.sort
    (fun a b ->
      match Int.compare a.node b.node with
      | 0 -> (
          match Int.compare a.loc b.loc with
          | 0 -> Bool.compare a.is_write b.is_write
          | c -> c)
      | c -> c)
    items
