(* Tests for the pipeline skeleton: dependence structure against the
   ground-truth dag oracle, structured-use discipline, execution counts
   under both executors, and race detection over pipelined memory. *)

module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Dag_check = Sfr_dag.Dag_check
module Program = Sfr_runtime.Program
module Pipeline = Sfr_runtime.Pipeline
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Events = Sfr_runtime.Events
module Trace = Sfr_runtime.Trace
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Discipline = Sfr_detect.Discipline
module Naive_detector = Sfr_detect.Naive_detector

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_runs_every_cell () =
  List.iter
    (fun (run_it, label) ->
      let hits = Array.make (4 * 3) 0 in
      run_it (fun () ->
          Pipeline.run ~iterations:4 ~stages:3 (fun ~iter ~stage ->
              hits.((iter * 3) + stage) <- hits.((iter * 3) + stage) + 1));
      Array.iteri
        (fun i n -> check int (Printf.sprintf "%s cell %d once" label i) 1 n)
        hits)
    [
      ((fun p -> ignore (Serial_exec.run Events.null ~root:Events.Unit_state p)), "serial");
      ( (fun p -> ignore (Par_exec.run ~workers:2 Events.null ~root:Events.Unit_state p)),
        "parallel" );
    ]

let test_dimensions_validated () =
  Alcotest.check_raises "needs positive dims"
    (Invalid_argument "Pipeline.run: iterations and stages must be positive")
    (fun () ->
      ignore
        (Serial_exec.run Events.null ~root:Events.Unit_state (fun () ->
             Pipeline.run ~iterations:0 ~stages:3 (fun ~iter:_ ~stage:_ -> ()))))

(* the dag realizes exactly the pipeline partial order *)
let test_dependence_structure () =
  let iterations = 4 and stages = 3 in
  let cell_node = Array.make (iterations * stages) (-1) in
  (* recover each cell's dag strand from the access log of a per-cell
     instrumented write *)
  let mem = Program.alloc (iterations * stages) 0 in
  let trace, cb, root = Trace.make ~log_accesses:true () in
  let (), _ =
    Serial_exec.run cb ~root (fun () ->
        Pipeline.run ~iterations ~stages (fun ~iter ~stage ->
            Program.wr mem ((iter * stages) + stage) 1))
  in
  List.iter
    (fun (a : Trace.access) ->
      let idx = a.Trace.loc - Program.base mem in
      if idx >= 0 && idx < iterations * stages then cell_node.(idx) <- a.Trace.node)
    (Trace.accesses trace);
  let dag = Trace.dag trace in
  check bool "valid SF dag" true (Dag_check.validate_sf dag = []);
  check int "one future per cell (+root)" (1 + (iterations * stages)) (Dag.n_futures dag);
  let oracle = Dag_algo.build_oracle dag Dag_algo.Full in
  let node i j = cell_node.((i * stages) + j) in
  for i = 0 to iterations - 1 do
    for j = 0 to stages - 1 do
      check bool "cell executed" true (node i j >= 0);
      (* within-iteration order *)
      if j > 0 then
        check bool
          (Printf.sprintf "(%d,%d) -> (%d,%d)" i (j - 1) i j)
          true
          (Dag_algo.precedes oracle (node i (j - 1)) (node i j));
      (* cross-iteration stage order *)
      if i > 0 then
        check bool
          (Printf.sprintf "(%d,%d) -> (%d,%d)" (i - 1) j i j)
          true
          (Dag_algo.precedes oracle (node (i - 1) j) (node i j))
    done
  done;
  (* genuine pipelining: a later iteration's early stage is parallel with
     an earlier iteration's late stage *)
  check bool "wavefront parallelism" true
    (Dag_algo.logically_parallel oracle (node 1 0) (node 0 2))

(* the skeleton stays inside the structured discipline *)
let test_pipeline_structured () =
  let d = Discipline.make () in
  let (), _ =
    Serial_exec.run d.Discipline.callbacks ~root:d.Discipline.root (fun () ->
        Pipeline.run ~iterations:5 ~stages:4 (fun ~iter:_ ~stage:_ -> Program.work 1))
  in
  check int "no violations" 0 (List.length (d.Discipline.violations ()))

(* stage buffers handed down the pipeline are race-free; skipping a stage
   dependency (simulated with a buggy body writing a neighbour's cell)
   races — and SF-Order agrees with the oracle on both *)
let test_pipeline_detection () =
  let iterations = 3 and stages = 3 in
  let build buggy () =
    let buf = Program.alloc (iterations * stages) 0 in
    ( buf,
      fun () ->
        Pipeline.run ~iterations ~stages (fun ~iter ~stage ->
            let me = (iter * stages) + stage in
            (* read my upstream neighbours' cells, write mine *)
            let up = if iter > 0 then Program.rd buf (me - stages) else 0 in
            let left = if stage > 0 then Program.rd buf (me - 1) else 0 in
            Program.wr buf me (1 + up + left);
            if buggy && iter = 1 && stage = 1 then
              (* out-of-discipline write into a parallel cell *)
              Program.wr buf ((2 * stages) + 0) 99) )
  in
  List.iter
    (fun buggy ->
      let buf, prog = build buggy () in
      let trace, cb, root = Trace.make ~log_accesses:true () in
      let (), _ = Serial_exec.run cb ~root prog in
      let v = Naive_detector.analyze (Trace.dag trace) (Trace.accesses trace) in
      let expected =
        List.map (fun l -> l - Program.base buf) v.Naive_detector.racy_locations
      in
      check bool
        (Printf.sprintf "oracle: racy iff buggy (%b)" buggy)
        buggy (expected <> []);
      let buf, prog = build buggy () in
      let det = Sf_order.make () in
      let (), _ = Serial_exec.run det.Detector.callbacks ~root:det.Detector.root prog in
      check (Alcotest.list int)
        (Printf.sprintf "sf-order matches oracle (buggy=%b)" buggy)
        expected
        (List.map (fun l -> l - Program.base buf) (Detector.racy_locations det)))
    [ false; true ]

let () =
  Alcotest.run "pipeline"
    [
      ( "skeleton",
        [
          Alcotest.test_case "runs every cell" `Quick test_runs_every_cell;
          Alcotest.test_case "dimension validation" `Quick test_dimensions_validated;
          Alcotest.test_case "dependence structure" `Quick test_dependence_structure;
          Alcotest.test_case "structured discipline" `Quick test_pipeline_structured;
          Alcotest.test_case "race detection" `Quick test_pipeline_detection;
        ] );
    ]
