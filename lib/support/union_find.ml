type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable next : int;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { parent = Array.make capacity 0; rank = Array.make capacity 0; next = 0 }

let grow t n =
  let cap = Array.length t.parent in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let parent = Array.make cap' 0 and rank = Array.make cap' 0 in
    Array.blit t.parent 0 parent 0 cap;
    Array.blit t.rank 0 rank 0 cap;
    t.parent <- parent;
    t.rank <- rank
  end

let make_set t =
  let id = t.next in
  grow t (id + 1);
  t.parent.(id) <- id;
  t.rank.(id) <- 0;
  t.next <- id + 1;
  id

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else if t.rank.(ra) < t.rank.(rb) then begin
    t.parent.(ra) <- rb;
    rb
  end
  else if t.rank.(ra) > t.rank.(rb) then begin
    t.parent.(rb) <- ra;
    ra
  end
  else begin
    t.parent.(rb) <- ra;
    t.rank.(ra) <- t.rank.(ra) + 1;
    ra
  end

let same t a b = find t a = find t b
let count t = t.next
let words t = (2 * Array.length t.parent) + 4
