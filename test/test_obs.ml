(* Tests for Sfr_obs: domain-safe counter merging, histogram bucket
   boundaries, Chrome-trace JSON round-tripping, and the differential
   check that SF-Order's query-case counters account for every
   reachability query. *)

module Metrics = Sfr_obs.Metrics
module Trace_event = Sfr_obs.Trace_event
module Json_min = Sfr_obs.Json_min
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Serial_exec = Sfr_runtime.Serial_exec
module Synthetic = Sfr_workloads.Synthetic

let check = Alcotest.check

(* -- counters --------------------------------------------------------- *)

let test_counter_concurrent_merge () =
  Metrics.enable ();
  let c = Metrics.counter "test.obs.concurrent_sum" in
  let per_domain = 50_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  (* The first 128 domains of the process have distinct slots, so the
     merge is exact, not approximate. *)
  check Alcotest.int "4 domains x 50k increments" (4 * per_domain)
    (Metrics.value c)

let test_counter_max_merge () =
  Metrics.enable ();
  let c = Metrics.counter ~kind:`Max "test.obs.concurrent_max" in
  let domains =
    Array.init 4 (fun i ->
        Domain.spawn (fun () ->
            Metrics.add c ((i + 1) * 10);
            Metrics.add c 1 (* must not lower the high-water mark *)))
  in
  Array.iter Domain.join domains;
  check Alcotest.int "max across domains" 40 (Metrics.value c)

let test_counter_disable () =
  let c = Metrics.counter "test.obs.disabled" in
  let before = Metrics.value c in
  Metrics.disable ();
  Metrics.incr c;
  Metrics.add c 100;
  Metrics.enable ();
  check Alcotest.int "no increments while disabled" before (Metrics.value c)

let test_reset_all () =
  Metrics.enable ();
  let c = Metrics.counter "test.obs.reset_me" in
  let h = Metrics.histogram "test.obs.reset_hist" in
  Metrics.add c 7;
  Metrics.observe h 100;
  check Alcotest.bool "counter accumulated" true (Metrics.value c > 0);
  Metrics.reset_all ();
  check Alcotest.int "counter zeroed" 0 (Metrics.value c);
  check Alcotest.(list (pair int int)) "histogram zeroed" [] (Metrics.buckets h);
  (* registration survives the reset; only the values are dropped *)
  Metrics.incr c;
  check Alcotest.int "counter usable after reset" 1 (Metrics.value c);
  Metrics.reset_all ()

(* -- histograms ------------------------------------------------------- *)

let test_histogram_bucket_boundaries () =
  (* Bucket i holds 2^(i-1) < v <= 2^i; bucket 0 also absorbs v <= 1. *)
  List.iter
    (fun (v, want) ->
      check Alcotest.int (Printf.sprintf "bucket_index %d" v) want
        (Metrics.bucket_index v))
    [
      (0, 0); (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4);
      (1024, 10); (1025, 11);
    ];
  (* exact powers land in bucket i, the next value spills into i+1 —
     checked across the whole range so no power hits an off-by-one *)
  for i = 1 to 61 do
    check Alcotest.int (Printf.sprintf "bucket_index 2^%d" i) i
      (Metrics.bucket_index (1 lsl i));
    check Alcotest.int (Printf.sprintf "bucket_index 2^%d+1" i) (i + 1)
      (Metrics.bucket_index ((1 lsl i) + 1))
  done;
  (* the top of the int range must stay inside the buckets without the
     doubling bound overflowing: max_int = 2^62 - 1 <= 2^62 -> bucket 62
     (2^62 itself is not representable; 1 lsl 62 wraps to min_int) *)
  check Alcotest.int "bucket_index max_int" 62 (Metrics.bucket_index max_int)

let test_histogram_buckets () =
  Metrics.enable ();
  let h = Metrics.histogram "test.obs.hist" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 4; 5; 8; 9 ];
  check
    Alcotest.(list (pair int int))
    "non-empty buckets with inclusive bounds"
    [ (1, 1); (2, 1); (4, 2); (8, 2); (16, 1) ]
    (Metrics.buckets h);
  (* The snapshot expands the same data into .le_N / .count entries. *)
  let snap = Metrics.snapshot () in
  check Alcotest.(option int) "snapshot .count" (Some 7)
    (List.assoc_opt "test.obs.hist.count" snap);
  check Alcotest.(option int) "snapshot .le_4" (Some 2)
    (List.assoc_opt "test.obs.hist.le_4" snap)

(* -- trace JSON round-trip -------------------------------------------- *)

let test_trace_round_trip () =
  Trace_event.start ();
  let v = Trace_event.with_span ~cat:"test" "outer" (fun () -> 42) in
  Trace_event.instant ~cat:"test" "mark \"quoted\"";
  Trace_event.stop ();
  check Alcotest.int "with_span passes the result through" 42 v;
  let json = Trace_event.to_json_string () in
  Trace_event.clear ();
  match Json_min.parse json with
  | Error e -> Alcotest.failf "trace JSON did not parse: %s" e
  | Ok doc -> (
      match Json_min.member "traceEvents" doc with
      | Some (Json_min.Arr events) ->
          check Alcotest.int "two events" 2 (List.length events);
          let names =
            List.filter_map
              (fun ev ->
                match Json_min.member "name" ev with
                | Some (Json_min.Str s) -> Some s
                | _ -> None)
            events
          in
          check
            Alcotest.(slist string String.compare)
            "names survive escaping"
            [ "outer"; "mark \"quoted\"" ]
            names;
          List.iter
            (fun ev ->
              (match Json_min.member "ph" ev with
              | Some (Json_min.Str ("X" | "i")) -> ()
              | _ -> Alcotest.fail "event phase must be X or i");
              match Json_min.member "ts" ev with
              | Some (Json_min.Num ts) ->
                  check Alcotest.bool "ts is non-negative" true (ts >= 0.0)
              | _ -> Alcotest.fail "event has no numeric ts")
            events
      | _ -> Alcotest.fail "no traceEvents array")

(* Regression: control characters in event names and counter-series keys
   must be escaped by the JSON writer, never emitted raw. *)
let test_trace_control_char_escaping () =
  Trace_event.start ();
  Trace_event.instant ~cat:"test" "name with\nnewline\tand tab";
  Trace_event.counter ~cat:"test" "series\nname" 7;
  Trace_event.stop ();
  let json = Trace_event.to_json_string () in
  Trace_event.clear ();
  String.iter
    (fun c ->
      if Char.code c < 0x20 then
        Alcotest.failf "raw control byte 0x%02x in trace JSON" (Char.code c))
    json;
  match Json_min.parse json with
  | Error e -> Alcotest.failf "trace JSON did not parse: %s" e
  | Ok doc -> (
      match Json_min.member "traceEvents" doc with
      | Some (Json_min.Arr events) ->
          let names =
            List.filter_map
              (fun ev ->
                match Json_min.member "name" ev with
                | Some (Json_min.Str s) -> Some s
                | _ -> None)
              events
          in
          check
            Alcotest.(slist string String.compare)
            "names decode back with their control chars"
            [ "name with\nnewline\tand tab"; "series\nname" ]
            names;
          let counter =
            List.find_opt
              (fun ev ->
                Json_min.member "ph" ev = Some (Json_min.Str "C"))
              events
          in
          (match counter with
          | None -> Alcotest.fail "no counter event in trace"
          | Some ev -> (
              match Json_min.member "args" ev with
              | Some (Json_min.Obj [ ("value", Json_min.Num v) ]) ->
                  check (Alcotest.float 1e-9) "counter value" 7.0 v
              | _ -> Alcotest.fail "counter args malformed"))
      | _ -> Alcotest.fail "no traceEvents array")

let test_trace_off_by_default () =
  Trace_event.clear ();
  let v = Trace_event.with_span "ignored" (fun () -> 7) in
  check Alcotest.int "thunk still runs" 7 v;
  check Alcotest.int "nothing buffered while off" 0
    (List.length (Trace_event.events ()))

(* -- Json_min escaping and nesting ------------------------------------ *)

let test_json_escape_decoding () =
  List.iter
    (fun (js, want) ->
      match Json_min.parse js with
      | Ok (Json_min.Str s) ->
          check Alcotest.string ("parse " ^ String.escaped js) want s
      | Ok _ -> Alcotest.failf "%s: parsed to a non-string" (String.escaped js)
      | Error e -> Alcotest.failf "%s: %s" (String.escaped js) e)
    [
      ({|"a\"b"|}, "a\"b");
      ({|"a\\b"|}, "a\\b");
      ({|"a\/b"|}, "a/b");
      ({|"\n\t\r\b\f"|}, "\n\t\r\b\012");
      ("\"\\u0000\\u0001\\u001f\"", "\x00\x01\x1f");
      ("\"caf\\u00e9\"", "caf\xe9");
      (* raw non-ASCII bytes pass through untouched *)
      ("\"caf\xc3\xa9\"", "caf\xc3\xa9");
    ]

(* Round trip through the emitters' shared escaping discipline: encode
   the way Trace_event/Bench_schema do, decode with Json_min. *)
let emit_escaped s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let test_json_escape_round_trip () =
  List.iter
    (fun s ->
      match Json_min.parse (emit_escaped s) with
      | Ok (Json_min.Str s') ->
          check Alcotest.string ("round trip " ^ String.escaped s) s s'
      | Ok _ -> Alcotest.failf "%s: parsed to a non-string" (String.escaped s)
      | Error e -> Alcotest.failf "%s: %s" (String.escaped s) e)
    [
      "";
      "plain";
      "with \"quotes\" and \\backslashes\\";
      "controls: \x00\x01\x02\x1f \n\t\r";
      "non-ascii bytes: caf\xc3\xa9 \xff\x80";
      String.init 256 Char.chr;
    ]

let test_json_deeply_nested_arrays () =
  let depth = 500 in
  let js = String.make depth '[' ^ "7" ^ String.make depth ']' in
  match Json_min.parse js with
  | Error e -> Alcotest.failf "nested parse failed: %s" e
  | Ok doc ->
      let rec depth_of acc = function
        | Json_min.Arr [ x ] -> depth_of (acc + 1) x
        | Json_min.Num n ->
            check (Alcotest.float 0.0) "payload survives" 7.0 n;
            acc
        | _ -> Alcotest.fail "unexpected shape"
      in
      check Alcotest.int "all levels preserved" depth (depth_of 0 doc)

(* -- differential: query-case counters vs Detector.queries ------------ *)

let test_query_cases_sum_to_queries () =
  Metrics.enable ();
  let t = Synthetic.generate ~seed:7 ~ops:400 ~depth:6 ~locs:24 () in
  let inst = Synthetic.instantiate t in
  let det = Sf_order.make () in
  let (), _ =
    Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
      inst.Synthetic.program
  in
  let m = det.Detector.metrics () in
  let get name = Option.value ~default:0 (List.assoc_opt name m) in
  let same = get "reach.query.same_future"
  and cp = get "reach.query.cp"
  and gp = get "reach.query.gp" in
  let total = det.Detector.queries () in
  check Alcotest.bool "ran some queries" true (total > 0);
  check Alcotest.int "Algorithm 1 cases partition the queries" total
    (same + cp + gp)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "concurrent sum merge" `Quick
            test_counter_concurrent_merge;
          Alcotest.test_case "concurrent max merge" `Quick
            test_counter_max_merge;
          Alcotest.test_case "disable" `Quick test_counter_disable;
          Alcotest.test_case "reset_all" `Quick test_reset_all;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "buckets + snapshot" `Quick test_histogram_buckets;
        ] );
      ( "trace",
        [
          Alcotest.test_case "round trip" `Quick test_trace_round_trip;
          Alcotest.test_case "control-char escaping" `Quick
            test_trace_control_char_escaping;
          Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
        ] );
      ( "json",
        [
          Alcotest.test_case "escape decoding" `Quick test_json_escape_decoding;
          Alcotest.test_case "escape round trip" `Quick
            test_json_escape_round_trip;
          Alcotest.test_case "deeply nested arrays" `Quick
            test_json_deeply_nested_arrays;
        ] );
      ( "differential",
        [
          Alcotest.test_case "query cases sum to queries" `Quick
            test_query_cases_sum_to_queries;
        ] );
    ]
