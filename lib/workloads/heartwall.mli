(** Heart Wall tracking (paper benchmark [hw], from Rodinia; 10 ultrasound
    frames at paper scale).

    We have no ultrasound data, so frames are synthetic deterministic
    images (DESIGN.md §5.5); the dag shape and access mix match the
    original: frames are pipelined with one structured future per frame
    (frame [f] gets frame [f-1]'s handle before reading the previous
    point positions), and within a frame the sample points are tracked by
    a fan of group sub-futures created and gotten inside the frame, plus
    fork-join image generation. Tracking is a window search minimizing a
    sum-of-absolute-differences response against a template.

    [inject_race] makes one frame skip its get of the previous frame, so
    its reads of the previous positions race that frame's writes. *)

val workload : Workload.t
