(** One client's ingest session: frame decoding, protocol sequencing,
    credit accounting, the bounded payload queue, and the streaming
    detector behind it.

    A session is a small state machine — [Awaiting_hello → Streaming →
    Finished] — whose every terminal transition yields exactly one
    {!outcome} (latched; later events cannot change it). The module is
    {b not} thread-safe: {!Server} owns a lock per session and calls in
    under it. Detection itself ({!ingest}ing queued payloads into
    {!Sfr_eventlog.Stream_replay}) is also done under that lock — a
    slow analysis stalls only this session's intake, which is the
    backpressure story working as intended.

    Credit: {!on_bytes} accepts a [DATA] payload only while the client
    holds enough credit; acceptance debits it, {!ingest} earns it back
    (bounded by the window), and the caller forwards the resulting
    [CREDIT] frame. A client that overruns its window is finished with
    [ERR_PROTOCOL] — by construction a session never buffers more than
    [credit_window] bytes. *)

type config = {
  credit_window : int;  (** max un-ingested DATA bytes per session *)
  deadline_ms : int option;  (** wall-clock budget for the whole session *)
  idle_ms : int option;  (** max quiet gap between frames *)
  shards : int;  (** detection shards, as {!Sfr_eventlog.Stream_replay} *)
  access_batch : int;
}

val default_config : config
(** 256 KiB window, no deadline, no idle timeout, 1 shard. *)

(** The terminal result of a session, kept server-side even when the
    peer is gone and the verdict frame cannot be delivered. *)
type outcome = {
  session : int;
  code : Frame.reply_code;
  races : int;  (** racy locations *)
  events : int;
  bytes_analyzed : int;
  message : string;
  reports : Sfr_detect.Race.report list;
}

val verdict_frame : outcome -> Frame.frame

type t

val create : id:int -> now_ms:int -> config -> t
val id : t -> int
val finished : t -> bool
val outcome : t -> outcome option
val queued_bytes : t -> int
val last_activity_ms : t -> int
val started_ms : t -> int

val credit : t -> int
(** Bytes the client may still send (admin-plane session table). *)

val phase_name : t -> string
(** ["admin"], ["hello"], ["streaming"] or ["finished"] — for the
    admin-plane session table. *)

val admin_only : t -> bool
(** True for a connection whose first request was an admin frame: it
    produces no outcome, holds no budget, and must not count against
    the served-session limit. Cleared if a [HELLO] later arrives. *)

(** An admin-plane request the {e server} must answer from live state
    (the reply needs the whole session table, which the session cannot
    see). *)
type admin_request = Admin_stats | Admin_health | Admin_metrics

(** What the caller must do after a call: send these frames (in order)
    and settle the global byte budget — [accepted] fresh DATA bytes
    entered this session's queue, [released] bytes left it (ingested,
    or dropped by a terminal transition). [finished] is the
    session-termination edge: record the outcome, schedule no more
    work. [admin] lists requests to answer from server state, in
    arrival order, after the [send] frames. *)
type effect_ = {
  send : Frame.frame list;
  accepted : int;
  released : int;
  finished : bool;
  admin : admin_request list;
}

val on_bytes : t -> now_ms:int -> Bytes.t -> pos:int -> len:int -> effect_
(** Feed raw transport bytes: decode frames, apply protocol rules.
    Frame-level errors (bad tag/CRC, overlong, malformed payload),
    out-of-order frames, version mismatch and credit overruns all
    finish the session with a typed reply instead of raising. *)

val ingest : t -> effect_
(** Drain the accepted-payload queue into the detector ([released] =
    bytes drained). [send] carries the earned [CREDIT] (suppressed
    while {!set_grant_credit} is off) and, once a received [CLOSE] has
    been fully processed, the terminal [VERDICT]. *)

val needs_ingest : t -> bool
(** Payloads queued, or a [CLOSE] awaiting finalization. *)

val awaiting_hello : t -> bool

val set_grant_credit : t -> bool -> unit
(** Parking lever: while [false], {!ingest} still drains (freeing
    memory) but earns the client no new credit, stalling its intake. *)

val replenish_credit : t -> effect_
(** Catch-up grant after a park ends: tops the client back up to
    [credit_window - queued_bytes] (what {!ingest} would have granted
    had credit not been frozen). *)

val on_disconnect : t -> effect_
(** Transport gone without [CLOSE]: drain what was queued, close the
    stream as abrupt, latch the best-effort prefix outcome. [send] is
    what {e would} be replied (loopback transports can still deliver
    it). An {!admin_only} session instead finishes quietly — no
    outcome, no verdict frame. *)

val finish_overload : t -> message:string -> effect_
(** Shed under the global byte budget: terminal [ERR_OVERLOAD]
    (retryable) — a [REJECT] when the session never got past [HELLO]
    (the Block policy's refusal), a partial-stats [VERDICT] once
    streaming. *)

val check_timeout : t -> now_ms:int -> effect_ option
(** Deadline / idle expiry check; [Some] iff the session just finished
    with [ERR_DEADLINE] or [ERR_IDLE]. *)
