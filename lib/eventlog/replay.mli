(** Offline replay: re-run any {!Sfr_runtime.Events.callbacks} client —
    in particular any registered detector — over a recorded log, without
    re-executing the workload.

    The log's per-worker streams are merged by a greedy topological rule:
    an event is {e ready} once every state ID it references has been
    defined (by an earlier event of any stream); ready stream heads are
    applied until all streams drain. Because the recorder allocates and
    writes a state's defining event before any worker can reference it,
    real time is a witness schedule: the earliest-unapplied event in real
    time is always ready, so the merge never deadlocks on a well-formed
    log and yields a linearization of the recorded dag. A log recorded
    serially (one worker) replays in exactly the recorded order, so a
    detector replayed over it performs the identical callback sequence —
    and reports the identical races — as the live run.

    Logs that pass the reader's CRC but are logically inconsistent (a
    reference to a never-defined state, a state defined twice) surface as
    typed errors, never crashes. *)

type error =
  | Stuck of { replayed : int; worker : int; index : int; missing : int }
      (** No stream can make progress: the head event of [worker] at
          [index] references state [missing], which no remaining event
          defines. *)
  | Redefined of { worker : int; index : int; id : int }
      (** The event at [worker]/[index] defines a state that already
          exists. *)

val error_to_string : error -> string

val run :
  Reader.t ->
  callbacks:Sfr_runtime.Events.callbacks ->
  root:Sfr_runtime.Events.state ->
  (int, error) result
(** Replay every event through [callbacks], threading states from
    [root]; returns the number of events replayed. *)

val run_detector : Reader.t -> Sfr_detect.Detector.t -> (int, error) result
(** [run] against the detector's callbacks and root; verdicts are read
    from the detector as after a live run. *)

(* -- building blocks for custom replays (see {!Shard_replay}) ---------- *)

val drive :
  Reader.t ->
  apply:
    (lookup:(int -> Sfr_runtime.Events.state) ->
    define:(int -> Sfr_runtime.Events.state -> unit) ->
    Log_format.event ->
    unit) ->
  root:Sfr_runtime.Events.state ->
  (int, error) result
(** The merge loop alone: [apply] is called once per event, in a valid
    linearization, and must [define] exactly the IDs
    {!Log_format.defines} lists for it. [lookup] is total on every ID
    the event references. *)

val apply_callbacks :
  Sfr_runtime.Events.callbacks ->
  lookup:(int -> Sfr_runtime.Events.state) ->
  define:(int -> Sfr_runtime.Events.state -> unit) ->
  Log_format.event ->
  unit
(** The standard [apply]: dispatch one event to the client callbacks. *)
