(** Domain-safe metrics registry: named counters and log-scale histograms.

    The instrumentation budget is set by the paper's own accounting
    question — where does detection time go (reachability query cases, OM
    relabels, access-history locking)? — so the primitives are built to be
    compiled into hot paths:

    - a counter is an array of per-domain slots of plain mutable ints; an
      increment touches only the caller's slot (no contended atomics), and
      slots are summed (or maxed) at snapshot time;
    - a histogram is a per-domain row of fixed power-of-two buckets.

    Slots are indexed by [Domain.self () land 127]: exact as long as no
    two concurrently live domains share an ID modulo 128 (domain IDs are
    assigned consecutively, so the first 128 domains of a process are
    always exact; a collision can only lose increments, never crash).

    Counters are process-global and registered by name (repeated
    registration returns the same counter). Per-run attribution is done
    with {!snapshot} / {!since}: capture a snapshot before the run and
    diff after, as {!Sfr_detect.Detector}[.metrics] does.

    {!disable} is the escape hatch for timing runs: every [incr]/[add]/
    [observe] degrades to one atomic flag load and a branch. *)

type counter

val counter : ?kind:[ `Sum | `Max ] -> string -> counter
(** Register (or look up) the counter named [name]. [`Sum] (default)
    merges slots by addition; [`Max] merges by maximum and [add] records
    a high-water mark instead of accumulating.
    @raise Invalid_argument if [name] is already registered with a
    different kind, or as a histogram. *)

val incr : counter -> unit
(** [incr c] is [add c 1]. *)

val add : counter -> int -> unit
(** Add [n] to (or, for [`Max] counters, fold [n] into the maximum of)
    the calling domain's slot. No-op while disabled. *)

val value : counter -> int
(** Merged value across all domain slots. *)

type histogram

val histogram : string -> histogram
(** Register (or look up) a histogram. Bucket [i] counts observations [v]
    with [2{^i-1} < v <= 2{^i}] (bucket 0 also absorbs [v <= 1]); the
    last bucket absorbs everything larger.
    @raise Invalid_argument on a name clash with a counter. *)

val observe : histogram -> int -> unit

val buckets : histogram -> (int * int) list
(** [(inclusive upper bound, merged count)] per bucket, ascending, with
    empty buckets elided; the unbounded overflow bucket reports
    [max_int]. *)

val bucket_index : int -> int
(** The bucket an observation falls into — exposed so tests can pin the
    boundary behaviour. *)

val snapshot : unit -> (string * int) list
(** Every registered metric, merged, sorted by name. Histograms appear as
    [name.le<bound>] entries for each non-empty bucket plus a
    [name.count] total. *)

val since : (string * int) list -> (string * int) list
(** [since base] is the current snapshot with [base] subtracted
    entrywise (clamped at 0). [`Max] counters are not subtracted — their
    current high-water value is reported as is. *)

val reset_all : unit -> unit
(** Zero every slot of every registered metric (names stay registered).
    A test-only escape hatch: the registry is process-global, so
    Alcotest cases that assert on absolute counter values must reset
    between cases or leak counts into each other. Not for production
    paths — it is not atomic with respect to concurrent increments
    (a racing [add] on another domain can survive or vanish). *)

val disable : unit -> unit
(** Turn every recording primitive into a near-free no-op (snapshots
    still work and report whatever was recorded before). *)

val enable : unit -> unit

val enabled : unit -> bool

val pp_table : Format.formatter -> (string * int) list -> unit
(** Render a snapshot as an aligned two-column table, one metric per
    line. *)
