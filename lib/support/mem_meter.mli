(** Memory accounting for reachability structures (Figure 5).

    Detectors self-report the live machine words of their reachability data
    structures; this module converts and formats those counts, and can also
    sample GC-level heap deltas as a cross-check. *)

val bytes_of_words : int -> int
val mib_of_words : int -> float
val gib_of_words : int -> float
val pp_bytes : Format.formatter -> int -> unit
(** Human-readable: picks B / KiB / MiB / GiB. *)

val heap_live_words : unit -> int
(** Live words on the OCaml heap right now (forces a full major GC). *)
