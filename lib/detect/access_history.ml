module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof
module Chaos = Sfr_chaos.Chaos

(* Observability: the paper's conclusion flags access-history
   synchronization as the dominant full-detection cost; these counters
   let the ablations see lock contention and reader-set churn directly.
   The prof timers cover the whole read-insert / write-evict critical
   path (lock wait, race checks, reader churn) per access.
   [history.write.fastpath] counts writes absorbed by the last-writer
   filter — the accesses that never touched a lock or an atomic. *)
let m_lock_acquire = Metrics.counter "history.lock.acquire"
let m_lock_contended = Metrics.counter "history.lock.contended"
let m_cas_retry = Metrics.counter "history.cas.retry"
let m_readers_insert = Metrics.counter "history.readers.insert"
let m_readers_evict = Metrics.counter "history.readers.evict"
let m_write_fast = Metrics.counter "history.write.fastpath"
let t_read = Prof.timer "prof.history.read.ns"
let t_write = Prof.timer "prof.history.write.ns"

type 'a policy =
  | Keep_all
  | Lr_per_future of {
      future_of : 'a -> int;
      more_left : 'a -> 'a -> bool;
      more_right : 'a -> 'a -> bool;
      covers : 'a -> 'a -> bool;
    }

type sync_mode = [ `Mutex | `Unsynchronized | `Lockfree ]

(* Fibonacci multiplicative mixing for stripe / write-cache selection.
   Raw low bits ([loc land (stripes-1)]) alias every strided access
   pattern whose stride shares a factor with the stripe count — a
   power-of-two matrix row maps an entire column onto ONE stripe and
   serializes all domains on its lock. Multiplying by the golden-ratio
   constant diffuses every input bit into the high bits, which the
   selector then takes. OCaml ints are 63-bit, so we use the 64-bit
   constant 0x9E37_79B9_7F4A_7C15 reduced mod 2^63 (multiplication only
   ever sees residues mod 2^63 anyway): 0x1E37_79B9_7F4A_7C15. *)
let fib_mix = 0x1E37_79B9_7F4A_7C15

let mix_bits loc shift = (loc * fib_mix) lsr (Sys.int_size - shift)

(* -- striped (mutex / unsynchronized) representation ------------------- *)

(* Reader storage, per cell:
   - [R_list]: the original cons-per-reader list (compat path; also what
     [`Lockfree] uses, as a Treiber stack).
   - [R_inline]: first [inline_cap] readers in a mutable array reused
     across write epochs — the common case allocates nothing per read —
     spilling to a list only past that. Iteration order (spill newest
     first, then slots newest first) reproduces the list order exactly,
     so first-race attribution is byte-identical to the compat path.
   - [R_lr]: leftmost/rightmost per future (the 2k-bound policy). *)
let inline_cap = 8

type 'a readers =
  | R_list of 'a list
  | R_inline of 'a inline
  | R_lr of (int, 'a * 'a) Hashtbl.t (* future id -> (leftmost, rightmost) *)

and 'a inline = {
  mutable slots : 'a array; (* [||] until the first reader arrives *)
  mutable n : int; (* live prefix of [slots] *)
  mutable spill : 'a list; (* readers past [inline_cap], newest first *)
}

type 'a cell = {
  mutable writer : 'a option;
  mutable readers : 'a readers;
  mutable nreaders : int;
}

type 'a stripe = { mu : Mutex.t; cells : (int, 'a cell) Hashtbl.t }

(* -- lock-free representation ------------------------------------------ *)

(* Locations are dense within a run (Program.alloc hands out consecutive
   IDs) but need not start near zero (the allocator's counter is global to
   the process), so the lock-free variant indexes an offset window of
   cells: cell for location l lives at cells.(l - base). The window grows
   in either direction by copy-on-write snapshots (cell refs are shared
   between snapshots, so a reader holding a stale snapshot still reaches
   the right cell). *)
type 'a lf_cell = {
  lf_writer : 'a option Atomic.t;
  lf_readers : 'a list Atomic.t;
  lf_count : int Atomic.t; (* approximate reader count *)
}

type 'a lf_window = { base : int; cells : 'a lf_cell option array }

type 'a lf_table = {
  snapshot : 'a lf_window option Atomic.t;
  grow_mu : Mutex.t;
}

type 'a repr =
  | Striped of 'a stripe array * bool (* use locks? *)
  | Lf of 'a lf_table

(* Last-writer filter: a direct-mapped cache of (location, accessor)
   pairs, one immutable pair record per slot so a racy read can never
   observe a torn pair. A hit means "this strand installed itself as
   [loc]'s writer and no later access to [loc] has gone through the
   history", so the write can skip the whole lock/evict/install cycle —
   the race check against the previous writer (itself) still runs, to
   keep the query count identical to the slow path. Any read or foreign
   write to [loc] invalidates the slot (a plain store; the benign-race
   argument is in the .mli). *)
type 'a wentry = { w_loc : int; w_acc : 'a }

let wcache_bits = 11
let wcache_size = 1 lsl wcache_bits

type 'a t = {
  policy : 'a policy;
  repr : 'a repr;
  max_readers : int Atomic.t;
  fast : bool;
  stripe_log : int; (* log2 (Array.length stripes), for mixed selection *)
  wcache : 'a wentry option array; (* [||] when the filter is disabled *)
}

let create ?(stripes = 64) ?(sync = `Mutex) ?(fast = true) policy =
  let repr =
    match sync with
    | (`Mutex | `Unsynchronized) as s ->
        (* stripe selection masks the location: round up to a power of 2 *)
        let rec pow2 n = if n >= stripes then n else pow2 (2 * n) in
        let stripes = pow2 1 in
        Striped
          ( Array.init stripes (fun _ ->
                { mu = Mutex.create (); cells = Hashtbl.create 64 }),
            s = `Mutex )
    | `Lockfree -> (
        match policy with
        | Keep_all ->
            Lf { snapshot = Atomic.make None; grow_mu = Mutex.create () }
        | Lr_per_future _ ->
            Detect_error.unsupported ~detector:"Access_history"
              ~feature:"`Lockfree with Lr_per_future (requires Keep_all)")
  in
  let stripe_log =
    match repr with
    | Striped (ss, _) ->
        let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
        log2 (Array.length ss)
    | Lf _ -> 0
  in
  let wcache =
    match repr with
    | Striped _ when fast -> Array.make wcache_size None
    | Striped _ | Lf _ -> [||]
  in
  { policy; repr; max_readers = Atomic.make 0; fast; stripe_log; wcache }

let note_high_water t n =
  let rec loop () =
    let m = Atomic.get t.max_readers in
    if n > m && not (Atomic.compare_and_set t.max_readers m n) then loop ()
  in
  loop ()

(* -- striped paths ------------------------------------------------------ *)

let empty_readers t =
  match t.policy with
  | Keep_all ->
      if t.fast then R_inline { slots = [||]; n = 0; spill = [] } else R_list []
  | Lr_per_future _ -> R_lr (Hashtbl.create 4)

let inline_last r =
  match r.spill with
  | x :: _ -> Some x
  | [] -> if r.n > 0 then Some r.slots.(r.n - 1) else None

let inline_push r accessor =
  if r.n < Array.length r.slots then begin
    r.slots.(r.n) <- accessor;
    r.n <- r.n + 1
  end
  else if Array.length r.slots = 0 then begin
    (* first reader ever at this cell: the reader itself seeds the array,
       so no dummy element is needed and later inserts allocate nothing *)
    r.slots <- Array.make inline_cap accessor;
    r.n <- 1
  end
  else r.spill <- accessor :: r.spill

(* newest-first, mirroring the cons-list order of the compat path *)
let inline_iter_newest_first r f =
  List.iter f r.spill;
  for i = r.n - 1 downto 0 do
    f r.slots.(i)
  done

let inline_reset r =
  r.n <- 0;
  r.spill <- []

let stripe_of t stripes loc =
  if t.fast then mix_bits loc t.stripe_log
  else loc land (Array.length stripes - 1)

let with_cell t stripes locking loc f =
  let stripe = stripes.(stripe_of t stripes loc) in
  if locking then begin
    (* perturb-only site: widens the window between an accessor reaching
       the history and publishing into it *)
    Chaos.point Chaos.Lock_acquire;
    Metrics.incr m_lock_acquire;
    if not (Mutex.try_lock stripe.mu) then begin
      Metrics.incr m_lock_contended;
      Mutex.lock stripe.mu
    end
  end;
  let cell =
    match Hashtbl.find_opt stripe.cells loc with
    | Some c -> c
    | None ->
        let c = { writer = None; readers = empty_readers t; nreaders = 0 } in
        Hashtbl.add stripe.cells loc c;
        c
  in
  let result = f cell in
  if locking then Mutex.unlock stripe.mu;
  result

let wcache_invalidate t loc =
  if Array.length t.wcache > 0 then
    t.wcache.(mix_bits loc wcache_bits) <- None

let wcache_store t loc accessor =
  if Array.length t.wcache > 0 then
    t.wcache.(mix_bits loc wcache_bits) <- Some { w_loc = loc; w_acc = accessor }

let wcache_hit t loc accessor =
  Array.length t.wcache > 0
  &&
  match t.wcache.(mix_bits loc wcache_bits) with
  | Some e -> e.w_loc = loc && e.w_acc == accessor
  | None -> false

let striped_read t stripes locking ~loc ~accessor ~check_writer =
  wcache_invalidate t loc;
  with_cell t stripes locking loc (fun cell ->
      (match cell.writer with Some w -> check_writer w | None -> ());
      (match (t.policy, cell.readers) with
      | Keep_all, R_list rs ->
          (* collapse consecutive reads by the same strand *)
          let same_strand = match rs with r :: _ -> r == accessor | [] -> false in
          if not same_strand then begin
            cell.readers <- R_list (accessor :: rs);
            cell.nreaders <- cell.nreaders + 1;
            Metrics.incr m_readers_insert
          end
      | Keep_all, R_inline r ->
          let same_strand =
            match inline_last r with Some x -> x == accessor | None -> false
          in
          if not same_strand then begin
            inline_push r accessor;
            cell.nreaders <- cell.nreaders + 1;
            Metrics.incr m_readers_insert
          end
      | Lr_per_future { future_of; more_left; more_right; covers }, R_lr tbl -> (
          let f = future_of accessor in
          match Hashtbl.find_opt tbl f with
          | None ->
              Hashtbl.add tbl f (accessor, accessor);
              cell.nreaders <- cell.nreaders + 2;
              Metrics.add m_readers_insert 2
          | Some (l, r) ->
              if covers l accessor && covers r accessor then begin
                (* both stored readers precede the new one: it supersedes *)
                Hashtbl.replace tbl f (accessor, accessor);
                Metrics.add m_readers_evict (if l == r then 1 else 2);
                Metrics.add m_readers_insert 2
              end
              else begin
                let l' = if more_left accessor l then accessor else l in
                let r' = if more_right accessor r then accessor else r in
                if l' != l || r' != r then begin
                  let changed = (if l' != l then 1 else 0) + if r' != r then 1 else 0 in
                  Metrics.add m_readers_evict changed;
                  Metrics.add m_readers_insert changed
                end;
                Hashtbl.replace tbl f (l', r')
              end)
      | Keep_all, R_lr _ | Lr_per_future _, (R_list _ | R_inline _) ->
          assert false);
      note_high_water t cell.nreaders)

let striped_write t stripes locking ~loc ~accessor ~check =
  if wcache_hit t loc accessor then begin
    (* consecutive same-strand write: this strand is already the
       installed writer and no reader registered since — re-installing
       would evict nothing and change nothing. Run the writer-vs-writer
       check anyway (it is what the slow path would do, and the query
       count must not depend on the filter), then skip lock and evict. *)
    Metrics.incr m_write_fast;
    check ~prev:accessor ~prev_is_writer:true
  end
  else begin
    with_cell t stripes locking loc (fun cell ->
        (match cell.writer with
        | Some w -> check ~prev:w ~prev_is_writer:true
        | None -> ());
        (match cell.readers with
        | R_list rs -> List.iter (fun r -> check ~prev:r ~prev_is_writer:false) rs
        | R_inline r ->
            inline_iter_newest_first r (fun x ->
                check ~prev:x ~prev_is_writer:false);
            inline_reset r
        | R_lr tbl ->
            Hashtbl.iter
              (fun _ (l, r) ->
                check ~prev:l ~prev_is_writer:false;
                if r != l then check ~prev:r ~prev_is_writer:false)
              tbl);
        Metrics.add m_readers_evict cell.nreaders;
        (match cell.readers with
        | R_inline _ -> () (* reset in place: the slots array is reused *)
        | R_list _ | R_lr _ -> cell.readers <- empty_readers t);
        cell.nreaders <- 0;
        cell.writer <- Some accessor);
    wcache_store t loc accessor
  end

(* -- lock-free paths ----------------------------------------------------- *)

let lf_in_window w loc = loc >= w.base && loc - w.base < Array.length w.cells

(* grow (or create) the window to cover [loc]; call with grow_mu held *)
let lf_grow_locked tbl loc =
  match Atomic.get tbl.snapshot with
  | Some w when lf_in_window w loc -> w
  | Some w ->
      let old_len = Array.length w.cells in
      let lo = min w.base (loc land lnot 1023) in
      let hi = max (w.base + old_len) (loc + 1) in
      (* at least double, to amortize copies *)
      let len = max (hi - lo) (2 * old_len) in
      let cells = Array.make len None in
      Array.blit w.cells 0 cells (w.base - lo) old_len;
      let w' = { base = lo; cells } in
      Atomic.set tbl.snapshot (Some w');
      w'
  | None ->
      let w = { base = loc land lnot 1023; cells = Array.make 2048 None } in
      Atomic.set tbl.snapshot (Some w);
      w

let lf_cell_of tbl loc =
  let w =
    match Atomic.get tbl.snapshot with
    | Some w when lf_in_window w loc -> w
    | Some _ | None ->
        Mutex.lock tbl.grow_mu;
        let w = lf_grow_locked tbl loc in
        Mutex.unlock tbl.grow_mu;
        w
  in
  match w.cells.(loc - w.base) with
  | Some cell -> cell
  | None ->
      (* install a fresh cell; lose the race gracefully *)
      Mutex.lock tbl.grow_mu;
      let w = lf_grow_locked tbl loc in
      let cell =
        match w.cells.(loc - w.base) with
        | Some cell -> cell
        | None ->
            let cell =
              {
                lf_writer = Atomic.make None;
                lf_readers = Atomic.make [];
                lf_count = Atomic.make 0;
              }
            in
            w.cells.(loc - w.base) <- Some cell;
            cell
      in
      Mutex.unlock tbl.grow_mu;
      cell

let lf_read t tbl ~loc ~accessor ~check_writer =
  let cell = lf_cell_of tbl loc in
  Chaos.point Chaos.Lock_acquire;
  (* publish the reader first, then validate against the current writer:
     a concurrent writer either drains this reader or was installed
     before our validation read (see the .mli completeness note) *)
  let rec push () =
    let rs = Atomic.get cell.lf_readers in
    let same_strand = match rs with r :: _ -> r == accessor | [] -> false in
    if not same_strand then
      if Atomic.compare_and_set cell.lf_readers rs (accessor :: rs) then begin
        Metrics.incr m_readers_insert;
        let n = 1 + Atomic.fetch_and_add cell.lf_count 1 in
        note_high_water t n
      end
      else begin
        Metrics.incr m_cas_retry;
        push ()
      end
  in
  push ();
  match Atomic.get cell.lf_writer with
  | Some w -> check_writer w
  | None -> ()

let lf_write t tbl ~loc ~accessor ~check =
  let cell = lf_cell_of tbl loc in
  Chaos.point Chaos.Lock_acquire;
  let same_writer =
    t.fast
    && (match Atomic.get cell.lf_writer with
       | Some w -> w == accessor
       | None -> false)
    && Atomic.get cell.lf_readers == []
  in
  if same_writer then begin
    (* last-writer filter, lock-free flavor: skip both exchanges — the
       reader stack stays untouched, so concurrent readers don't retry
       their CAS against this write's drain. The writer-vs-writer check
       still runs (query-count parity with the unfiltered path). *)
    Metrics.incr m_write_fast;
    check ~prev:accessor ~prev_is_writer:true
  end
  else begin
    (match Atomic.exchange cell.lf_writer (Some accessor) with
    | Some w -> check ~prev:w ~prev_is_writer:true
    | None -> ());
    let rs = Atomic.exchange cell.lf_readers [] in
    Atomic.set cell.lf_count 0;
    Metrics.add m_readers_evict (List.length rs);
    List.iter (fun r -> check ~prev:r ~prev_is_writer:false) rs
  end

(* -- dispatch ------------------------------------------------------------ *)

let on_read t ~loc ~accessor ~check_writer =
  let t0 = Prof.start () in
  (match t.repr with
  | Striped (stripes, locking) -> striped_read t stripes locking ~loc ~accessor ~check_writer
  | Lf tbl -> lf_read t tbl ~loc ~accessor ~check_writer);
  Prof.stop t_read t0

let on_write t ~loc ~accessor ~check =
  let t0 = Prof.start () in
  (match t.repr with
  | Striped (stripes, locking) -> striped_write t stripes locking ~loc ~accessor ~check
  | Lf tbl -> lf_write t tbl ~loc ~accessor ~check);
  Prof.stop t_write t0

(* -- statistics ----------------------------------------------------------- *)

let fold_striped stripes locking f init =
  Array.fold_left
    (fun acc stripe ->
      if locking then Mutex.lock stripe.mu;
      let acc = Hashtbl.fold (fun _ cell acc -> f acc cell) stripe.cells acc in
      if locking then Mutex.unlock stripe.mu;
      acc)
    init stripes

let fold_lf tbl f init =
  match Atomic.get tbl.snapshot with
  | None -> init
  | Some w ->
      Array.fold_left
        (fun acc slot -> match slot with Some cell -> f acc cell | None -> acc)
        init w.cells

let locations_tracked t =
  match t.repr with
  | Striped (stripes, locking) -> fold_striped stripes locking (fun acc _ -> acc + 1) 0
  | Lf tbl -> fold_lf tbl (fun acc _ -> acc + 1) 0

let readers_stored t =
  match t.repr with
  | Striped (stripes, locking) ->
      fold_striped stripes locking (fun acc c -> acc + c.nreaders) 0
  | Lf tbl -> fold_lf tbl (fun acc c -> acc + List.length (Atomic.get c.lf_readers)) 0

let max_readers_at_once t = Atomic.get t.max_readers

let words t =
  match t.repr with
  | Striped (stripes, locking) ->
      fold_striped stripes locking
        (fun acc c ->
          acc + 6
          +
          match c.readers with
          | R_list rs -> 3 * List.length rs
          | R_inline r -> 3 + Array.length r.slots + (3 * List.length r.spill)
          | R_lr tbl -> 5 * Hashtbl.length tbl)
        (8 * Array.length stripes + Array.length t.wcache)
  | Lf tbl ->
      fold_lf tbl
        (fun acc c -> acc + 6 + (3 * List.length (Atomic.get c.lf_readers)))
        ((match Atomic.get tbl.snapshot with
         | Some w -> Array.length w.cells
         | None -> 0)
        + 4)
