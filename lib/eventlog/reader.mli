(** Validating .sflog reader.

    One pass over the file checks the header, walks the chunks, verifies
    the footer CRC over every payload byte, then decodes each worker's
    stream (bounds-checking every state ID against the footer's declared
    state count). Every failure is a typed {!Log_format.error} carrying
    the absolute byte offset — a truncated, torn, or bit-flipped log is
    an [Error], never an exception. *)

type t

val load_file : string -> (t, Log_format.error) result
(** @raise Sys_error only for OS-level failures opening/reading [path]
    (absent file, permissions); all format problems are [Error]. *)

val load_bytes : Bytes.t -> (t, Log_format.error) result
(** Same, from an in-memory image (tests, network transport). *)

val n_workers : t -> int
val n_events : t -> int
val n_states : t -> int
(** Exclusive upper bound on state IDs ([0] is the root strand). *)

val stream : t -> worker:int -> Log_format.event array
(** Worker [worker]'s event stream, in recorded (real-time) order. *)

val iter : t -> (worker:int -> Log_format.event -> unit) -> unit
(** Every event, stream by stream. *)
