(** Dynamic verification of the structured-futures discipline.

    SF-Order's correctness (and MultiBags') {e assumes} the program uses
    futures in the structured way (paper Section 2): single-touch is
    enforced by the runtime, but the second restriction — a sequential
    dependence from the create's continuation to the get, avoiding the
    created future — is a global dag property. This client checks it
    on-the-fly: it maintains the same pseudo-SP-dag order-maintenance and
    [cp]/[gp] structures as SF-Order and, at each get on a future [G],
    checks [Precedes(create-continuation(G), getting strand)].

    For structured programs the check always passes (it is exactly the
    restriction); for violating programs it flags the offending future
    (best effort: under violations the reachability structures themselves
    may degrade, but the witnessing get's check fires before the
    violation can corrupt them, since everything it consults was built by
    strictly earlier events).

    Compose with a detector through {!Sfr_runtime.Events.pair} to race
    detect and lint in one run. *)

type violation = {
  future : int;  (** the future whose get violates the discipline *)
  message : string;
}

type t = {
  callbacks : Sfr_runtime.Events.callbacks;
  root : Sfr_runtime.Events.state;
  violations : unit -> violation list;
}

val make : unit -> t
