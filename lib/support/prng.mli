(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Workload generators and synthetic inputs must be reproducible across
    runs and independent of scheduling, so every benchmark seeds its own
    generator instead of using the global [Random] state. *)

type t

val create : int -> t
(** [create seed] — the same seed always yields the same stream. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]; used to give
    parallel subtasks deterministic private streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bits64 : t -> int64
val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
