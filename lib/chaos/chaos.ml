module Prng = Sfr_support.Prng
module Metrics = Sfr_obs.Metrics

(* Observability: every chaos decision is counted so soak runs can verify
   that injection actually happened (a chaos run with chaos.points = 0
   tested nothing). *)
let m_points = Metrics.counter "chaos.points"
let m_yields = Metrics.counter "chaos.yields"
let m_delays = Metrics.counter "chaos.delays"
let m_injected = Metrics.counter "chaos.injected"
let m_force_steals = Metrics.counter "chaos.force_steals"
let m_wire_truncate = Metrics.counter "chaos.wire.truncate"
let m_wire_duplicate = Metrics.counter "chaos.wire.duplicate"
let m_wire_corrupt = Metrics.counter "chaos.wire.corrupt"
let m_wire_disconnect = Metrics.counter "chaos.wire.disconnect"

type site =
  | Spawn
  | Create
  | Get
  | Sync
  | Steal
  | Lock_acquire
  | Relabel
  | Task
  | Record
  | Log_flush
  | Wire
  | Label_extend

let all_sites =
  [
    Spawn; Create; Get; Sync; Steal; Lock_acquire; Relabel; Task; Record;
    Log_flush; Wire; Label_extend;
  ]

let nsites = List.length all_sites

let site_index = function
  | Spawn -> 0
  | Create -> 1
  | Get -> 2
  | Sync -> 3
  | Steal -> 4
  | Lock_acquire -> 5
  | Relabel -> 6
  | Task -> 7
  | Record -> 8
  | Log_flush -> 9
  | Wire -> 10
  | Label_extend -> 11

let site_name = function
  | Spawn -> "spawn"
  | Create -> "create"
  | Get -> "get"
  | Sync -> "sync"
  | Steal -> "steal"
  | Lock_acquire -> "lock_acquire"
  | Relabel -> "relabel"
  | Task -> "task"
  | Record -> "record"
  | Log_flush -> "log_flush"
  | Wire -> "wire"
  | Label_extend -> "label_extend"

type action = Pass | Yield | Delay of int | Fault | Force_steal

let action_name = function
  | Pass -> "pass"
  | Yield -> "yield"
  | Delay _ -> "delay"
  | Fault -> "fault"
  | Force_steal -> "force_steal"

exception Injected of { site : site; seq : int }

let () =
  Printexc.register_printer (function
    | Injected { site; seq } ->
        Some (Printf.sprintf "Sfr_chaos.Chaos.Injected(%s #%d)" (site_name site) seq)
    | _ -> None)

type config = {
  yield_rate : float;
  delay_rate : float;
  fault_rate : float;
  steal_rate : float;
  wire_rate : float;
  max_delay_spins : int;
  fault_sites : site list;
  max_faults : int;
}

let default_config =
  {
    yield_rate = 0.10;
    delay_rate = 0.05;
    fault_rate = 0.0;
    steal_rate = 0.25;
    wire_rate = 0.0;
    max_delay_spins = 4096;
    fault_sites = [ Task; Spawn; Create; Get; Sync ];
    max_faults = 1;
  }

let fault_config =
  { default_config with fault_rate = 0.02; max_faults = 1 }

type wire_fault =
  | Wire_pass
  | Wire_truncate of int
  | Wire_duplicate
  | Wire_corrupt of int
  | Wire_disconnect

let wire_fault_name = function
  | Wire_pass -> "pass"
  | Wire_truncate _ -> "truncate"
  | Wire_duplicate -> "duplicate"
  | Wire_corrupt _ -> "corrupt"
  | Wire_disconnect -> "disconnect"

type state = {
  seed : int;
  config : config;
  seqs : int Atomic.t array; (* per-site arrival counters *)
  steal_seq : int Atomic.t; (* force_steal has its own stream *)
  wire_seq : int Atomic.t; (* wire faults have their own stream *)
  fault_budget : int Atomic.t; (* remaining faults allowed *)
  raised : int Atomic.t; (* faults actually raised *)
  mu : Mutex.t;
  mutable events : (site * int * action) list;
}

(* The hot-path gate: [point]/[force_steal] are a single atomic load (and
   a branch) while this is false, mirroring Sfr_obs.Metrics.disable. *)
let on = Atomic.make false
let armed_state : state option Atomic.t = Atomic.make None

let arm ?(config = default_config) ~seed () =
  let st =
    {
      seed;
      config;
      seqs = Array.init nsites (fun _ -> Atomic.make 0);
      steal_seq = Atomic.make 0;
      wire_seq = Atomic.make 0;
      fault_budget = Atomic.make config.max_faults;
      raised = Atomic.make 0;
      mu = Mutex.create ();
      events = [];
    }
  in
  Atomic.set armed_state (Some st);
  Atomic.set on true

(* Only the hot flag is dropped: the state stays readable so callers can
   inspect [trace]/[injected_count] after the run; the next [arm] replaces
   it. (An in-flight [slow_point] that already passed the flag check may
   still perturb once — harmless.) *)
let disarm () = Atomic.set on false

let armed () = Atomic.get on

let record st site seq action =
  Mutex.lock st.mu;
  st.events <- (site, seq, action) :: st.events;
  Mutex.unlock st.mu

(* The decision is a pure function of (seed, site, seq): the k-th arrival
   at a site always draws the same verdict for a given seed, whichever
   domain gets there — the whole replay story rests on this. *)
let decide cfg seed site seq =
  let rng =
    Prng.create
      (seed
      lxor ((site_index site + 1) * 0x9E3779B1)
      lxor ((seq + 1) * 0x85EB_CA6B))
  in
  let r = Prng.float rng 1.0 in
  let fault_ok = List.memq site cfg.fault_sites in
  let f = if fault_ok then cfg.fault_rate else 0.0 in
  if r < f then Fault
  else if r < f +. cfg.yield_rate then Yield
  else if r < f +. cfg.yield_rate +. cfg.delay_rate then
    Delay (1 + Prng.int rng (max 1 cfg.max_delay_spins))
  else Pass

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let slow_point site =
  match Atomic.get armed_state with
  | None -> ()
  | Some st -> (
      Metrics.incr m_points;
      let seq = Atomic.fetch_and_add st.seqs.(site_index site) 1 in
      match decide st.config st.seed site seq with
      | Pass -> ()
      | Yield ->
          record st site seq Yield;
          Metrics.incr m_yields;
          Domain.cpu_relax ()
      | Delay n ->
          record st site seq (Delay n);
          Metrics.incr m_delays;
          spin n
      | Force_steal -> () (* not produced by [decide] for points *)
      | Fault ->
          (* fetch-and-decrement of the shared budget keeps the cap exact
             under concurrent arrivals: only winners raise *)
          if Atomic.fetch_and_add st.fault_budget (-1) > 0 then begin
            record st site seq Fault;
            Metrics.incr m_injected;
            Atomic.incr st.raised;
            raise (Injected { site; seq })
          end)

let[@inline] point site = if Atomic.get on then slow_point site

let slow_force_steal () =
  match Atomic.get armed_state with
  | None -> false
  | Some st ->
      let seq = Atomic.fetch_and_add st.steal_seq 1 in
      let rng = Prng.create (st.seed lxor 0x5DEECE66 lxor ((seq + 1) * 0xC2B2_AE35)) in
      if Prng.float rng 1.0 < st.config.steal_rate then begin
        record st Steal seq Force_steal;
        Metrics.incr m_force_steals;
        true
      end
      else false

let[@inline] force_steal () = Atomic.get on && slow_force_steal ()

(* Wire faults perturb the *transport*, not the computation: the k-th
   frame crossing an armed loopback draws the same verdict on every run
   (its own stream, like force_steal). [frame_len] parameterizes the
   truncation point / corrupted byte so the fault always lands inside
   the frame image. *)
let slow_wire_fault ~frame_len =
  match Atomic.get armed_state with
  | None -> Wire_pass
  | Some st ->
      let seq = Atomic.fetch_and_add st.wire_seq 1 in
      let rng =
        Prng.create (st.seed lxor 0x27D4_EB2F lxor ((seq + 1) * 0x165667B1))
      in
      if Prng.float rng 1.0 >= st.config.wire_rate then Wire_pass
      else begin
        let fault =
          match Prng.int rng 4 with
          | 0 -> Wire_truncate (Prng.int rng (max 1 frame_len))
          | 1 -> Wire_duplicate
          | 2 -> Wire_corrupt (Prng.int rng (max 1 frame_len))
          | _ -> Wire_disconnect
        in
        record st Wire seq Fault;
        (match fault with
        | Wire_truncate _ -> Metrics.incr m_wire_truncate
        | Wire_duplicate -> Metrics.incr m_wire_duplicate
        | Wire_corrupt _ -> Metrics.incr m_wire_corrupt
        | Wire_disconnect -> Metrics.incr m_wire_disconnect
        | Wire_pass -> ());
        fault
      end

let[@inline] wire_fault ~frame_len =
  if Atomic.get on then slow_wire_fault ~frame_len else Wire_pass

let trace () =
  match Atomic.get armed_state with
  | None -> []
  | Some st ->
      Mutex.lock st.mu;
      let evs = st.events in
      Mutex.unlock st.mu;
      List.sort
        (fun (s1, q1, _) (s2, q2, _) ->
          match Int.compare (site_index s1) (site_index s2) with
          | 0 -> Int.compare q1 q2
          | c -> c)
        evs

let trace_strings () =
  List.map
    (fun (site, seq, action) ->
      Printf.sprintf "%s#%d:%s" (site_name site) seq (action_name action))
    (trace ())

let injected_count () =
  match Atomic.get armed_state with
  | None -> 0
  | Some st -> Atomic.get st.raised

let with_armed ?config ~seed f =
  arm ?config ~seed ();
  Fun.protect ~finally:disarm f
