(** Offline analyses over recorded computation dags: ground-truth
    reachability (the oracle the on-the-fly detectors are differential-
    tested against), work/span accounting, and the pseudo-SP-dag view.

    The {e pseudo-SP-dag} [PSP(D)] (paper Section 3.1) is the
    series-parallel approximation of an SF-dag [D]: create edges become
    spawn edges, get edges are dropped, and the last node of every future
    [G] acquires a fake join edge to the sync node of the creating frame's
    sync block. *)

type view = Full | Psp
(** [Full] = the SF-dag [D] itself (all edges, including get edges).
    [Psp] = [PSP(D)]: SP + create edges + fake joins, no get edges. *)

val succs : Dag.t -> view -> Dag.node -> Dag.node list
val preds : Dag.t -> view -> Dag.node -> Dag.node list

val reaches : Dag.t -> view -> Dag.node -> Dag.node -> bool
(** [reaches t view u v] — is there a directed path from [u] to [v]
    (reflexive: [reaches t view u u = true])? Single BFS, O(E). *)

type reach_oracle
(** All-pairs ancestor sets, O(V²/w) space; build once, query in O(1). *)

val build_oracle : Dag.t -> view -> reach_oracle
val oracle_reaches : reach_oracle -> Dag.node -> Dag.node -> bool
(** Reflexive, like [reaches]. *)

val precedes : reach_oracle -> Dag.node -> Dag.node -> bool
(** Strict: [u ≺ v], i.e. reaches and [u <> v]. *)

val logically_parallel : reach_oracle -> Dag.node -> Dag.node -> bool
(** Neither [u ⪯ v] nor [v ⪯ u]. *)

val work : Dag.t -> int
(** Total strand cost, [T1] in work units. *)

val span : Dag.t -> view -> int
(** Critical-path cost, [T∞] in work units, over the chosen view. *)

val topological_order : Dag.t -> Dag.node array
(** Node IDs are assigned in a topological order by construction; this
    returns them and (in debug builds) asserts the invariant. *)

type counts = {
  nodes : int;
  futures : int;
  sp_edges : int;
  create_edges : int;
  get_edges : int;
}

val counts : Dag.t -> counts
