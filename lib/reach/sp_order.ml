module Metrics = Sfr_obs.Metrics

(* Per-structure accounting: how many OM insertions each pseudo-SP-dag
   event costs (spawn = 4-5, sync = 1, step = 2). Shared by both backend
   instantiations — the event mix is a property of the DAG, not of the
   labeling scheme underneath. *)
let m_spawns = Metrics.counter "reach.sporder.spawns"
let m_syncs = Metrics.counter "reach.sporder.syncs"
let m_steps = Metrics.counter "reach.sporder.steps"

(* The WSP-Order English/Hebrew construction over any order-maintenance
   backend — the insertion rules only need insert-after and precedes, so
   the whole reachability layer is agnostic to how labels are kept. *)
module Make (Om : Sfr_om.Om_intf.S) = struct
  type t = { eng : Om.t; heb : Om.t }

  type pos = { e : Om.item; h : Om.item }

  type block = { j : Om.item }

  let create () =
    let eng, ebase = Om.create () in
    let heb, hbase = Om.create () in
    ({ eng; heb }, { e = ebase; h = hbase })

  let spawn t ~cur ~block =
    Metrics.incr m_spawns;
    (* English: u < c < t.  Hebrew: u < t < c (< j). *)
    let ce = Om.insert_after t.eng cur.e in
    let te = Om.insert_after t.eng ce in
    let th = Om.insert_after t.heb cur.h in
    let ch = Om.insert_after t.heb th in
    let block =
      match block with
      | Some b -> b
      | None -> { j = Om.insert_after t.heb ch }
    in
    ({ e = ce; h = ch }, { e = te; h = th }, block)

  let sync t ~cur ~block =
    match block with
    | None -> cur
    | Some b ->
        Metrics.incr m_syncs;
        { e = Om.insert_after t.eng cur.e; h = b.j }

  let step t ~cur =
    Metrics.incr m_steps;
    { e = Om.insert_after t.eng cur.e; h = Om.insert_after t.heb cur.h }

  let precedes t u v =
    Om.precedes t.eng u.e v.e && Om.precedes t.heb u.h v.h

  let parallel t u v = (not (precedes t u v)) && not (precedes t v u)

  let size t = Om.size t.eng
  let words t = Om.words t.eng + Om.words t.heb

  let eng_precedes t u v = Om.precedes t.eng u.e v.e
  let heb_precedes t u v = Om.precedes t.heb u.h v.h
end

module L = Make (Sfr_om.Om)
module D = Make (Sfr_om.Depa)

(* Backend dispatch. A variant wrapper (rather than existential packing)
   keeps [pos]/[block] plain single-constructor-per-backend values the
   detectors can store in strand records without carrying a module
   witness; mixing positions across structures of different backends is
   a caller bug and trips [invalid_arg], exactly like mixing positions
   across two lists of the same backend would corrupt silently. *)
type t = Lt of L.t | Dt of D.t
type pos = Lp of L.pos | Dp of D.pos
type block = Lb of L.block | Db of D.block

let mismatch () = invalid_arg "Sp_order: position from a different backend"

let create ?backend () =
  let b =
    match backend with Some b -> b | None -> Sfr_om.Backend.default ()
  in
  match b with
  | `List ->
      let t, p = L.create () in
      (Lt t, Lp p)
  | `Depa ->
      let t, p = D.create () in
      (Dt t, Dp p)

let backend = function Lt _ -> `List | Dt _ -> `Depa

let spawn t ~cur ~block =
  match (t, cur) with
  | Lt t, Lp cur ->
      let block =
        match block with
        | None -> None
        | Some (Lb b) -> Some b
        | Some (Db _) -> mismatch ()
      in
      let c, k, b = L.spawn t ~cur ~block in
      (Lp c, Lp k, Lb b)
  | Dt t, Dp cur ->
      let block =
        match block with
        | None -> None
        | Some (Db b) -> Some b
        | Some (Lb _) -> mismatch ()
      in
      let c, k, b = D.spawn t ~cur ~block in
      (Dp c, Dp k, Db b)
  | _ -> mismatch ()

let sync t ~cur ~block =
  match (t, cur) with
  | Lt t, Lp cur ->
      let block =
        match block with
        | None -> None
        | Some (Lb b) -> Some b
        | Some (Db _) -> mismatch ()
      in
      Lp (L.sync t ~cur ~block)
  | Dt t, Dp cur ->
      let block =
        match block with
        | None -> None
        | Some (Db b) -> Some b
        | Some (Lb _) -> mismatch ()
      in
      Dp (D.sync t ~cur ~block)
  | _ -> mismatch ()

let step t ~cur =
  match (t, cur) with
  | Lt t, Lp cur -> Lp (L.step t ~cur)
  | Dt t, Dp cur -> Dp (D.step t ~cur)
  | _ -> mismatch ()

let precedes t u v =
  match (t, u, v) with
  | Lt t, Lp u, Lp v -> L.precedes t u v
  | Dt t, Dp u, Dp v -> D.precedes t u v
  | _ -> mismatch ()

let parallel t u v = (not (precedes t u v)) && not (precedes t v u)

let size = function Lt t -> L.size t | Dt t -> D.size t
let words = function Lt t -> L.words t | Dt t -> D.words t

let eng_precedes t u v =
  match (t, u, v) with
  | Lt t, Lp u, Lp v -> L.eng_precedes t u v
  | Dt t, Dp u, Dp v -> D.eng_precedes t u v
  | _ -> mismatch ()

let heb_precedes t u v =
  match (t, u, v) with
  | Lt t, Lp u, Lp v -> L.heb_precedes t u v
  | Dt t, Dp u, Dp v -> D.heb_precedes t u v
  | _ -> mismatch ()
