(** Chrome [trace_event]-format span collection.

    Produces the JSON Array/Object Format that chrome://tracing and
    Perfetto load: a [traceEvents] array of complete ([ph:"X"], with
    [ts]/[dur] in microseconds) and instant ([ph:"i"]) events, one track
    per domain ([tid] = domain ID).

    Collection is process-global and off by default. While off,
    {!with_span} runs its thunk after a single atomic flag load, so the
    runtime layers keep their span hooks compiled in (the executors wrap
    strand create/get/steal — see {!Sfr_runtime.Serial_exec} and
    {!Sfr_runtime.Par_exec}). *)

type phase = Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts : float;  (** microseconds since {!start} *)
  dur : float;  (** microseconds; meaningful for [Complete] only *)
  pid : int;
  tid : int;  (** domain ID *)
  args : (string * float) list;
      (** [Counter] series values, or the correlation args a span /
          instant was emitted with (e.g. the serve layer's [session] /
          [chunk] / [verdict] keys); empty otherwise *)
}

val start : unit -> unit
(** Clear the buffer and begin collecting; timestamps are relative to
    this call. *)

val stop : unit -> unit
(** Stop collecting. Buffered events survive until {!clear} or the next
    {!start}. *)

val is_on : unit -> bool

val with_span : ?cat:string -> ?args:(string * float) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, while collection is on, records a
    complete event covering it (also on exception). [args] attaches
    numeric correlation values (rendered into the event's [args]
    object). *)

val instant : ?cat:string -> ?args:(string * float) list -> string -> unit

val now_us : unit -> float
(** Microseconds since {!start} (meaningful only while collection is
    on — gate on {!is_on} before using it as a span timestamp). *)

val complete :
  ?cat:string ->
  ?args:(string * float) list ->
  ?tid:int ->
  string ->
  ts_us:float ->
  dur_us:float ->
  unit
(** Emit one [Complete] span with an explicit start and duration (both
    from {!now_us}), for regions whose args are only known at the end —
    e.g. an ingest span carrying the chunk size it drained. [tid]
    overrides the recording domain id, letting logical tracks (one per
    serve session) coexist with the per-domain execution tracks. No-op
    while collection is off. *)

val counter : ?cat:string -> string -> int -> unit
(** [counter name v] records a Chrome [ph:"C"] counter event (a sampled
    value rendered as a filled time-series track under the spans).
    Default category ["telemetry"]. No-op while collection is off, like
    {!instant}. *)

val events : unit -> event list
(** Buffered events in emission order. *)

val to_json_string : unit -> string

val write_file : string -> unit
(** Write the buffered trace as chrome://tracing-loadable JSON. *)

val clear : unit -> unit
