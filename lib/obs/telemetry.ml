(* Continuous telemetry: a sampler domain turns the end-of-run snapshot
   surfaces (Metrics, GC quick-stat, scheduler probes) into a bounded
   time-series. One writer (the sampler domain) appends to a ring of
   immutable sample records — a record store is one pointer write, so
   concurrent readers can tear nothing worse than missing the newest
   entry. Exports: JSONL stream (one line per sample, flushed as
   written so a crash loses nothing), Prometheus text exposition, and
   Chrome counter events merged into the live Trace_event stream. *)

type sample = {
  seq : int;
  t_ms : float;
  marks : string list;
  counters : (string * int) list;
  gauges : (string * int) list;
}

let schema_version = 1
let default_sample_ms = 10
let default_ring_capacity = 4096

type t = {
  ring : sample option array;
  capacity : int;
  mutable wseq : int; (* samples written, including overwritten *)
  sample_ms : int;
  out : out_channel option;
  probe : unit -> (string * int) list;
  stop_flag : bool Atomic.t;
  mutable dom : unit Domain.t option;
  mutable prev : (string * int) list; (* Sum-counter baseline for deltas *)
  epoch_ns : int;
}

(* start/stop are controller-side and rare; the mutex never appears on a
   recording hot path. [armed] is the one-atomic-load gate the runtime
   probe sites (Par_exec worker counters, Telemetry.mark) check. *)
let mu = Mutex.create ()

(* [current] keeps the most recent instance even after [stop] so the
   ring stays inspectable ([samples], [pp_timeline]); [active] is the
   actual lifecycle bit. Both are guarded by [mu]. *)
let current : t option ref = ref None
let active = ref false
let armed_flag = Atomic.make false
let pending_marks : string list Atomic.t = Atomic.make []

let armed () = Atomic.get armed_flag

let running () =
  Mutex.lock mu;
  let r = !active in
  Mutex.unlock mu;
  r

let mark name =
  if Atomic.get armed_flag then begin
    let rec push () =
      let ms = Atomic.get pending_marks in
      if not (Atomic.compare_and_set pending_marks ms (name :: ms)) then push ()
    in
    push ();
    Trace_event.instant ~cat:"telemetry" name
  end

(* -- sampling ----------------------------------------------------------- *)

let gc_gauges () =
  let s = Gc.quick_stat () in
  [
    ("gc.heap_words", s.Gc.heap_words);
    ("gc.minor_collections", s.Gc.minor_collections);
    ("gc.major_collections", s.Gc.major_collections);
    ("gc.compactions", s.Gc.compactions);
  ]

(* -- JSONL wire format (schema: doc in DESIGN.md section 13) ------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"'

let add_int_obj b kvs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_str b k;
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    kvs;
  Buffer.add_char b '}'

let header_json t =
  Printf.sprintf
    "{\"telemetry_schema\":%d,\"sample_ms\":%d,\"ring_capacity\":%d,\"unix_time\":%.3f}"
    schema_version t.sample_ms t.capacity (Unix.gettimeofday ())

let sample_to_json s =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{\"seq\":%d,\"t_ms\":%.3f," s.seq s.t_ms);
  add_str b "marks";
  Buffer.add_string b ":[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_char b ',';
      add_str b m)
    s.marks;
  Buffer.add_string b "],";
  add_str b "counters";
  Buffer.add_char b ':';
  add_int_obj b s.counters;
  Buffer.add_char b ',';
  add_str b "gauges";
  Buffer.add_char b ':';
  add_int_obj b s.gauges;
  Buffer.add_char b '}';
  Buffer.contents b

let take_sample t =
  let t_ms = float_of_int (Prof.now_ns () - t.epoch_ns) /. 1e6 in
  let marks = List.rev (Atomic.exchange pending_marks []) in
  (* quick_export, not export: merging every histogram's bucket matrix
     each tick would dwarf the rest of the sample *)
  let series = Metrics.quick_export () in
  let totals =
    List.filter_map
      (fun (n, k, v) -> if k = `Counter then Some (n, v) else None)
      series
  in
  (* per-interval deltas for monotone counters; a counter that did not
     move since the previous tick is elided to bound the line length *)
  let counters =
    List.filter_map
      (fun (n, v) ->
        let base =
          match List.assoc_opt n t.prev with Some b -> b | None -> 0
        in
        let d = v - base in
        if d <> 0 then Some (n, d) else None)
      totals
  in
  t.prev <- totals;
  let gauges =
    List.filter_map
      (fun (n, k, v) -> if k = `Gauge && v <> 0 then Some (n, v) else None)
      series
    @ t.probe ()
    @ gc_gauges ()
  in
  let s = { seq = t.wseq; t_ms; marks; counters; gauges } in
  t.ring.(t.wseq land (t.capacity - 1)) <- Some s;
  t.wseq <- t.wseq + 1;
  (match t.out with
  | Some oc ->
      output_string oc (sample_to_json s);
      output_char oc '\n';
      (* flushed per sample: the crash hook then only has to flush the
         OS-buffered tail, and a killed process loses no whole sample *)
      flush oc
  | None -> ());
  if Trace_event.is_on () then begin
    List.iter (fun (n, v) -> Trace_event.counter n v) counters;
    List.iter (fun (n, v) -> Trace_event.counter n v) gauges
  end

let sampler_loop t =
  Metrics.domain_enter ();
  Fun.protect
    ~finally:(fun () -> Metrics.domain_exit ())
    (fun () ->
      take_sample t;
      (* the baseline tick *)
      while not (Atomic.get t.stop_flag) do
        Unix.sleepf (float_of_int t.sample_ms /. 1000.0);
        take_sample t
      done;
      (* quiescence: one final tick captures everything after the last
         periodic sample, so short runs still export >= 2 samples *)
      take_sample t)

(* -- lifecycle ---------------------------------------------------------- *)

let start ?(sample_ms = default_sample_ms) ?(ring_capacity = default_ring_capacity)
    ?out ?(probe = fun () -> []) () =
  if sample_ms < 1 then invalid_arg "Telemetry.start: sample_ms must be >= 1";
  let capacity =
    let rec pow2 n = if n >= ring_capacity then n else pow2 (2 * n) in
    if ring_capacity < 2 then 2 else pow2 2
  in
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      if !active then () (* idempotent: one sampler per process *)
      else begin
          let oc = Option.map open_out out in
          let t =
            {
              ring = Array.make capacity None;
              capacity;
              wseq = 0;
              sample_ms;
              out = oc;
              probe;
              stop_flag = Atomic.make false;
              dom = None;
              prev = [];
              epoch_ns = Prof.now_ns ();
            }
          in
          (match oc with
          | Some oc ->
              output_string oc (header_json t);
              output_char oc '\n';
              flush oc
          | None -> ());
          current := Some t;
          active := true;
          Atomic.set armed_flag true;
          t.dom <- Some (Domain.spawn (fun () -> sampler_loop t))
      end)

let stop () =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      match !current with
      | Some t when !active ->
          Atomic.set armed_flag false;
          Atomic.set t.stop_flag true;
          (match t.dom with Some d -> Domain.join d | None -> ());
          (match t.out with Some oc -> close_out oc | None -> ());
          (* [current] survives for post-run inspection of the ring *)
          active := false
      | _ -> ())

(* crash safety: flush the stream even if the process dies mid-run; the
   hook is registered once at module load and is a no-op while idle *)
let () =
  Flight.add_crash_hook (fun () ->
      match !current with
      | Some { out = Some oc; _ } -> ( try flush oc with _ -> ())
      | _ -> ())

(* -- ring access -------------------------------------------------------- *)

let with_ring f =
  Mutex.lock mu;
  let r = !current in
  Mutex.unlock mu;
  match r with None -> [] | Some t -> f t

let samples () =
  with_ring (fun t ->
      let first = max 0 (t.wseq - t.capacity) in
      let rec go i acc =
        if i < first then acc
        else
          match t.ring.(i land (t.capacity - 1)) with
          | Some s when s.seq = i -> go (i - 1) (s :: acc)
          | _ -> go (i - 1) acc
      in
      go (t.wseq - 1) [])

let sample_count () =
  match with_ring (fun t -> [ t.wseq ]) with [ n ] -> n | _ -> 0

(* -- Prometheus text exposition ----------------------------------------- *)

(* https://prometheus.io/docs/instrumenting/exposition_formats/ — the
   0.0.4 text format: HELP/TYPE comment lines, then samples; histogram
   buckets are cumulative with an le label and a closing +Inf. *)

let prom_name name =
  let b = Buffer.create (String.length name + 4) in
  Buffer.add_string b "sfr_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let render_prometheus ?(gauges = []) () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  let help name orig kind =
    line "# HELP %s %s" name orig;
    line "# TYPE %s %s" name kind
  in
  List.iter
    (fun e ->
      match e with
      | Metrics.Exp_counter (orig, v) ->
          let n = prom_name orig in
          help n orig "counter";
          line "%s %d" n v
      | Metrics.Exp_gauge (orig, v) ->
          let n = prom_name orig in
          help n orig "gauge";
          line "%s %d" n v
      | Metrics.Exp_histogram { e_name; e_buckets; e_count; e_sum } ->
          let n = prom_name e_name in
          help n e_name "histogram";
          let cum = ref 0 in
          List.iter
            (fun (ub, c) ->
              cum := !cum + c;
              if ub <> max_int then line "%s_bucket{le=\"%d\"} %d" n ub !cum)
            e_buckets;
          line "%s_bucket{le=\"+Inf\"} %d" n e_count;
          line "%s_sum %d" n e_sum;
          line "%s_count %d" n e_count)
    (Metrics.export ());
  List.iter
    (fun (orig, v) ->
      let n = prom_name orig in
      help n orig "gauge";
      line "%s %d" n v)
    gauges;
  Buffer.contents b

(* -- Prometheus grammar check ------------------------------------------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let scan_name s i =
  let n = String.length s in
  if i >= n || not (is_name_start s.[i]) then None
  else begin
    let j = ref (i + 1) in
    while !j < n && is_name_char s.[!j] do
      incr j
    done;
    Some (String.sub s i (!j - i), !j)
  end

(* one pass over "{k="v",...}"; returns the index past the closing brace *)
let scan_labels s i =
  let n = String.length s in
  let rec pair i =
    match scan_name s i with
    | None -> Error "expected a label name"
    | Some (_, i) ->
        if i + 1 >= n || s.[i] <> '=' || s.[i + 1] <> '"' then
          Error "expected =\" after label name"
        else begin
          let j = ref (i + 2) in
          let ok = ref true in
          while !ok && !j < n && s.[!j] <> '"' do
            if s.[!j] = '\\' then
              if !j + 1 < n then j := !j + 2 else ok := false
            else incr j
          done;
          if (not !ok) || !j >= n then Error "unterminated label value"
          else
            let i = !j + 1 in
            if i < n && s.[i] = ',' then pair (i + 1)
            else if i < n && s.[i] = '}' then Ok (i + 1)
            else Error "expected , or } after label value"
        end
  in
  pair i

let valid_value v =
  match String.trim v with
  | "" -> false
  | "+Inf" | "-Inf" | "NaN" -> true
  | v -> float_of_string_opt v <> None

let base_family declared name =
  let strip suffix =
    let ls = String.length suffix and ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suffix then
      Some (String.sub name 0 (ln - ls))
    else None
  in
  if Hashtbl.mem declared name then Some name
  else
    List.find_map
      (fun sfx ->
        match strip sfx with
        | Some base when Hashtbl.find_opt declared base = Some "histogram" ->
            Some base
        | _ -> None)
      [ "_bucket"; "_sum"; "_count" ]

let check_prometheus text =
  let declared : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let err ln msg = Error (Printf.sprintf "line %d: %s" ln msg) in
  let lines = String.split_on_char '\n' text in
  let rec go ln nsamples = function
    | [] -> Ok nsamples
    | "" :: rest ->
        if rest = [] then Ok nsamples (* trailing newline *)
        else err ln "blank line before end of exposition"
    | line :: rest when String.length line > 0 && line.[0] = '#' -> (
        let valid_metric_name n =
          scan_name n 0 = Some (n, String.length n)
        in
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ kind ] ->
            if not (valid_metric_name name) then
              err ln (Printf.sprintf "invalid metric name %S" name)
            else if
              not
                (List.mem kind
                   [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then err ln (Printf.sprintf "unknown metric type %S" kind)
            else begin
              Hashtbl.replace declared name kind;
              go (ln + 1) nsamples rest
            end
        | "#" :: "TYPE" :: _ -> err ln "malformed TYPE line"
        | "#" :: "HELP" :: name :: (_ :: _) ->
            if not (valid_metric_name name) then
              err ln (Printf.sprintf "invalid metric name %S" name)
            else go (ln + 1) nsamples rest
        | "#" :: "HELP" :: _ -> err ln "HELP line without help text"
        | _ -> err ln "malformed comment line (expected # HELP or # TYPE)")
    | line :: rest -> (
        match scan_name line 0 with
        | None -> err ln "expected a metric name"
        | Some (name, i) -> (
            let after_labels =
              if i < String.length line && line.[i] = '{' then
                scan_labels line (i + 1)
              else Ok i
            in
            match after_labels with
            | Error msg -> err ln msg
            | Ok i ->
                if
                  i >= String.length line
                  || (line.[i] <> ' ' && line.[i] <> '\t')
                then err ln "expected a space before the value"
                else if
                  not
                    (valid_value
                       (String.sub line i (String.length line - i)))
                then err ln "invalid sample value"
                else if base_family declared name = None then
                  err ln
                    (Printf.sprintf "sample %S has no preceding # TYPE" name)
                else go (ln + 1) (nsamples + 1) rest))
  in
  go 1 0 lines

(* -- JSONL lint --------------------------------------------------------- *)

let lint_jsonl text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty telemetry file"
  | header :: rest -> (
      match Json_min.parse header with
      | Error e -> Error (Printf.sprintf "header: %s" e)
      | Ok h -> (
          match Json_min.member "telemetry_schema" h with
          | Some (Json_min.Num v) when int_of_float v = schema_version ->
              let rec check ln n = function
                | [] -> Ok n
                | line :: rest -> (
                    match Json_min.parse line with
                    | Error e -> Error (Printf.sprintf "line %d: %s" ln e)
                    | Ok j ->
                        let has k =
                          match Json_min.member k j with
                          | Some _ -> true
                          | None -> false
                        in
                        if
                          has "seq" && has "t_ms" && has "counters"
                          && has "gauges"
                        then check (ln + 1) (n + 1) rest
                        else
                          Error
                            (Printf.sprintf
                               "line %d: missing a required sample field" ln))
              in
              check 2 0 rest
          | Some _ ->
              Error
                (Printf.sprintf "header: telemetry_schema is not %d"
                   schema_version)
          | None -> Error "header: missing telemetry_schema"))

(* -- utilization-over-time rendering ------------------------------------ *)

let rate d dt_ms = if dt_ms <= 0.0 then 0.0 else float_of_int d *. 1000.0 /. dt_ms

let pp_timeline ppf =
  match samples () with
  | [] | [ _ ] -> Format.fprintf ppf "  (telemetry: fewer than 2 samples)@."
  | first :: _ as ss ->
      Format.fprintf ppf
        "  %10s %12s %12s %10s %12s  %s@." "t (ms)" "tasks/s" "steals/s"
        "deque" "gc words" "marks";
      let prev_t = ref first.t_ms in
      List.iteri
        (fun i s ->
          let dt = s.t_ms -. !prev_t in
          prev_t := s.t_ms;
          if i > 0 then begin
            let c n = Option.value ~default:0 (List.assoc_opt n s.counters) in
            let g n = Option.value ~default:0 (List.assoc_opt n s.gauges) in
            Format.fprintf ppf "  %10.1f %12.0f %12.0f %10d %12d  %s@." s.t_ms
              (rate (c "runtime.tasks") dt)
              (rate (c "runtime.steals") dt)
              (g "sched.deque_depth") (g "gc.heap_words")
              (String.concat "," s.marks)
          end)
        ss
