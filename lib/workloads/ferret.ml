module Program = Sfr_runtime.Program
module Prng = Sfr_support.Prng

type params = {
  queries : int;
  db : int; (* database size *)
  dim : int; (* feature dimension *)
  raw : int; (* raw item length *)
  buckets : int;
  topk : int;
}

let params_of = function
  | Workload.Tiny -> { queries = 4; db = 32; dim = 8; raw = 16; buckets = 8; topk = 2 }
  | Workload.Small -> { queries = 12; db = 128; dim = 16; raw = 32; buckets = 16; topk = 3 }
  | Workload.Default ->
      { queries = 64; db = 4096; dim = 32; raw = 64; buckets = 32; topk = 4 }
  | Workload.Large ->
      { queries = 128; db = 16384; dim = 48; raw = 96; buckets = 64; topk = 8 }
  | Workload.Paper ->
      { queries = 64; db = 34_973; dim = 48; raw = 128; buckets = 128; topk = 10 }

let instantiate ?(inject_race = false) scale =
  let p = params_of scale in
  (* database feature vectors + LSH-style bucket index, built raw *)
  let db_feats = Program.alloc (p.db * p.dim) 0 in
  let rng = Prng.create 0xfe44e7 in
  for i = 0 to (p.db * p.dim) - 1 do
    Program.wr_raw db_feats i (Prng.int rng 256)
  done;
  let hash_of feat_get =
    let acc = ref 0 in
    for d = 0 to p.dim - 1 do
      acc := (!acc * 31) + feat_get d
    done;
    ((!acc mod p.buckets) + p.buckets) mod p.buckets
  in
  let bucket_lists = Array.make p.buckets [] in
  for v = p.db - 1 downto 0 do
    let h = hash_of (fun d -> Program.rd_raw db_feats ((v * p.dim) + d)) in
    bucket_lists.(h) <- v :: bucket_lists.(h)
  done;
  (* flatten the index into instrumented memory: offsets + members *)
  let bucket_off = Program.alloc (p.buckets + 1) 0 in
  let members = Program.alloc p.db 0 in
  let off = ref 0 in
  Array.iteri
    (fun h vs ->
      Program.wr_raw bucket_off h !off;
      List.iter
        (fun v ->
          Program.wr_raw members !off v;
          incr off)
        vs)
    bucket_lists;
  Program.wr_raw bucket_off p.buckets !off;
  (* raw query items *)
  let raws = Program.alloc (p.queries * p.raw) 0 in
  for i = 0 to (p.queries * p.raw) - 1 do
    Program.wr_raw raws i (Prng.int rng 256)
  done;
  (* per-query pipeline buffers *)
  let segmented = Program.alloc (p.queries * p.raw) 0 in
  let feats = Program.alloc (p.queries * p.dim) 0 in
  let results = Program.alloc (p.queries * p.topk) 0 in
  let shared_best = Program.alloc 1 0 in
  let distance q v =
    let acc = ref 0 in
    for d = 0 to p.dim - 1 do
      let a = Program.rd feats ((q * p.dim) + d) in
      let b = Program.rd db_feats ((v * p.dim) + d) in
      acc := !acc + ((a - b) * (a - b))
    done;
    !acc
  in
  let segment q () =
    (* smooth the raw signal *)
    for i = 0 to p.raw - 1 do
      let x = Program.rd raws ((q * p.raw) + i) in
      let y = if i = 0 then x else Program.rd raws ((q * p.raw) + i - 1) in
      Program.wr segmented ((q * p.raw) + i) ((x + y) / 2)
    done;
    0
  in
  let extract q () =
    (* bucket the segmented signal into dim histogram-ish features *)
    for d = 0 to p.dim - 1 do
      let acc = ref 0 in
      let per = p.raw / p.dim in
      for i = 0 to max 0 (per - 1) do
        acc := !acc + Program.rd segmented ((q * p.raw) + ((d * per) + i))
      done;
      Program.wr feats ((q * p.dim) + d) (!acc mod 256)
    done;
    0
  in
  let index q () =
    (* probe the query's bucket; return the candidate range *)
    let h = hash_of (fun d -> Program.rd feats ((q * p.dim) + d)) in
    let lo = Program.rd bucket_off h in
    let hi = Program.rd bucket_off (h + 1) in
    (lo, hi)
  in
  let rank q (lo, hi) () =
    (* rank the bucket candidates (whole database when the bucket is
       empty, so every query does real ranking work) *)
    let candidates =
      if hi > lo then List.init (hi - lo) (fun i -> Program.rd members (lo + i))
      else List.init p.db Fun.id
    in
    let scored = List.map (fun v -> (distance q v, v)) candidates in
    let sorted = List.sort compare scored in
    let rec take i = function
      | (_, v) :: rest when i < p.topk ->
          Program.wr results ((q * p.topk) + i) v;
          take (i + 1) rest
      | _ -> ()
    in
    take 0 sorted;
    (if inject_race then
       match sorted with
       | (d, v) :: _ ->
           (* racy global-best update across queries *)
           let cur = Program.rd shared_best 0 in
           if d >= 0 then Program.wr shared_best 0 (max cur v)
       | [] -> ());
    0
  in
  let program () =
    let rank_handles =
      List.init p.queries (fun q ->
          let h_seg = Program.create (segment q) in
          let h_ext =
            Program.create (fun () ->
                ignore (Program.get h_seg);
                extract q ())
          in
          let h_idx =
            Program.create (fun () ->
                ignore (Program.get h_ext);
                index q ())
          in
          Program.create (fun () ->
              let range = Program.get h_idx in
              rank q range ()))
    in
    (* aggregate: the root gets every rank handle, then reduces serially *)
    List.iter (fun h -> ignore (Program.get h)) rank_handles;
    if not inject_race then begin
      let best = ref 0 in
      for q = 0 to p.queries - 1 do
        best := max !best (Program.rd results (q * p.topk))
      done;
      Program.wr shared_best 0 !best
    end
  in
  let verify () =
    (* recompute each query's nearest neighbour serially *)
    let ok = ref true in
    for q = 0 to p.queries - 1 do
      (* reference pipeline on raw OCaml values *)
      let seg = Array.init p.raw (fun i ->
          let x = Program.rd_raw raws ((q * p.raw) + i) in
          let y = if i = 0 then x else Program.rd_raw raws ((q * p.raw) + i - 1) in
          (x + y) / 2)
      in
      let per = p.raw / p.dim in
      let feat = Array.init p.dim (fun d ->
          let acc = ref 0 in
          for i = 0 to max 0 (per - 1) do
            acc := !acc + seg.((d * per) + i)
          done;
          !acc mod 256)
      in
      let h = hash_of (fun d -> feat.(d)) in
      let lo = Program.rd_raw bucket_off h and hi = Program.rd_raw bucket_off (h + 1) in
      let candidates =
        if hi > lo then List.init (hi - lo) (fun i -> Program.rd_raw members (lo + i))
        else List.init p.db Fun.id
      in
      let dist v =
        let acc = ref 0 in
        for d = 0 to p.dim - 1 do
          let b = Program.rd_raw db_feats ((v * p.dim) + d) in
          acc := !acc + ((feat.(d) - b) * (feat.(d) - b))
        done;
        acc
      in
      let scored = List.sort compare (List.map (fun v -> (!(dist v), v)) candidates) in
      match scored with
      | (_, v) :: _ -> if Program.rd_raw results (q * p.topk) <> v then ok := false
      | [] -> ()
    done;
    !ok
  in
  { Workload.program; verify; mem_base = Program.base db_feats }

let workload =
  {
    Workload.name = "ferret";
    description = "ferret: 4-stage similarity-search pipeline, a future per stage";
    instantiate;
    paper_figure3 = [ "simlarge"; "-"; "5.40e9"; "6.23e8"; "7.40e9"; "256"; "1280" ];
  }
