(* racedetect-serve tests.

   The contract under test: (1) the frame codec round-trips and every
   malformed wire image is a typed [error], sticky, never an exception;
   (2) a streamed session's verdict is byte-identical to offline replay
   of the same log — reports, event counts, analyzed bytes; (3) every
   prefix of a stream, cut anywhere and abandoned, yields a clean
   partial verdict or a typed error and leaves the server serving;
   (4) sessions are isolated — a poisoned stream finishes with its own
   typed outcome while neighbours keep streaming; (5) the credit window
   bounds per-session queue memory and overruns are typed protocol
   errors; (6) the three overload policies (shed / park / block) fire
   deterministically against the global byte budget, with their
   counters; (7) deadlines and idle timeouts fire off the injected
   clock; (8) chaos wire faults produce typed outcomes, deterministic
   per seed; (9) the acceptance soak: a 4-domain pool, nine concurrent
   sessions (one torn, one credit-overrunning, one idle) all settle
   with correct verdicts and the queue accounting returns to zero. *)

module Log_format = Sfr_eventlog.Log_format
module Recorder = Sfr_eventlog.Recorder
module Reader = Sfr_eventlog.Reader
module Replay = Sfr_eventlog.Replay
module Serial_exec = Sfr_runtime.Serial_exec
module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Race = Sfr_detect.Race
module Chaos = Sfr_chaos.Chaos
module Metrics = Sfr_obs.Metrics
module Frame = Sfr_serve.Frame
module Session = Sfr_serve.Session
module Server = Sfr_serve.Server
module Loopback = Sfr_serve.Loopback

let check = Alcotest.check
let slist = Alcotest.list Alcotest.string

let tcode =
  Alcotest.testable
    (fun fmt c -> Format.pp_print_string fmt (Frame.reply_code_name c))
    ( = )

let tframe = Alcotest.testable Frame.pp ( = )

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -- fixtures ----------------------------------------------------------- *)

let with_temp_log f =
  let path = Filename.temp_file "sfr_serve" ".sflog" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let record program =
  with_temp_log (fun path ->
      let rec_, cb, root = Recorder.create ~path () in
      program cb root;
      let stats = Recorder.close rec_ in
      match Reader.load_file path with
      | Ok log -> (log, stats, read_file path)
      | Error e ->
          Alcotest.failf "fresh log unreadable: %s" (Log_format.error_to_string e))

let serial p cb root = ignore (Serial_exec.run cb ~root p)

let norm base reports =
  List.map
    (fun (r : Race.report) ->
      Printf.sprintf "loc+%d %s f%d f%d x%d" (r.Race.loc - base)
        (Format.asprintf "%a" Race.pp_kind r.Race.kind)
        r.Race.prev_future r.Race.cur_future r.Race.count)
    reports

let offline_races base log =
  let det = Sf_order.make () in
  match Replay.run_detector log det with
  | Ok _ -> norm base (Race.reports det.Detector.races)
  | Error e -> Alcotest.failf "offline replay failed: %s" (Replay.error_to_string e)

(* A serially recorded synthetic log: its streamed verdict must be
   byte-identical to offline replay. *)
let synth_image ~seed ~ops =
  let t = Synthetic.generate ~seed ~ops ~depth:4 ~locs:8 () in
  let i = Synthetic.instantiate t in
  let log, stats, image =
    record (fun cb root -> serial (fun () -> i.Synthetic.program ()) cb root)
  in
  (image, i.Synthetic.mem_base, log, stats)

(* A registry workload's serial recording — the mm log is a few KiB,
   big enough to overflow the small credit windows and byte budgets the
   overload tests configure. *)
let workload_image name ~inject_race =
  match
    List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) Registry.all
  with
  | None -> Alcotest.failf "no %s workload registered" name
  | Some w ->
      let i = w.Workload.instantiate ~inject_race Workload.Tiny in
      let log, stats, image =
        record (fun cb root -> serial (fun () -> i.Workload.program ()) cb root)
      in
      (image, i.Workload.mem_base, log, stats)

let mk_cfg ?(session = Session.default_config) ?(budget = 4 * 1024 * 1024)
    ?(overload = Server.Shed) ?(pool = 0) ?(defer = false) () =
  {
    Server.session;
    global_budget = budget;
    overload;
    pool_domains = pool;
    defer_ingest = defer;
  }

let with_server ?now_ms cfg f =
  let server = Server.create ?now_ms cfg in
  Fun.protect ~finally:(fun () -> Server.shutdown server) (fun () -> f server)

let sid_of c =
  match
    List.find_map
      (function Frame.Welcome { session; _ } -> Some session | _ -> None)
      (Loopback.replies c)
  with
  | Some s -> s
  | None -> Alcotest.fail "client never saw WELCOME"

let outcome_exn server sid =
  match
    List.find_opt
      (fun (o : Session.outcome) -> o.Session.session = sid)
      (Server.outcomes server)
  with
  | Some o -> o
  | None -> Alcotest.failf "no outcome for session %d" sid

let await_outcomes ?(spin = 200_000_000) server n =
  let i = ref 0 in
  while List.length (Server.outcomes server) < n && !i < spin do
    incr i;
    Domain.cpu_relax ()
  done;
  List.length (Server.outcomes server)

(* -- frame codec -------------------------------------------------------- *)

let sample_frames =
  [
    Frame.Hello { version = Frame.protocol_version };
    Frame.Data Bytes.empty;
    Frame.Data (Bytes.of_string "a .sflog slice \x00\x01\xfe\xff cut anywhere");
    Frame.Close;
    Frame.Welcome { session = 42; credit = 256 * 1024 };
    Frame.Credit 1;
    Frame.Credit 123456789;
    Frame.Verdict
      {
        code = Frame.Ok_races;
        races = 3;
        events = 12345;
        bytes_analyzed = 999_999;
        message = "";
      };
    Frame.Verdict
      {
        code = Frame.Err_torn;
        races = 0;
        events = 7;
        bytes_analyzed = 130;
        message = "unexpected end of log; analyzed prefix up to byte 130";
      };
    Frame.Reject { code = Frame.Err_overload; message = "retry later" };
  ]

(* Feed [bytes] in [chunk]-sized slices and collect every decoded frame. *)
let decode_all ?max_frame bytes ~chunk =
  let d = Frame.decoder ?max_frame () in
  let out = ref [] in
  let err = ref None in
  let n = Bytes.length bytes in
  let pos = ref 0 in
  while !pos < n && !err = None do
    let len = min chunk (n - !pos) in
    Frame.decoder_feed d bytes ~pos:!pos ~len;
    pos := !pos + len;
    let continue_ = ref true in
    while !continue_ do
      match Frame.decoder_next d with
      | Ok (Some f) -> out := f :: !out
      | Ok None -> continue_ := false
      | Error e ->
          err := Some e;
          continue_ := false
    done
  done;
  match !err with Some e -> Error e | None -> Ok (List.rev !out)

let test_frame_round_trip () =
  let buf = Buffer.create 256 in
  List.iter (Frame.encode buf) sample_frames;
  let image = Buffer.to_bytes buf in
  (match decode_all image ~chunk:(Bytes.length image) with
  | Ok fs -> check (Alcotest.list tframe) "one-shot decode" sample_frames fs
  | Error e -> Alcotest.failf "decode failed: %s" (Frame.error_to_string e));
  match decode_all image ~chunk:1 with
  | Ok fs -> check (Alcotest.list tframe) "byte-at-a-time decode" sample_frames fs
  | Error e -> Alcotest.failf "incremental decode failed: %s" (Frame.error_to_string e)

(* Hand-rolled wire image with a valid CRC, for payloads [encode] would
   never produce. *)
let manual_frame tag payload =
  let buf = Buffer.create 32 in
  Buffer.add_char buf (Char.chr tag);
  Log_format.write_varint buf (Bytes.length payload);
  Buffer.add_bytes buf payload;
  let crc =
    Log_format.crc32_update Log_format.crc32_init payload ~pos:0
      ~len:(Bytes.length payload)
  in
  Buffer.add_char buf (Char.chr (crc land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xFF));
  Buffer.to_bytes buf

let decode_one ?max_frame bytes =
  decode_all ?max_frame bytes ~chunk:(Bytes.length bytes)

let test_frame_errors () =
  (* CRC corruption is typed and sticky *)
  let image = Frame.to_bytes (Frame.Welcome { session = 7; credit = 100 }) in
  let n = Bytes.length image in
  Bytes.set image (n - 1) (Char.chr (Char.code (Bytes.get image (n - 1)) lxor 0x40));
  let d = Frame.decoder () in
  Frame.decoder_feed d image ~pos:0 ~len:n;
  (match Frame.decoder_next d with
  | Error (Frame.Bad_crc _) -> ()
  | other ->
      Alcotest.failf "expected Bad_crc, got %s"
        (match other with
        | Ok _ -> "Ok"
        | Error e -> Frame.error_to_string e));
  let good = Frame.to_bytes Frame.Close in
  Frame.decoder_feed d good ~pos:0 ~len:(Bytes.length good);
  (match Frame.decoder_next d with
  | Error (Frame.Bad_crc _) -> ()
  | _ -> Alcotest.fail "decoder error must be sticky");
  (* unknown tag *)
  (match decode_one (manual_frame 0x7F Bytes.empty) with
  | Error (Frame.Bad_tag 0x7F) -> ()
  | _ -> Alcotest.fail "expected Bad_tag");
  (* hostile length versus the frame budget *)
  (match
     decode_one ~max_frame:16 (Frame.to_bytes (Frame.Data (Bytes.create 64)))
   with
  | Error (Frame.Too_large { len = 64; limit = 16 }) -> ()
  | _ -> Alcotest.fail "expected Too_large");
  (* truncated payloads with a valid CRC *)
  (match decode_one (manual_frame 0x01 Bytes.empty) with
  | Error (Frame.Malformed { tag = 0x01; _ }) -> ()
  | _ -> Alcotest.fail "expected Malformed HELLO");
  (* unknown reply code in a VERDICT *)
  let bad_verdict =
    let p = Buffer.create 8 in
    Log_format.write_varint p 99;
    List.iter (Log_format.write_varint p) [ 0; 0; 0; 0 ];
    manual_frame 0x12 (Buffer.to_bytes p)
  in
  (match decode_one bad_verdict with
  | Error (Frame.Malformed { tag = 0x12; what }) ->
      check Alcotest.bool "names the reply code" true (contains what "reply code")
  | _ -> Alcotest.fail "expected Malformed VERDICT");
  (* trailing bytes after a well-formed payload *)
  let trailing =
    let p = Buffer.create 8 in
    Log_format.write_varint p Frame.protocol_version;
    Buffer.add_char p 'x';
    manual_frame 0x01 (Buffer.to_bytes p)
  in
  match decode_one trailing with
  | Error (Frame.Malformed { tag = 0x01; _ }) -> ()
  | _ -> Alcotest.fail "expected Malformed trailing payload"

(* -- streamed verdict == offline replay --------------------------------- *)

let expect_code offline = if offline = [] then Frame.Ok_clean else Frame.Ok_races

let test_stream_matches_offline () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun inject_race ->
          let i = w.Workload.instantiate ~inject_race Workload.Tiny in
          let log, stats, image =
            record (fun cb root ->
                serial (fun () -> i.Workload.program ()) cb root)
          in
          let offline = offline_races i.Workload.mem_base log in
          with_server (mk_cfg ()) (fun server ->
              let c = Loopback.connect server in
              Loopback.run_log ~chaos:false c image;
              let o = outcome_exn server (sid_of c) in
              let label what =
                Printf.sprintf "%s inject:%b %s" w.Workload.name inject_race what
              in
              check tcode (label "code") (expect_code offline) o.Session.code;
              check slist (label "reports") offline
                (norm i.Workload.mem_base o.Session.reports);
              check Alcotest.int (label "events") stats.Recorder.events
                o.Session.events;
              check Alcotest.int (label "bytes") (Bytes.length image)
                o.Session.bytes_analyzed;
              (* the terminal frame the client saw is the same verdict *)
              match Loopback.last_terminal c with
              | Some (Frame.Verdict { code; _ }) ->
                  check tcode (label "client code") o.Session.code code
              | _ -> Alcotest.fail (label "client missed its verdict")))
        [ false; true ])
    Registry.all

let test_stream_matches_offline_sharded () =
  let image, base, log, stats = synth_image ~seed:12 ~ops:200 in
  let offline = offline_races base log in
  let session = { Session.default_config with shards = 4; access_batch = 64 } in
  with_server (mk_cfg ~session ()) (fun server ->
      let c = Loopback.connect server in
      Loopback.run_log ~chaos:false c image;
      let o = outcome_exn server (sid_of c) in
      check tcode "sharded code" (expect_code offline) o.Session.code;
      check slist "sharded reports" offline (norm base o.Session.reports);
      check Alcotest.int "sharded events" stats.Recorder.events o.Session.events)

(* -- every-prefix sweep ------------------------------------------------- *)

(* A stream cut at any byte and abandoned: clean partial verdict or a
   typed error, never a crash — and the same server keeps serving. *)
let test_every_prefix () =
  let image, base, log, _ = synth_image ~seed:5 ~ops:40 in
  let offline = offline_races base log in
  let n = Bytes.length image in
  with_server (mk_cfg ()) (fun server ->
      for p = 0 to n do
        let c = Loopback.connect server in
        Loopback.hello ~chaos:false c;
        if p > 0 then ignore (Loopback.pump ~chaos:false c image ~pos:0 ~len:p);
        Loopback.disconnect c;
        let o = outcome_exn server (sid_of c) in
        (match o.Session.code with
        | Frame.Ok_clean | Frame.Ok_races | Frame.Err_torn
        | Frame.Err_inconsistent | Frame.Err_detector ->
            ()
        | c ->
            Alcotest.failf "prefix %d: unexpected code %s" p
              (Frame.reply_code_name c));
        if o.Session.bytes_analyzed > p then
          Alcotest.failf "prefix %d: claims %d bytes analyzed" p
            o.Session.bytes_analyzed;
        if o.Session.code = Frame.Err_torn then
          check Alcotest.bool
            (Printf.sprintf "prefix %d names the analyzed prefix" p)
            true
            (contains o.Session.message "analyzed prefix up to byte");
        if p = n then begin
          (* the whole image without CLOSE is still a complete log *)
          check tcode "full prefix code" (expect_code offline) o.Session.code;
          check slist "full prefix reports" offline (norm base o.Session.reports)
        end
      done;
      check Alcotest.int "no sessions left" 0 (Server.active_sessions server);
      check Alcotest.int "queue drained" 0 (Server.queued_bytes server);
      check Alcotest.int "every prefix settled" (n + 1)
        (List.length (Server.outcomes server)))

(* -- session isolation -------------------------------------------------- *)

let test_isolation () =
  let image, base, log, _ = synth_image ~seed:2 ~ops:120 in
  let offline = offline_races base log in
  with_server (mk_cfg ()) (fun server ->
      let a = Loopback.connect server in
      let b = Loopback.connect server in
      Loopback.hello ~chaos:false a;
      Loopback.hello ~chaos:false b;
      let half = Bytes.length image / 2 in
      ignore (Loopback.pump ~chaos:false a image ~pos:0 ~len:half);
      (* b turns hostile mid-stream: a complete frame with a bad CRC *)
      let bad = Frame.to_bytes (Frame.Data (Bytes.make 32 'x')) in
      let last = Bytes.length bad - 1 in
      Bytes.set bad last (Char.chr (Char.code (Bytes.get bad last) lxor 0x40));
      Loopback.raw_send b bad;
      let ob = outcome_exn server (sid_of b) in
      check tcode "poisoned session typed" Frame.Err_protocol ob.Session.code;
      (* a never notices *)
      ignore
        (Loopback.pump ~chaos:false a image ~pos:half
           ~len:(Bytes.length image - half));
      Loopback.close ~chaos:false a;
      let oa = outcome_exn server (sid_of a) in
      check tcode "neighbour completes" (expect_code offline) oa.Session.code;
      check slist "neighbour verdict intact" offline
        (norm base oa.Session.reports))

(* -- credit window ------------------------------------------------------ *)

let test_backpressure_bounds () =
  let image, base, log, _ = workload_image "mm" ~inject_race:false in
  let offline = offline_races base log in
  check Alcotest.bool "fixture bigger than the window" true
    (Bytes.length image > 512);
  Metrics.reset_all ();
  let session = { Session.default_config with credit_window = 512 } in
  with_server (mk_cfg ~session ()) (fun server ->
      let c = Loopback.connect server in
      Loopback.run_log ~chaos:false ~frame:128 c image;
      let o = outcome_exn server (sid_of c) in
      check tcode "small window still completes" (expect_code offline)
        o.Session.code;
      check slist "small window verdict" offline (norm base o.Session.reports);
      let hw = List.assoc "serve.queued.bytes" (Metrics.snapshot ()) in
      check Alcotest.bool "queue memory bounded by the window" true (hw <= 512));
  (* a hostile client ignoring CREDIT is finished, typed *)
  with_server (mk_cfg ~session ()) (fun server ->
      let c = Loopback.connect server in
      Loopback.hello ~chaos:false c;
      let big = min (Bytes.length image) 2048 in
      ignore
        (Loopback.pump ~chaos:false ~ignore_credit:true ~frame:big c image
           ~pos:0 ~len:big);
      let o = outcome_exn server (sid_of c) in
      check tcode "credit overrun typed" Frame.Err_protocol o.Session.code;
      check Alcotest.bool "message names the overrun" true
        (contains o.Session.message "credit exceeded");
      check Alcotest.bool "violation counted" true
        (List.assoc "serve.credit.violations" (Metrics.snapshot ()) >= 1))

(* -- overload policies -------------------------------------------------- *)

(* [defer_ingest] holds accepted bytes in the queue until [tick], so the
   global budget can be pushed over deterministically. *)

let drip_stream ?(chunk = 512) server c image =
  let len = Bytes.length image in
  let sent = ref 0 in
  while !sent < len do
    let k = min chunk (len - !sent) in
    ignore (Loopback.pump ~chaos:false ~frame:k c image ~pos:!sent ~len:k);
    Server.tick server;
    sent := !sent + k
  done;
  Loopback.close ~chaos:false c;
  Server.tick server

let overload_session = { Session.default_config with credit_window = 64 * 1024 }

let test_overload_shed () =
  let image, _, _, _ = synth_image ~seed:4 ~ops:300 in
  let n = min (Bytes.length image) 4096 in
  check Alcotest.bool "fixture bigger than the budget" true (n > 1024);
  Metrics.reset_all ();
  with_server
    (mk_cfg ~session:overload_session ~budget:1024 ~defer:true ())
    (fun server ->
      let c = Loopback.connect server in
      Loopback.hello ~chaos:false c;
      ignore (Loopback.pump ~chaos:false ~frame:n c image ~pos:0 ~len:n);
      let o = outcome_exn server (sid_of c) in
      check tcode "offender shed" Frame.Err_overload o.Session.code;
      check Alcotest.bool "shed is retryable" true (Frame.retryable o.Session.code);
      check Alcotest.int "queue released on shed" 0 (Server.queued_bytes server);
      let snap = Metrics.snapshot () in
      check Alcotest.int "shed counted" 1 (List.assoc "serve.shed.sessions" snap);
      check Alcotest.bool "shed bytes counted" true
        (List.assoc "serve.shed.bytes" snap >= n);
      (* the server keeps serving after the shed *)
      let c2 = Loopback.connect server in
      Loopback.hello ~chaos:false c2;
      drip_stream server c2 image;
      let o2 = outcome_exn server (sid_of c2) in
      check Alcotest.bool "post-shed session completes" true
        (o2.Session.code = Frame.Ok_clean || o2.Session.code = Frame.Ok_races))

let test_overload_park () =
  let image, base, log, _ = workload_image "mm" ~inject_race:true in
  let offline = offline_races base log in
  Metrics.reset_all ();
  with_server
    (mk_cfg ~session:overload_session ~budget:1024 ~overload:Server.Park
       ~defer:true ())
    (fun server ->
      let c = Loopback.connect server in
      Loopback.hello ~chaos:false c;
      let n = min (Bytes.length image) 4096 in
      ignore (Loopback.pump ~chaos:false ~frame:n c image ~pos:0 ~len:n);
      check Alcotest.bool "over budget parks" true (Server.parked server);
      check Alcotest.bool "nobody shed under park" true
        (Server.outcomes server = []);
      let credit_before = Loopback.credit c in
      Server.tick server;
      check Alcotest.bool "drain thaws the park" false (Server.parked server);
      check Alcotest.int "two park transitions" 2
        (List.assoc "serve.park.transitions" (Metrics.snapshot ()));
      check Alcotest.bool "catch-up credit after thaw" true
        (Loopback.credit c > credit_before);
      (* the parked client was never finished; it can stream to the end *)
      let rest = Bytes.length image - n in
      if rest > 0 then begin
        let sent = ref 0 in
        while !sent < rest do
          let k = min 512 (rest - !sent) in
          ignore
            (Loopback.pump ~chaos:false ~frame:k c image ~pos:(n + !sent) ~len:k);
          Server.tick server;
          sent := !sent + k
        done
      end;
      Loopback.close ~chaos:false c;
      Server.tick server;
      let o = outcome_exn server (sid_of c) in
      check tcode "parked session completes" (expect_code offline) o.Session.code;
      check slist "parked session verdict" offline (norm base o.Session.reports))

let test_overload_block () =
  let image, _, _, _ = synth_image ~seed:7 ~ops:300 in
  Metrics.reset_all ();
  with_server
    (mk_cfg ~session:overload_session ~budget:1024 ~overload:Server.Block
       ~defer:true ())
    (fun server ->
      let a = Loopback.connect server in
      Loopback.hello ~chaos:false a;
      let n = min (Bytes.length image) 4096 in
      ignore (Loopback.pump ~chaos:false ~frame:n a image ~pos:0 ~len:n);
      (* a newcomer's HELLO is refused while over budget *)
      let b = Loopback.connect server in
      Loopback.hello ~chaos:false b;
      (match Loopback.last_terminal b with
      | Some (Frame.Reject { code; _ }) ->
          check tcode "blocked at HELLO" Frame.Err_overload code;
          check Alcotest.bool "block is retryable" true (Frame.retryable code)
      | _ -> Alcotest.fail "expected REJECT at HELLO");
      check Alcotest.int "block counted" 1
        (List.assoc "serve.block.rejects" (Metrics.snapshot ()));
      (* the streaming session is untouched *)
      check Alcotest.int "streamer survives the block" 1
        (Server.active_sessions server);
      Server.tick server;
      (* back under budget: the next HELLO is welcomed *)
      let c2 = Loopback.connect server in
      Loopback.hello ~chaos:false c2;
      check Alcotest.bool "welcomed after drain" true
        (List.exists
           (function Frame.Welcome _ -> true | _ -> false)
           (Loopback.replies c2));
      Loopback.disconnect c2;
      Loopback.disconnect a;
      Server.tick server;
      check Alcotest.int "all three settled" 3
        (List.length (Server.outcomes server)))

(* -- deadlines and idle timeouts ---------------------------------------- *)

let test_deadline () =
  let image, _, _, _ = synth_image ~seed:8 ~ops:120 in
  let clock = ref 0 in
  let session = { Session.default_config with deadline_ms = Some 100 } in
  with_server
    ~now_ms:(fun () -> !clock)
    (mk_cfg ~session ())
    (fun server ->
      let c = Loopback.connect server in
      Loopback.hello ~chaos:false c;
      ignore
        (Loopback.pump ~chaos:false c image ~pos:0 ~len:(Bytes.length image / 2));
      clock := 50;
      Server.tick server;
      check Alcotest.int "young session alive" 1 (Server.active_sessions server);
      clock := 150;
      Server.tick server;
      let o = outcome_exn server (sid_of c) in
      check tcode "deadline fires" Frame.Err_deadline o.Session.code;
      check Alcotest.bool "deadline is retryable" true
        (Frame.retryable o.Session.code);
      check Alcotest.bool "verdict covers the analyzed prefix" true
        (o.Session.bytes_analyzed > 0);
      check Alcotest.bool "message names the deadline" true
        (contains o.Session.message "deadline"))

let test_idle () =
  let image, _, _, _ = synth_image ~seed:8 ~ops:120 in
  let clock = ref 0 in
  let session = { Session.default_config with idle_ms = Some 50 } in
  with_server
    ~now_ms:(fun () -> !clock)
    (mk_cfg ~session ())
    (fun server ->
      let c = Loopback.connect server in
      Loopback.hello ~chaos:false c;
      clock := 30;
      ignore (Loopback.pump ~chaos:false c image ~pos:0 ~len:64);
      clock := 60;
      Server.tick server;
      check Alcotest.int "activity resets the idle clock" 1
        (Server.active_sessions server);
      clock := 85;
      Server.tick server;
      let o = outcome_exn server (sid_of c) in
      check tcode "idle fires" Frame.Err_idle o.Session.code;
      check Alcotest.bool "idle is retryable" true (Frame.retryable o.Session.code);
      check Alcotest.bool "message names the quiet gap" true
        (contains o.Session.message "idle"))

(* -- chaos wire faults -------------------------------------------------- *)

let chaos_cfg = { Chaos.default_config with Chaos.wire_rate = 0.25 }

(* One armed round: three clients stream the same log through a faulty
   wire; whatever survives must settle with a typed outcome. Returns the
   per-session codes in session order. *)
let chaos_round ~seed image =
  Chaos.with_armed ~config:chaos_cfg ~seed (fun () ->
      with_server (mk_cfg ()) (fun server ->
          let clients = List.init 3 (fun _ -> Loopback.connect server) in
          List.iter (fun c -> Loopback.run_log c image) clients;
          (* a torn uplink eventually looks like a hangup *)
          List.iter
            (fun c ->
              if Loopback.last_terminal c = None then Loopback.disconnect c)
            clients;
          check Alcotest.int "every session settled" 3
            (List.length (Server.outcomes server));
          check Alcotest.int "queue drained" 0 (Server.queued_bytes server);
          let by_sid =
            List.sort
              (fun (a : Session.outcome) b ->
                compare a.Session.session b.Session.session)
              (Server.outcomes server)
          in
          ( List.map (fun (o : Session.outcome) -> o.Session.code) by_sid,
            List.exists Loopback.torn clients )))

let test_chaos_wire_sweep () =
  let image, _, _, _ = synth_image ~seed:9 ~ops:150 in
  let faulted = ref 0 in
  for seed = 1 to 15 do
    let codes1, torn1 = chaos_round ~seed image in
    let codes2, torn2 = chaos_round ~seed image in
    check (Alcotest.list tcode)
      (Printf.sprintf "seed %d wire faults are deterministic" seed)
      codes1 codes2;
    check Alcotest.bool
      (Printf.sprintf "seed %d tear pattern is deterministic" seed)
      torn1 torn2;
    if torn1 || List.exists (fun c -> c <> Frame.Ok_clean && c <> Frame.Ok_races) codes1
    then incr faulted
  done;
  check Alcotest.bool "the campaign actually faulted something" true
    (!faulted > 0)

(* -- acceptance soak ---------------------------------------------------- *)

let test_soak () =
  let image, base, log, stats = workload_image "mm" ~inject_race:true in
  let offline = offline_races base log in
  let window = 4096 in
  check Alcotest.bool "fixture overflows the credit window" true
    (Bytes.length image > window);
  Metrics.reset_all ();
  let clock = Atomic.make 0 in
  let session =
    { Session.default_config with credit_window = window; idle_ms = Some 10_000 }
  in
  let budget = 256 * 1024 in
  with_server
    ~now_ms:(fun () -> Atomic.get clock)
    (mk_cfg ~session ~budget ~pool:4 ())
    (fun server ->
      let healthy = List.init 6 (fun _ -> Loopback.connect server) in
      let torn_c = Loopback.connect server in
      let over_c = Loopback.connect server in
      let idle_c = Loopback.connect server in
      let doms =
        List.map
          (fun c ->
            Domain.spawn (fun () -> Loopback.run_log ~chaos:false ~frame:1024 c image))
          healthy
      in
      (* torn: half a stream, then the pipe breaks *)
      Loopback.hello ~chaos:false torn_c;
      let torn_sent =
        Loopback.pump ~chaos:false torn_c image ~pos:0
          ~len:(Bytes.length image / 2)
      in
      Loopback.disconnect torn_c;
      (* over budget: one DATA frame past the whole credit window *)
      Loopback.hello ~chaos:false over_c;
      let big = min (Bytes.length image) (2 * window) in
      ignore
        (Loopback.pump ~chaos:false ~ignore_credit:true ~frame:big over_c image
           ~pos:0 ~len:big);
      (* idle: a HELLO, then silence *)
      Loopback.hello ~chaos:false idle_c;
      List.iter Domain.join doms;
      Server.quiesce server;
      ignore (await_outcomes server 8);
      (* only the idler is left; let its timeout expire *)
      Atomic.set clock 60_000;
      Server.tick server;
      Server.quiesce server;
      check Alcotest.int "all nine sessions settled" 9
        (List.length (Server.outcomes server));
      check Alcotest.int "no sessions left" 0 (Server.active_sessions server);
      check Alcotest.int "queue accounting returns to zero" 0
        (Server.queued_bytes server);
      List.iteri
        (fun i c ->
          let o = outcome_exn server (sid_of c) in
          let label what = Printf.sprintf "healthy %d %s" i what in
          check tcode (label "code") (expect_code offline) o.Session.code;
          check slist (label "verdict == offline replay") offline
            (norm base o.Session.reports);
          check Alcotest.int (label "events") stats.Recorder.events
            o.Session.events;
          check Alcotest.int (label "bytes") (Bytes.length image)
            o.Session.bytes_analyzed)
        healthy;
      let ot = outcome_exn server (sid_of torn_c) in
      check tcode "torn session typed" Frame.Err_torn ot.Session.code;
      check Alcotest.bool "torn verdict names the prefix" true
        (contains ot.Session.message "analyzed prefix up to byte");
      check Alcotest.bool "torn prefix within what was sent" true
        (ot.Session.bytes_analyzed <= torn_sent);
      let oo = outcome_exn server (sid_of over_c) in
      check tcode "overrunner typed" Frame.Err_protocol oo.Session.code;
      check Alcotest.bool "overrun names its budget" true
        (contains oo.Session.message "credit exceeded");
      let oi = outcome_exn server (sid_of idle_c) in
      check tcode "idler typed" Frame.Err_idle oi.Session.code;
      check Alcotest.bool "idler is retryable" true
        (Frame.retryable oi.Session.code);
      (* bounded queue memory, and the overload counters are published *)
      let snap = Metrics.snapshot () in
      check Alcotest.bool "queue high-water bounded" true
        (List.assoc "serve.queued.bytes" snap <= budget + window);
      check Alcotest.bool "shed counter published" true
        (List.mem_assoc "serve.shed.sessions" snap);
      check Alcotest.bool "violation counter live" true
        (List.assoc "serve.credit.violations" snap >= 1))

(* ----------------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "frame",
        [
          Alcotest.test_case "round trip" `Quick test_frame_round_trip;
          Alcotest.test_case "typed errors" `Quick test_frame_errors;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "stream == offline" `Quick test_stream_matches_offline;
          Alcotest.test_case "stream == offline (sharded)" `Quick
            test_stream_matches_offline_sharded;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "every prefix" `Quick test_every_prefix;
          Alcotest.test_case "session isolation" `Quick test_isolation;
          Alcotest.test_case "backpressure bounds" `Quick test_backpressure_bounds;
        ] );
      ( "overload",
        [
          Alcotest.test_case "shed" `Quick test_overload_shed;
          Alcotest.test_case "park" `Quick test_overload_park;
          Alcotest.test_case "block" `Quick test_overload_block;
        ] );
      ( "timeouts",
        [
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "idle" `Quick test_idle;
        ] );
      ( "chaos",
        [ Alcotest.test_case "wire fault sweep" `Quick test_chaos_wire_sweep ] );
      ( "soak",
        [ Alcotest.test_case "nine concurrent sessions" `Quick test_soak ] );
    ]
