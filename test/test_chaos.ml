(* Chaos layer tests.

   The contract under test: (1) fixed-seed determinism — a serial run
   under an armed campaign produces the identical decision trace twice;
   (2) injected faults surface as Chaos.Injected at the join, they do not
   hang or kill workers; (3) the differential runner catches a
   deliberately broken detector and the shrinker reduces its failing
   program to a small deterministic reproducer. *)

module Chaos = Sfr_chaos.Chaos
module Runner = Sfr_chaos_driver.Chaos_runner
module Shrink = Sfr_chaos_driver.Shrink
module Synthetic = Sfr_workloads.Synthetic
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Events = Sfr_runtime.Events
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order

let check = Alcotest.check

(* -- fixed-seed determinism ------------------------------------------- *)

let serial_trace ~seed ~chaos_seed =
  let t = Synthetic.generate ~seed ~ops:120 ~depth:4 ~locs:6 () in
  let inst = Synthetic.instantiate t in
  let det = Sf_order.make () in
  Chaos.with_armed ~seed:chaos_seed (fun () ->
      ignore
        (Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
           inst.Synthetic.program));
  Chaos.trace_strings ()

let test_fixed_seed_determinism () =
  let a = serial_trace ~seed:7 ~chaos_seed:99 in
  let b = serial_trace ~seed:7 ~chaos_seed:99 in
  check (Alcotest.list Alcotest.string) "same seed, same trace" a b;
  check Alcotest.bool "trace is non-trivial" true (List.length a > 0);
  let c = serial_trace ~seed:7 ~chaos_seed:100 in
  check Alcotest.bool "different seed, different trace" true (a <> c)

let test_disarmed_is_silent () =
  Chaos.disarm ();
  (* a point outside a campaign must not record or perturb *)
  Chaos.point Chaos.Task;
  check Alcotest.bool "not armed" false (Chaos.armed ())

(* -- fault surfacing ---------------------------------------------------- *)

(* With a high fault rate every program faults almost immediately; the
   parallel executor must re-raise Injected at the join rather than hang
   (a hang here fails the suite's timeout, which is the real assertion). *)
let test_fault_surfaces_in_parallel () =
  let cfg =
    {
      Chaos.default_config with
      Chaos.fault_rate = 0.9;
      max_faults = 1;
    }
  in
  let t = Synthetic.generate ~seed:3 ~ops:150 ~depth:4 ~locs:6 () in
  let surfaced = ref 0 in
  for chaos_seed = 1 to 5 do
    let inst = Synthetic.instantiate t in
    let det = Sf_order.make () in
    match
      Chaos.with_armed ~config:cfg ~seed:chaos_seed (fun () ->
          ignore
            (Par_exec.run ~workers:4 det.Detector.callbacks
               ~root:det.Detector.root inst.Synthetic.program))
    with
    | () -> ()
    | exception Chaos.Injected _ -> incr surfaced
  done;
  check Alcotest.bool "faults surfaced as Injected" true (!surfaced >= 4)

let test_fault_budget_respected () =
  let cfg =
    { Chaos.default_config with Chaos.fault_rate = 1.0; max_faults = 1 }
  in
  let t = Synthetic.generate ~seed:5 ~ops:100 ~depth:3 ~locs:4 () in
  let inst = Synthetic.instantiate t in
  let det = Sf_order.make () in
  (try
     Chaos.with_armed ~config:cfg ~seed:11 (fun () ->
         ignore
           (Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
              inst.Synthetic.program))
   with Chaos.Injected _ -> ());
  check Alcotest.int "exactly one fault raised" 1 (Chaos.injected_count ())

(* -- differential runner ------------------------------------------------ *)

let test_runner_clean_detector () =
  let cfg =
    {
      Runner.default_config with
      Runner.seeds = 15;
      workers = 4;
      chaos = Some Chaos.default_config;
    }
  in
  let r = Runner.run cfg ~make:(fun () -> Sf_order.make ()) in
  check Alcotest.int "no mismatches" 0 (List.length r.Runner.mismatches);
  check Alcotest.int "all matched" 15 r.Runner.matched

(* A deliberately broken detector: sf-order with reads dropped on the
   floor, so read-write races go unreported. *)
let buggy_detector () =
  let det = Sf_order.make () in
  let cb = det.Detector.callbacks in
  {
    det with
    Detector.name = "sf-order-deaf";
    callbacks = { cb with Events.on_read = (fun _ _ -> ()) };
  }

let find_buggy_failure cfg =
  let rec go seed =
    if seed > 200 then Alcotest.fail "no seed exposed the buggy detector"
    else
      match Runner.run_seed cfg ~make:buggy_detector ~seed with
      | Runner.Failed m -> m
      | _ -> go (seed + 1)
  in
  go 1

let test_runner_catches_buggy_detector () =
  (* serial + no injection: the predicate is fully deterministic *)
  let cfg =
    {
      Runner.default_config with
      Runner.workers = 1;
      chaos = None;
      shrink = false;
    }
  in
  let m = find_buggy_failure cfg in
  check Alcotest.bool "oracle saw races the detector missed" true
    (m.Runner.expected.Runner.racy <> []);
  check Alcotest.bool "no crash" true (m.Runner.crash = None)

let test_shrinker_minimizes_deterministically () =
  let cfg =
    {
      Runner.default_config with
      Runner.workers = 1;
      chaos = None;
      shrink = true;
    }
  in
  let m1 = find_buggy_failure cfg in
  let m2 = find_buggy_failure cfg in
  let reduced1 = Option.get m1.Runner.reduced in
  let reduced2 = Option.get m2.Runner.reduced in
  check Alcotest.bool "reduced below 20 nodes" true (Synthetic.size reduced1 < 20);
  check Alcotest.bool "shrinking did work" true
    (m1.Runner.shrink_steps > 0);
  check Alcotest.bool "deterministic reproducer" true
    (Synthetic.tree reduced1 = Synthetic.tree reduced2);
  (* the reproducer is still a failing input: it has real races *)
  let oracle_verdict = Runner.oracle reduced1 in
  check Alcotest.bool "reproducer is racy" true
    (oracle_verdict.Runner.racy <> [])

(* -- of_tree sanitization ---------------------------------------------- *)

let test_of_tree_drops_orphan_gets () =
  let tree =
    [ Synthetic.OGet 0; Synthetic.OCreate (1, 0, [ Synthetic.OWork 1 ]) ]
  in
  let t = Synthetic.of_tree ~locs:2 tree in
  (* the orphan OGet (before its create) is gone; create + work remain *)
  check Alcotest.int "orphan get dropped" 2 (Synthetic.size t);
  (* the rebuilt program runs *)
  let inst = Synthetic.instantiate t in
  let det = Sf_order.make () in
  ignore
    (Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
       inst.Synthetic.program)

let () =
  Alcotest.run "chaos"
    [
      ( "determinism",
        [
          Alcotest.test_case "fixed seed, identical trace" `Quick
            test_fixed_seed_determinism;
          Alcotest.test_case "disarmed is silent" `Quick test_disarmed_is_silent;
        ] );
      ( "faults",
        [
          Alcotest.test_case "surface in parallel" `Quick
            test_fault_surfaces_in_parallel;
          Alcotest.test_case "budget respected" `Quick
            test_fault_budget_respected;
        ] );
      ( "runner",
        [
          Alcotest.test_case "clean detector matches oracle" `Quick
            test_runner_clean_detector;
          Alcotest.test_case "buggy detector caught" `Quick
            test_runner_catches_buggy_detector;
          Alcotest.test_case "shrinker minimizes" `Quick
            test_shrinker_minimizes_deterministically;
          Alcotest.test_case "of_tree sanitizes" `Quick
            test_of_tree_drops_orphan_gets;
        ] );
    ]
