(* Operational observability of the serve layer.

   The contract under test: (1) the admin-plane frames round-trip the
   codec like every other frame; (2) a connection that only ever sends
   admin requests gets live answers (health bit, session-table JSON, a
   grammar-clean Prometheus scrape) and vanishes without an outcome,
   leaving the server serving; (3) admin requests are also answerable
   mid-stream, while a client-sent admin *reply* is a protocol error;
   (4) the audit log written across a concurrent soak — healthy, torn
   and shed sessions — passes its own lint and contains the lifecycle
   records the soak actually exercised, with exact shed/disconnect
   payloads; (5) the trace spans emitted by a serving daemon are
   well-nested per track, carry session correlation args, and each
   session's lifecycle span (on its own synthetic track) contains that
   session's ingest spans; (6) the lint rejects each malformation class
   with a line-numbered diagnostic. *)

module Log_format = Sfr_eventlog.Log_format
module Recorder = Sfr_eventlog.Recorder
module Reader = Sfr_eventlog.Reader
module Serial_exec = Sfr_runtime.Serial_exec
module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Synthetic = Sfr_workloads.Synthetic
module Metrics = Sfr_obs.Metrics
module Telemetry = Sfr_obs.Telemetry
module Trace_event = Sfr_obs.Trace_event
module Json_min = Sfr_obs.Json_min
module Frame = Sfr_serve.Frame
module Session = Sfr_serve.Session
module Server = Sfr_serve.Server
module Loopback = Sfr_serve.Loopback
module Audit = Sfr_serve.Audit

let check = Alcotest.check

let tframe = Alcotest.testable Frame.pp ( = )

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -- fixtures (as test_serve) ------------------------------------------- *)

let with_temp_log f =
  let path = Filename.temp_file "sfr_serve_obs" ".sflog" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  Bytes.to_string b

let record program =
  with_temp_log (fun path ->
      let rec_, cb, root = Recorder.create ~path () in
      program cb root;
      let stats = Recorder.close rec_ in
      ignore stats;
      read_file path |> Bytes.of_string)

let serial p cb root = ignore (Serial_exec.run cb ~root p)

let synth_image ~seed ~ops =
  let t = Synthetic.generate ~seed ~ops ~depth:4 ~locs:8 () in
  let i = Synthetic.instantiate t in
  record (fun cb root -> serial (fun () -> i.Synthetic.program ()) cb root)

let workload_image name =
  match
    List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) Registry.all
  with
  | None -> Alcotest.failf "no %s workload registered" name
  | Some w ->
      let i = w.Workload.instantiate ~inject_race:false Workload.Tiny in
      record (fun cb root -> serial (fun () -> i.Workload.program ()) cb root)

let mk_cfg ?(session = Session.default_config) ?(budget = 4 * 1024 * 1024)
    ?(overload = Server.Shed) ?(pool = 0) ?(defer = false) () =
  {
    Server.session;
    global_budget = budget;
    overload;
    pool_domains = pool;
    defer_ingest = defer;
  }

let with_server ?now_ms cfg f =
  let server = Server.create ?now_ms cfg in
  Fun.protect ~finally:(fun () -> Server.shutdown server) (fun () -> f server)

let sid_of c =
  match
    List.find_map
      (function Frame.Welcome { session; _ } -> Some session | _ -> None)
      (Loopback.replies c)
  with
  | Some s -> s
  | None -> Alcotest.fail "client never saw WELCOME"

let await_outcomes ?(spin = 200_000_000) server n =
  let i = ref 0 in
  while List.length (Server.outcomes server) < n && !i < spin do
    incr i;
    Domain.cpu_relax ()
  done;
  List.length (Server.outcomes server)

let parse_exn what s =
  match Json_min.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: unparseable JSON: %s" what e

let num_exn what j k =
  match Json_min.member k j with
  | Some (Json_min.Num v) -> v
  | _ -> Alcotest.failf "%s: missing numeric %S" what k

(* -- admin frame codec --------------------------------------------------- *)

let admin_frames =
  [
    Frame.Stats_req;
    Frame.Health_req;
    Frame.Metrics_req;
    Frame.Stats_reply "{\"server\":{},\"sessions\":[]}";
    Frame.Stats_reply "";
    Frame.Health_reply { healthy = true; detail = "queued=0B" };
    Frame.Health_reply { healthy = false; detail = "" };
    Frame.Metrics_reply "# TYPE sfr_serve_sessions_active gauge\n";
  ]

let test_admin_codec () =
  (* byte-at-a-time decode: resume correctness for the new tags too *)
  let image = Buffer.create 256 in
  List.iter (Frame.encode image) admin_frames;
  let image = Buffer.to_bytes image in
  let d = Frame.decoder () in
  let out = ref [] in
  for pos = 0 to Bytes.length image - 1 do
    Frame.decoder_feed d image ~pos ~len:1;
    let continue_ = ref true in
    while !continue_ do
      match Frame.decoder_next d with
      | Ok (Some f) -> out := f :: !out
      | Ok None -> continue_ := false
      | Error e -> Alcotest.failf "decode: %s" (Frame.error_to_string e)
    done
  done;
  check (Alcotest.list tframe) "admin frames round-trip" admin_frames
    (List.rev !out)

(* -- the admin plane over loopback --------------------------------------- *)

let find_reply what f replies =
  match List.find_map f replies with
  | Some r -> r
  | None -> Alcotest.failf "no %s reply" what

let test_admin_session () =
  with_server (mk_cfg ()) (fun server ->
      let c = Loopback.connect server in
      Loopback.send_frame ~chaos:false c Frame.Health_req;
      Loopback.send_frame ~chaos:false c Frame.Stats_req;
      Loopback.send_frame ~chaos:false c Frame.Metrics_req;
      let rs = Loopback.replies c in
      let healthy, detail =
        find_reply "HEALTH"
          (function
            | Frame.Health_reply { healthy; detail } -> Some (healthy, detail)
            | _ -> None)
          rs
      in
      check Alcotest.bool "fresh server is healthy" true healthy;
      check Alcotest.bool "detail names the policy" true
        (contains detail "policy=");
      let stats =
        find_reply "STATS"
          (function Frame.Stats_reply s -> Some s | _ -> None)
          rs
      in
      let j = parse_exn "stats" stats in
      (match Json_min.member "server" j with
      | Some (Json_min.Obj _) -> ()
      | _ -> Alcotest.fail "stats: no server object");
      (match Json_min.member "sessions" j with
      | Some (Json_min.Arr sessions) ->
          (* the probe's own connection is in the table, as an admin
             session that never opened a stream *)
          check Alcotest.bool "probe session listed as admin" true
            (List.exists
               (fun s ->
                 match Json_min.member "phase" s with
                 | Some (Json_min.Str p) -> p = "admin"
                 | _ -> false)
               sessions)
      | _ -> Alcotest.fail "stats: no sessions array");
      let scrape =
        find_reply "METRICS"
          (function Frame.Metrics_reply m -> Some m | _ -> None)
          rs
      in
      (match Telemetry.check_prometheus scrape with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "scrape violates the grammar: %s" e);
      List.iter
        (fun family ->
          check Alcotest.bool (family ^ " exported") true
            (contains scrape family))
        [
          "sfr_serve_sessions_opened";
          "sfr_serve_admin_requests";
          "sfr_serve_sessions_active";
          "sfr_serve_budget_bytes";
          "sfr_serve_budget_headroom_bytes";
          "sfr_serve_latency_frame_ack_ns";
          "sfr_serve_latency_hello_verdict_ms";
        ];
      (* the probe leaves no outcome and frees its slot *)
      Loopback.disconnect c;
      check Alcotest.int "no outcome latched" 0
        (List.length (Server.outcomes server));
      check Alcotest.int "no session left" 0 (Server.active_sessions server);
      (* ...and the data plane still serves *)
      let image = synth_image ~seed:7 ~ops:200 in
      let c2 = Loopback.connect server in
      Loopback.run_log ~chaos:false c2 image;
      check Alcotest.int "stream after probe settles" 1
        (List.length (Server.outcomes server)))

let test_admin_mid_stream () =
  let image = workload_image "mm" in
  with_server (mk_cfg ()) (fun server ->
      let c = Loopback.connect server in
      Loopback.hello ~chaos:false c;
      ignore (Loopback.pump ~chaos:false c image ~pos:0 ~len:1024);
      Loopback.send_frame ~chaos:false c Frame.Stats_req;
      let stats =
        find_reply "STATS"
          (function Frame.Stats_reply s -> Some s | _ -> None)
          (Loopback.replies c)
      in
      let j = parse_exn "stats" stats in
      (match Json_min.member "sessions" j with
      | Some (Json_min.Arr sessions) ->
          check Alcotest.bool "streaming phase visible" true
            (List.exists
               (fun s ->
                 match Json_min.member "phase" s with
                 | Some (Json_min.Str p) -> p = "streaming"
                 | _ -> false)
               sessions)
      | _ -> Alcotest.fail "stats: no sessions array");
      (* the stream is unharmed by the probe *)
      let sent = ref 1024 in
      while !sent < Bytes.length image do
        sent :=
          !sent
          + Loopback.pump ~chaos:false c image ~pos:!sent
              ~len:(Bytes.length image - !sent)
      done;
      Loopback.close ~chaos:false c;
      let o =
        match
          List.find_opt
            (fun (o : Session.outcome) -> o.Session.session = sid_of c)
            (Server.outcomes server)
        with
        | Some o -> o
        | None -> Alcotest.fail "no outcome"
      in
      check Alcotest.bool "clean verdict despite mid-stream probe" true
        (o.Session.code = Frame.Ok_clean || o.Session.code = Frame.Ok_races);
      (* a client must not speak the server's side of the admin plane *)
      let c2 = Loopback.connect server in
      Loopback.send_frame ~chaos:false c2
        (Frame.Health_reply { healthy = true; detail = "liar" });
      match Loopback.last_terminal c2 with
      | Some (Frame.Reject { code = Frame.Err_protocol; _ }) -> ()
      | r ->
          Alcotest.failf "expected ERR_PROTOCOL reject, got %s"
            (match r with
            | Some f -> Format.asprintf "%a" Frame.pp f
            | None -> "nothing"))

(* -- audit: record round-trip and sink mechanics ------------------------- *)

let sample_records =
  [
    Audit.Session_open { session = 0 };
    Audit.Hello { session = 0; version = 1 };
    Audit.Credit { session = 0; grant = 65536 };
    Audit.Park { queued = 2048; budget = 1024 };
    Audit.Thaw { queued = 256; budget = 1024 };
    Audit.Shed { session = 3; evicted = 4096 };
    Audit.Block { session = 4 };
    Audit.Deadline { session = 5; age_ms = 1500 };
    Audit.Idle { session = 6; quiet_ms = 900 };
    Audit.Disconnect { session = 7; bytes_analyzed = 130 };
    Audit.Verdict
      {
        session = 8;
        code = "OK_RACES";
        races = 2;
        events = 345;
        bytes_analyzed = 999;
      };
  ]

let test_audit_roundtrip () =
  List.iteri
    (fun i r ->
      let line = Audit.to_json ~seq:i ~t_ms:(float_of_int i *. 0.5) r in
      let j = parse_exn "record" line in
      check Alcotest.int (Printf.sprintf "record %d seq" i) i
        (int_of_float (num_exn "record" j "seq"));
      match Json_min.member "event" j with
      | Some (Json_min.Str ev) ->
          check Alcotest.string "event name" (Audit.event_name r) ev
      | _ -> Alcotest.fail "record without event")
    sample_records;
  (* a full synthetic stream through the sink lints clean *)
  let path = Filename.temp_file "sfr_audit" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Audit.close_sink ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Audit.open_sink ~tail_capacity:4 ~path ();
      check Alcotest.bool "armed" true (Audit.armed ());
      List.iter Audit.emit sample_records;
      check Alcotest.int "record_count" (List.length sample_records)
        (Audit.record_count ());
      (* the ring keeps only the most recent [tail_capacity] *)
      let tl = Audit.tail () in
      check Alcotest.int "tail bounded" 4 (List.length tl);
      (match List.rev tl with
      | (_, Audit.Verdict { session = 8; _ }) :: _ -> ()
      | _ -> Alcotest.fail "tail does not end with the newest record");
      check Alcotest.bool "tail text mentions the verdict" true
        (contains (Audit.tail_to_text ()) "verdict");
      Audit.close_sink ();
      check Alcotest.bool "disarmed" false (Audit.armed ());
      Audit.emit (Audit.Block { session = 99 });
      match Audit.lint_jsonl (read_file path) with
      | Ok n ->
          check Alcotest.int "lint counts every emitted record"
            (List.length sample_records) n
      | Error e -> Alcotest.failf "lint rejected the sink's own output: %s" e)

let test_audit_lint_rejections () =
  let header = "{\"audit_schema\":1,\"unix_time\":0.0}" in
  let cases =
    [
      ("empty", "", "empty");
      ("no header", "not json\n", "header");
      ( "wrong schema",
        "{\"audit_schema\":99}\n",
        "audit_schema" );
      ( "unknown event",
        header ^ "\n{\"seq\":0,\"t_ms\":0.1,\"event\":\"reboot\"}\n",
        "unknown event" );
      ( "seq regression",
        header
        ^ "\n{\"seq\":0,\"t_ms\":0.1,\"event\":\"session_open\",\"session\":1}\n\
           {\"seq\":0,\"t_ms\":0.2,\"event\":\"block\",\"session\":1}\n",
        "not increasing" );
      ( "missing required field",
        header ^ "\n{\"seq\":0,\"t_ms\":0.1,\"event\":\"shed\",\"session\":2}\n",
        "missing" );
      ( "missing t_ms",
        header ^ "\n{\"seq\":0,\"event\":\"block\",\"session\":2}\n",
        "t_ms" );
    ]
  in
  List.iter
    (fun (name, text, needle) ->
      match Audit.lint_jsonl text with
      | Ok n -> Alcotest.failf "%s: lint accepted it (%d records)" name n
      | Error e ->
          check Alcotest.bool
            (Printf.sprintf "%s diagnostic mentions %S" name needle)
            true (contains e needle))
    cases

(* -- audit over a concurrent soak ---------------------------------------- *)

let count_events lines ev =
  List.length
    (List.filter
       (fun j ->
         match Json_min.member "event" j with
         | Some (Json_min.Str e) -> e = ev
         | _ -> false)
       lines)

let test_audit_soak () =
  let image = workload_image "mm" in
  check Alcotest.bool "fixture big enough to shed" true
    (Bytes.length image > 2048);
  let path = Filename.temp_file "sfr_audit_soak" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Audit.close_sink ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Audit.open_sink ~path ();
      (* phase 1: a 4-domain pool, four healthy streams and one torn *)
      with_server (mk_cfg ~pool:4 ()) (fun server ->
          let healthy = List.init 4 (fun _ -> Loopback.connect server) in
          let torn_c = Loopback.connect server in
          let doms =
            List.map
              (fun c ->
                Domain.spawn (fun () ->
                    Loopback.run_log ~chaos:false ~frame:1024 c image))
              healthy
          in
          Loopback.hello ~chaos:false torn_c;
          ignore
            (Loopback.pump ~chaos:false torn_c image ~pos:0
               ~len:(Bytes.length image / 2));
          Loopback.disconnect torn_c;
          List.iter Domain.join doms;
          Server.quiesce server;
          check Alcotest.int "five outcomes" 5 (await_outcomes server 5));
      (* phase 2: an inline server with a tiny budget sheds one intake *)
      with_server
        (mk_cfg ~budget:1024 ())
        (fun server ->
          let c = Loopback.connect server in
          Loopback.hello ~chaos:false c;
          ignore
            (Loopback.pump ~chaos:false ~frame:2048 c image ~pos:0 ~len:2048);
          match Loopback.last_terminal c with
          | Some (Frame.Verdict { code = Frame.Err_overload; _ }) -> ()
          | r ->
              Alcotest.failf "expected ERR_OVERLOAD, got %s"
                (match r with
                | Some f -> Format.asprintf "%a" Frame.pp f
                | None -> "nothing"));
      let records = Audit.record_count () in
      Audit.close_sink ();
      let text = read_file path in
      (match Audit.lint_jsonl text with
      | Ok n -> check Alcotest.int "lint count = emit count" records n
      | Error e -> Alcotest.failf "soak audit log fails lint: %s" e);
      let lines =
        match
          List.filter (fun l -> String.trim l <> "")
            (String.split_on_char '\n' text)
        with
        | _ :: rest -> List.map (parse_exn "line") rest
        | [] -> Alcotest.fail "empty audit file"
      in
      check Alcotest.int "six sessions opened" 6
        (count_events lines "session_open");
      check Alcotest.int "six hellos" 6 (count_events lines "hello");
      (* 4 healthy + 1 torn + 1 shed, each with exactly one verdict *)
      check Alcotest.int "six verdicts" 6 (count_events lines "verdict");
      check Alcotest.int "one shed" 1 (count_events lines "shed");
      check Alcotest.int "one disconnect" 1
        (count_events lines "disconnect");
      check Alcotest.bool "credit was granted" true
        (count_events lines "credit" > 0);
      (* the shed record prices what was evicted *)
      List.iter
        (fun j ->
          match Json_min.member "event" j with
          | Some (Json_min.Str "shed") ->
              check Alcotest.bool "shed evicted > 0" true
                (num_exn "shed" j "evicted" > 0.0)
          | _ -> ())
        lines)

(* -- trace spans --------------------------------------------------------- *)

let test_span_nesting () =
  let image = synth_image ~seed:11 ~ops:400 in
  Fun.protect
    ~finally:(fun () ->
      Trace_event.stop ();
      Trace_event.clear ())
    (fun () ->
      Trace_event.start ();
      with_server (mk_cfg ()) (fun server ->
          let c1 = Loopback.connect server in
          let c2 = Loopback.connect server in
          Loopback.run_log ~chaos:false ~frame:512 c1 image;
          Loopback.run_log ~chaos:false ~frame:512 c2 image;
          check Alcotest.int "both sessions settled" 2
            (List.length (Server.outcomes server)));
      Trace_event.stop ();
      let evs = Trace_event.events () in
      let completes =
        List.filter
          (fun (e : Trace_event.event) -> e.Trace_event.ph = Trace_event.Complete)
          evs
      in
      let serve_spans =
        List.filter
          (fun (e : Trace_event.event) ->
            String.length e.Trace_event.name >= 6
            && String.sub e.Trace_event.name 0 6 = "serve.")
          completes
      in
      check Alcotest.bool "serve spans were recorded" true (serve_spans <> []);
      (* every serve span carries its session correlation arg *)
      List.iter
        (fun (e : Trace_event.event) ->
          check Alcotest.bool
            (Printf.sprintf "%s has a session arg" e.Trace_event.name)
            true
            (List.mem_assoc "session" e.Trace_event.args))
        serve_spans;
      (* per-track well-formedness: on any one tid, two spans either
         nest or are disjoint — never partially overlap *)
      let overlap (a : Trace_event.event) (b : Trace_event.event) =
        let a0 = a.Trace_event.ts and a1 = a.Trace_event.ts +. a.Trace_event.dur in
        let b0 = b.Trace_event.ts and b1 = b.Trace_event.ts +. b.Trace_event.dur in
        a.Trace_event.tid = b.Trace_event.tid
        && a0 < b0 && b0 < a1 && a1 < b1
      in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if overlap a b then
                Alcotest.failf "spans %s and %s partially overlap"
                  a.Trace_event.name b.Trace_event.name)
            completes)
        completes;
      (* each session's lifecycle span lives on its own track and
         brackets that session's ingest work *)
      let lifecycles =
        List.filter
          (fun (e : Trace_event.event) -> e.Trace_event.name = "serve.session")
          completes
      in
      check Alcotest.int "one lifecycle span per session" 2
        (List.length lifecycles);
      List.iter
        (fun (l : Trace_event.event) ->
          let sid = List.assoc "session" l.Trace_event.args in
          check Alcotest.int "lifecycle on the session's own track"
            (1000 + int_of_float sid) l.Trace_event.tid;
          let ingests =
            List.filter
              (fun (e : Trace_event.event) ->
                e.Trace_event.name = "serve.session.ingest"
                && List.assoc_opt "session" e.Trace_event.args = Some sid)
              completes
          in
          check Alcotest.bool "session has ingest spans" true (ingests <> []);
          List.iter
            (fun (i : Trace_event.event) ->
              check Alcotest.bool "ingest inside the lifecycle" true
                (l.Trace_event.ts <= i.Trace_event.ts
                && i.Trace_event.ts +. i.Trace_event.dur
                   <= l.Trace_event.ts +. l.Trace_event.dur))
            ingests)
        lifecycles)

(* -- prometheus under load ----------------------------------------------- *)

let test_prometheus_under_load () =
  let image = workload_image "mm" in
  with_server (mk_cfg ()) (fun server ->
      let c = Loopback.connect server in
      Loopback.run_log ~chaos:false c image;
      (* scraped from a live server: grammar-clean, with the serve
         gauge and latency families present *)
      let scrape = Server.prometheus server in
      (match Telemetry.check_prometheus scrape with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "live scrape violates the grammar: %s" e);
      List.iter
        (fun family ->
          check Alcotest.bool (family ^ " exported") true
            (contains scrape family))
        [
          "sfr_serve_sessions_opened";
          "sfr_serve_sessions_active";
          "sfr_serve_budget_bytes";
          "sfr_serve_queued_bytes_now";
          "sfr_serve_parked";
          "sfr_serve_latency_frame_ack_ns_count";
          "sfr_serve_latency_hello_verdict_ms_count";
        ];
      let healthy, _ = Server.health server in
      check Alcotest.bool "served-out server is healthy" true healthy;
      let j = parse_exn "stats" (Server.stats_json server) in
      check Alcotest.bool "finished count in stats" true
        (num_exn "stats"
           (match Json_min.member "server" j with
           | Some s -> s
           | None -> Alcotest.fail "no server object")
           "finished_sessions"
        >= 1.0))

let () =
  Alcotest.run "serve_obs"
    [
      ( "admin",
        [
          Alcotest.test_case "codec round-trip" `Quick test_admin_codec;
          Alcotest.test_case "admin-only session" `Quick test_admin_session;
          Alcotest.test_case "mid-stream probe" `Quick test_admin_mid_stream;
        ] );
      ( "audit",
        [
          Alcotest.test_case "record round-trip + sink" `Quick
            test_audit_roundtrip;
          Alcotest.test_case "lint rejections" `Quick
            test_audit_lint_rejections;
          Alcotest.test_case "concurrent soak" `Quick test_audit_soak;
        ] );
      ( "trace",
        [ Alcotest.test_case "span nesting" `Quick test_span_nesting ] );
      ( "prometheus",
        [
          Alcotest.test_case "live scrape under load" `Quick
            test_prometheus_under_load;
        ] );
    ]
