module Om = Sfr_om.Om
module Metrics = Sfr_obs.Metrics

(* Per-structure accounting: how many OM insertions each pseudo-SP-dag
   event costs (spawn = 4-5, sync = 1, step = 2). *)
let m_spawns = Metrics.counter "reach.sporder.spawns"
let m_syncs = Metrics.counter "reach.sporder.syncs"
let m_steps = Metrics.counter "reach.sporder.steps"

type t = { eng : Om.t; heb : Om.t }

type pos = { e : Om.item; h : Om.item }

type block = { j : Om.item }

let create () =
  let eng, ebase = Om.create () in
  let heb, hbase = Om.create () in
  ({ eng; heb }, { e = ebase; h = hbase })

let spawn t ~cur ~block =
  Metrics.incr m_spawns;
  (* English: u < c < t.  Hebrew: u < t < c (< j). *)
  let ce = Om.insert_after t.eng cur.e in
  let te = Om.insert_after t.eng ce in
  let th = Om.insert_after t.heb cur.h in
  let ch = Om.insert_after t.heb th in
  let block =
    match block with
    | Some b -> b
    | None -> { j = Om.insert_after t.heb ch }
  in
  ({ e = ce; h = ch }, { e = te; h = th }, block)

let sync t ~cur ~block =
  match block with
  | None -> cur
  | Some b ->
      Metrics.incr m_syncs;
      { e = Om.insert_after t.eng cur.e; h = b.j }

let step t ~cur =
  Metrics.incr m_steps;
  { e = Om.insert_after t.eng cur.e; h = Om.insert_after t.heb cur.h }

let precedes t u v =
  Om.precedes t.eng u.e v.e && Om.precedes t.heb u.h v.h

let parallel t u v = (not (precedes t u v)) && not (precedes t v u)

let size t = Om.size t.eng
let words t = Om.words t.eng + Om.words t.heb

let eng_precedes t u v = Om.precedes t.eng u.e v.e
let heb_precedes t u v = Om.precedes t.heb u.h v.h
