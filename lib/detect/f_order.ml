module Events = Sfr_runtime.Events
module Sp_order = Sfr_reach.Sp_order
module Exit_map = Sfr_reach.Exit_map
module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof

(* F-Order has no cp/gp split: a query is either within one future or a
   scan of the accessor future's recorded NSP exits. *)
let m_q_same = Metrics.counter "reach.query.same_future"
let m_q_nsp = Metrics.counter "reach.query.nsp"
let m_q_nsp_exits = Metrics.counter "reach.query.nsp_exits_scanned"
let t_q_same = Prof.timer "prof.reach.query.same_future.ns"
let t_q_nsp = Prof.timer "prof.reach.query.nsp.ns"

type strand = {
  pos : Sp_order.pos;
  block : Sp_order.block option;
  fid : int;
  nsp : Sp_order.pos Exit_map.table;
      (* future id -> exit positions of that future reaching this strand *)
}

type Events.state += Fo of strand

let as_fo = function
  | Fo s -> s
  | _ -> Detect_error.foreign_state ~detector:"F_order" ~context:"state unwrap"

let make ?(history = `Mutex) ?om () =
  let spo, root_pos = Sp_order.create ?backend:om () in
  let eng : Sp_order.pos Exit_map.eng = Exit_map.create () in
  let next_fid = Atomic.make 1 in
  let races = Race.create () in
  let queries = Atomic.make 0 in
  let precedes (u : strand) (v : strand) =
    Atomic.incr queries;
    let t0 = Prof.start () in
    if u == v then begin
      Metrics.incr m_q_same;
      Prof.stop t_q_same t0;
      true
    end
    else if u.fid = v.fid then begin
      Metrics.incr m_q_same;
      let r = Sp_order.precedes spo u.pos v.pos in
      Prof.stop t_q_same t0;
      r
    end
    else begin
      Metrics.incr m_q_nsp;
      (* scan F's recorded exit points: u ≺ v iff u ⪯ some exit w of its
         future from which v is reachable *)
      let exits = Exit_map.exits v.nsp ~fid:u.fid in
      Metrics.add m_q_nsp_exits (List.length exits);
      let r =
        List.exists (fun w -> w == u.pos || Sp_order.precedes spo u.pos w) exits
      in
      Prof.stop t_q_nsp t0;
      r
    end
  in
  let history = Access_history.create ~sync:history Access_history.Keep_all in
  let metrics = Detector.metrics_since_creation () in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let cur = as_fo cur in
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          let child =
            { pos = c_pos; block = None; fid = cur.fid; nsp = Exit_map.share cur.nsp }
          in
          let cont = { pos = t_pos; block = Some blk; fid = cur.fid; nsp = cur.nsp } in
          (Fo child, Fo cont));
      on_create =
        (fun cur ->
          let cur = as_fo cur in
          let fid = Atomic.fetch_and_add next_fid 1 in
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          (* the create node is an NSP exit of the parent future that
             reaches everything in the new future *)
          let child_nsp =
            Exit_map.with_exit eng (Exit_map.share cur.nsp) ~fid:cur.fid cur.pos
          in
          let child = { pos = c_pos; block = None; fid; nsp = child_nsp } in
          let cont = { pos = t_pos; block = Some blk; fid = cur.fid; nsp = cur.nsp } in
          (Fo child, Fo cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts:_ ->
          let cur = as_fo cur in
          let pos = Sp_order.sync spo ~cur:cur.pos ~block:cur.block in
          let nsp =
            Exit_map.merge eng cur.nsp (List.map (fun s -> (as_fo s).nsp) spawned_lasts)
          in
          Fo { pos; block = None; fid = cur.fid; nsp });
      on_put = (fun _ -> ());
      on_get =
        (fun ~cur ~put ->
          let cur = as_fo cur and put = as_fo put in
          let pos = Sp_order.step spo ~cur:cur.pos in
          (* the gotten future's put node is an exit reaching this strand *)
          let nsp =
            Exit_map.with_exit eng
              (Exit_map.merge eng cur.nsp [ put.nsp ])
              ~fid:put.fid put.pos
          in
          Fo { pos; block = cur.block; fid = cur.fid; nsp });
      on_returned = (fun ~cont:_ ~child_last:_ -> ());
      on_read =
        (fun state loc ->
          let v = as_fo state in
          Access_history.on_read history ~loc ~accessor:v ~check_writer:(fun w ->
              if not (precedes w v) then
                Race.report races ~loc ~kind:Race.Write_read ~prev_future:w.fid
                  ~cur_future:v.fid));
      on_write =
        (fun state loc ->
          let v = as_fo state in
          Access_history.on_write history ~loc ~accessor:v
            ~check:(fun ~prev ~prev_is_writer ->
              if not (precedes prev v) then
                Race.report races ~loc
                  ~kind:(if prev_is_writer then Race.Write_write else Race.Read_write)
                  ~prev_future:prev.fid ~cur_future:v.fid));
      on_work = (fun _ _ -> ());
    }
  in
  {
    Detector.name = "f-order";
    callbacks;
    root = Fo { pos = root_pos; block = None; fid = 0; nsp = Exit_map.empty eng };
    races;
    queries = (fun () -> Atomic.get queries);
    reach_words = (fun () -> Sp_order.words spo + Exit_map.live_words eng);
    reach_table_words = (fun () -> Exit_map.total_words eng);
    history_words = (fun () -> Access_history.words history);
    max_readers = (fun () -> Access_history.max_readers_at_once history);
    metrics;
    supports_parallel = true;
  }
