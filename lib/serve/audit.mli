(** Structured audit log for the ingest daemon: one typed record per
    session-lifecycle edge, streamed as JSONL so a production incident
    can be reconstructed from the log alone.

    The writer follows the {!Sfr_obs.Telemetry} discipline: a schema
    header line
    [{"audit_schema":1,"unix_time":…}], one JSON object per record
    ([{"seq":…,"t_ms":…,"event":…,"session":…,…}]) flushed as written,
    and a {!Sfr_obs.Flight} crash hook that flushes the OS-buffered
    tail — a dying daemon loses no completed record. A bounded
    in-memory ring keeps the most recent records so crash dumps and
    the admin plane can show recent history without re-reading the
    file.

    The sink is process-global (the daemon is one process, one
    server). Disarmed — no sink open — {!emit} costs one atomic flag
    load, the same discipline as {!Sfr_obs.Prof} / {!Sfr_obs.Flight}.
    Armed, each record takes a mutex, formats one line and flushes;
    emission sites are session-lifecycle edges, never the per-access
    hot path. *)

val schema_version : int

val default_tail_capacity : int

(** One session-lifecycle edge. [t_ms]/[seq] stamping happens at
    {!emit}; records carry only the edge's own payload. *)
type record =
  | Session_open of { session : int }  (** transport connected *)
  | Hello of { session : int; version : int }  (** stream opened *)
  | Credit of { session : int; grant : int }  (** credit granted *)
  | Park of { queued : int; budget : int }  (** server froze credit *)
  | Thaw of { queued : int; budget : int }  (** server resumed grants *)
  | Shed of { session : int; evicted : int }
      (** shed under the byte budget, with the queued bytes evicted *)
  | Block of { session : int }  (** HELLO refused while over budget *)
  | Deadline of { session : int; age_ms : int }
  | Idle of { session : int; quiet_ms : int }
  | Disconnect of { session : int; bytes_analyzed : int }
      (** transport gone without CLOSE; the analyzed-prefix offset *)
  | Verdict of {
      session : int;
      code : string;  (** {!Frame.reply_code_name} *)
      races : int;
      events : int;
      bytes_analyzed : int;
    }

val event_name : record -> string
val session_of : record -> int option
val to_json : seq:int -> t_ms:float -> record -> string
(** One JSONL line (no trailing newline), parseable by
    {!Sfr_obs.Json_min}. *)

val pp_record : Format.formatter -> record -> unit

(** {1 Sink lifecycle} *)

val open_sink : ?tail_capacity:int -> path:string -> unit -> unit
(** Open (truncating) the JSONL stream at [path], write the header
    line, and arm {!emit}. Reopening closes the previous sink first.
    @raise Sys_error if [path] cannot be opened.
    @raise Invalid_argument if [tail_capacity < 1]. *)

val close_sink : unit -> unit
(** Disarm and close the stream. Idempotent. The tail ring remains
    readable ({!tail}, {!record_count}) until the next {!open_sink}. *)

val armed : unit -> bool
(** One atomic load; [true] between {!open_sink} and {!close_sink}. *)

val emit : record -> unit
(** Append one record (stamped with the next [seq] and monotonic
    [t_ms] since {!open_sink}). Thread-safe; a no-op (one atomic load)
    while disarmed. *)

val record_count : unit -> int
(** Records written since {!open_sink}. *)

val tail : unit -> (float * record) list
(** The most recent records (bounded by [tail_capacity]), oldest
    first, each with its [t_ms] stamp. *)

val tail_to_text : unit -> string
(** {!tail} rendered one-per-line for crash-dump stderr output. *)

(** {1 Lint} *)

val lint_jsonl : string -> (int, string) result
(** Validate a whole audit JSONL file: schema header, per-line JSON,
    known event names, strictly increasing [seq], and the per-event
    required fields (e.g. a [shed] record must carry [evicted], a
    [disconnect] its [bytes_analyzed]). Returns the record count or a
    ["line N: …"] diagnostic. *)
