(* Counters are arrays of per-domain slots of plain mutable ints. A slot
   is only ever written by domains whose ID is congruent to its index
   modulo [nslots]; domain IDs are consecutive, so under fewer than
   [nslots] domains each slot has a unique writer and merging at snapshot
   time is exact. Slots are separate heap blocks, so two domains never
   bounce the same cache line on their hot increments. Snapshot reads are
   unsynchronized (a torn *count* is impossible for an immediate int;
   a slightly stale one is acceptable for reporting). *)

let nslots = 128
let slot_mask = nslots - 1

type slot = { mutable v : int }

type kind = Sum | Max

type counter = { c_kind : kind; c_slots : slot array }

type histogram = {
  h_slots : int array array;
  h_sums : slot array;
  h_counts : slot array; (* total observations, so count h skips buckets *)
}

let nbuckets = 64

type metric = Counter of counter | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()
let on = Atomic.make true

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let slot_index () = (Domain.self () :> int) land slot_mask

(* -- slot-collision accounting ------------------------------------------ *)

(* Two concurrently live domains whose IDs are congruent mod [nslots]
   write the same slot, and their unsynchronized increments can lose
   counts. Cooperating domain pools (the parallel executor's workers, the
   telemetry sampler, sharded replay) bracket their lifetime with
   [domain_enter]/[domain_exit]; a slot whose live count exceeds 1 is a
   real collision and is counted here — once per offending enter, on the
   cold (per-domain-lifetime) path, so an atomic is fine. *)
let live_in_slot = Array.init nslots (fun _ -> Atomic.make 0)
let collisions = Atomic.make 0

let domain_enter () =
  if Atomic.fetch_and_add live_in_slot.(slot_index ()) 1 >= 1 then
    Atomic.incr collisions

let domain_exit () = Atomic.decr live_in_slot.(slot_index ())

let slot_collisions () = Atomic.get collisions

let counter ?(kind = `Sum) name =
  let kind = match kind with `Sum -> Sum | `Max -> Max in
  Mutex.lock registry_mu;
  let c =
    match Hashtbl.find_opt registry name with
    | Some (Counter c) when c.c_kind = kind -> c
    | Some _ ->
        Mutex.unlock registry_mu;
        invalid_arg
          (Printf.sprintf "Metrics.counter: %S already registered differently"
             name)
    | None ->
        let c = { c_kind = kind; c_slots = Array.init nslots (fun _ -> { v = 0 }) } in
        Hashtbl.add registry name (Counter c);
        c
  in
  Mutex.unlock registry_mu;
  c

let add c n =
  if Atomic.get on then begin
    let slot = c.c_slots.(slot_index ()) in
    match c.c_kind with
    | Sum -> slot.v <- slot.v + n
    | Max -> if n > slot.v then slot.v <- n
  end

let incr c = add c 1

let merge_counter c =
  match c.c_kind with
  | Sum -> Array.fold_left (fun acc s -> acc + s.v) 0 c.c_slots
  | Max -> Array.fold_left (fun acc s -> max acc s.v) 0 c.c_slots

let value = merge_counter

let histogram name =
  Mutex.lock registry_mu;
  let h =
    match Hashtbl.find_opt registry name with
    | Some (Histogram h) -> h
    | Some (Counter _) ->
        Mutex.unlock registry_mu;
        invalid_arg
          (Printf.sprintf "Metrics.histogram: %S already registered as a counter"
             name)
    | None ->
        let h =
          {
            h_slots = Array.init nslots (fun _ -> Array.make nbuckets 0);
            h_sums = Array.init nslots (fun _ -> { v = 0 });
            h_counts = Array.init nslots (fun _ -> { v = 0 });
          }
        in
        Hashtbl.add registry name (Histogram h);
        h
  in
  Mutex.unlock registry_mu;
  h

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* smallest i with v <= 2^i; the bound must not be doubled past
       2^61 — 2^62 wraps to min_int on 63-bit ints — and any v beyond
       2^61 fits the next bucket anyway (max_int = 2^62 - 1) *)
    let rec go i bound =
      if i >= nbuckets - 1 || bound >= v then i
      else if bound > max_int / 2 then i + 1
      else go (i + 1) (bound * 2)
    in
    go 0 1
  end

let bucket_bound i = if i >= nbuckets - 1 then max_int else 1 lsl i

let observe h v =
  if Atomic.get on then begin
    let s = slot_index () in
    let row = h.h_slots.(s) in
    let i = bucket_index v in
    row.(i) <- row.(i) + 1;
    let sum = h.h_sums.(s) in
    sum.v <- sum.v + v;
    let cnt = h.h_counts.(s) in
    cnt.v <- cnt.v + 1
  end

let merge_buckets h =
  let acc = Array.make nbuckets 0 in
  Array.iter (fun row -> Array.iteri (fun i n -> acc.(i) <- acc.(i) + n) row) h.h_slots;
  acc

let buckets h =
  let acc = merge_buckets h in
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if acc.(i) > 0 then out := (bucket_bound i, acc.(i)) :: !out
  done;
  !out

let sum h = Array.fold_left (fun acc s -> acc + s.v) 0 h.h_sums
let count h = Array.fold_left (fun acc s -> acc + s.v) 0 h.h_counts

(* -- percentile estimates ----------------------------------------------- *)

(* Bucketed data only bounds a percentile: report the inclusive upper
   bound of the bucket where the cumulative count first reaches
   ceil(q * total). *)
let percentile_of_buckets bs q =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 bs in
  if total = 0 then 0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = int_of_float (ceil (q *. float_of_int total)) in
    let rank = max 1 rank in
    let rec go cum = function
      | [] -> 0
      | [ (ub, _) ] -> ub
      | (ub, n) :: rest -> if cum + n >= rank then ub else go (cum + n) rest
    in
    go 0 bs
  end

type histogram_summary = {
  h_name : string;
  h_count : int;
  h_sum : int;
  p50 : int;
  p90 : int;
  p99 : int;
}

let summarize name h =
  let bs = buckets h in
  {
    h_name = name;
    h_count = List.fold_left (fun acc (_, n) -> acc + n) 0 bs;
    h_sum = sum h;
    p50 = percentile_of_buckets bs 0.50;
    p90 = percentile_of_buckets bs 0.90;
    p99 = percentile_of_buckets bs 0.99;
  }

let histogram_summaries () =
  Mutex.lock registry_mu;
  let out =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | Counter _ -> acc
        | Histogram h ->
            let s = summarize name h in
            if s.h_count > 0 then s :: acc else acc)
      registry []
  in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> String.compare a.h_name b.h_name) out

let pp_summaries ppf summaries =
  let width =
    List.fold_left (fun w s -> max w (String.length s.h_name)) 0 summaries
  in
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-*s count %-9d p50<=%-9d p90<=%-9d p99<=%s@." width
        s.h_name s.h_count s.p50 s.p90
        (if s.p99 = max_int then "inf" else string_of_int s.p99))
    summaries

(* -- snapshots ---------------------------------------------------------- *)

let snapshot_entries () =
  Mutex.lock registry_mu;
  let entries =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | Counter c -> (name, c.c_kind, merge_counter c) :: acc
        | Histogram h ->
            let bs = merge_buckets h in
            let total = Array.fold_left ( + ) 0 bs in
            let acc = (name ^ ".count", Sum, total) :: acc in
            let acc =
              if total > 0 then (name ^ ".sum", Sum, sum h) :: acc else acc
            in
            let acc = ref acc in
            Array.iteri
              (fun i n ->
                if n > 0 then
                  let label =
                    if i >= nbuckets - 1 then name ^ ".le_inf"
                    else Printf.sprintf "%s.le_%d" name (bucket_bound i)
                  in
                  acc := (label, Sum, n) :: !acc)
              bs;
            !acc)
      registry []
  in
  Mutex.unlock registry_mu;
  let entries =
    ("obs.metrics.slot_collisions", Sum, Atomic.get collisions) :: entries
  in
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) entries

let snapshot () = List.map (fun (n, _, v) -> (n, v)) (snapshot_entries ())

let since base =
  List.map
    (fun (name, kind, v) ->
      match kind with
      | Max -> (name, v)
      | Sum ->
          let b = match List.assoc_opt name base with Some b -> b | None -> 0 in
          (name, max 0 (v - b)))
    (snapshot_entries ())

let reset_all () =
  Mutex.lock registry_mu;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Array.iter (fun s -> s.v <- 0) c.c_slots
      | Histogram h ->
          Array.iter (fun row -> Array.fill row 0 nbuckets 0) h.h_slots;
          Array.iter (fun s -> s.v <- 0) h.h_sums;
          Array.iter (fun s -> s.v <- 0) h.h_counts)
    registry;
  Atomic.set collisions 0;
  Mutex.unlock registry_mu

(* -- typed export (Prometheus exposition and friends) ------------------- *)

type exported =
  | Exp_counter of string * int
  | Exp_gauge of string * int
  | Exp_histogram of {
      e_name : string;
      e_buckets : (int * int) list;
      e_count : int;
      e_sum : int;
    }

let exported_name = function
  | Exp_counter (n, _) | Exp_gauge (n, _) -> n
  | Exp_histogram { e_name; _ } -> e_name

let export () =
  Mutex.lock registry_mu;
  let out =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | Counter c -> (
            match c.c_kind with
            | Sum -> Exp_counter (name, merge_counter c) :: acc
            | Max -> Exp_gauge (name, merge_counter c) :: acc)
        | Histogram h ->
            let bs = buckets h in
            let count = List.fold_left (fun a (_, n) -> a + n) 0 bs in
            Exp_histogram
              { e_name = name; e_buckets = bs; e_count = count; e_sum = sum h }
            :: acc)
      registry []
  in
  Mutex.unlock registry_mu;
  let out =
    Exp_counter ("obs.metrics.slot_collisions", Atomic.get collisions) :: out
  in
  List.sort (fun a b -> String.compare (exported_name a) (exported_name b)) out

(* The per-tick sampler view: like [export] but without merging any
   histogram's nslots x nbuckets matrix — histograms contribute only
   their [.count] (via the per-slot count slots), so a tick costs one
   pass of plain-int slot folds and no per-bucket allocation. *)
let quick_export () =
  Mutex.lock registry_mu;
  let out =
    Hashtbl.fold
      (fun name m acc ->
        match m with
        | Counter c -> (
            match c.c_kind with
            | Sum -> (name, `Counter, merge_counter c) :: acc
            | Max -> (name, `Gauge, merge_counter c) :: acc)
        | Histogram h -> (name ^ ".count", `Counter, count h) :: acc)
      registry []
  in
  Mutex.unlock registry_mu;
  ("obs.metrics.slot_collisions", `Counter, Atomic.get collisions) :: out

let pp_table ppf entries =
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 entries
  in
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-*s %d@." width name v)
    entries
