(** Deterministic P-worker greedy scheduling simulation over a recorded
    dag — the substitution for the paper's 20-core testbed (DESIGN.md
    §5.1) used to produce the T_P columns of Figure 4.

    Classic list scheduling: a node becomes ready when all its
    predecessors (including get edges) have finished; any idle worker
    picks any ready node; a node occupies its worker for its recorded
    cost. Greedy schedules satisfy Brent's bounds,
    [max(T1/P, T∞) ≤ T_P ≤ T1/P + T∞], so simulated speedups carry the
    work/span structure of the actual computation. *)

val makespan : ?cost:(Sfr_dag.Dag.node -> int) -> Sfr_dag.Dag.t -> workers:int -> int
(** Completion time in cost units. [cost] defaults to
    [1 + Dag.cost_of t v] (each strand pays one unit of control overhead
    plus its recorded access/work cost). [workers >= 1]. *)

val speedup : Sfr_dag.Dag.t -> workers:int -> float
(** [makespan 1 / makespan P]. *)
