(** The user-facing task-parallel programming interface (the Cilk-F
    analogue): fork-join via [spawn]/[sync], structured futures via
    [create]/[get], plus instrumented memory.

    A "program" is any OCaml function using these primitives; it must run
    under one of the executors ({!Serial_exec} or {!Par_exec}), which
    handle the underlying effects. The executor enforces the structured-
    future discipline dynamically: a handle is gettable at most once, and
    (in serial execution) a get that would block indicates an
    unstructured program and raises.

    Memory is allocated in a single flat location space so detectors can
    key their access history by integer location; [rd]/[wr] emit
    read/write events before touching the backing array — the analogue of
    the paper's compiler instrumentation of loads and stores. *)

type !'a handle
(** A future handle. *)

exception Unstructured_use of string
(** Raised on single-touch violations, or when a serial execution would
    block (which a structured-futures program never does, paper §2). *)

val spawn : (unit -> unit) -> unit
(** The spawned subroutine may run in parallel with the continuation. *)

val sync : unit -> unit
(** Joins all subroutines spawned by the current function frame. Does not
    wait for created futures. *)

val create : (unit -> 'a) -> 'a handle
(** Start a future task; it may run in parallel with the continuation. *)

val get : 'a handle -> 'a
(** Wait for and return the future's value. At most once per handle. *)

val work : int -> unit
(** Account abstract compute ticks to the current strand (cost model for
    the scheduling simulator); no detector queries. *)

(* -- instrumented memory ---------------------------------------------- *)

type 'a arr

val alloc : int -> 'a -> 'a arr
(** [alloc n init] — an instrumented array of [n] cells. Cells occupy
    fresh location IDs in a global location space. Allocation itself is
    not an instrumented access. *)

val length : 'a arr -> int
val base : 'a arr -> int
(** Location ID of element 0; element [i] is location [base + i]. *)

val rd : 'a arr -> int -> 'a
(** Instrumented read (also accounts one work tick). *)

val wr : 'a arr -> int -> 'a -> unit
(** Instrumented write (also accounts one work tick). *)

val rd_raw : 'a arr -> int -> 'a
(** Uninstrumented read — for output checking outside the monitored
    region, not for use inside programs under detection. *)

val wr_raw : 'a arr -> int -> 'a -> unit

(* -- executor-internal ------------------------------------------------- *)

(** Effects performed by the primitives; handled by executors only. *)
type _ Effect.t +=
  | Spawn : (unit -> unit) -> unit Effect.t
  | Sync : unit Effect.t
  | Create : (unit -> 'a) -> 'a handle Effect.t
  | Get : 'a handle -> 'a Effect.t
  | Read : int -> unit Effect.t
  | Write : int -> unit Effect.t
  | Work : int -> unit Effect.t

module Handle : sig
  (** Internal representation manipulated by executors. *)

  type status = Running | Done

  val make : unit -> 'a handle
  val fulfil : 'a handle -> 'a -> last:Events.state -> unit
  (** Publish the result and the put-node state; flips status to [Done].
      Runs the registered waiter callbacks (if any) after publishing. *)

  val status : 'a handle -> status
  val result_exn : 'a handle -> 'a
  val last_exn : 'a handle -> Events.state
  val claim_touch : 'a handle -> unit
  (** Enforce single-touch. @raise Unstructured_use on a second claim. *)

  val add_waiter : 'a handle -> (unit -> unit) -> bool
  (** Register a callback to run once fulfilled. Returns [false] (without
      registering) if the handle is already fulfilled — the caller should
      proceed directly. Thread-safe. *)
end
