(** Growable bitsets over dense small-integer universes.

    [gp(v)] and [cp(G)] in SF-Order are sets of future IDs. Future IDs are
    dense small integers, so the paper represents these sets as arrays of
    64-bit words with one bit per future (Section 4, "Implementation
    Overview"). This module is that representation: a growable array of
    OCaml native ints (63 usable bits per word). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty set. [capacity] is a hint in elements, not words. *)

val singleton : int -> t

val mem : t -> int -> bool
(** [mem s i] is whether [i] is in [s]. O(1); out-of-range is [false]. *)

val add : t -> int -> unit
(** [add s i] inserts [i], growing the word array as needed. *)

val remove : t -> int -> unit

val cardinal : t -> int
(** Population count. O(words). *)

val is_empty : t -> bool

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets [dst := dst ∪ src]. *)

val copy : t -> t

val subset : t -> t -> bool
(** [subset a b] is whether [a ⊆ b]. *)

val equal : t -> t -> bool

val each_side_has_private_bit : t -> t -> bool
(** [each_side_has_private_bit a b] is true iff [a] has a bit not in [b]
    AND [b] has a bit not in [a] — the condition under which SF-Order's
    [gp] maintenance must allocate a fresh merged table rather than alias
    one of its parents' tables (Section 3.4). *)

val popcount_word : int -> int
(** Constant-time SWAR population count of one machine word's bit
    pattern (sign bit included) — the kernel behind {!cardinal} and the
    lowest-set-bit {!iter}; exposed for property testing against a
    bit-probing reference. *)

(** [iter f s] applies [f] to every member in ascending order, by
    O(cardinal) lowest-set-bit extraction rather than per-bit probing. *)
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
(** Ascending order. *)

val words : t -> int
(** Number of machine words backing the set, for memory accounting. *)

val pp : Format.formatter -> t -> unit
