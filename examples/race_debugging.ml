(* Race debugging tour: plant one determinacy race in each paper
   benchmark (a dropped get, a skipped sync) and show how each detector
   reports it — and that all of them agree with the exhaustive
   ground-truth analysis.

     dune exec examples/race_debugging.exe                                 *)

module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Detector = Sfr_detect.Detector
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order
module F_order = Sfr_detect.F_order
module Multibags = Sfr_detect.Multibags
module Naive_detector = Sfr_detect.Naive_detector
module Serial_exec = Sfr_runtime.Serial_exec
module Trace = Sfr_runtime.Trace

let racy_locs det = List.length (Detector.racy_locations det)

let () =
  print_endline "injected-race detection across the paper's benchmarks:";
  List.iter
    (fun (w : Workload.t) ->
      (* ground truth first *)
      let inst = w.Workload.instantiate ~inject_race:true Workload.Tiny in
      let trace, cb, root = Trace.make ~log_accesses:true () in
      let (), _ = Serial_exec.run cb ~root inst.Workload.program in
      let oracle =
        Naive_detector.analyze (Trace.dag trace) (Trace.accesses trace)
      in
      let truth = List.length oracle.Naive_detector.racy_locations in
      Printf.printf "%-8s oracle: %3d racy location(s);" w.Workload.name truth;
      List.iter
        (fun (name, make) ->
          let det : Detector.t = make () in
          let inst = w.Workload.instantiate ~inject_race:true Workload.Tiny in
          let (), _ =
            Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
              inst.Workload.program
          in
          Printf.printf " %s: %d%s" name (racy_locs det)
            (if racy_locs det = truth then "" else "(!)"))
        [
          ("sf-order", fun () -> Sf_order.make ());
          ("f-order", fun () -> F_order.make ());
          ("multibags", fun () -> Multibags.make ());
        ];
      print_newline ();
      (* show one sample report with its kind *)
      let det = Sf_order.make () in
      let inst = w.Workload.instantiate ~inject_race:true Workload.Tiny in
      let (), _ =
        Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
          inst.Workload.program
      in
      match Race.reports det.Detector.races with
      | r :: _ ->
          Printf.printf "         e.g. loc %d: %s, future %d vs future %d\n"
            r.Race.loc
            (Format.asprintf "%a" Race.pp_kind r.Race.kind)
            r.Race.prev_future r.Race.cur_future
      | [] -> ())
    Registry.all
