module Program = Sfr_runtime.Program
module Prng = Sfr_support.Prng

type params = { n : int; b : int }

let params_of = function
  | Workload.Tiny -> { n = 64; b = 8 }
  | Workload.Small -> { n = 512; b = 32 }
  | Workload.Default -> { n = 20_000; b = 256 }
  | Workload.Large -> { n = 100_000; b = 1024 }
  | Workload.Paper -> { n = 10_000_000; b = 8192 }

(* insertion sort for base cases, on the instrumented array *)
let insertion_sort arr lo n =
  for i = lo + 1 to lo + n - 1 do
    let x = Program.rd arr i in
    let j = ref (i - 1) in
    let continue_ = ref true in
    while !continue_ && !j >= lo do
      let y = Program.rd arr !j in
      if y > x then begin
        Program.wr arr (!j + 1) y;
        decr j
      end
      else continue_ := false
    done;
    Program.wr arr (!j + 1) x
  done

(* binary search for the first index in [lo, hi) with arr.(i) >= key *)
let lower_bound arr lo hi key =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Program.rd arr mid < key then lo := mid + 1 else hi := mid
  done;
  !lo

let serial_merge src (l1, n1) (l2, n2) dst d =
  let i = ref l1 and j = ref l2 and o = ref d in
  while !i < l1 + n1 || !j < l2 + n2 do
    let take_left =
      !i < l1 + n1
      && (!j >= l2 + n2 || Program.rd src !i <= Program.rd src !j)
    in
    if take_left then begin
      Program.wr dst !o (Program.rd src !i);
      incr i
    end
    else begin
      Program.wr dst !o (Program.rd src !j);
      incr j
    end;
    incr o
  done

(* fork-join divide-and-conquer merge (median of the larger run, binary
   search in the other) *)
let rec par_merge ~grain src (l1, n1) (l2, n2) dst d =
  if n1 + n2 <= grain then serial_merge src (l1, n1) (l2, n2) dst d
  else if n1 < n2 then par_merge ~grain src (l2, n2) (l1, n1) dst d
  else begin
    let m1 = l1 + (n1 / 2) in
    let pivot = Program.rd src m1 in
    let m2 = lower_bound src l2 (l2 + n2) pivot in
    let left_out = (m1 - l1) + (m2 - l2) in
    Program.spawn (fun () ->
        par_merge ~grain src (l1, m1 - l1) (l2, m2 - l2) dst d);
    par_merge ~grain src (l1 + (m1 - l1), n1 - (m1 - l1)) (m2, l2 + n2 - m2) dst
      (d + left_out);
    Program.sync ()
  end

let rec par_copy ~grain src lo dst dlo n =
  if n <= grain then
    for i = 0 to n - 1 do
      Program.wr dst (dlo + i) (Program.rd src (lo + i))
    done
  else begin
    let h = n / 2 in
    Program.spawn (fun () -> par_copy ~grain src lo dst dlo h);
    par_copy ~grain src (lo + h) dst (dlo + h) (n - h);
    Program.sync ()
  end

let instantiate ?(inject_race = false) scale =
  let { n; b } = params_of scale in
  let arr = Program.alloc n 0 in
  let tmp = Program.alloc n 0 in
  let rng = Prng.create 0x5057 in
  let reference = Array.init n (fun _ -> Prng.int rng 1_000_000) in
  Array.iteri (fun i v -> Program.wr_raw arr i v) reference;
  let program () =
    let rec sort ~top lo len =
      if len <= b then insertion_sort arr lo len
      else begin
        let h = len / 2 in
        let h1 = Program.create (fun () -> sort ~top:false lo h) in
        let h2 = Program.create (fun () -> sort ~top:false (lo + h) (len - h)) in
        if not (inject_race && top) then begin
          Program.get h1;
          Program.get h2
        end;
        par_merge ~grain:b arr (lo, h) (lo + h, len - h) tmp lo;
        par_copy ~grain:b tmp lo arr lo len
      end
    in
    sort ~top:true 0 n
  in
  let verify () =
    let expected = Array.copy reference in
    Array.sort compare expected;
    let ok = ref true in
    for i = 0 to n - 1 do
      if Program.rd_raw arr i <> expected.(i) then ok := false
    done;
    !ok
  in
  { Workload.program; verify; mem_base = Program.base arr }

let workload =
  {
    Workload.name = "sort";
    description = "parallel mergesort (future-sorted halves, fork-join merge)";
    instantiate;
    paper_figure3 = [ "1e7"; "8192"; "2.75e8"; "2.22e8"; "1.21e7"; "14463"; "60030" ];
  }
