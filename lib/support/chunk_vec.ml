(* Append-only chunked vector with lock-free reads.

   The spine is an immutable-once-published array of chunk pointers;
   chunks are fixed-size mutable arrays shared by every spine snapshot
   that covers them. [get] is two array loads off one atomic spine read.
   [push] holds the lock only to claim the next slot and (every
   [chunk_size] pushes) install a fresh chunk behind a copied spine —
   never to copy elements, so the critical section is O(1) amortized
   regardless of length.

   Publication safety: an index becomes visible to other domains only
   through some synchronizing handoff by the caller (in this codebase, a
   work-stealing deque push/steal, both mutex-protected), which
   happens-after the locked [push] that filled the slot. A reader whose
   spine snapshot predates the covering chunk therefore cannot hold a
   published index for it; the guarded slow path in [get] re-reads the
   spine under the lock anyway, so even an out-of-contract racy read
   degrades to a blocking read instead of an out-of-bounds crash. *)

let chunk_bits = 9
let chunk_size = 1 lsl chunk_bits
let chunk_mask = chunk_size - 1

type 'a t = {
  spine : 'a array array Atomic.t;
  mu : Mutex.t;
  len : int Atomic.t;
  dummy : 'a; (* fills unclaimed chunk slots; never returned for i < len *)
  on_alloc : int -> unit; (* invoked under mu with words just allocated *)
  mutable chunk_allocs : int; (* guarded by mu *)
  mutable spine_words : int; (* cumulative words copied into spines *)
}

let create ?(on_alloc = fun _ -> ()) dummy =
  {
    spine = Atomic.make [||];
    mu = Mutex.create ();
    len = Atomic.make 0;
    dummy;
    on_alloc;
    chunk_allocs = 0;
    spine_words = 0;
  }

let length t = Atomic.get t.len

let get t i =
  let s = Atomic.get t.spine in
  let c = i lsr chunk_bits in
  if c < Array.length s then Array.unsafe_get (Array.unsafe_get s c) (i land chunk_mask)
  else begin
    (* slow path: stale spine (see header) — synchronize and retry *)
    Mutex.lock t.mu;
    let s = Atomic.get t.spine in
    Mutex.unlock t.mu;
    s.(c).(i land chunk_mask)
  end

let push t x =
  Mutex.lock t.mu;
  let i = Atomic.get t.len in
  let c = i lsr chunk_bits in
  let s = Atomic.get t.spine in
  (if c < Array.length s then s.(c).(i land chunk_mask) <- x
   else begin
     let chunk = Array.make chunk_size t.dummy in
     chunk.(0) <- x;
     let s' = Array.append s [| chunk |] in
     t.chunk_allocs <- t.chunk_allocs + 1;
     t.spine_words <- t.spine_words + Array.length s';
     t.on_alloc (chunk_size + Array.length s');
     Atomic.set t.spine s'
   end);
  Atomic.set t.len (i + 1);
  Mutex.unlock t.mu;
  i

let chunk_allocs t =
  Mutex.lock t.mu;
  let n = t.chunk_allocs in
  Mutex.unlock t.mu;
  n

let alloc_words t =
  Mutex.lock t.mu;
  let w = (t.chunk_allocs * chunk_size) + t.spine_words in
  Mutex.unlock t.mu;
  w

let debug_chunks t = Atomic.get t.spine
