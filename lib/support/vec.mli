(** Growable arrays (amortized O(1) push), used for dense per-node tables
    throughout the dag and detector modules. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots; it is never observable through the API. *)

val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val words : 'a t -> int
(** Slots in the backing array (memory accounting; elements not counted). *)
