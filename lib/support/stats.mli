(** Small numeric summaries for benchmark reporting. *)

val mean : float list -> float
val stddev : float list -> float
val median : float list -> float

val mad : float list -> float
(** Median absolute deviation from the median — the robust spread used by
    the bench schema. Unscaled (no consistency factor); [0.0] for fewer
    than two samples. *)

val min_max : float list -> float * float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed wall-clock
    seconds ([Unix.gettimeofday]). *)

val repeat_timed : int -> (unit -> 'a) -> 'a * float list
(** [repeat_timed n f] runs [f] n times, returning the last result and all
    elapsed times. The paper averages five runs per data point. *)
