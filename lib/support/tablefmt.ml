type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  columns : (string * align) list;
  mutable rows : row list; (* reverse order *)
}

let create ?title columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tablefmt.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let headers = List.map fst t.columns in
  (* a trailing separator would duplicate the closing rule *)
  let rows =
    match t.rows with Separator :: rest -> List.rev rest | rows -> List.rev rows
  in
  let widths =
    List.mapi
      (fun i (h, _) ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      t.columns
  in
  let buf = Buffer.create 1024 in
  let line ch =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells cells =
    List.iteri
      (fun i cell ->
        let _, align = List.nth t.columns i in
        Buffer.add_string buf ("| " ^ pad align (List.nth widths i) cell ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  line '-';
  emit_cells headers;
  line '=';
  List.iter (function Separator -> line '-' | Cells cells -> emit_cells cells) rows;
  line '-';
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_times x = Printf.sprintf "(%.2fx)" x
let cell_speedup x = Printf.sprintf "[%.2fx]" x

let cell_int_compact n =
  let f = float_of_int n in
  if n < 100_000 then string_of_int n
  else
    let exp = int_of_float (Float.round (log10 f)) in
    let exp = if 10.0 ** float_of_int exp > f then exp - 1 else exp in
    Printf.sprintf "%.2fe%d" (f /. (10.0 ** float_of_int exp)) exp
