(** Domain-safe metrics registry: named counters and log-scale histograms.

    The instrumentation budget is set by the paper's own accounting
    question — where does detection time go (reachability query cases, OM
    relabels, access-history locking)? — so the primitives are built to be
    compiled into hot paths:

    - a counter is an array of per-domain slots of plain mutable ints; an
      increment touches only the caller's slot (no contended atomics), and
      slots are summed (or maxed) at snapshot time;
    - a histogram is a per-domain row of fixed power-of-two buckets.

    Slots are indexed by [Domain.self () land 127]: exact as long as no
    two concurrently live domains share an ID modulo 128 (domain IDs are
    assigned consecutively, so the first 128 domains of a process are
    always exact; a collision can only lose increments, never crash).
    Collisions are no longer silent: domain pools that record metrics
    bracket each domain's lifetime with {!domain_enter}/{!domain_exit},
    and a slot entered while another live domain holds it bumps the
    [obs.metrics.slot_collisions] counter (reported by {!snapshot} and
    {!export}). Only cooperating domains are tracked — a collision with
    a domain that never called {!domain_enter} (e.g. the main domain)
    goes uncounted, so the counter is a lower bound on the slots whose
    increments may have been lost.

    Counters are process-global and registered by name (repeated
    registration returns the same counter). Per-run attribution is done
    with {!snapshot} / {!since}: capture a snapshot before the run and
    diff after, as {!Sfr_detect.Detector}[.metrics] does.

    {!disable} is the escape hatch for timing runs: every [incr]/[add]/
    [observe] degrades to one atomic flag load and a branch. *)

type counter

val counter : ?kind:[ `Sum | `Max ] -> string -> counter
(** Register (or look up) the counter named [name]. [`Sum] (default)
    merges slots by addition; [`Max] merges by maximum and [add] records
    a high-water mark instead of accumulating.
    @raise Invalid_argument if [name] is already registered with a
    different kind, or as a histogram. *)

val incr : counter -> unit
(** [incr c] is [add c 1]. *)

val add : counter -> int -> unit
(** Add [n] to (or, for [`Max] counters, fold [n] into the maximum of)
    the calling domain's slot. No-op while disabled. *)

val value : counter -> int
(** Merged value across all domain slots. *)

type histogram

val histogram : string -> histogram
(** Register (or look up) a histogram. Bucket [i] counts observations [v]
    with [2{^i-1} < v <= 2{^i}] (bucket 0 also absorbs [v <= 1]); the
    last bucket absorbs everything larger.
    @raise Invalid_argument on a name clash with a counter. *)

val observe : histogram -> int -> unit

val buckets : histogram -> (int * int) list
(** [(inclusive upper bound, merged count)] per bucket, ascending, with
    empty buckets elided; the unbounded overflow bucket reports
    [max_int]. *)

val sum : histogram -> int
(** Merged sum of every observed value (so exporters can emit an exact
    Prometheus [_sum] next to the bucket counts). *)

val count : histogram -> int
(** Merged observation count, folded from per-slot totals — O(slots),
    without touching the per-bucket matrix. *)

val bucket_index : int -> int
(** The bucket an observation falls into — exposed so tests can pin the
    boundary behaviour. *)

val percentile_of_buckets : (int * int) list -> float -> int
(** [percentile_of_buckets buckets q] estimates the [q]-quantile
    ([0. <= q <= 1.]) of bucketed data as the inclusive upper bound of
    the bucket in which the cumulative count first reaches
    [ceil (q * total)] — an upper bound on the true quantile, tight to
    one power-of-two bucket. [0] when the histogram is empty. *)

type histogram_summary = {
  h_name : string;
  h_count : int;
  h_sum : int;
  p50 : int;  (** {!percentile_of_buckets} at 0.50 *)
  p90 : int;
  p99 : int;
}

val histogram_summaries : unit -> histogram_summary list
(** One summary per registered histogram with at least one observation,
    sorted by name. Reads the process-global registry (absolute values,
    not per-run deltas). *)

val pp_summaries : Format.formatter -> histogram_summary list -> unit
(** Aligned [count / p50 / p90 / p99] table, one histogram per line
    (percentile bounds print as [p50<=N]; an overflow-bucket p99 prints
    as [inf]). *)

val snapshot : unit -> (string * int) list
(** Every registered metric, merged, sorted by name. Histograms appear as
    [name.le<bound>] entries for each non-empty bucket plus [name.count]
    and (when non-empty) [name.sum] totals. Also carries the synthetic
    [obs.metrics.slot_collisions] entry. *)

val since : (string * int) list -> (string * int) list
(** [since base] is the current snapshot with [base] subtracted
    entrywise (clamped at 0). [`Max] counters are not subtracted — their
    current high-water value is reported as is. *)

val reset_all : unit -> unit
(** Zero every slot of every registered metric (names stay registered).
    A test-only escape hatch: the registry is process-global, so
    Alcotest cases that assert on absolute counter values must reset
    between cases or leak counts into each other. Not for production
    paths — it is not atomic with respect to concurrent increments
    (a racing [add] on another domain can survive or vanish). *)

val disable : unit -> unit
(** Turn every recording primitive into a near-free no-op (snapshots
    still work and report whatever was recorded before). *)

val enable : unit -> unit

val enabled : unit -> bool

val pp_table : Format.formatter -> (string * int) list -> unit
(** Render a snapshot as an aligned two-column table, one metric per
    line. *)

(** {1 Typed export}

    The flattened {!snapshot} loses each metric's type; exposition
    formats that distinguish counters from gauges from histograms
    (Prometheus, the telemetry sampler) use {!export} instead. *)

type exported =
  | Exp_counter of string * int  (** [`Sum] counters: monotone totals *)
  | Exp_gauge of string * int  (** [`Max] counters: current level *)
  | Exp_histogram of {
      e_name : string;
      e_buckets : (int * int) list;  (** as {!buckets}: non-cumulative *)
      e_count : int;
      e_sum : int;
    }

val export : unit -> exported list
(** Every registered metric with its type, merged and sorted by name;
    includes the synthetic [obs.metrics.slot_collisions] counter. *)

val quick_export : unit -> (string * [ `Counter | `Gauge ] * int) list
(** The telemetry sampler's per-tick view: [`Sum] counters and histogram
    [.count]s as [`Counter], [`Max] counters as [`Gauge]. Unlike
    {!export} it never merges a histogram's per-bucket matrix and does
    not sort, so a tick costs one fold of plain-int slots per metric.
    Unordered. *)

(** {1 Domain lifetime tracking} *)

val domain_enter : unit -> unit
(** Announce that the calling domain will record metrics. If another
    live (entered, not yet exited) domain shares this domain's slot
    (IDs congruent mod 128), the [obs.metrics.slot_collisions] counter
    is bumped — the increments of the colliding pair may be lost to
    unsynchronized read-modify-writes. Cold path: call once per domain
    lifetime, not per increment. *)

val domain_exit : unit -> unit
(** Release the calling domain's slot claim. Must pair with
    {!domain_enter} on the same domain. *)

val slot_collisions : unit -> int
(** Collisions observed so far (also in {!snapshot} / {!export};
    zeroed by {!reset_all}). *)
