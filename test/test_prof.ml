(* Tests for the perf-telemetry layer: Prof latency histograms wired into
   the reachability query, GC attribution deltas, the flight recorder's
   crash dump, and the Bench_schema/perfdiff regression gate. *)

module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof
module Flight = Sfr_obs.Flight
module Json_min = Sfr_obs.Json_min
module Bs = Sfr_harness.Bench_schema
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Events = Sfr_runtime.Events
module Program = Sfr_runtime.Program
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Synthetic = Sfr_workloads.Synthetic

let check = Alcotest.check

(* -- Prof histograms --------------------------------------------------- *)

let run_sf_order () =
  let t = Synthetic.generate ~seed:11 ~ops:400 ~depth:6 ~locs:24 () in
  let inst = Synthetic.instantiate t in
  let det = Sf_order.make () in
  let (), _ =
    Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
      inst.Synthetic.program
  in
  det

let test_query_histograms_partition_queries () =
  Metrics.reset_all ();
  Metrics.enable ();
  Prof.enable ();
  let det = run_sf_order () in
  Prof.disable ();
  let m = det.Detector.metrics () in
  let get name = Option.value ~default:0 (List.assoc_opt name m) in
  let total = det.Detector.queries () in
  check Alcotest.bool "ran some queries" true (total > 0);
  (* every Algorithm-1 query records into exactly one per-case timer, so
     the histogram populations partition the query count like the plain
     case counters do *)
  check Alcotest.int "per-case latency observations partition the queries"
    total
    (get "prof.reach.query.same_future.ns.count"
    + get "prof.reach.query.cp.ns.count"
    + get "prof.reach.query.gp.ns.count");
  check Alcotest.bool "history writes were timed" true
    (get "prof.history.write.ns.count" > 0)

let test_disabled_prof_records_nothing () =
  Metrics.reset_all ();
  Metrics.enable ();
  Prof.disable ();
  let det = run_sf_order () in
  let m = det.Detector.metrics () in
  let prof_obs =
    List.fold_left
      (fun acc (name, v) ->
        if
          String.length name > 5
          && String.sub name 0 5 = "prof."
          && Filename.check_suffix name ".count"
        then acc + v
        else acc)
      0 m
  in
  check Alcotest.int "no latency observations while disabled" 0 prof_obs;
  check Alcotest.bool "queries still ran" true (det.Detector.queries () > 0)

let test_start_is_sentinel_when_disabled () =
  Prof.disable ();
  check Alcotest.int "disabled start returns 0" 0 (Prof.start ());
  Prof.enable ();
  check Alcotest.bool "enabled start returns a real timestamp" true
    (Prof.start () > 0);
  Prof.disable ()

(* -- GC attribution ---------------------------------------------------- *)

let test_gc_delta_plausibility () =
  let base = Prof.gc_snapshot () in
  (* force minor allocation the optimizer cannot remove *)
  let acc = ref [] in
  for i = 1 to 10_000 do
    acc := (i, string_of_int i) :: !acc
  done;
  let d = Prof.gc_delta base in
  check Alcotest.bool "kept the allocations live" true (List.length !acc > 0);
  List.iter
    (fun (name, v) ->
      check Alcotest.bool (name ^ " is non-negative") true (v >= 0))
    d;
  let get name = Option.value ~default:0 (List.assoc_opt name d) in
  check Alcotest.bool "allocation shows up in gc.minor_words" true
    (get "gc.minor_words" > 0)

let test_detector_metrics_include_gc () =
  Metrics.reset_all ();
  Metrics.enable ();
  let det = run_sf_order () in
  let m = det.Detector.metrics () in
  check Alcotest.bool "detector run allocated" true
    (Option.value ~default:0 (List.assoc_opt "gc.minor_words" m) > 0)

(* -- flight recorder --------------------------------------------------- *)

let test_flight_ring_bounded_and_ordered () =
  Flight.clear ();
  Flight.arm ();
  for i = 1 to (3 * Flight.capacity) + 7 do
    Flight.note ~arg:i "test.flood"
  done;
  let es = Flight.entries () in
  check Alcotest.bool "ring retains at most its capacity" true
    (List.length es <= Flight.capacity);
  check Alcotest.bool "ring is full after a flood" true
    (List.length es = Flight.capacity);
  let rec sorted = function
    | (a : Flight.entry) :: (b :: _ as rest) ->
        a.Flight.ts_ns <= b.Flight.ts_ns && sorted rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "entries are oldest-first" true (sorted es);
  (* the retained window is the most recent writes *)
  (match List.rev es with
  | last :: _ ->
      check Alcotest.int "newest surviving arg" ((3 * Flight.capacity) + 7)
        last.Flight.arg
  | [] -> Alcotest.fail "no entries");
  Flight.clear ()

let test_flight_disarmed_records_nothing () =
  Flight.clear ();
  Flight.disarm ();
  Flight.note "test.invisible";
  check Alcotest.int "nothing recorded while disarmed" 0
    (List.length (Flight.entries ()));
  Flight.arm ()

let test_flight_crash_dump_on_raising_parallel_run () =
  let path = Filename.temp_file "sfr_flight" ".json" in
  Sys.remove path;
  Flight.clear ();
  Flight.arm ();
  Flight.reset_crash_guard ();
  Flight.set_crash_path (Some path);
  let boom = Failure "injected task failure" in
  let program () =
    let h =
      Program.create (fun () ->
          Program.work 1;
          raise boom)
    in
    Program.get h
  in
  (match
     Par_exec.run ~workers:2 Events.null ~root:Events.Unit_state program
   with
  | _ -> Alcotest.fail "expected the task exception to surface at the join"
  | exception Failure _ -> ());
  Flight.set_crash_path None;
  Flight.reset_crash_guard ();
  check Alcotest.bool "crash dump file written" true (Sys.file_exists path);
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  match Json_min.parse s with
  | Error e -> Alcotest.failf "crash dump is not valid JSON: %s" e
  | Ok doc -> (
      match Json_min.member "traceEvents" doc with
      | Some (Json_min.Arr events) ->
          check Alcotest.bool "dump holds the pre-crash window" true
            (List.length events > 0)
      | _ -> Alcotest.fail "crash dump has no traceEvents array")

let test_flight_crash_dump_once () =
  let path = Filename.temp_file "sfr_flight_once" ".json" in
  Flight.clear ();
  Flight.reset_crash_guard ();
  Flight.set_crash_path (Some path);
  Flight.note "test.first";
  Flight.crash_dump ~reason:"test first";
  let size1 = (Unix.stat path).Unix.st_size in
  Flight.note "test.second";
  Flight.crash_dump ~reason:"test second (must be ignored)";
  let size2 = (Unix.stat path).Unix.st_size in
  Flight.set_crash_path None;
  Flight.reset_crash_guard ();
  Sys.remove path;
  check Alcotest.int "second crash_dump did not rewrite the file" size1 size2

(* -- Bench_schema round-trip ------------------------------------------- *)

let entry ?(mad = Some 0.0001) ?(workload = "w") ?(detector = "d") median =
  {
    Bs.workload;
    detector;
    repeats = 3;
    warmup = 1;
    median;
    mad;
    mean = median;
    stddev = Some 0.00005;
    samples = [ median; median +. 0.0001; median -. 0.0001 ];
    queries = 42;
    reach_words = 100;
    history_words = 200;
    max_readers = 3;
    racy_locations = 0;
    metrics = [ ("reach.query.gp", 7); ("gc.minor_words", 1234) ];
  }

let file ?(version = Bs.version) entries =
  {
    Bs.version;
    env =
      {
        Bs.git_sha = "deadbeef";
        ocaml_version = Sys.ocaml_version;
        word_size = Sys.word_size;
        domains = 4;
        scale = "tiny";
      };
    entries;
  }

let test_schema_round_trip () =
  (* hostile names: quote, backslash, control char, non-ASCII byte *)
  let nasty = "w\"x\\y\x01z\xc3\xa9" in
  let t = file [ entry 0.5; entry ~workload:nasty ~detector:"d\"2" 0.25 ] in
  match Bs.of_json (Bs.to_json t) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok t' ->
      check Alcotest.int "version" Bs.version t'.Bs.version;
      check Alcotest.string "git sha" "deadbeef" t'.Bs.env.Bs.git_sha;
      check Alcotest.int "entry count" 2 (List.length t'.Bs.entries);
      let e = List.nth t'.Bs.entries 1 in
      check Alcotest.string "escaped workload survives" nasty e.Bs.workload;
      check Alcotest.string "escaped detector survives" "d\"2" e.Bs.detector;
      check (Alcotest.float 1e-12) "median survives" 0.25 e.Bs.median;
      check Alcotest.int "metrics survive" 2 (List.length e.Bs.metrics);
      check Alcotest.(option (float 1e-12)) "mad survives" (Some 0.0001)
        e.Bs.mad

let test_schema_null_spread_for_single_repeat () =
  let m =
    {
      Sfr_harness.Runner.seconds = 1.0;
      stddev = 0.0;
      median = 1.0;
      mad = 0.0;
      samples = [ 1.0 ];
      warmup = 1;
      queries = 0;
      reach_words = 0;
      reach_table_words = 0;
      history_words = 0;
      max_readers = 0;
      racy_locations = 0;
      metrics = [];
    }
  in
  let e = Bs.of_measurement ~workload:"w" ~detector:"d" ~repeats:1 m in
  check Alcotest.(option (float 0.0)) "mad omitted for repeats=1" None e.Bs.mad;
  check
    Alcotest.(option (float 0.0))
    "stddev omitted for repeats=1" None e.Bs.stddev;
  (* and the JSON spells it null, which reads back as None *)
  let t = file [ e ] in
  match Bs.of_json (Bs.to_json t) with
  | Error err -> Alcotest.failf "round trip failed: %s" err
  | Ok t' ->
      check
        Alcotest.(option (float 0.0))
        "null mad parses back as None" None
        (List.hd t'.Bs.entries).Bs.mad

(* -- perfdiff verdicts -------------------------------------------------- *)

let diff_exn old_ new_ =
  match Bs.diff ~old_ ~new_ with
  | Ok d -> d
  | Error e -> Alcotest.failf "diff failed: %s" e

let only_verdict d =
  match d.Bs.deltas with
  | [ x ] -> x.Bs.verdict
  | _ -> Alcotest.fail "expected exactly one compared config"

let verdict =
  Alcotest.testable
    (fun ppf -> function
      | Bs.Improved -> Format.pp_print_string ppf "Improved"
      | Bs.Unchanged -> Format.pp_print_string ppf "Unchanged"
      | Bs.Regressed -> Format.pp_print_string ppf "Regressed")
    ( = )

let test_perfdiff_clean () =
  let d = diff_exn (file [ entry 1.0 ]) (file [ entry 1.0 ]) in
  check verdict "identical medians" Bs.Unchanged (only_verdict d);
  check Alcotest.bool "no regression" false (Bs.has_regression d)

let test_perfdiff_regression () =
  let d = diff_exn (file [ entry 1.0 ]) (file [ entry 2.0 ]) in
  check verdict "2x slowdown" Bs.Regressed (only_verdict d);
  check Alcotest.bool "regression flagged" true (Bs.has_regression d)

let test_perfdiff_improvement () =
  let d = diff_exn (file [ entry 1.0 ]) (file [ entry 0.5 ]) in
  check verdict "2x speedup" Bs.Improved (only_verdict d);
  check Alcotest.bool "improvement is not a regression" false
    (Bs.has_regression d)

let test_perfdiff_noise_tolerance () =
  (* +5% is inside the 10% floor *)
  let d = diff_exn (file [ entry 1.0 ]) (file [ entry 1.05 ]) in
  check verdict "5% is noise" Bs.Unchanged (only_verdict d);
  (* +15% clears the floor with a tiny MAD... *)
  let d = diff_exn (file [ entry 1.0 ]) (file [ entry 1.15 ]) in
  check verdict "15% with tight MAD" Bs.Regressed (only_verdict d);
  (* ...but not when either run was noisy: 3 x MAD(0.1) = 0.3 gate *)
  let d =
    diff_exn (file [ entry ~mad:(Some 0.1) 1.0 ]) (file [ entry 1.15 ])
  in
  check verdict "15% inside 3 MADs" Bs.Unchanged (only_verdict d);
  (* single-repeat files (mad = None) fall back to the 10% floor *)
  let d = diff_exn (file [ entry ~mad:None 1.0 ]) (file [ entry ~mad:None 1.2 ]) in
  check verdict "20% with unknown spread" Bs.Regressed (only_verdict d)

let test_perfdiff_added_removed () =
  let d =
    diff_exn
      (file [ entry 1.0; entry ~workload:"gone" 1.0 ])
      (file [ entry 1.0; entry ~workload:"fresh" 1.0 ])
  in
  check Alcotest.int "one compared" 1 (List.length d.Bs.deltas);
  check
    Alcotest.(list (pair string string))
    "added" [ ("fresh", "d") ] d.Bs.added;
  check
    Alcotest.(list (pair string string))
    "removed"
    [ ("gone", "d") ]
    d.Bs.removed

let test_perfdiff_schema_mismatch () =
  (match Bs.diff ~old_:(file ~version:1 [ entry 1.0 ]) ~new_:(file [ entry 1.0 ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "v1 vs v2 must not compare");
  match Bs.of_json {|{"schema_version":1,"env":{},"entries":[]}|} with
  | Error msg ->
      check Alcotest.bool "error names the version" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "v1 file must be rejected"

let () =
  Alcotest.run "prof"
    [
      ( "prof",
        [
          Alcotest.test_case "query histograms partition queries" `Quick
            test_query_histograms_partition_queries;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_prof_records_nothing;
          Alcotest.test_case "disabled start is the 0 sentinel" `Quick
            test_start_is_sentinel_when_disabled;
        ] );
      ( "gc",
        [
          Alcotest.test_case "delta plausibility" `Quick
            test_gc_delta_plausibility;
          Alcotest.test_case "detector metrics include gc" `Quick
            test_detector_metrics_include_gc;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring bounded and ordered" `Quick
            test_flight_ring_bounded_and_ordered;
          Alcotest.test_case "disarmed records nothing" `Quick
            test_flight_disarmed_records_nothing;
          Alcotest.test_case "crash dump on raising parallel run" `Quick
            test_flight_crash_dump_on_raising_parallel_run;
          Alcotest.test_case "crash dump fires once" `Quick
            test_flight_crash_dump_once;
        ] );
      ( "schema",
        [
          Alcotest.test_case "round trip with hostile names" `Quick
            test_schema_round_trip;
          Alcotest.test_case "single repeat has null spread" `Quick
            test_schema_null_spread_for_single_repeat;
        ] );
      ( "perfdiff",
        [
          Alcotest.test_case "clean" `Quick test_perfdiff_clean;
          Alcotest.test_case "regression" `Quick test_perfdiff_regression;
          Alcotest.test_case "improvement" `Quick test_perfdiff_improvement;
          Alcotest.test_case "noise tolerance" `Quick
            test_perfdiff_noise_tolerance;
          Alcotest.test_case "added and removed configs" `Quick
            test_perfdiff_added_removed;
          Alcotest.test_case "schema mismatch rejected" `Quick
            test_perfdiff_schema_mismatch;
        ] );
    ]
