type 'v eng = {
  allocs : int Atomic.t;
  live : int Atomic.t;
  peak : int Atomic.t;
  total : int Atomic.t;
  mutable empty_table : 'v table option;
}

and 'v table = {
  tbl : (int, 'v list) Hashtbl.t;
  rc : int Atomic.t;
  owner : 'v eng;
}

let table_words t =
  let s = Hashtbl.stats t.tbl in
  let list_words =
    Hashtbl.fold (fun _ vs acc -> acc + (3 * List.length vs)) t.tbl 0
  in
  s.Hashtbl.num_buckets + (3 * s.Hashtbl.num_bindings) + list_words + 6

let bump_peak eng =
  let live = Atomic.get eng.live in
  let rec loop () =
    let p = Atomic.get eng.peak in
    if live > p && not (Atomic.compare_and_set eng.peak p live) then loop ()
  in
  loop ()

let alloc eng tbl =
  let t = { tbl; rc = Atomic.make 1; owner = eng } in
  Atomic.incr eng.allocs;
  let w = table_words t in
  ignore (Atomic.fetch_and_add eng.live w);
  ignore (Atomic.fetch_and_add eng.total w);
  bump_peak eng;
  t

let create () =
  let eng =
    {
      allocs = Atomic.make 0;
      live = Atomic.make 0;
      peak = Atomic.make 0;
      total = Atomic.make 0;
      empty_table = None;
    }
  in
  eng.empty_table <- Some (alloc eng (Hashtbl.create 4));
  eng

let share t =
  Atomic.incr t.rc;
  t

let empty eng =
  match eng.empty_table with Some t -> share t | None -> assert false

let release t =
  let prev = Atomic.fetch_and_add t.rc (-1) in
  if prev = 1 then ignore (Atomic.fetch_and_add t.owner.live (-table_words t))

let copy_tbl t = Hashtbl.copy t

let has_exit tbl fid v =
  match Hashtbl.find_opt tbl fid with
  | None -> false
  | Some vs -> List.memq v vs

let add_exit tbl fid v =
  if not (has_exit tbl fid v) then
    Hashtbl.replace tbl fid (v :: (Option.value ~default:[] (Hashtbl.find_opt tbl fid)))

(* published tables are immutable (see Fp_sets.with_added): copy on add *)
let with_exit eng t ~fid v =
  if has_exit t.tbl fid v then t
  else begin
    let tbl = copy_tbl t.tbl in
    add_exit tbl fid v;
    release t;
    alloc eng tbl
  end

let subset a b =
  try
    Hashtbl.iter
      (fun fid vs ->
        List.iter (fun v -> if not (has_exit b.tbl fid v) then raise Exit) vs)
      a.tbl;
    true
  with Exit -> false

let size t = Hashtbl.fold (fun _ vs acc -> acc + List.length vs) t.tbl 0

let merge eng primary others =
  let inputs = primary :: others in
  let uniq =
    List.fold_left
      (fun acc x ->
        if List.memq x acc then begin
          release x;
          acc
        end
        else x :: acc)
      [] inputs
  in
  match uniq with
  | [] -> assert false
  | [ single ] -> single
  | _ ->
      let best =
        List.fold_left
          (fun acc x -> if size x > size acc then x else acc)
          (List.hd uniq) (List.tl uniq)
      in
      if List.for_all (fun x -> x == best || subset x best) uniq then begin
        List.iter (fun x -> if x != best then release x) uniq;
        best
      end
      else begin
        let tbl = copy_tbl best.tbl in
        List.iter
          (fun x ->
            if x != best then
              Hashtbl.iter (fun fid vs -> List.iter (add_exit tbl fid) vs) x.tbl)
          uniq;
        List.iter release uniq;
        alloc eng tbl
      end

let exits t ~fid = Option.value ~default:[] (Hashtbl.find_opt t.tbl fid)
let entry_count t = size t

let allocations eng = Atomic.get eng.allocs
let live_words eng = Atomic.get eng.live
let peak_words eng = Atomic.get eng.peak
let total_words eng = Atomic.get eng.total
