(** Multicore work-stealing executor over OCaml 5 domains.

    The substrate the parallel detectors (SF-Order, F-Order) run on — the
    analogue of the paper's extended Cilk-F runtime. Scheduling is
    help-first: a spawn/create pushes the child task onto the worker's
    deque (stealable) and the parent continues; [sync] and [get] suspend
    by parking their one-shot continuation and returning the worker to the
    scheduler, to be re-enqueued when the join count reaches zero / the
    future is fulfilled. Help-first explores schedules a depth-first
    execution never produces, which is exactly what the on-the-fly
    detectors must be robust to.

    Client callbacks must be thread-safe; {!Events.null} and the detectors
    in [sfr_detect] are. One [run] at a time per process (worker identity
    lives in domain-local storage).

    On a deadlocked program (possible only with unstructured future use)
    [run] raises {!Program.Unstructured_use} instead of hanging.

    {b Failure semantics.} If any task — however deeply nested — raises,
    the first exception (with its backtrace) is captured, every worker
    stops at its next scheduling decision, the remaining queued tasks are
    drained and dropped, and the exception is re-raised at the join. A
    raising task can therefore never wedge the run or kill a lone domain.
    This includes synthetic {!Sfr_chaos.Chaos.Injected} faults: the
    executor's spawn/create/get/sync/steal/task boundaries are
    {!Sfr_chaos.Chaos.point} injection sites (free unless armed). *)

module Deque : sig
  type t

  val create : unit -> t
  val push_bottom : t -> (unit -> unit) -> unit
  val pop_bottom : t -> (unit -> unit) option
  val steal_top : t -> (unit -> unit) option

  val depth : t -> int
  (** Unlocked racy size estimate for the telemetry probe (clamped to
      [>= 0]; may be momentarily stale against a concurrent owner). *)
end
(** The per-worker deque (owner LIFO bottom, thief FIFO top). Exposed so
    the randomized model test can audit the ring-buffer grow/wraparound
    indexing; not part of the stable API. *)

(** {1 Scheduler probes}

    Telemetry-facing visibility into the running scheduler. Per-worker
    counters (tasks executed, successful steals, idle spins) are plain
    ints written only by their owning worker and {e only while}
    {!Sfr_obs.Telemetry.armed} — the disarmed cost at each scheduling
    decision is a single atomic flag load. Reads are unsynchronized:
    a probe taken mid-run can be a few events stale per worker, which is
    inherent to sampling. *)

type probe = {
  workers : int;
  deque_depths : int array;  (** racy per-worker queue depths, now *)
  tasks : int array;  (** tasks executed per worker this run (armed only) *)
  steals : int array;  (** successful steals per worker (armed only) *)
  idle_spins : int array;  (** empty scheduling decisions (armed only) *)
}

val probe : unit -> probe option
(** The live scheduler's state, or — between runs — the frozen
    end-of-run probe of the most recent run ([None] before the first
    run). Safe from any domain. *)

val last_probe : unit -> probe option
(** The probe frozen at the end of the most recent completed [run]
    (even if it failed). Per-worker totals reconcile exactly against the
    [runtime.tasks] / [runtime.steals] {!Sfr_obs.Metrics} deltas for
    that run when telemetry was armed throughout. *)

val probe_metrics : unit -> (string * int) list
(** {!probe} flattened to gauge series for
    {!Sfr_obs.Telemetry.start}'s [?probe] argument: aggregate
    [sched.workers], [sched.deque_depth], [sched.tasks],
    [sched.steals], [sched.idle_spins], then per-worker
    [sched.w<i>.…] variants. Empty if no run has started. *)

val run :
  ?workers:int ->
  Events.callbacks ->
  root:Events.state ->
  (unit -> 'a) ->
  'a * Events.state
(** [run ~workers callbacks ~root main] — defaults to
    [Domain.recommended_domain_count ()] workers. Returns [main]'s result
    and the root computation's final (put-node) state. Returns only after
    {e all} tasks, including created futures whose handles escaped, have
    completed. *)
