(** Serialization of recorded computation dags (plus optional access
    logs) to a line-based text format, for post-mortem analysis:
    record an execution once, then re-analyze, visualize, or simulate
    scheduling offline ([racedetect record] / [racedetect analyze]).

    Loading replays the builder events reconstructed from the node table
    (node IDs are assigned in event order, and each node kind determines
    its creating event), so a loaded dag is bit-for-bit equivalent to the
    original: same IDs, same edges, same future records, same fake-join
    list — property-tested by round-trip. *)

type access = { node : Dag.node; loc : int; is_write : bool }

type parse_error = {
  line : int;  (** 1-based line of the offending input; 0 if unknown *)
  column : int;  (** 1-based start column of the offending token; 0 if unknown *)
  message : string;
}
(** Structured description of why an input is not a valid sfdag.
    Covers both lexical problems (bad token, out-of-range id) and
    replay-stage rejections (event sequence describes an impossible
    dag); replay errors point at the line that declared the node. *)

exception Parse_error of parse_error

val parse_error_to_string : parse_error -> string
val pp_parse_error : Format.formatter -> parse_error -> unit

val save : out_channel -> ?accesses:access list -> Dag.t -> unit
val save_file : string -> ?accesses:access list -> Dag.t -> unit

val load_result : in_channel -> (Dag.t * access list, parse_error) result
(** Never raises on malformed input; I/O errors ([Sys_error]) still
    propagate. *)

val load_file_result : string -> (Dag.t * access list, parse_error) result

val load : in_channel -> Dag.t * access list
(** Thin wrapper over {!load_result}.
    @raise Parse_error on malformed input. *)

val load_file : string -> Dag.t * access list
(** @raise Parse_error on malformed input. *)
