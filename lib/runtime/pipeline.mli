(** Pipeline parallelism as a structured-futures skeleton.

    The paper (footnote 5) notes race detection handles pipeline
    parallelism like fork-join, and (Section 1) that structured futures
    generate a program class {e containing} pipeline parallelism. This
    combinator realizes that containment: a Cilk-P-style stage grid
    lowered onto structured futures, one future per (iteration, stage)
    cell, wired exactly like the Smith-Waterman wavefront —
    cell [(i,j)] is created by [(i,j-1)] (ordering the within-iteration
    serial stages via the create path) and gets the handle of [(i-1,j)]
    (the cross edge ordering stage [j] across iterations); column-0 cells
    chain downward. Every handle is touched at most once and every get is
    reachable from its create's continuation, so programs built with this
    skeleton stay structured (checked by {!Sfr_detect.Discipline} in the
    tests) and race detectors order the stages exactly as a pipeline
    scheduler would.

    Completion: [run] returns once the wavefront is wired; under the
    serial executor everything has then already run, and under
    {!Par_exec} all cells complete before [Par_exec.run] returns
    (quiescence). Code sequenced after [run] inside the same program must
    not consume stage outputs — fold consumption into a final stage
    instead. *)

val run : iterations:int -> stages:int -> (iter:int -> stage:int -> unit) -> unit
(** [run ~iterations ~stages body] executes [body ~iter ~stage] for every
    cell of the grid under the pipeline's dependence order: after
    [(iter, stage-1)] and [(iter-1, stage)].
    @raise Invalid_argument if either dimension is not positive. *)
