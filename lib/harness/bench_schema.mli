(** Versioned bench result schema (v2) and the perfdiff comparison.

    A result file records enough environment to make cross-run comparisons
    honest (git sha, compiler, word size, domain count, workload scale),
    and robust per-configuration statistics: the median and the median
    absolute deviation over the measured repeats, with warmup iterations
    excluded. perfdiff declares a regression only when the median worsens
    by more than [max (10% of old median) (3 × the larger MAD)] — the 10%
    floor filters jitter on fast configs, the MAD term scales the gate to
    the observed noise of either run.

    Files with a different [schema_version] are rejected with [Error]
    (the CLI maps this to exit code 2, the usage-error convention). *)

val version : int
(** The schema version this build emits and accepts: 2. *)

type env = {
  git_sha : string;  (** ["unknown"] outside a git work tree *)
  ocaml_version : string;
  word_size : int;
  domains : int;  (** [Domain.recommended_domain_count] at capture time *)
  scale : string;
}

type entry = {
  workload : string;
  detector : string;
  repeats : int;
  warmup : int;
  median : float;
  mad : float option;  (** [None] (JSON [null]) when repeats < 2 *)
  mean : float;
  stddev : float option;  (** [None] (JSON [null]) when repeats < 2 *)
  samples : float list;
  queries : int;
  reach_words : int;
  history_words : int;
  max_readers : int;
  racy_locations : int;
  metrics : (string * int) list;
}

type t = { version : int; env : env; entries : entry list }

val capture_env : scale:string -> env

val of_measurement :
  workload:string -> detector:string -> repeats:int -> Runner.measurement -> entry
(** Spread statistics are [None] when [repeats < 2] — a single sample has
    no spread, and emitting [0.0] would make perfdiff treat it as a
    perfectly noise-free baseline. *)

val to_json : t -> string
val write : string -> t -> unit

val of_json : string -> (t, string) result
val load : string -> (t, string) result

(** {1 perfdiff} *)

type verdict = Improved | Unchanged | Regressed

type delta = {
  d_workload : string;
  d_detector : string;
  old_median : float;
  new_median : float;
  change_pct : float;
  threshold : float;  (** the gate the change had to clear, in seconds *)
  verdict : verdict;
}

type diff = {
  deltas : delta list;  (** configs present in both files *)
  added : (string * string) list;  (** in new only *)
  removed : (string * string) list;  (** in old only *)
  old_env : env;
  new_env : env;
}

val noise_threshold :
  old_median:float -> old_mad:float option -> new_mad:float option -> float

val diff : old_:t -> new_:t -> (diff, string) result
(** [Error] iff either file's schema version differs from {!version}. *)

val has_regression : diff -> bool
val pp_diff : Format.formatter -> diff -> unit
