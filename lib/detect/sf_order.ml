module Events = Sfr_runtime.Events
module Sp_order = Sfr_reach.Sp_order
module Fp_sets = Sfr_reach.Fp_sets
module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof

(* Query-case breakdown of Algorithm 1 (Lemmas 3.4-3.9): the three
   counters partition every Precedes call, so they sum to [queries ()].
   The matching prof.*.ns timers attribute wall time to the same cases
   (one atomic load per query while profiling is off). *)
let m_q_same = Metrics.counter "reach.query.same_future"
let m_q_cp = Metrics.counter "reach.query.cp"
let m_q_gp = Metrics.counter "reach.query.gp"
let t_q_same = Prof.timer "prof.reach.query.same_future.ns"
let t_q_cp = Prof.timer "prof.reach.query.cp.ns"
let t_q_gp = Prof.timer "prof.reach.query.gp.ns"

(* Per-strand detector state — the paper's "node". The [gp] table is the
   strand's reference-counted future set; the [block] is its frame's
   current sync-block placeholder in the pseudo-SP-dag orders. *)
type strand = {
  pos : Sp_order.pos;
  block : Sp_order.block option;
  fid : int;
  gp : Fp_sets.table;
}

type Events.state += Sf of strand

let as_sf = function
  | Sf s -> s
  | _ -> Detect_error.foreign_state ~detector:"Sf_order" ~context:"state unwrap"

let make_with_precedes ?(readers = `All) ?(sets = `Bitmap) ?(history = `Mutex) () =
  let spo, root_pos = Sp_order.create () in
  let eng =
    Fp_sets.create (match sets with `Bitmap -> Fp_sets.Bitmap | `Hashed -> Fp_sets.Hashed)
  in
  (* cp(G) per future, indexed by future ID. Queries read a copy-on-write
     array snapshot lock-free (entries are immutable once installed);
     creates serialize on a mutex and install a grown snapshot — O(k)
     per create, inside the O(k²) construction budget of Lemma 3.12. *)
  let cp : Fp_sets.table array Atomic.t = Atomic.make [| Fp_sets.empty eng |] in
  let cp_mu = Mutex.create () in
  let races = Race.create () in
  (* Query count, striped per domain with one cache line per slot: a
     shared [Atomic.incr] here serializes every domain on one cache line
     and dominates sharded offline replay (millions of queries per
     domain). Concurrently live domain IDs are near-consecutive, so
     slots never collide mod 128 in practice and the sum stays exact. *)
  let q_stride = 8 in
  let q_slots = Array.make (128 * q_stride) 0 in
  let count_query () =
    let s = ((Domain.self () :> int) land 127) * q_stride in
    q_slots.(s) <- q_slots.(s) + 1
  in
  let query_total () = Array.fold_left ( + ) 0 q_slots in
  (* Algorithm 1: Precedes(u, v) for a previous accessor u against the
     currently executing strand v. *)
  let precedes (u : strand) (v : strand) =
    count_query ();
    let t0 = Prof.start () in
    if u == v then begin
      Metrics.incr m_q_same;
      Prof.stop t_q_same t0;
      true
    end
    else if u.fid = v.fid then begin
      Metrics.incr m_q_same;
      let r = Sp_order.precedes spo u.pos v.pos in
      Prof.stop t_q_same t0;
      r
    end
    else if Fp_sets.mem (Atomic.get cp).(v.fid) u.fid then begin
      Metrics.incr m_q_cp;
      let r = Sp_order.precedes spo u.pos v.pos in
      Prof.stop t_q_cp t0;
      r
    end
    else begin
      Metrics.incr m_q_gp;
      let r = Fp_sets.mem v.gp u.fid in
      Prof.stop t_q_gp t0;
      r
    end
  in
  let policy =
    match readers with
    | `All -> Access_history.Keep_all
    | `Two_per_future ->
        Access_history.Lr_per_future
          {
            future_of = (fun (s : strand) -> s.fid);
            more_left = (fun a b -> Sp_order.eng_precedes spo a.pos b.pos);
            more_right = (fun a b -> Sp_order.heb_precedes spo a.pos b.pos);
            covers = (fun a b -> a == b || Sp_order.precedes spo a.pos b.pos);
          }
  in
  let history = Access_history.create ~sync:history policy in
  let metrics = Detector.metrics_since_creation () in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let cur = as_sf cur in
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          let child =
            { pos = c_pos; block = None; fid = cur.fid; gp = Fp_sets.share cur.gp }
          in
          (* the continuation inherits the current strand's gp reference *)
          let cont = { pos = t_pos; block = Some blk; fid = cur.fid; gp = cur.gp } in
          (Sf child, Sf cont));
      on_create =
        (fun cur ->
          let cur = as_sf cur in
          (* cp(G) = cp(parent) ∪ {parent}: one O(k/w) copy per future,
             the O(k²) construction term of Lemma 3.12 *)
          Mutex.lock cp_mu;
          let old = Atomic.get cp in
          let fid = Array.length old in
          let parent_cp = Fp_sets.share old.(cur.fid) in
          let child_cp = Fp_sets.with_added eng parent_cp cur.fid in
          Atomic.set cp (Array.append old [| child_cp |]);
          Mutex.unlock cp_mu;
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          let child = { pos = c_pos; block = None; fid; gp = Fp_sets.share cur.gp } in
          let cont = { pos = t_pos; block = Some blk; fid = cur.fid; gp = cur.gp } in
          (Sf child, Sf cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts:_ ->
          let cur = as_sf cur in
          let pos = Sp_order.sync spo ~cur:cur.pos ~block:cur.block in
          let gp =
            Fp_sets.merge eng cur.gp (List.map (fun s -> (as_sf s).gp) spawned_lasts)
          in
          Sf { pos; block = None; fid = cur.fid; gp });
      on_put = (fun _ -> ());
      on_get =
        (fun ~cur ~put ->
          let cur = as_sf cur and put = as_sf put in
          let pos = Sp_order.step spo ~cur:cur.pos in
          (* gp(g) = gp(cur) ∪ gp(last(G)) ∪ {G} (Section 3.4) *)
          let gp =
            Fp_sets.with_added eng (Fp_sets.merge eng cur.gp [ put.gp ]) put.fid
          in
          Sf { pos; block = cur.block; fid = cur.fid; gp });
      on_returned = (fun ~cont:_ ~child_last:_ -> ());
      on_read =
        (fun state loc ->
          let v = as_sf state in
          Access_history.on_read history ~loc ~accessor:v ~check_writer:(fun w ->
              if not (precedes w v) then
                Race.report races ~loc ~kind:Race.Write_read ~prev_future:w.fid
                  ~cur_future:v.fid));
      on_write =
        (fun state loc ->
          let v = as_sf state in
          Access_history.on_write history ~loc ~accessor:v
            ~check:(fun ~prev ~prev_is_writer ->
              if not (precedes prev v) then
                Race.report races ~loc
                  ~kind:(if prev_is_writer then Race.Write_write else Race.Read_write)
                  ~prev_future:prev.fid ~cur_future:v.fid));
      on_work = (fun _ _ -> ());
    }
  in
  ( {
    Detector.name = "sf-order";
    callbacks;
    root = Sf { pos = root_pos; block = None; fid = 0; gp = Fp_sets.empty eng };
    races;
    queries = query_total;
    reach_words = (fun () -> Sp_order.words spo + Fp_sets.live_words eng);
    reach_table_words = (fun () -> Fp_sets.total_words eng);
    history_words = (fun () -> Access_history.words history);
    max_readers = (fun () -> Access_history.max_readers_at_once history);
    metrics;
    supports_parallel = true;
  },
    fun u v -> precedes (as_sf u) (as_sf v) )

let make ?readers ?sets ?history () =
  fst (make_with_precedes ?readers ?sets ?history ())

let strand_future st = (as_sf st).fid
