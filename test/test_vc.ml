(* Differential tests for the vector-clock detector backend and the
   process-wide detector registry.

   The contract: [Vc_order.make ()] is an independent oracle-grade
   detector — on serial (depth-first) executions it must agree with the
   exhaustive offline naive analysis on the racy-location set, and with
   SF-Order byte-for-byte on the full observable outcome (reports with
   future attribution, query totals, reader high-water mark), because
   both walk the same access history and allocate future IDs in the
   same order. That agreement is what lets the chaos differential and
   the shrinker replace the O(n²) naive oracle with vc-order and run at
   10×+ the DAG sizes. *)

module Workload = Sfr_workloads.Workload
module Wregistry = Sfr_workloads.Registry
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order
module Vc_order = Sfr_detect.Vc_order
module Registry = Sfr_detect.Registry
module Naive_detector = Sfr_detect.Naive_detector
module Events = Sfr_runtime.Events
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Chaos = Sfr_chaos.Chaos
module Runner = Sfr_chaos_driver.Chaos_runner
module Recorder = Sfr_eventlog.Recorder
module Reader = Sfr_eventlog.Reader
module Replay = Sfr_eventlog.Replay

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type outcome = {
  o_reports : (int * Race.kind * int * int * int) list;
  o_queries : int;
  o_max_readers : int;
}

let outcome_pp ppf o =
  Format.fprintf ppf "{queries=%d; max_readers=%d; reports=[%a]}" o.o_queries
    o.o_max_readers
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (l, k, p, c, n) ->
         Format.fprintf ppf "%d:%a:%d->%d x%d" l Race.pp_kind k p c n))
    o.o_reports

let outcome = Alcotest.testable outcome_pp ( = )

let run_full ?workers ?(base = 0) det prog =
  (match workers with
  | None ->
      Serial_exec.run det.Detector.callbacks ~root:det.Detector.root prog |> fst
  | Some w ->
      Par_exec.run ~workers:w det.Detector.callbacks ~root:det.Detector.root
        prog
      |> fst);
  {
    o_reports =
      List.map
        (fun (r : Race.report) ->
          ( r.Race.loc - base,
            r.Race.kind,
            r.Race.prev_future,
            r.Race.cur_future,
            r.Race.count ))
        (Race.reports det.Detector.races);
    o_queries = det.Detector.queries ();
    o_max_readers = det.Detector.max_readers ();
  }

let racy_set o = List.map (fun (l, _, _, _, _) -> l) o.o_reports

(* exhaustive offline ground truth for an arbitrary program thunk,
   rebased to [base] *)
let naive_racy ~base prog =
  let trace, cb, root = Trace.make ~log_accesses:true () in
  let (), _ = Serial_exec.run cb ~root prog in
  let v = Naive_detector.analyze (Trace.dag trace) (Trace.accesses trace) in
  List.sort compare (List.map (fun l -> l - base) v.Naive_detector.racy_locations)

(* ---------- registry ---------- *)

let builtin_names = [ "multibags"; "f-order"; "sf-order"; "sf-order-2pf"; "vc-order" ]

let test_registry_builtins () =
  let names = Registry.names () in
  List.iter
    (fun n ->
      check bool (Printf.sprintf "registry has %s" n) true (List.mem n names))
    builtin_names;
  (* registry lookup returns the entry under its own name *)
  List.iter
    (fun n ->
      match Registry.find n with
      | Some e -> check Alcotest.string "entry name" n e.Registry.name
      | None -> Alcotest.failf "find %s returned None" n)
    builtin_names;
  check bool "unknown name misses" true (Registry.find "no-such" = None)

let test_registry_caps () =
  let caps n =
    match Registry.find n with
    | Some e -> e.Registry.caps
    | None -> Alcotest.failf "missing entry %s" n
  in
  check bool "multibags is serial" false (caps "multibags").Registry.supports_parallel;
  check bool "multibags is oracle-grade" true (caps "multibags").Registry.oracle_grade;
  check bool "sf-order is shardable" true (caps "sf-order").Registry.shardable;
  check bool "sf-order is a figure column" true (caps "sf-order").Registry.figure;
  check bool "vc-order runs parallel" true (caps "vc-order").Registry.supports_parallel;
  check bool "vc-order is oracle-grade" true (caps "vc-order").Registry.oracle_grade;
  check bool "vc-order is not shardable" false (caps "vc-order").Registry.shardable;
  check bool "vc-order is not a figure column" false (caps "vc-order").Registry.figure

let test_registry_listing () =
  let l = Registry.listing () in
  let has needle =
    let n = String.length needle and m = String.length l in
    let rec go i = i + n <= m && (String.sub l i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun n -> check bool (Printf.sprintf "listing mentions %s" n) true (has n))
    builtin_names;
  check bool "listing shows caps" true (has "parallel");
  check bool "unknown message embeds listing" true
    (let u = Registry.unknown "zzz" in
     let rec sub i =
       i + String.length "vc-order" <= String.length u
       && (String.sub u i (String.length "vc-order") = "vc-order" || sub (i + 1))
     in
     sub 0)

let test_registry_register () =
  let entry =
    {
      Registry.name = "test-dummy";
      label = "Dummy";
      doc = "test-only duplicate-detection probe";
      make = (fun () -> Sf_order.make ());
      caps =
        {
          Registry.supports_parallel = true;
          oracle_grade = false;
          shardable = false;
          figure = false;
          scale_ceiling = None;
        };
    }
  in
  Registry.register entry;
  check bool "registered entry is found" true (Registry.find "test-dummy" <> None);
  check bool "duplicate registration rejected" true
    (match Registry.register entry with
    | () -> false
    | exception Invalid_argument _ -> true)

(* every registered detector must run every registry workload at tiny
   scale — the in-process version of `make detector-smoke`. A detector
   added to the registry but broken on a basic workload fails here, not
   silently in a skipped CI lane. *)
let test_registry_matrix_smoke () =
  List.iter
    (fun (e : Registry.entry) ->
      List.iter
        (fun (w : Workload.t) ->
          let det = e.Registry.make () in
          let inst = w.Workload.instantiate Workload.Tiny in
          let o = run_full ~base:inst.Workload.mem_base det inst.Workload.program in
          check (Alcotest.list int)
            (Printf.sprintf "%s/%s is race-free" e.Registry.name w.Workload.name)
            [] (racy_set o);
          check bool
            (Printf.sprintf "%s/%s performed queries" e.Registry.name w.Workload.name)
            true (o.o_queries > 0))
        Wregistry.all)
    (Registry.all ())

(* ---------- vc-order vs the naive oracle ---------- *)

let test_workloads_vs_naive () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun inject_race ->
          let naive =
            let inst = w.Workload.instantiate ~inject_race Workload.Tiny in
            naive_racy ~base:inst.Workload.mem_base inst.Workload.program
          in
          let vc =
            let inst = w.Workload.instantiate ~inject_race Workload.Tiny in
            racy_set
              (run_full ~base:inst.Workload.mem_base (Vc_order.make ())
                 inst.Workload.program)
          in
          check (Alcotest.list int)
            (Printf.sprintf "%s inject=%b: vc = naive" w.Workload.name inject_race)
            naive vc;
          if inject_race then
            check bool
              (Printf.sprintf "%s inject=%b: race found" w.Workload.name inject_race)
              true (vc <> []))
        [ false; true ])
    Wregistry.all

let test_synthetic_vs_naive () =
  List.iter
    (fun race_free ->
      for seed = 1 to 12 do
        let t = Synthetic.generate ~race_free ~seed ~ops:150 ~depth:5 ~locs:8 () in
        let naive =
          let inst = Synthetic.instantiate t in
          naive_racy ~base:inst.Synthetic.mem_base inst.Synthetic.program
        in
        let vc =
          let inst = Synthetic.instantiate t in
          racy_set
            (run_full ~base:inst.Synthetic.mem_base (Vc_order.make ())
               inst.Synthetic.program)
        in
        check (Alcotest.list int)
          (Printf.sprintf "seed %d race_free=%b: vc = naive" seed race_free)
          naive vc;
        if race_free then
          check (Alcotest.list int)
            (Printf.sprintf "seed %d race_free: empty" seed)
            [] vc
      done)
    [ false; true ]

(* ---------- vc-order vs SF-Order, serial, byte-identical ---------- *)

(* serial execution is deterministic, so the agreement must be exact —
   same reports (locations, kinds, attributed future IDs, witness
   counts), same query total, same reader high-water mark. Sizes are
   ~10× the 150-op differentials above: this is the scale regime the
   chaos oracle swap buys. *)
let test_vc_sf_large_scale () =
  List.iter
    (fun (history, hname) ->
      for seed = 1 to 6 do
        let t = Synthetic.generate ~seed ~ops:2000 ~depth:6 ~locs:10 () in
        let run make =
          let inst = Synthetic.instantiate t in
          run_full ~base:inst.Synthetic.mem_base (make ()) inst.Synthetic.program
        in
        check outcome
          (Printf.sprintf "seed %d %s: vc = sf byte-identical" seed hname)
          (run (fun () -> Sf_order.make ~history ()))
          (run (fun () -> Vc_order.make ~history ()))
      done)
    [ (`Mutex, "mutex"); (`Lockfree, "lockfree") ]

(* ---------- parallel and chaos-perturbed schedules ---------- *)

let test_parallel_vc () =
  for seed = 1 to 4 do
    let t = Synthetic.generate ~seed ~ops:300 ~depth:5 ~locs:8 () in
    let serial =
      let inst = Synthetic.instantiate t in
      run_full ~base:inst.Synthetic.mem_base (Vc_order.make ())
        inst.Synthetic.program
    in
    let par =
      let inst = Synthetic.instantiate t in
      run_full ~workers:4 ~base:inst.Synthetic.mem_base (Vc_order.make ())
        inst.Synthetic.program
    in
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: 4-domain vc race set = serial" seed)
      (racy_set serial) (racy_set par)
  done

let test_chaos_parallel_vc () =
  for seed = 1 to 4 do
    let t = Synthetic.generate ~seed:(200 + seed) ~ops:300 ~depth:5 ~locs:8 () in
    let serial =
      let inst = Synthetic.instantiate t in
      run_full ~base:inst.Synthetic.mem_base (Vc_order.make ())
        inst.Synthetic.program
    in
    let perturbed =
      Chaos.arm ~seed ();
      Fun.protect ~finally:Chaos.disarm (fun () ->
          let inst = Synthetic.instantiate t in
          run_full ~workers:4 ~base:inst.Synthetic.mem_base (Vc_order.make ())
            inst.Synthetic.program)
    in
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: chaos 4-domain vc race set = serial" seed)
      (racy_set serial) (racy_set perturbed)
  done

(* ---------- the chaos driver with the vc oracle ---------- *)

let vc_oracle_config =
  {
    Runner.default_config with
    Runner.seeds = 8;
    ops = Runner.default_config.Runner.ops * 10;
    depth = 5;
    workers = 4;
    oracle = Runner.Oracle_detector (fun () -> Vc_order.make ());
  }

(* the vc ground truth must agree with the naive one on sizes both can
   handle — the oracle swap changes the cost, not the verdicts *)
let test_vc_oracle_matches_naive_oracle () =
  for seed = 1 to 10 do
    let t =
      Synthetic.generate ~seed ~ops:Runner.default_config.Runner.ops
        ~depth:Runner.default_config.Runner.depth
        ~locs:Runner.default_config.Runner.locs ()
    in
    let naive = Runner.ground_truth { vc_oracle_config with Runner.oracle = Runner.Naive } t in
    let vc = Runner.ground_truth vc_oracle_config t in
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: oracle racy sets agree" seed)
      naive.Runner.racy vc.Runner.racy;
    check int (Printf.sprintf "seed %d: checksums agree" seed) naive.Runner.checksum
      vc.Runner.checksum
  done

(* sf-order under chaos at 10× the naive-oracle op budget: zero
   mismatches against the vc ground truth *)
let test_chaos_driver_vc_oracle () =
  let report = Runner.run vc_oracle_config ~make:(fun () -> Sf_order.make ()) in
  check int "all seeds ran" vc_oracle_config.Runner.seeds report.Runner.seeds_run;
  check int "no mismatches at 10x ops"
    (report.Runner.matched + report.Runner.faults_surfaced)
    report.Runner.seeds_run

(* a detector that never looks at an access: races stay empty, so any
   racy program is a guaranteed differential failure — exercising the
   mismatch path and the shrinker under the vc oracle *)
let blind_detector () =
  {
    Detector.name = "blind";
    callbacks = Events.null;
    root = Events.Unit_state;
    races = Race.create ();
    queries = (fun () -> 0);
    reach_words = (fun () -> 0);
    reach_table_words = (fun () -> 0);
    history_words = (fun () -> 0);
    max_readers = (fun () -> 0);
    metrics = Detector.no_metrics;
    supports_parallel = false;
  }

let test_shrinker_vc_oracle () =
  let cfg =
    {
      vc_oracle_config with
      Runner.seeds = 1;
      workers = 1;
      chaos = None;
      shrink = true;
      ops = 600;
    }
  in
  (* find a seed whose program actually races, so the blind detector
     must disagree with the oracle *)
  let seed =
    let rec scan s =
      if s > 50 then Alcotest.fail "no racy seed in 1..50"
      else
        let t =
          Synthetic.generate ~seed:s ~ops:cfg.Runner.ops ~depth:cfg.Runner.depth
            ~locs:cfg.Runner.locs ()
        in
        if (Runner.ground_truth cfg t).Runner.racy <> [] then s else scan (s + 1)
    in
    scan 1
  in
  match Runner.run_seed cfg ~make:blind_detector ~seed with
  | Runner.Match | Runner.Fault_surfaced ->
      Alcotest.fail "blind detector matched a racy oracle verdict"
  | Runner.Failed m -> (
      check bool "shrink ran" true (m.Runner.shrink_steps > 0);
      match m.Runner.reduced with
      | None -> Alcotest.fail "no reduced reproducer"
      | Some r ->
          let orig =
            Synthetic.generate ~seed ~ops:cfg.Runner.ops ~depth:cfg.Runner.depth
              ~locs:cfg.Runner.locs ()
          in
          check bool "reproducer no larger than original" true
            (Synthetic.size r <= Synthetic.size orig);
          (* the reduced program must still fail the differential *)
          check bool "reproducer still racy under oracle" true
            ((Runner.ground_truth cfg r).Runner.racy <> []))

(* ---------- replay ---------- *)

(* a recorded racy execution replayed under vc-order must produce the
   same reports as a live serial vc run of the same program *)
let test_replay_vc () =
  let t = Synthetic.generate ~seed:11 ~ops:400 ~depth:5 ~locs:8 () in
  let live =
    let inst = Synthetic.instantiate t in
    run_full ~base:inst.Synthetic.mem_base (Vc_order.make ())
      inst.Synthetic.program
  in
  check bool "seed 11 races (non-trivial replay)" true (racy_set live <> []);
  let path = Filename.temp_file "test_vc" ".sflog" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let rec_base =
        let inst = Synthetic.instantiate t in
        let recorder, cb, root = Recorder.create ~path () in
        let (), _ = Serial_exec.run cb ~root inst.Synthetic.program in
        ignore (Recorder.close recorder);
        inst.Synthetic.mem_base
      in
      let reader =
        match Reader.load_file path with
        | Ok r -> r
        | Error e -> Alcotest.failf "log load failed: %s" (Sfr_eventlog.Log_format.error_to_string e)
      in
      let det = Vc_order.make () in
      (match Replay.run_detector reader det with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "replay failed: %s" (Replay.error_to_string e));
      let replayed =
        List.map
          (fun (r : Race.report) ->
            ( r.Race.loc - rec_base,
              r.Race.kind,
              r.Race.prev_future,
              r.Race.cur_future,
              r.Race.count ))
          (Race.reports det.Detector.races)
      in
      check outcome "replayed vc outcome = live serial vc outcome" live
        {
          o_reports = replayed;
          o_queries = det.Detector.queries ();
          o_max_readers = det.Detector.max_readers ();
        })

let () =
  Alcotest.run "vc"
    [
      ( "registry",
        [
          Alcotest.test_case "builtins" `Quick test_registry_builtins;
          Alcotest.test_case "caps" `Quick test_registry_caps;
          Alcotest.test_case "listing" `Quick test_registry_listing;
          Alcotest.test_case "register" `Quick test_registry_register;
          Alcotest.test_case "matrix smoke" `Quick test_registry_matrix_smoke;
        ] );
      ( "vc-vs-naive",
        [
          Alcotest.test_case "workloads" `Quick test_workloads_vs_naive;
          Alcotest.test_case "synthetic" `Quick test_synthetic_vs_naive;
        ] );
      ( "vc-vs-sf",
        [ Alcotest.test_case "large-scale serial" `Quick test_vc_sf_large_scale ] );
      ( "parallel",
        [
          Alcotest.test_case "4-domain" `Quick test_parallel_vc;
          Alcotest.test_case "chaos-perturbed" `Quick test_chaos_parallel_vc;
        ] );
      ( "chaos-oracle",
        [
          Alcotest.test_case "oracle agreement" `Quick
            test_vc_oracle_matches_naive_oracle;
          Alcotest.test_case "driver at 10x ops" `Quick test_chaos_driver_vc_oracle;
          Alcotest.test_case "shrinker" `Quick test_shrinker_vc_oracle;
        ] );
      ("replay", [ Alcotest.test_case "vc replay" `Quick test_replay_vc ]);
    ]
