(** MultiBags-equivalent sequential race detector for structured futures
    (the Utterback et al. PPoPP'19 baseline; see DESIGN.md §5.3 for the
    substitution note).

    Reachability during a depth-first serial execution uses union-find
    bags (classic SP-bags) maintained over the pseudo-SP-dag — create
    treated as spawn — answering Cases 1–2 of the paper's query in
    amortized inverse-Ackermann time; Case 3 uses the same [gp] bitmaps
    as SF-Order (and the same [cp] gate to avoid the pseudo-SP-dag's
    phantom paths between non-ancestor futures).

    Inherently sequential: bag contents are only meaningful relative to
    the single current execution point, so this detector must run under
    {!Sfr_runtime.Serial_exec} ([supports_parallel = false]). No
    access-history locking is needed — the advantage Figure 4's one-core
    column shows. The access history stores all readers between writes,
    as sequential future detectors do (paper Section 1: up to [r]
    accessors per location). *)

val make : unit -> Detector.t
