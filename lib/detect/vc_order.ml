module Events = Sfr_runtime.Events
module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof

(* Query-case split: [vc.query.same_task] covers identity and same-slot
   program-order answers; [vc.query.clock] is a real clock comparison.
   The two partition every Precedes call, summing to [queries ()]. *)
let m_q_same = Metrics.counter "vc.query.same_task"
let m_q_clock = Metrics.counter "vc.query.clock"
let t_q = Prof.timer "prof.vc.query.ns"

(* Clock-array churn: words allocated into vector-clock snapshots
   (cumulative, the Figure-5-style measurement), and how task slots were
   obtained — a reused slot keeps the clock width at the live-task count
   instead of the total spawn count. *)
let m_alloc_words = Metrics.counter "vc.clock.alloc_words"
let m_slots_fresh = Metrics.counter "vc.slots.fresh"
let m_slots_reused = Metrics.counter "vc.slots.reused"

(* Per-strand detector state. [vc] is an immutable-once-published
   snapshot: every state-producing event (spawn, create, sync, get)
   builds a fresh array and bumps the owner's own component, so distinct
   strands of one task are distinguishable and Precedes answers exact
   dag reachability, not a coarsening.

   [pool] holds task slots freed by syncs in this strand's frame chain:
   (slot, last_tick) pairs. A freed slot travels only through strand
   states, so any reuse point happens-after the freeing sync by control
   flow, and the new incarnation starts ticking at last_tick + 1. Both
   facts together make reuse sound: if v's clock covers slot [s] at a
   tick of a later incarnation, then v happens-after that incarnation's
   creation, which happens-after the sync that freed [s], which
   happens-after every access of the old incarnation — so the positive
   Precedes answer is genuine, never a conflation of two tasks. Future
   slots are never freed (a get may happen arbitrarily late), so the
   clock width is O(live tasks + futures). *)
type strand = {
  tid : int;  (** this task's clock slot *)
  tick : int;  (** cached [vc.(tid)] *)
  vc : int array;
  fid : int;  (** owning future dag, for race attribution *)
  pool : (int * int) list;
}

type Events.state += Vc of strand

let as_vc = function
  | Vc s -> s
  | _ -> Detect_error.foreign_state ~detector:"Vc_order" ~context:"state unwrap"

let make ?(history = `Mutex) ?(fast = true) () =
  let next_slot = Atomic.make 1 in
  let next_fid = Atomic.make 1 in
  let alloc_words = Atomic.make 1 (* the root clock below *) in
  let races = Race.create () in
  (* striped per-domain query counter, as in Sf_order: a shared
     [Atomic.incr] would serialize every domain on one cache line *)
  let q_stride = 8 in
  let q_slots = Array.make (128 * q_stride) 0 in
  let count_query () =
    let s = ((Domain.self () :> int) land 127) * q_stride in
    q_slots.(s) <- q_slots.(s) + 1
  in
  let query_total () = Array.fold_left ( + ) 0 q_slots in
  let alloc n =
    ignore (Atomic.fetch_and_add alloc_words n);
    Metrics.add m_alloc_words n;
    Array.make n 0
  in
  (* copy [vc] into a fresh array of at least [n] components *)
  let copy_grow vc n =
    let a = alloc (max (Array.length vc) n) in
    Array.blit vc 0 a 0 (Array.length vc);
    a
  in
  (* pointwise max into a fresh array; missing components are 0 *)
  let join a b =
    let la = Array.length a and lb = Array.length b in
    let r = alloc (max la lb) in
    for i = 0 to Array.length r - 1 do
      let x = if i < la then a.(i) else 0 in
      let y = if i < lb then b.(i) else 0 in
      r.(i) <- if x >= y then x else y
    done;
    r
  in
  (* pop a freed slot (resuming past its last incarnation's ticks) or
     claim a fresh one; returns (slot, first_tick, remaining_pool) *)
  let alloc_slot pool =
    match pool with
    | (s, last) :: rest ->
        Metrics.incr m_slots_reused;
        (s, last + 1, rest)
    | [] ->
        Metrics.incr m_slots_fresh;
        (Atomic.fetch_and_add next_slot 1, 1, [])
  in
  (* Precedes(u, v): does stored accessor u happen-before the currently
     executing strand v? Exact: v's snapshot covers u's self-tick iff
     there is a dag path from u's node to v's. *)
  let precedes (u : strand) (v : strand) =
    count_query ();
    let t0 = Prof.start () in
    let r =
      if u == v then begin
        Metrics.incr m_q_same;
        true
      end
      else if u.tid = v.tid then begin
        Metrics.incr m_q_same;
        u.tick <= v.tick
      end
      else begin
        Metrics.incr m_q_clock;
        u.tid < Array.length v.vc && v.vc.(u.tid) >= u.tick
      end
    in
    Prof.stop t_q t0;
    r
  in
  let history = Access_history.create ~sync:history ~fast Access_history.Keep_all in
  let metrics = Detector.metrics_since_creation () in
  (* begin a child task: its snapshot is the parent's plus its own slot
     at its first tick; the parent's continuation self-ticks so accesses
     after the fork are not covered by the child *)
  let fork (cur : strand) ~fid =
    let s, t0, rest = alloc_slot cur.pool in
    let cvc = copy_grow cur.vc (s + 1) in
    cvc.(s) <- t0;
    let child = { tid = s; tick = t0; vc = cvc; fid; pool = [] } in
    let tvc = copy_grow cur.vc 0 in
    tvc.(cur.tid) <- cur.tick + 1;
    let cont = { cur with tick = cur.tick + 1; vc = tvc; pool = rest } in
    (child, cont)
  in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let cur = as_vc cur in
          let child, cont = fork cur ~fid:cur.fid in
          (Vc child, Vc cont));
      on_create =
        (fun cur ->
          let cur = as_vc cur in
          (* fresh future id in callback order — under a serial execution
             this matches Sf_order's cp-push numbering, so attributed
             race reports diff byte-identically against it *)
          let fid = Atomic.fetch_and_add next_fid 1 in
          let child, cont = fork cur ~fid in
          (Vc child, Vc cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts:_ ->
          (* async-finish mapping: a sync is the finish join of the
             frame's spawned children. [created_firsts] fake-join in the
             pseudo-SP-dag only — they carry no happens-before edge, so
             the clocks must NOT absorb them (a get does that later). *)
          let cur = as_vc cur in
          let lasts = List.map as_vc spawned_lasts in
          let n =
            List.fold_left
              (fun acc (c : strand) -> max acc (Array.length c.vc))
              (Array.length cur.vc) lasts
          in
          let vc = copy_grow cur.vc n in
          List.iter
            (fun (c : strand) ->
              for i = 0 to Array.length c.vc - 1 do
                if c.vc.(i) > vc.(i) then vc.(i) <- c.vc.(i)
              done)
            lasts;
          vc.(cur.tid) <- cur.tick + 1;
          (* joined children's slots (and the slots they freed) are dead
             from here on: recycle them into this strand's pool *)
          let pool =
            List.fold_left
              (fun acc (c : strand) -> (c.tid, c.tick) :: (c.pool @ acc))
              cur.pool lasts
          in
          Vc { tid = cur.tid; tick = cur.tick + 1; vc; fid = cur.fid; pool });
      on_put = (fun _ -> ());
      on_get =
        (fun ~cur ~put ->
          let cur = as_vc cur and put = as_vc put in
          let vc = join cur.vc put.vc in
          vc.(cur.tid) <- cur.tick + 1;
          Vc { cur with tick = cur.tick + 1; vc });
      on_returned = (fun ~cont:_ ~child_last:_ -> ());
      on_read =
        (fun state loc ->
          let v = as_vc state in
          Access_history.on_read history ~loc ~accessor:v ~check_writer:(fun w ->
              if not (precedes w v) then
                Race.report races ~loc ~kind:Race.Write_read ~prev_future:w.fid
                  ~cur_future:v.fid));
      on_write =
        (fun state loc ->
          let v = as_vc state in
          Access_history.on_write history ~loc ~accessor:v
            ~check:(fun ~prev ~prev_is_writer ->
              if not (precedes prev v) then
                Race.report races ~loc
                  ~kind:(if prev_is_writer then Race.Write_write else Race.Read_write)
                  ~prev_future:prev.fid ~cur_future:v.fid));
      on_work = (fun _ _ -> ());
    }
  in
  {
    Detector.name = "vc-order";
    callbacks;
    root = Vc { tid = 0; tick = 1; vc = [| 1 |]; fid = 0; pool = [] };
    races;
    queries = query_total;
    (* one word per allocated slot: the clock width every live strand's
       snapshot is bounded by (strand liveness itself is the GC's) *)
    reach_words = (fun () -> Atomic.get next_slot);
    reach_table_words = (fun () -> Atomic.get alloc_words);
    history_words = (fun () -> Access_history.words history);
    max_readers = (fun () -> Access_history.max_readers_at_once history);
    metrics;
    supports_parallel = true;
  }

let strand_task st = (as_vc st).tid
