module Workload = Sfr_workloads.Workload
module Detector = Sfr_detect.Detector
module Events = Sfr_runtime.Events
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Sim_sched = Sfr_runtime.Sim_sched
module Stats = Sfr_support.Stats
module Telemetry = Sfr_obs.Telemetry

type mode =
  | Base
  | Reach of (unit -> Detector.t)
  | Full of (unit -> Detector.t)

type measurement = {
  seconds : float;
  stddev : float;
  median : float;
  mad : float;
  samples : float list;
  warmup : int;
  queries : int;
  reach_words : int;
  reach_table_words : int;
  history_words : int;
  max_readers : int;
  racy_locations : int;
  metrics : (string * int) list;
}

let reach_only (cb : Events.callbacks) =
  {
    cb with
    Events.on_read = (fun _ _ -> ());
    on_write = (fun _ _ -> ());
    on_work = (fun _ _ -> ());
  }

(* shared sample-then-summarize driver behind time_serial/time_parallel:
   [exec cb root prog] is the execution engine being timed *)
let time_with ~who ~exec ~warmup ~repeats make_instance mode =
  if repeats < 1 then invalid_arg (who ^ ": repeats must be >= 1");
  if warmup < 0 then invalid_arg (who ^ ": warmup must be >= 0");
  let last_detector = ref None in
  let one () =
    let inst = make_instance () in
    match mode with
    | Base ->
        let (), dt =
          Stats.time (fun () ->
              exec Events.null Events.Unit_state inst.Workload.program)
        in
        dt
    | Reach make_det ->
        let det = make_det () in
        last_detector := Some det;
        let cb = reach_only det.Detector.callbacks in
        let (), dt =
          Stats.time (fun () -> exec cb det.Detector.root inst.Workload.program)
        in
        dt
    | Full make_det ->
        let det = make_det () in
        last_detector := Some det;
        let (), dt =
          Stats.time (fun () ->
              exec det.Detector.callbacks det.Detector.root inst.Workload.program)
        in
        dt
  in
  (* warmup repeats pay the code/cache/allocator cold costs so the
     measured samples reflect steady state; their times are discarded.
     The marks delimit repeat boundaries in the telemetry timeline, so a
     utilization dip can be told apart from an inter-repeat gap. *)
  for _ = 1 to warmup do
    Telemetry.mark "runner.warmup";
    ignore (one ())
  done;
  let times =
    List.init repeats (fun _ ->
        Telemetry.mark "runner.sample";
        one ())
  in
  let queries, reach_words, reach_table_words, history_words, max_readers, racy,
      metrics =
    match !last_detector with
    | None -> (0, 0, 0, 0, 0, 0, [])
    | Some det ->
        ( det.Detector.queries (),
          det.Detector.reach_words (),
          det.Detector.reach_table_words (),
          det.Detector.history_words (),
          det.Detector.max_readers (),
          List.length (Detector.racy_locations det),
          det.Detector.metrics () )
  in
  {
    seconds = Stats.mean times;
    stddev = Stats.stddev times;
    median = Stats.median times;
    mad = Stats.mad times;
    samples = times;
    warmup;
    queries;
    reach_words;
    reach_table_words;
    history_words;
    max_readers;
    racy_locations = racy;
    metrics;
  }

let time_serial ?(warmup = 1) ~repeats make_instance mode =
  time_with ~who:"Runner.time_serial"
    ~exec:(fun cb root prog -> Serial_exec.run cb ~root prog |> fst)
    ~warmup ~repeats make_instance mode

let time_parallel ?(warmup = 1) ~repeats ~domains make_instance mode =
  if domains < 1 then invalid_arg "Runner.time_parallel: domains must be >= 1";
  time_with ~who:"Runner.time_parallel"
    ~exec:(fun cb root prog -> Par_exec.run ~workers:domains cb ~root prog |> fst)
    ~warmup ~repeats make_instance mode

type recorded = {
  dag : Sfr_dag.Dag.t;
  reads : int;
  writes : int;
  trace_seconds : float;
}

let record make_instance =
  let inst = make_instance () in
  let trace, cb, root = Trace.make () in
  let (), trace_seconds = Stats.time (fun () -> Serial_exec.run cb ~root inst.Workload.program |> fst) in
  { dag = Trace.dag trace; reads = Trace.reads trace; writes = Trace.writes trace; trace_seconds }

let simulated_time recorded ~measured_t1 ~workers =
  let m1 = Sim_sched.makespan recorded.dag ~workers:1 in
  let mp = Sim_sched.makespan recorded.dag ~workers in
  measured_t1 *. float_of_int mp /. float_of_int m1
