(* dagviz — regenerate the paper's Figures 1 and 2: an example SF-dag and
   its pseudo-SP-dag, as Graphviz DOT.

     dagviz [--out-dir DIR]                     example figures
     dagviz --workload sw --scale tiny [...]    a benchmark's dag            *)

module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Dot = Sfr_dag.Dot
module Program = Sfr_runtime.Program
module Serial_exec = Sfr_runtime.Serial_exec
module Trace = Sfr_runtime.Trace
module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry

(* A small program shaped like the paper's Figure 1: future A creates
   B, C and D; D creates E and F; gets weave the futures together. *)
let example_program () =
  let b = Program.create (fun () -> Program.work 1; 10) in
  Program.spawn (fun () -> Program.work 1);
  let c =
    Program.create (fun () ->
        let v = Program.get b in
        Program.work 1;
        v + 1)
  in
  Program.sync ();
  let d =
    Program.create (fun () ->
        let e = Program.create (fun () -> Program.work 1; 2) in
        let f = Program.create (fun () -> Program.work 1; 3) in
        let ve = Program.get e in
        ignore f (* F completes ungotten, like the paper's escaping future *);
        Program.work 1;
        ve * 2)
  in
  let vc = Program.get c in
  let vd = Program.get d in
  vc + vd

let () =
  let out_dir = ref "." in
  let workload = ref None in
  let scale = ref Workload.Tiny in
  let rec parse = function
    | [] -> ()
    | "--out-dir" :: d :: rest ->
        out_dir := d;
        parse rest
    | "--workload" :: w :: rest ->
        workload := Some w;
        parse rest
    | "--scale" :: s :: rest ->
        (match Workload.scale_of_string s with
        | Some sc -> scale := sc
        | None ->
            prerr_endline "unknown scale";
            exit 2);
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %S\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let trace, cb, root = Trace.make () in
  (match !workload with
  | None -> ignore (Serial_exec.run cb ~root (fun () -> example_program ()))
  | Some name -> (
      match Registry.find name with
      | None ->
          Printf.eprintf "unknown workload %S\n" name;
          exit 2
      | Some w ->
          let inst = w.Workload.instantiate !scale in
          ignore (Serial_exec.run cb ~root inst.Workload.program)));
  let dag = Trace.dag trace in
  let stem = match !workload with None -> "figure" | Some w -> w in
  let f1 = Filename.concat !out_dir (stem ^ "1_sf_dag.dot") in
  let f2 = Filename.concat !out_dir (stem ^ "2_pseudo_sp_dag.dot") in
  Dot.write_file ~path:f1 ~name:"sf_dag" dag Dag_algo.Full;
  Dot.write_file ~path:f2 ~name:"pseudo_sp_dag" dag Dag_algo.Psp;
  Printf.printf "wrote %s (%d nodes, %d futures) and %s\n" f1 (Dag.n_nodes dag)
    (Dag.n_futures dag) f2
