(* Benchmark harness entry point.

   Subcommands regenerate the paper's evaluation artifacts:
     fig3              benchmark characteristics table
     fig4              execution-time table (T1 measured, T_P simulated)
     fig5              reachability-memory table
     motivation        futures-vs-fork-join Smith-Waterman span comparison
     complexity        O(k^2) reachability-construction validation (Lemma 3.12)
     sweep             simulated scalability curves
     ablation-locks    access-history locking cost (paper section 4)
     ablation-sets     bitmap vs hash-table gp/cp backends
     ablation-readers  keep-all vs 2-per-future reader policies
     ablation-history  mutex vs lock-free vs unsynchronized access history
     eventlog          record-only overhead vs live detection; shard scaling
     scaling           measured multicore runs per domain count -> schema-v2 JSON
     profile           dump per-configuration snapshots as schema-v2 JSON
     perfdiff OLD NEW  compare two profile dumps; exit 1 on regression
     prof-overhead     A/B microbenchmark of the disabled Prof hot path
     micro             Bechamel micro-benchmarks of the substrate
     all               everything above except profile/perfdiff (default)

   Options: --scale tiny|small|default|large|paper   (default: default)
            --repeats N                              (default: 2)
            --workers P                              (default: 20)
            --domains N,N,...  domain counts for scaling (default: 1,2,4,8)
            --trace-out FILE   write a chrome://tracing JSON of the run
                               (includes telemetry counter tracks)
            --telemetry-out F  sample continuous telemetry to F as JSONL
                               and print a utilization-over-time table
            --sample-ms N      telemetry sampling period (default: 10)
            --profile-out FILE (default: BENCH_profile.json)
            --scaling-out FILE (default: BENCH_scaling.json)
            --report-only      perfdiff prints but never exits 1
            --no-metrics       disable Sfr_obs counters for timing runs   *)

module Figures = Sfr_harness.Figures
module Workload = Sfr_workloads.Workload

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks                                          *)
(* ---------------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  print_endline "Micro-benchmarks (Bechamel, monotonic clock, ns/run):";
  let om_insert =
    Test.make ~name:"om insert_after (x100)"
      (Staged.stage (fun () ->
           let t, base = Sfr_om.Om.create () in
           for _ = 1 to 100 do
             ignore (Sfr_om.Om.insert_after t base)
           done))
  in
  let om_query =
    let t, base = Sfr_om.Om.create () in
    let items = Array.init 1000 (fun _ -> Sfr_om.Om.insert_after t base) in
    Test.make ~name:"om precedes (x100)"
      (Staged.stage (fun () ->
           for i = 0 to 99 do
             ignore (Sfr_om.Om.precedes t items.(i) items.(999 - i))
           done))
  in
  let bitset_ops =
    Test.make ~name:"bitset add+mem (x100)"
      (Staged.stage (fun () ->
           let s = Sfr_support.Bitset.create () in
           for i = 0 to 99 do
             Sfr_support.Bitset.add s (i * 7);
             ignore (Sfr_support.Bitset.mem s (i * 3))
           done))
  in
  let fp_merge =
    let eng = Sfr_reach.Fp_sets.create Sfr_reach.Fp_sets.Bitmap in
    Test.make ~name:"fp_sets disjoint merge"
      (Staged.stage (fun () ->
           let a = Sfr_reach.Fp_sets.with_added eng (Sfr_reach.Fp_sets.empty eng) 1 in
           let b = Sfr_reach.Fp_sets.with_added eng (Sfr_reach.Fp_sets.empty eng) 100 in
           Sfr_reach.Fp_sets.release (Sfr_reach.Fp_sets.merge eng a [ b ])))
  in
  let sp_order_query =
    let spo, root = Sfr_reach.Sp_order.create () in
    let c, t', _ = Sfr_reach.Sp_order.spawn spo ~cur:root ~block:None in
    Test.make ~name:"sp_order precedes (x100)"
      (Staged.stage (fun () ->
           for _ = 1 to 100 do
             ignore (Sfr_reach.Sp_order.precedes spo c t')
           done))
  in
  let tests = [ om_insert; om_query; bitset_ops; fp_merge; sp_order_query ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"micro" [ test ]) in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
        results)
    tests

(* ---------------------------------------------------------------- *)
(* perfdiff: regression gate over two profile dumps                   *)
(* ---------------------------------------------------------------- *)

(* Exit codes follow the racedetect convention: 0 clean, 1 regression
   found, 2 usage/schema/IO problem. [--report-only] keeps the table but
   downgrades exit 1 to 0, for advisory CI lanes. *)
let perfdiff ~report_only old_path new_path =
  let module Bs = Sfr_harness.Bench_schema in
  let load path =
    match Bs.load path with
    | Ok t -> t
    | Error msg ->
        Printf.eprintf "perfdiff: %s: %s\n" path msg;
        exit 2
  in
  let old_ = load old_path in
  let new_ = load new_path in
  match Bs.diff ~old_ ~new_ with
  | Error msg ->
      Printf.eprintf "perfdiff: %s\n" msg;
      exit 2
  | Ok d ->
      Format.printf "perfdiff %s -> %s@." old_path new_path;
      Format.printf "%a" Bs.pp_diff d;
      if Bs.has_regression d then
        if report_only then
          Format.printf "(report-only: regression NOT failing the run)@."
        else exit 1

(* ---------------------------------------------------------------- *)
(* prof-overhead: cost of instrumentation when profiling is off       *)
(* ---------------------------------------------------------------- *)

(* The contract the instrumented hot paths rely on: a disabled
   Prof.start/stop pair costs one atomic load plus an immediate-int
   compare. Measured A/B against an empty staged closure (harness floor)
   and against the enabled pair (two clock reads + histogram insert). *)
let prof_overhead () =
  let open Bechamel in
  let open Toolkit in
  let module Prof = Sfr_obs.Prof in
  print_endline
    "Prof instrumentation overhead (Bechamel, ns per start/stop pair x100):";
  let t = Prof.timer "prof.bench.overhead.ns" in
  let was_on = Prof.enabled () in
  let sink = ref 0 in
  let floor_test =
    Test.make ~name:"empty loop (floor, x100)"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             sink := !sink + i
           done))
  in
  let disabled_test =
    Test.make ~name:"disabled start/stop (x100)"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             sink := !sink + i;
             let t0 = Prof.start () in
             Prof.stop t t0
           done))
  in
  (* same contract for the telemetry probe surface: disarmed, the
     scheduler's per-decision gate and a mark are one atomic flag load *)
  let telemetry_disarmed_test =
    Test.make ~name:"disarmed telemetry mark (x100)"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             sink := !sink + i;
             Sfr_obs.Telemetry.mark "bench.disarmed"
           done))
  in
  (* the serve hot path's full disarmed gate set: one Prof pair plus the
     audit and trace flag loads every decode/ingest region pays *)
  let serve_gate = Prof.timer "prof.bench.serve_gate.ns" in
  let gate_sink = ref false in
  let serve_gates_test =
    Test.make ~name:"disarmed serve obs gates (x100)"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             sink := !sink + i;
             let t0 = Prof.start () in
             gate_sink :=
               Sfr_serve.Audit.armed () || Sfr_obs.Trace_event.is_on ();
             Prof.stop serve_gate t0
           done))
  in
  let enabled_test =
    Test.make ~name:"enabled start/stop (x100)"
      (Staged.stage (fun () ->
           for i = 1 to 100 do
             sink := !sink + i;
             let t0 = Prof.start () in
             Prof.stop t t0
           done))
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let measure test =
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"prof" [ test ]) in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n%!" name est
        | Some _ | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
      results
  in
  Prof.disable ();
  measure floor_test;
  measure disabled_test;
  (if not (Sfr_obs.Telemetry.armed ()) then measure telemetry_disarmed_test
   else
     print_endline
       "  disarmed telemetry mark (x100)   (skipped: telemetry is armed)");
  (if not (Sfr_serve.Audit.armed () || Sfr_obs.Trace_event.is_on ()) then
     measure serve_gates_test
   else
     print_endline
       "  disarmed serve obs gates (x100)  (skipped: a sink is armed)");
  Prof.enable ();
  measure enabled_test;
  if not was_on then Prof.disable ();
  ignore !sink;
  ignore !gate_sink

(* ---------------------------------------------------------------- *)
(* event-log record / replay                                          *)
(* ---------------------------------------------------------------- *)

(* Record overhead vs live detection, and offline shard scaling. The
   point of recording is that it is cheaper than detecting: the recorder
   does one buffer append per event, while a live detector maintains
   order structures and an access history. The deferred work is then
   embarrassingly parallel offline. *)
let eventlog ~scale ~repeats =
  let module Serial_exec = Sfr_runtime.Serial_exec in
  let module Events = Sfr_runtime.Events in
  let best f =
    let ts =
      List.init (max 1 repeats) (fun _ ->
          let _, dt = Sfr_support.Stats.time f in
          dt)
    in
    List.fold_left Float.min Float.infinity ts
  in
  Printf.printf
    "Event-log record/replay (scale %s, best of %d, %d core(s) available):\n"
    (Format.asprintf "%a" Workload.pp_scale scale)
    (max 1 repeats)
    (Domain.recommended_domain_count ());
  (* shard checking is compute-bound: more shards than cores cannot speed
     up wall-clock, it only measures the coordination overhead *)
  Printf.printf "  %-6s %12s %12s %12s %10s %10s\n" "bench" "null (s)"
    "record (s)" "live (s)" "rec ovh" "live ovh";
  let logs =
    List.filter_map
      (fun name ->
        match Sfr_workloads.Registry.find name with
        | None -> None
        | Some w ->
            let inst () = w.Workload.instantiate ~inject_race:false scale in
            let t_null =
              best (fun () ->
                  let i = inst () in
                  Serial_exec.run Events.null ~root:Events.Unit_state
                    i.Workload.program
                  |> fst)
            in
            let path = Filename.temp_file ("sfr_" ^ name) ".sflog" in
            let t_rec =
              best (fun () ->
                  let i = inst () in
                  let rec_, cb, root = Sfr_eventlog.Recorder.create ~path () in
                  let () = Serial_exec.run cb ~root i.Workload.program |> fst in
                  ignore (Sfr_eventlog.Recorder.close rec_))
            in
            let t_live =
              best (fun () ->
                  let i = inst () in
                  let det = Sfr_detect.Sf_order.make () in
                  Serial_exec.run det.Sfr_detect.Detector.callbacks
                    ~root:det.Sfr_detect.Detector.root i.Workload.program
                  |> fst)
            in
            Printf.printf "  %-6s %12.4f %12.4f %12.4f %9.2fx %9.2fx%s\n%!"
              name t_null t_rec t_live (t_rec /. t_null) (t_live /. t_null)
              (if t_rec < t_live then "" else "  (record NOT cheaper!)");
            Some (name, path))
      [ "mm"; "sw" ]
  in
  print_endline "  offline shard scaling (structural pass + sharded checks):";
  List.iter
    (fun (name, path) ->
      match Sfr_eventlog.Reader.load_file path with
      | Error e ->
          Printf.printf "  %-6s unreadable log: %s\n" name
            (Sfr_eventlog.Log_format.error_to_string e)
      | Ok log ->
          let t1 = ref Float.infinity in
          List.iter
            (fun shards ->
              let dt =
                best (fun () ->
                    match Sfr_eventlog.Shard_replay.run log ~shards with
                    | Ok _ -> ()
                    | Error e ->
                        failwith (Sfr_eventlog.Replay.error_to_string e))
              in
              if shards = 1 then t1 := dt;
              Printf.printf "  %-6s %2d shard(s): %8.4f s  (%.2fx vs 1)\n%!"
                name shards dt (!t1 /. dt))
            [ 1; 2; 4; 8 ];
          Sys.remove path)
    logs

(* ---------------------------------------------------------------- *)
(* serve ingest throughput                                            *)
(* ---------------------------------------------------------------- *)

(* Events/second through the streaming ingest server as concurrent
   client sessions scale. Loopback transport (no sockets): each client
   domain drives its own connection, and with pool_domains = 0 the
   detection work runs on the calling client's domain — so N clients
   measure N concurrent end-to-end framed-ingest + detection pipelines
   through one shared server (per-connection locks, shared budget). *)
let serve_bench ~scale ~repeats ~clients_axis =
  let module Server = Sfr_serve.Server in
  let module Session = Sfr_serve.Session in
  let module Loopback = Sfr_serve.Loopback in
  let module Serial_exec = Sfr_runtime.Serial_exec in
  let w =
    match Sfr_workloads.Registry.find "mm" with
    | Some w -> w
    | None -> failwith "mm workload missing"
  in
  let inst = w.Workload.instantiate ~inject_race:false scale in
  let path = Filename.temp_file "sfr_serve" ".sflog" in
  let rec_, cb, root = Sfr_eventlog.Recorder.create ~path () in
  let () = Serial_exec.run cb ~root inst.Workload.program |> fst in
  let summary = Sfr_eventlog.Recorder.close rec_ in
  let image =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        really_input_string ic (in_channel_length ic) |> Bytes.of_string)
  in
  Sys.remove path;
  let events = summary.Sfr_eventlog.Recorder.events in
  let bytes = Bytes.length image in
  Printf.printf
    "Serve ingest throughput (scale %s, log %d bytes / %d events, best of \
     %d, %d core(s)):\n"
    (Format.asprintf "%a" Workload.pp_scale scale)
    bytes events (max 1 repeats)
    (Domain.recommended_domain_count ());
  Printf.printf "  %8s %10s %14s %12s\n" "clients" "time (s)" "events/s"
    "MB/s";
  let best f =
    let ts =
      List.init (max 1 repeats) (fun _ ->
          let _, dt = Sfr_support.Stats.time f in
          dt)
    in
    List.fold_left Float.min Float.infinity ts
  in
  List.iter
    (fun clients ->
      let dt =
        best (fun () ->
            let server =
              Server.create
                {
                  Server.session = Session.default_config;
                  global_budget = 64 * 1024 * 1024;
                  overload = Server.Shed;
                  pool_domains = 0;
                  defer_ingest = false;
                }
            in
            let doms =
              List.init clients (fun _ ->
                  Domain.spawn (fun () ->
                      let c = Loopback.connect server in
                      Loopback.run_log c image))
            in
            List.iter Domain.join doms;
            let outcomes = Server.outcomes server in
            Server.shutdown server;
            if List.length outcomes <> clients then
              failwith
                (Printf.sprintf "serve bench: %d outcomes for %d clients"
                   (List.length outcomes) clients))
      in
      let total_events = float_of_int (events * clients) in
      let total_mb =
        float_of_int (bytes * clients) /. (1024.0 *. 1024.0)
      in
      Printf.printf "  %8d %10.4f %14.0f %12.2f\n%!" clients dt
        (total_events /. dt) (total_mb /. dt))
    clients_axis;
  (* A/B the observability surface itself: the same single-client run
     with every serve sink disarmed vs armed (profiling + tracing +
     audit). The disarmed column is the number the <5% regression gate
     watches; the armed delta prices turning everything on. *)
  let one_client () =
    let server =
      Server.create
        {
          Server.session = Session.default_config;
          global_budget = 64 * 1024 * 1024;
          overload = Server.Shed;
          pool_domains = 0;
          defer_ingest = false;
        }
    in
    let c = Loopback.connect server in
    Loopback.run_log c image;
    let outcomes = Server.outcomes server in
    Server.shutdown server;
    if List.length outcomes <> 1 then failwith "serve bench: A/B outcome lost"
  in
  let disarmed = best one_client in
  let audit_path = Filename.temp_file "sfr_serve_ab" ".audit.jsonl" in
  Sfr_obs.Prof.enable ();
  Sfr_obs.Trace_event.start ();
  Sfr_serve.Audit.open_sink ~path:audit_path ();
  let armed = best one_client in
  Sfr_serve.Audit.close_sink ();
  Sfr_obs.Trace_event.stop ();
  Sfr_obs.Trace_event.clear ();
  Sfr_obs.Prof.disable ();
  Sys.remove audit_path;
  Printf.printf
    "  obs A/B (1 client): disarmed %.4fs, armed %.4fs (%+.1f%%; armed = \
     prof + trace + audit)\n%!"
    disarmed armed
    ((armed -. disarmed) /. disarmed *. 100.0)

(* ---------------------------------------------------------------- *)
(* chaos soak                                                         *)
(* ---------------------------------------------------------------- *)

(* Differential soak across the detector matrix: every detector, with and
   without synthetic faults, against the serial oracle. Exits nonzero on
   any mismatch, so it can gate CI the way the figures gate the paper. *)
let soak ~seeds ~workers =
  let module Chaos = Sfr_chaos.Chaos in
  let module Runner = Sfr_chaos_driver.Chaos_runner in
  Printf.printf "Chaos soak: %d seeds per cell, %d workers\n" seeds workers;
  (* the detector matrix is the registry: a newly registered backend is
     soaked (and differentially checked) without touching this file *)
  let detectors =
    List.map
      (fun (e : Sfr_detect.Registry.entry) ->
        (e.Sfr_detect.Registry.name, e.Sfr_detect.Registry.make))
      (Sfr_detect.Registry.all ())
  in
  let failed = ref false in
  List.iter
    (fun (name, make) ->
      List.iter
        (fun fault_rate ->
          let chaos =
            if fault_rate > 0.0 then
              { Chaos.default_config with Chaos.fault_rate }
            else Chaos.default_config
          in
          let cfg =
            {
              Runner.default_config with
              Runner.seeds;
              workers;
              chaos = Some chaos;
              shrink = true;
            }
          in
          let r = Runner.run cfg ~make in
          Printf.printf
            "  %-14s fault %.2f: %3d matched, %3d faults surfaced, %d mismatches\n%!"
            name fault_rate r.Runner.matched r.Runner.faults_surfaced
            (List.length r.Runner.mismatches);
          List.iter
            (fun m -> Format.printf "    MISMATCH %a@." Runner.pp_mismatch m)
            r.Runner.mismatches;
          if r.Runner.mismatches <> [] then failed := true)
        [ 0.0; 0.02 ])
    detectors;
  (* scale lane: the vc-order oracle is O(n·width) instead of the naive
     O(n²), so the same differential runs at 10x the DAG size *)
  let cfg =
    {
      Runner.default_config with
      Runner.seeds;
      workers;
      ops = Runner.default_config.Runner.ops * 10;
      shrink = true;
      oracle =
        Runner.Oracle_detector (fun () -> Sfr_detect.Vc_order.make ());
    }
  in
  let r = Runner.run cfg ~make:(fun () -> Sfr_detect.Sf_order.make ()) in
  Printf.printf
    "  %-14s vc-oracle @10x ops: %3d matched, %3d faults surfaced, %d \
     mismatches\n%!"
    "sf-order" r.Runner.matched r.Runner.faults_surfaced
    (List.length r.Runner.mismatches);
  List.iter
    (fun m -> Format.printf "    MISMATCH %a@." Runner.pp_mismatch m)
    r.Runner.mismatches;
  if r.Runner.mismatches <> [] then failed := true;
  if !failed then begin
    prerr_endline "chaos soak FAILED";
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* argument handling                                                  *)
(* ---------------------------------------------------------------- *)

let usage () =
  prerr_endline
    "usage: main.exe [fig3|fig4|fig5|sweep|ablation-locks|ablation-sets|\n\
    \                 ablation-readers|ablation-history|scaling|profile|\n\
    \                 prof-overhead|micro|eventlog|serve|soak|all]\n\
    \                [--scale tiny|small|default|large|paper] [--repeats N]\n\
    \                [--workers P] [--seeds N] [--domains N,N,...]\n\
    \                [--om list|depa|both]\n\
    \                [--trace-out FILE] [--telemetry-out FILE] [--sample-ms N]\n\
    \                [--profile-out FILE]\n\
    \                [--scaling-out FILE] [--no-metrics]\n\
    \       main.exe perfdiff OLD.json NEW.json [--report-only]";
  exit 2

let () =
  let scale = ref Workload.Default in
  let repeats = ref 2 in
  let workers = ref 20 in
  let seeds = ref 50 in
  let command = ref "all" in
  let command_seen = ref false in
  let positional = ref [] in
  let report_only = ref false in
  let trace_out = ref None in
  let telemetry_out = ref None in
  let sample_ms = ref Sfr_obs.Telemetry.default_sample_ms in
  let profile_out = ref "BENCH_profile.json" in
  let scaling_out = ref "BENCH_scaling.json" in
  let domains = ref [ 1; 2; 4; 8 ] in
  let om_backends = ref Sfr_om.Backend.all in
  let rec parse = function
    | [] -> ()
    | "--scale" :: s :: rest ->
        (match Workload.scale_of_string s with
        | Some sc -> scale := sc
        | None -> usage ());
        parse rest
    | "--repeats" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> repeats := n
        | Some _ | None -> usage ());
        parse rest
    | "--workers" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> workers := n
        | Some _ | None -> usage ());
        parse rest
    | "--seeds" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n > 0 -> seeds := n
        | Some _ | None -> usage ());
        parse rest
    | "--trace-out" :: f :: rest ->
        trace_out := Some f;
        parse rest
    | "--telemetry-out" :: f :: rest ->
        telemetry_out := Some f;
        parse rest
    | "--sample-ms" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> sample_ms := n
        | Some _ | None -> usage ());
        parse rest
    | "--no-metrics" :: rest ->
        Sfr_obs.Metrics.disable ();
        parse rest
    | "--profile-out" :: f :: rest ->
        profile_out := f;
        parse rest
    | "--scaling-out" :: f :: rest ->
        scaling_out := f;
        parse rest
    | "--domains" :: spec :: rest ->
        (match
           String.split_on_char ',' spec
           |> List.map (fun s ->
                  match int_of_string_opt (String.trim s) with
                  | Some n when n > 0 -> n
                  | Some _ | None -> usage ())
         with
        | [] -> usage ()
        | ds -> domains := ds);
        parse rest
    | "--om" :: b :: rest ->
        (match b with
        | "both" -> om_backends := Sfr_om.Backend.all
        | _ -> (
            match Sfr_om.Backend.of_string b with
            | Some b -> om_backends := [ b ]
            | None -> usage ()));
        parse rest
    | "--report-only" :: rest ->
        report_only := true;
        parse rest
    | cmd :: rest when cmd <> "" && cmd.[0] <> '-' ->
        if !command_seen then positional := !positional @ [ cmd ]
        else begin
          command := cmd;
          command_seen := true
        end;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scale = !scale and repeats = !repeats and workers = !workers in
  let seeds = !seeds in
  let rec run = function
    | "fig3" -> Figures.fig3 ~scale
    | "motivation" -> Figures.motivation ~scale
    | "complexity" -> Figures.complexity ()
    | "fig4" -> Figures.fig4 ~scale ~repeats ~workers
    | "fig5" -> Figures.fig5 ~scale
    | "sweep" -> Figures.sweep ~scale ~repeats
    | "ablation-locks" -> Figures.ablation_locks ~scale ~repeats
    | "ablation-sets" -> Figures.ablation_sets ~scale ~repeats
    | "ablation-readers" -> Figures.ablation_readers ~scale ~repeats
    | "ablation-history" -> Figures.ablation_history ~scale ~repeats
    | "profile" -> (
        try
          Figures.profile ~om_backends:!om_backends ~scale ~repeats
            ~out:!profile_out
        with Sys_error msg ->
          Printf.eprintf "cannot write profile: %s\n" msg;
          exit 2)
    | "scaling" -> (
        try
          Figures.scaling ~om_backends:!om_backends ~scale ~repeats
            ~domains:!domains ~out:!scaling_out
        with Sys_error msg ->
          Printf.eprintf "cannot write scaling results: %s\n" msg;
          exit 2)
    | "perfdiff" -> (
        match !positional with
        | [ old_path; new_path ] ->
            perfdiff ~report_only:!report_only old_path new_path
        | _ ->
            prerr_endline "perfdiff needs exactly two files: OLD.json NEW.json";
            usage ())
    | "prof-overhead" -> prof_overhead ()
    | "micro" -> micro ()
    | "eventlog" -> eventlog ~scale ~repeats
    | "serve" -> serve_bench ~scale ~repeats ~clients_axis:!domains
    | "soak" -> soak ~seeds ~workers:(min workers 8)
    | "all" ->
        List.iter
          (fun c ->
            run c;
            print_newline ())
          [ "fig3"; "fig4"; "fig5"; "motivation"; "complexity"; "sweep";
            "ablation-locks"; "ablation-sets"; "ablation-readers";
            "ablation-history"; "eventlog"; "micro"; "prof-overhead" ]
    | _ -> usage ()
  in
  (match !trace_out with Some _ -> Sfr_obs.Trace_event.start () | None -> ());
  (* telemetry rides along whenever a trace is requested (counter tracks
     in the chrome view); --telemetry-out adds the JSONL stream and the
     utilization table on top *)
  let telemetry_on = !telemetry_out <> None || !trace_out <> None in
  if telemetry_on then
    Sfr_obs.Telemetry.start ~sample_ms:!sample_ms ?out:!telemetry_out
      ~probe:Sfr_runtime.Par_exec.probe_metrics ();
  run !command;
  if telemetry_on then begin
    (* stop before the trace epilogue so the final counter events land
       inside the written trace *)
    Sfr_obs.Telemetry.stop ();
    print_newline ();
    Printf.printf "Utilization over time (%d samples, %d ms period):\n"
      (Sfr_obs.Telemetry.sample_count ())
      !sample_ms;
    Format.printf "%t@?" Sfr_obs.Telemetry.pp_timeline;
    match !telemetry_out with
    | Some f ->
        Printf.printf "wrote telemetry (%d samples) to %s\n"
          (Sfr_obs.Telemetry.sample_count ())
          f
    | None -> ()
  end;
  match !trace_out with
  | Some f -> (
      Sfr_obs.Trace_event.stop ();
      match Sfr_obs.Trace_event.write_file f with
      | () ->
          Printf.printf "wrote chrome trace to %s (load in chrome://tracing)\n" f
      | exception Sys_error msg ->
          Printf.eprintf "cannot write trace: %s\n" msg;
          exit 2)
  | None -> ()
