module Bitset = Sfr_support.Bitset
module Metrics = Sfr_obs.Metrics

(* Observability: bitmap-word growth across all engines in the process —
   the live/total Atomics below stay per-engine for Figure 5. *)
let m_allocs = Metrics.counter "reach.table.allocs"
let m_alloc_words = Metrics.counter "reach.table.alloc_words"

type backend = Bitmap | Hashed

type repr = Bits of Bitset.t | Hash of (int, unit) Hashtbl.t

type t = {
  which : backend;
  allocs : int Atomic.t;
  live : int Atomic.t; (* words *)
  peak : int Atomic.t;
  total : int Atomic.t; (* cumulative words ever allocated or grown *)
  next_id : int Atomic.t;
  mutable empty_table : table option;
}

and table = { repr : repr; rc : int Atomic.t; tid : int; eng : t }
(* [tid] is a process-unique identity: physically equal tables (and only
   those) share it, so merge can dedup its inputs with one sort instead
   of O(n²) pointer scans. *)

(* -- representation helpers ------------------------------------------- *)

let repr_words = function
  | Bits b -> Bitset.words b + 4
  | Hash h ->
      let s = Hashtbl.stats h in
      s.Hashtbl.num_buckets + (3 * s.Hashtbl.num_bindings) + 6

let repr_mem r i =
  match r with Bits b -> Bitset.mem b i | Hash h -> Hashtbl.mem h i

let repr_add r i =
  match r with
  | Bits b -> Bitset.add b i
  | Hash h -> if not (Hashtbl.mem h i) then Hashtbl.add h i ()

let repr_iter f = function
  | Bits b -> Bitset.iter f b
  | Hash h -> Hashtbl.iter (fun i () -> f i) h

(* word-at-a-time when both sides are bitmaps; per-element otherwise *)
let repr_union_into ~dst src =
  match (dst, src) with
  | Bits d, Bits s -> Bitset.union_into ~dst:d s
  | _ -> repr_iter (fun i -> repr_add dst i) src

let repr_cardinal = function
  | Bits b -> Bitset.cardinal b
  | Hash h -> Hashtbl.length h

let repr_subset a b =
  match a with
  | Bits ba -> (
      match b with
      | Bits bb -> Bitset.subset ba bb
      | Hash _ ->
          let ok = ref true in
          Bitset.iter (fun i -> if not (repr_mem b i) then ok := false) ba;
          !ok)
  | Hash ha ->
      let ok = ref true in
      Hashtbl.iter (fun i () -> if not (repr_mem b i) then ok := false) ha;
      !ok

let repr_fresh which =
  match which with
  | Bitmap -> Bits (Bitset.create ())
  | Hashed -> Hash (Hashtbl.create 8)

let repr_copy = function
  | Bits b -> Bits (Bitset.copy b)
  | Hash h -> Hash (Hashtbl.copy h)

(* -- accounting --------------------------------------------------------- *)

let bump_peak eng =
  let live = Atomic.get eng.live in
  let rec loop () =
    let p = Atomic.get eng.peak in
    if live > p && not (Atomic.compare_and_set eng.peak p live) then loop ()
  in
  loop ()

let account_alloc eng tbl =
  Atomic.incr eng.allocs;
  let w = repr_words tbl.repr in
  Metrics.incr m_allocs;
  Metrics.add m_alloc_words w;
  ignore (Atomic.fetch_and_add eng.live w);
  ignore (Atomic.fetch_and_add eng.total w);
  bump_peak eng

let account_free eng tbl =
  ignore (Atomic.fetch_and_add eng.live (-repr_words tbl.repr))

(* -- API ---------------------------------------------------------------- *)

let alloc_table eng repr =
  let tbl =
    { repr; rc = Atomic.make 1; tid = Atomic.fetch_and_add eng.next_id 1; eng }
  in
  account_alloc eng tbl;
  tbl

let create which =
  let eng =
    {
      which;
      allocs = Atomic.make 0;
      live = Atomic.make 0;
      peak = Atomic.make 0;
      total = Atomic.make 0;
      next_id = Atomic.make 0;
      empty_table = None;
    }
  in
  (* the canonical empty table: the engine pins one reference forever *)
  eng.empty_table <- Some (alloc_table eng (repr_fresh which));
  eng

let backend eng = eng.which

let share tbl =
  Atomic.incr tbl.rc;
  tbl

let empty eng =
  match eng.empty_table with
  | Some tbl -> share tbl
  | None -> assert false

let release tbl =
  let prev = Atomic.fetch_and_add tbl.rc (-1) in
  if prev = 1 then account_free tbl.eng tbl

let mem tbl i = repr_mem tbl.repr i

(* Tables are immutable once published: a strand state handed to the
   access history (or collected by a client) may outlive its reference,
   and gp(v) is a fixed per-node set in the paper's model — so additions
   always copy. At most one copy per get plus the cp copy per create:
   within the O(k^2) construction budget of Lemma 3.12. *)
let with_added eng tbl i =
  if repr_mem tbl.repr i then tbl
  else begin
    let repr = repr_copy tbl.repr in
    repr_add repr i;
    release tbl;
    alloc_table eng repr
  end

let merge eng primary others =
  let inputs = primary :: others in
  (* collapse physically-equal inputs (a strand and its child may share a
     table); each duplicate surrenders its reference. Table identities
     order the inputs, so one sort + one adjacent-pairs pass replaces the
     O(n²) [List.memq] scan. *)
  let uniq =
    match others with
    | [] -> inputs
    | _ ->
        let sorted =
          List.stable_sort (fun a b -> compare a.tid b.tid) inputs
        in
        let rec dedup = function
          | a :: (b :: _ as rest) when a == b ->
              release a;
              dedup rest
          | a :: rest -> a :: dedup rest
          | [] -> []
        in
        dedup sorted
  in
  match uniq with
  | [] -> assert false
  | [ single ] -> single
  | _ ->
      (* a candidate that subsumes all other inputs avoids an allocation
         (the paper's merge-only-when-necessary rule) *)
      let best =
        List.fold_left
          (fun acc x ->
            if repr_cardinal x.repr > repr_cardinal acc.repr then x else acc)
          (List.hd uniq) (List.tl uniq)
      in
      let subsumes cand =
        List.for_all (fun x -> x == cand || repr_subset x.repr cand.repr) uniq
      in
      if subsumes best then begin
        List.iter (fun x -> if x != best then release x) uniq;
        best
      end
      else begin
        let repr = repr_copy best.repr in
        List.iter
          (fun x -> if x != best then repr_union_into ~dst:repr x.repr)
          uniq;
        List.iter release uniq;
        alloc_table eng repr
      end

let cardinal tbl = repr_cardinal tbl.repr

let elements tbl =
  let acc = ref [] in
  repr_iter (fun i -> acc := i :: !acc) tbl.repr;
  List.sort compare !acc

let allocations eng = Atomic.get eng.allocs
let live_words eng = Atomic.get eng.live
let peak_words eng = Atomic.get eng.peak
let total_words eng = Atomic.get eng.total
