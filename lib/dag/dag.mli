(** The computation-dag model for programs with fork-join and structured
    future parallelism (paper Section 2).

    A node is a {e strand}: a maximal instruction sequence with no parallel
    control. Edges are SP edges (spawn / continuation / sync, within one
    future dag), create edges (parent future to first node of child future)
    and get edges (last node of a future to the strand that touches its
    handle). A program using only [spawn]/[sync] plus {e structured} futures
    generates an SF-dag: a set of SP dags (one per future) joined by
    create/get edges.

    The builder below is driven by executor events; node IDs are assigned in
    event order, which is always a topological order of the dag (every edge
    is added into the node it targets at that node's creation, and get edges
    originate at an already-completed future's last node).

    Thread safety: all builder mutations take the dag's internal mutex, so a
    multicore executor can record a dag concurrently. *)

type kind =
  | Root  (** the very first strand of the computation *)
  | Spawned  (** first strand of a spawned subroutine *)
  | Created  (** first strand of a created future task *)
  | Cont  (** continuation after a spawn or create *)
  | Sync  (** strand following an (explicit or implicit) sync *)
  | Get  (** strand following a get *)

type edge_kind = Sp | Create_edge | Get_edge

type t

type node = int
(** Node handle; dense IDs from 0. *)

type future = int
(** Future-dag handle; dense IDs from 0. The root computation is future 0. *)

val create : unit -> t * node
(** Fresh dag containing the root strand of future 0. *)

(* -- builder (executor hooks) ----------------------------------------- *)

val spawn : t -> cur:node -> node * node
(** [spawn t ~cur] records that [cur]'s strand executed [spawn]; returns
    [(child_first, continuation)], both in [cur]'s future. *)

val create_future : t -> cur:node -> node * node * future
(** [create_future t ~cur] records a [create]; returns
    [(child_first, continuation, fid)] where [child_first] starts the fresh
    future dag [fid]. *)

val sync : t -> cur:node -> spawned_lasts:node list -> created:future list -> node
(** [sync t ~cur ~spawned_lasts ~created] records an (explicit or
    frame-end implicit) sync: the returned sync strand has SP in-edges from
    [cur] and from the final strand of every spawned child being joined.
    [created] lists the futures created in this sync block; they do {e not}
    join in the real dag, but their last nodes acquire fake join edges to
    this sync node in the pseudo-SP-dag (paper Section 3.1). *)

val put : t -> cur:node -> unit
(** Marks [cur] as the put node — [last(F)] of [cur]'s future. Must be
    called exactly once per future, after its frame-end sync. *)

val get : t -> cur:node -> future:future -> node
(** [get t ~cur ~future] records a get on [future]'s handle: the returned
    get strand has an SP in-edge from [cur] and a get in-edge from
    [last(future)].
    @raise Invalid_argument on a second touch (single-touch violation) or
    if the future has no put node recorded yet. *)

val add_cost : t -> node -> int -> unit
(** Accumulate work units (instruction count proxy) into a strand. *)

(* -- accessors --------------------------------------------------------- *)

val n_nodes : t -> int
val n_futures : t -> int
val kind_of : t -> node -> kind
val future_of : t -> node -> future
val cost_of : t -> node -> int
val succs : t -> node -> (edge_kind * node) list
val preds : t -> node -> (edge_kind * node) list
val first_of : t -> future -> node
val last_of : t -> future -> node option
val fparent : t -> future -> future option
(** Future parent ([None] for the root future). *)

val f_ancestors : t -> future -> future list
(** Strict future ancestors, nearest first. *)

val create_node_of : t -> future -> node option
(** The strand that executed [create] for this future ([None] for root). *)

val create_cont_of : t -> future -> node option
val get_node_of : t -> future -> node option
val fake_joins : t -> (future * node) list
(** All [(G, s)] such that [last(G)] fake-joins at sync node [s] in the
    pseudo-SP-dag. *)

val total_cost : t -> int
(** Sum of strand costs: the work [T1] in work units. *)
