let word_bytes = Sys.word_size / 8

let bytes_of_words w = w * word_bytes
let mib_of_words w = float_of_int (bytes_of_words w) /. (1024.0 *. 1024.0)
let gib_of_words w = float_of_int (bytes_of_words w) /. (1024.0 *. 1024.0 *. 1024.0)

let pp_bytes ppf w =
  let b = float_of_int (bytes_of_words w) in
  if b < 1024.0 then Format.fprintf ppf "%.0f B" b
  else if b < 1024.0 ** 2.0 then Format.fprintf ppf "%.2f KiB" (b /. 1024.0)
  else if b < 1024.0 ** 3.0 then Format.fprintf ppf "%.2f MiB" (b /. (1024.0 ** 2.0))
  else Format.fprintf ppf "%.2f GiB" (b /. (1024.0 ** 3.0))

let heap_live_words () =
  let stat = Gc.full_major (); Gc.stat () in
  stat.Gc.live_words
