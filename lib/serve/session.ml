module Stream_replay = Sfr_eventlog.Stream_replay
module Race = Sfr_detect.Race
module Metrics = Sfr_obs.Metrics
module Flight = Sfr_obs.Flight

let m_frames_in = Metrics.counter "serve.frames.in"
let m_frames_out = Metrics.counter "serve.frames.out"
let m_bytes_in = Metrics.counter "serve.bytes.in"
let m_credit_granted = Metrics.counter "serve.credit.granted"
let m_credit_violations = Metrics.counter "serve.credit.violations"
let m_protocol_errors = Metrics.counter "serve.protocol.errors"

type config = {
  credit_window : int;
  deadline_ms : int option;
  idle_ms : int option;
  shards : int;
  access_batch : int;
}

let default_config =
  {
    credit_window = 256 * 1024;
    deadline_ms = None;
    idle_ms = None;
    shards = 1;
    access_batch = 8192;
  }

type outcome = {
  session : int;
  code : Frame.reply_code;
  races : int;
  events : int;
  bytes_analyzed : int;
  message : string;
  reports : Race.report list;
}

let verdict_frame o =
  Frame.Verdict
    {
      code = o.code;
      races = o.races;
      events = o.events;
      bytes_analyzed = o.bytes_analyzed;
      message = o.message;
    }

type phase = Awaiting_hello | Streaming | Finished

type t = {
  sid : int;
  cfg : config;
  decoder : Frame.decoder;
  replay : Stream_replay.t;
  queue : Bytes.t Queue.t;  (** accepted DATA payloads, not yet ingested *)
  mutable queued : int;
  mutable credit : int;  (** bytes the client may still send *)
  mutable grant_credit : bool;
  mutable phase : phase;
  mutable close_received : bool;
  mutable result : outcome option;
  started : int;
  mutable last_activity : int;
}

let create ~id ~now_ms cfg =
  if cfg.credit_window < 1 then
    invalid_arg "Session.create: credit_window must be >= 1";
  Flight.note ~arg:id "serve.session.open";
  {
    sid = id;
    cfg;
    decoder = Frame.decoder ();
    replay =
      Stream_replay.create ~shards:cfg.shards ~access_batch:cfg.access_batch ();
    queue = Queue.create ();
    queued = 0;
    credit = 0;
    grant_credit = true;
    phase = Awaiting_hello;
    close_received = false;
    result = None;
    started = now_ms;
    last_activity = now_ms;
  }

let id t = t.sid
let finished t = t.phase = Finished
let outcome t = t.result
let queued_bytes t = t.queued
let last_activity_ms t = t.last_activity
let started_ms t = t.started
let awaiting_hello t = t.phase = Awaiting_hello

let needs_ingest t =
  t.phase <> Finished && (t.queued > 0 || t.close_received)

type effect_ = {
  send : Frame.frame list;
  accepted : int;
  released : int;
  finished : bool;
}

let no_effect = { send = []; accepted = 0; released = 0; finished = false }

let merge a b =
  {
    send = a.send @ b.send;
    accepted = a.accepted + b.accepted;
    released = a.released + b.released;
    finished = a.finished || b.finished;
  }

let set_grant_credit t v = t.grant_credit <- v

let replenish_credit t =
  if t.phase <> Streaming || t.close_received || not t.grant_credit then
    no_effect
  else begin
    let grant = t.cfg.credit_window - t.credit - t.queued in
    if grant > 0 then begin
      t.credit <- t.credit + grant;
      Metrics.add m_credit_granted grant;
      Metrics.incr m_frames_out;
      { no_effect with send = [ Frame.Credit grant ] }
    end
    else no_effect
  end

(* Latch an outcome: the one-and-only terminal transition. Any payloads
   still queued are dropped and surfaced as [released] so the server's
   global byte accounting stays exact. *)
let latch t o reply =
  match t.result with
  | Some _ -> no_effect
  | None ->
      t.result <- Some o;
      t.phase <- Finished;
      let released = t.queued in
      Queue.clear t.queue;
      t.queued <- 0;
      Flight.note ~arg:t.sid "serve.session.finish";
      Metrics.incr m_frames_out;
      { send = [ reply ]; accepted = 0; released; finished = true }

(* Terminal with a typed non-verdict code: REJECT before the session
   ever streamed (no stats worth reporting), partial-stats VERDICT
   after. *)
let finish_code t code message =
  if t.phase = Awaiting_hello then
    latch t
      {
        session = t.sid;
        code;
        races = 0;
        events = 0;
        bytes_analyzed = 0;
        message;
        reports = [];
      }
      (Frame.Reject { code; message })
  else begin
    let v = Stream_replay.partial t.replay in
    let o =
      {
        session = t.sid;
        code;
        races = List.length v.Stream_replay.racy_locations;
        events = v.Stream_replay.events_applied;
        bytes_analyzed = v.Stream_replay.bytes_analyzed;
        message;
        reports = v.Stream_replay.reports;
      }
    in
    latch t o (verdict_frame o)
  end

(* Terminal driven by the stream's own verdict (clean CLOSE, or abrupt
   disconnect after draining what arrived). *)
let finish_with_verdict t (v : Stream_replay.verdict) extra_message =
  let code, message =
    match v.Stream_replay.status with
    | Stream_replay.Complete ->
        if v.Stream_replay.racy_locations = [] then (Frame.Ok_clean, "")
        else (Frame.Ok_races, "")
    | Stream_replay.Torn e ->
        ( Frame.Err_torn,
          Printf.sprintf "%s; analyzed prefix up to byte %d%s"
            (Sfr_eventlog.Log_format.error_to_string e)
            v.Stream_replay.bytes_analyzed extra_message )
    | Stream_replay.Inconsistent e ->
        (Frame.Err_inconsistent, Sfr_eventlog.Replay.error_to_string e)
    | Stream_replay.Detector_failed m -> (Frame.Err_detector, m)
  in
  let o =
    {
      session = t.sid;
      code;
      races = List.length v.Stream_replay.racy_locations;
      events = v.Stream_replay.events_applied;
      bytes_analyzed = v.Stream_replay.bytes_analyzed;
      message;
      reports = v.Stream_replay.reports;
    }
  in
  latch t o (verdict_frame o)

let protocol_error t what =
  Metrics.incr m_protocol_errors;
  finish_code t Frame.Err_protocol what

let on_frame t frame =
  Metrics.incr m_frames_in;
  match (t.phase, frame) with
  | Finished, _ -> no_effect
  | Awaiting_hello, Frame.Hello { version } ->
      if version <> Frame.protocol_version then
        protocol_error t
          (Printf.sprintf "unsupported protocol version %d (want %d)" version
             Frame.protocol_version)
      else begin
        t.phase <- Streaming;
        t.credit <- t.cfg.credit_window;
        Metrics.incr m_frames_out;
        {
          no_effect with
          send =
            [ Frame.Welcome { session = t.sid; credit = t.cfg.credit_window } ];
        }
      end
  | Awaiting_hello, _ -> protocol_error t "expected HELLO"
  | Streaming, Frame.Data b ->
      if t.close_received then protocol_error t "DATA after CLOSE"
      else begin
        let len = Bytes.length b in
        Metrics.add m_bytes_in len;
        if len > t.credit then begin
          Metrics.incr m_credit_violations;
          finish_code t Frame.Err_protocol
            (Printf.sprintf "credit exceeded: %d bytes sent, %d available" len
               t.credit)
        end
        else begin
          t.credit <- t.credit - len;
          Queue.push b t.queue;
          t.queued <- t.queued + len;
          { no_effect with accepted = len }
        end
      end
  | Streaming, Frame.Close ->
      t.close_received <- true;
      no_effect
  | Streaming, Frame.Hello _ -> protocol_error t "duplicate HELLO"
  | _, (Frame.Welcome _ | Frame.Credit _ | Frame.Verdict _ | Frame.Reject _)
    ->
      protocol_error t "server-to-client frame from client"

let on_bytes t ~now_ms bytes ~pos ~len =
  if t.phase = Finished then no_effect
  else begin
    t.last_activity <- now_ms;
    Frame.decoder_feed t.decoder bytes ~pos ~len;
    let eff = ref no_effect in
    let continue_ = ref true in
    while !continue_ && t.phase <> Finished do
      match Frame.decoder_next t.decoder with
      | Ok None -> continue_ := false
      | Ok (Some frame) -> eff := merge !eff (on_frame t frame)
      | Error e ->
          eff := merge !eff (protocol_error t (Frame.error_to_string e));
          continue_ := false
    done;
    !eff
  end

let ingest t =
  if t.phase = Finished then no_effect
  else begin
    let drained = ref 0 in
    while not (Queue.is_empty t.queue) do
      let b = Queue.pop t.queue in
      let len = Bytes.length b in
      t.queued <- t.queued - len;
      drained := !drained + len;
      Stream_replay.feed t.replay b ~pos:0 ~len
    done;
    if !drained > 0 then Stream_replay.step t.replay;
    let credit_frames =
      if !drained > 0 && t.grant_credit && not t.close_received then begin
        let grant = min !drained (t.cfg.credit_window - t.credit) in
        if grant > 0 then begin
          t.credit <- t.credit + grant;
          Metrics.add m_credit_granted grant;
          Metrics.incr m_frames_out;
          [ Frame.Credit grant ]
        end
        else []
      end
      else []
    in
    let base = { no_effect with send = credit_frames; released = !drained } in
    if t.close_received then
      merge base
        (finish_with_verdict t (Stream_replay.close t.replay ~abrupt:false) "")
    else base
  end

let on_disconnect t =
  if t.phase = Finished then no_effect
  else begin
    let eff = ingest t in
    if t.phase = Finished then eff
    else
      merge eff
        (finish_with_verdict t
           (Stream_replay.close t.replay ~abrupt:true)
           " (client disconnected)")
  end

let finish_overload t ~message = finish_code t Frame.Err_overload message

let check_timeout t ~now_ms =
  if t.phase = Finished then None
  else
    let deadline_hit =
      match t.cfg.deadline_ms with
      | Some d -> now_ms - t.started >= d
      | None -> false
    in
    let idle_hit =
      match t.cfg.idle_ms with
      | Some d -> now_ms - t.last_activity >= d
      | None -> false
    in
    if deadline_hit then
      Some
        (finish_code t Frame.Err_deadline
           (Printf.sprintf "session deadline (%d ms) exceeded"
              (Option.get t.cfg.deadline_ms)))
    else if idle_hit then
      Some
        (finish_code t Frame.Err_idle
           (Printf.sprintf "idle for %d ms" (now_ms - t.last_activity)))
    else None
