let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

(* Float.compare, not polymorphic compare: the latter raises no error on
   floats but orders nan unpredictably relative to IEEE comparisons; with
   Float.compare, nan sorts below every number, deterministically. The
   array sort also replaces the former O(n^2) List.nth walk. *)
let median xs =
  match Array.of_list xs with
  | [||] -> nan
  | a ->
      Array.sort Float.compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Median absolute deviation: the robust spread companion to [median].
   Not scaled to estimate sigma (no 1.4826 factor) — perfdiff thresholds
   compare MADs to MADs, so the raw statistic is what we want. *)
let mad = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = median xs in
      median (List.map (fun x -> Float.abs (x -. m)) xs)

let min_max = function
  | [] -> (nan, nan)
  | x :: xs ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let result = f () in
  (result, now () -. t0)

let repeat_timed n f =
  if n <= 0 then invalid_arg "Stats.repeat_timed: n must be positive";
  let rec loop i times =
    let result, dt = time f in
    if i >= n then (result, List.rev (dt :: times)) else loop (i + 1) (dt :: times)
  in
  loop 1 []
