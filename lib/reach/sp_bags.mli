(** SP-bags (Feng–Leiserson) sequential series-parallel reachability.

    Substrate for the MultiBags-equivalent sequential detector: run over
    the pseudo-SP-dag during a left-to-right depth-first execution (create
    treated as spawn), it answers "is a previous accessor logically
    parallel with the currently executing strand" in amortized
    inverse-Ackermann time via union-find bags.

    Each frame (spawn or create task instance, plus the root) owns an
    S-bag, holding frames that are serially before the current execution
    point, and a P-bag, holding frames that are logically parallel with
    it. Returning a child frame moves its S-bag into the parent's P-bag;
    a sync folds the P-bag into the S-bag.

    This component is inherently sequential — the bag contents are only
    meaningful relative to the single current execution point, which is
    why MultiBags cannot run the program in parallel (paper Section 1). *)

type t
type frame

val create : unit -> t * frame
(** Structure plus the root frame. *)

val spawn_child : t -> frame
(** Fresh child frame entering execution (spawn or create). *)

val child_returned : t -> parent:frame -> child:frame -> unit
(** The (fully executed) child frame's S-bag joins the parent's P-bag. *)

val sync : t -> frame -> unit
(** Folds the frame's P-bag into its S-bag. *)

val is_serial_with_current : t -> frame -> bool
(** For an accessor that executed in [frame]: true iff it is serially
    before the current execution point (its bag is an S-bag); false iff
    logically parallel (a P-bag). *)

val frame_id : frame -> int
val words : t -> int
