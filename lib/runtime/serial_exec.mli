(** Depth-first serial executor.

    Runs the program exactly as a one-core Cilk execution would: a spawned
    or created child runs to completion before the continuation (the
    left-to-right depth-first traversal of the dag). Structured-futures
    programs never block at [sync] or [get] under this schedule (paper
    Section 2); a [get] on an unfinished future therefore proves the
    program unstructured and raises {!Program.Unstructured_use}.

    This is the execution the sequential (MultiBags-style) detector
    requires, and the baseline for one-core timings. *)

val run : Events.callbacks -> root:Events.state -> (unit -> 'a) -> 'a * Events.state
(** [run callbacks ~root main] executes [main], threading client states
    from [root]; returns the result and the computation's final state.
    The root frame gets a frame-end implicit sync and a put event, like
    every future task. *)
