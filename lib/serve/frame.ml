module Log_format = Sfr_eventlog.Log_format

let protocol_version = 1

type reply_code =
  | Ok_clean
  | Ok_races
  | Err_torn
  | Err_inconsistent
  | Err_detector
  | Err_protocol
  | Err_overload
  | Err_deadline
  | Err_idle

let reply_code_to_int = function
  | Ok_clean -> 0
  | Ok_races -> 1
  | Err_torn -> 10
  | Err_inconsistent -> 11
  | Err_detector -> 12
  | Err_protocol -> 13
  | Err_overload -> 20
  | Err_deadline -> 21
  | Err_idle -> 22

let reply_code_of_int = function
  | 0 -> Some Ok_clean
  | 1 -> Some Ok_races
  | 10 -> Some Err_torn
  | 11 -> Some Err_inconsistent
  | 12 -> Some Err_detector
  | 13 -> Some Err_protocol
  | 20 -> Some Err_overload
  | 21 -> Some Err_deadline
  | 22 -> Some Err_idle
  | _ -> None

let reply_code_name = function
  | Ok_clean -> "OK_CLEAN"
  | Ok_races -> "OK_RACES"
  | Err_torn -> "ERR_TORN"
  | Err_inconsistent -> "ERR_INCONSISTENT"
  | Err_detector -> "ERR_DETECTOR"
  | Err_protocol -> "ERR_PROTOCOL"
  | Err_overload -> "ERR_OVERLOAD"
  | Err_deadline -> "ERR_DEADLINE"
  | Err_idle -> "ERR_IDLE"

let retryable = function
  | Err_overload | Err_deadline | Err_idle -> true
  | Ok_clean | Ok_races | Err_torn | Err_inconsistent | Err_detector
  | Err_protocol ->
      false

type frame =
  | Hello of { version : int }
  | Data of Bytes.t
  | Close
  | Welcome of { session : int; credit : int }
  | Credit of int
  | Verdict of {
      code : reply_code;
      races : int;
      events : int;
      bytes_analyzed : int;
      message : string;
    }
  | Reject of { code : reply_code; message : string }
  | Stats_req
  | Health_req
  | Metrics_req
  | Stats_reply of string
  | Health_reply of { healthy : bool; detail : string }
  | Metrics_reply of string

let pp fmt = function
  | Hello { version } -> Format.fprintf fmt "HELLO(v%d)" version
  | Data b -> Format.fprintf fmt "DATA(%d bytes)" (Bytes.length b)
  | Close -> Format.fprintf fmt "CLOSE"
  | Welcome { session; credit } ->
      Format.fprintf fmt "WELCOME(session=%d credit=%d)" session credit
  | Credit n -> Format.fprintf fmt "CREDIT(%d)" n
  | Verdict { code; races; events; bytes_analyzed; message } ->
      Format.fprintf fmt "VERDICT(%s races=%d events=%d bytes=%d%s)"
        (reply_code_name code) races events bytes_analyzed
        (if message = "" then "" else " " ^ message)
  | Reject { code; message } ->
      Format.fprintf fmt "REJECT(%s%s)" (reply_code_name code)
        (if message = "" then "" else " " ^ message)
  | Stats_req -> Format.fprintf fmt "STATS"
  | Health_req -> Format.fprintf fmt "HEALTH"
  | Metrics_req -> Format.fprintf fmt "METRICS"
  | Stats_reply s -> Format.fprintf fmt "STATS_REPLY(%d bytes)" (String.length s)
  | Health_reply { healthy; detail } ->
      Format.fprintf fmt "HEALTH_REPLY(%s%s)"
        (if healthy then "healthy" else "degraded")
        (if detail = "" then "" else " " ^ detail)
  | Metrics_reply s ->
      Format.fprintf fmt "METRICS_REPLY(%d bytes)" (String.length s)

(* -- wire tags ---------------------------------------------------------- *)

(* Tag numbering is append-only: the admin-plane requests extend the
   client range past CLOSE, their replies extend the server range past
   REJECT. Never renumber. *)
let tag_hello = 0x01
let tag_data = 0x02
let tag_close = 0x03
let tag_stats_req = 0x04
let tag_health_req = 0x05
let tag_metrics_req = 0x06
let tag_welcome = 0x10
let tag_credit = 0x11
let tag_verdict = 0x12
let tag_reject = 0x13
let tag_stats_reply = 0x14
let tag_health_reply = 0x15
let tag_metrics_reply = 0x16

(* -- encoding ----------------------------------------------------------- *)

let write_string payload s =
  Log_format.write_varint payload (String.length s);
  Buffer.add_string payload s

let encode buf frame =
  let payload = Buffer.create 64 in
  let tag =
    match frame with
    | Hello { version } ->
        Log_format.write_varint payload version;
        tag_hello
    | Data b ->
        Buffer.add_bytes payload b;
        tag_data
    | Close -> tag_close
    | Welcome { session; credit } ->
        Log_format.write_varint payload session;
        Log_format.write_varint payload credit;
        tag_welcome
    | Credit n ->
        Log_format.write_varint payload n;
        tag_credit
    | Verdict { code; races; events; bytes_analyzed; message } ->
        Log_format.write_varint payload (reply_code_to_int code);
        Log_format.write_varint payload races;
        Log_format.write_varint payload events;
        Log_format.write_varint payload bytes_analyzed;
        write_string payload message;
        tag_verdict
    | Reject { code; message } ->
        Log_format.write_varint payload (reply_code_to_int code);
        write_string payload message;
        tag_reject
    | Stats_req -> tag_stats_req
    | Health_req -> tag_health_req
    | Metrics_req -> tag_metrics_req
    | Stats_reply s ->
        Buffer.add_string payload s;
        tag_stats_reply
    | Health_reply { healthy; detail } ->
        Log_format.write_varint payload (if healthy then 1 else 0);
        write_string payload detail;
        tag_health_reply
    | Metrics_reply s ->
        Buffer.add_string payload s;
        tag_metrics_reply
  in
  Buffer.add_char buf (Char.chr tag);
  let body = Buffer.to_bytes payload in
  let len = Bytes.length body in
  Log_format.write_varint buf len;
  Buffer.add_bytes buf body;
  let crc = Log_format.crc32_update Log_format.crc32_init body ~pos:0 ~len in
  Buffer.add_char buf (Char.chr (crc land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xFF))

let to_bytes frame =
  let buf = Buffer.create 64 in
  encode buf frame;
  Buffer.to_bytes buf

(* -- incremental decoding ----------------------------------------------- *)

type error =
  | Bad_tag of int
  | Bad_crc of { expected : int; got : int }
  | Too_large of { len : int; limit : int }
  | Malformed of { tag : int; what : string }

let error_to_string = function
  | Bad_tag t -> Printf.sprintf "unknown frame tag 0x%02x" t
  | Bad_crc { expected; got } ->
      Printf.sprintf "frame CRC mismatch: expected %08x, got %08x" expected got
  | Too_large { len; limit } ->
      Printf.sprintf "frame length %d exceeds limit %d" len limit
  | Malformed { tag; what } ->
      Printf.sprintf "malformed frame payload (tag 0x%02x): %s" tag what

type decoder = {
  max_frame : int;
  mutable data : Bytes.t;  (** compacting window, valid in [lo, hi) *)
  mutable lo : int;
  mutable hi : int;
  mutable failed : error option;
}

let decoder ?(max_frame = 4 * 1024 * 1024) () =
  { max_frame; data = Bytes.create 4096; lo = 0; hi = 0; failed = None }

let decoder_buffered d = d.hi - d.lo

let decoder_feed d bytes ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Frame.decoder_feed";
  let need = d.hi - d.lo + len in
  if d.hi + len > Bytes.length d.data then begin
    let cap = max need (2 * Bytes.length d.data) in
    let data =
      if cap > Bytes.length d.data then Bytes.create cap else d.data
    in
    Bytes.blit d.data d.lo data 0 (d.hi - d.lo);
    d.hi <- d.hi - d.lo;
    d.lo <- 0;
    d.data <- data
  end;
  Bytes.blit bytes pos d.data d.hi len;
  d.hi <- d.hi + len

(* Decode one whole payload whose length and CRC already checked out. *)
let decode_payload tag body =
  let limit = Bytes.length body in
  let varint pos =
    match Log_format.read_varint body ~pos ~limit with
    | Ok (v, next) -> Ok (v, next)
    | Error _ -> Error (Malformed { tag; what = "bad varint" })
  in
  let string_ pos =
    match varint pos with
    | Error e -> Error e
    | Ok (len, next) ->
        if len < 0 || next + len > limit then
          Error (Malformed { tag; what = "string overruns payload" })
        else Ok (Bytes.sub_string body next len, next + len)
  in
  let exact pos frame =
    if pos = limit then Ok frame
    else Error (Malformed { tag; what = "trailing payload bytes" })
  in
  let reply pos =
    match varint pos with
    | Error e -> Error e
    | Ok (c, next) -> (
        match reply_code_of_int c with
        | Some code -> Ok (code, next)
        | None ->
            Error (Malformed { tag; what = Printf.sprintf "unknown reply code %d" c }))
  in
  if tag = tag_hello then
    match varint 0 with
    | Error e -> Error e
    | Ok (version, p) -> exact p (Hello { version })
  else if tag = tag_data then Ok (Data body)
  else if tag = tag_close then exact 0 Close
  else if tag = tag_welcome then
    match varint 0 with
    | Error e -> Error e
    | Ok (session, p) -> (
        match varint p with
        | Error e -> Error e
        | Ok (credit, p) -> exact p (Welcome { session; credit }))
  else if tag = tag_credit then
    match varint 0 with
    | Error e -> Error e
    | Ok (n, p) -> exact p (Credit n)
  else if tag = tag_verdict then
    match reply 0 with
    | Error e -> Error e
    | Ok (code, p) -> (
        match varint p with
        | Error e -> Error e
        | Ok (races, p) -> (
            match varint p with
            | Error e -> Error e
            | Ok (events, p) -> (
                match varint p with
                | Error e -> Error e
                | Ok (bytes_analyzed, p) -> (
                    match string_ p with
                    | Error e -> Error e
                    | Ok (message, p) ->
                        exact p
                          (Verdict { code; races; events; bytes_analyzed; message })))))
  else if tag = tag_reject then
    match reply 0 with
    | Error e -> Error e
    | Ok (code, p) -> (
        match string_ p with
        | Error e -> Error e
        | Ok (message, p) -> exact p (Reject { code; message }))
  else if tag = tag_stats_req then exact 0 Stats_req
  else if tag = tag_health_req then exact 0 Health_req
  else if tag = tag_metrics_req then exact 0 Metrics_req
  else if tag = tag_stats_reply then Ok (Stats_reply (Bytes.to_string body))
  else if tag = tag_health_reply then
    match varint 0 with
    | Error e -> Error e
    | Ok (h, p) -> (
        match string_ p with
        | Error e -> Error e
        | Ok (detail, p) -> exact p (Health_reply { healthy = h <> 0; detail }))
  else if tag = tag_metrics_reply then Ok (Metrics_reply (Bytes.to_string body))
  else Error (Bad_tag tag)

let decoder_next d =
  match d.failed with
  | Some e -> Error e
  | None ->
      if d.hi - d.lo < 1 then Ok None
      else begin
        let tag = Char.code (Bytes.get d.data d.lo) in
        match Log_format.read_varint d.data ~pos:(d.lo + 1) ~limit:d.hi with
        | Error (Log_format.Truncated _) -> Ok None
        | Error _ ->
            let e = Malformed { tag; what = "unreadable length varint" } in
            d.failed <- Some e;
            Error e
        | Ok (len, body_pos) ->
            if len > d.max_frame then begin
              let e = Too_large { len; limit = d.max_frame } in
              d.failed <- Some e;
              Error e
            end
            else if body_pos + len + 4 > d.hi then Ok None
            else begin
              let body = Bytes.sub d.data body_pos len in
              let crc_pos = body_pos + len in
              let got =
                Char.code (Bytes.get d.data crc_pos)
                lor (Char.code (Bytes.get d.data (crc_pos + 1)) lsl 8)
                lor (Char.code (Bytes.get d.data (crc_pos + 2)) lsl 16)
                lor (Char.code (Bytes.get d.data (crc_pos + 3)) lsl 24)
              in
              let expected =
                Log_format.crc32_update Log_format.crc32_init body ~pos:0 ~len
              in
              if got <> expected then begin
                let e = Bad_crc { expected; got } in
                d.failed <- Some e;
                Error e
              end
              else begin
                d.lo <- crc_pos + 4;
                if d.lo = d.hi then begin
                  d.lo <- 0;
                  d.hi <- 0
                end;
                match decode_payload tag body with
                | Ok frame -> Ok (Some frame)
                | Error e ->
                    d.failed <- Some e;
                    Error e
              end
            end
      end
