module Events = Sfr_runtime.Events
module Metrics = Sfr_obs.Metrics

let m_replayed = Metrics.counter "eventlog.replay.events"

type error =
  | Stuck of { replayed : int; worker : int; index : int; missing : int }
  | Redefined of { worker : int; index : int; id : int }

let error_to_string = function
  | Stuck { replayed; worker; index; missing } ->
      Printf.sprintf
        "inconsistent log: replay stuck after %d events (worker %d event %d \
         waits on state %d, which nothing defines)"
        replayed worker index missing
  | Redefined { worker; index; id } ->
      Printf.sprintf
        "inconsistent log: worker %d event %d redefines state %d" worker index
        id

exception Redefined_exn of int

let drive reader ~apply ~root =
  let n_workers = Reader.n_workers reader in
  let streams = Array.init n_workers (fun worker -> Reader.stream reader ~worker) in
  let heads = Array.make n_workers 0 in
  let states : Events.state option array =
    Array.make (Reader.n_states reader) None
  in
  states.(0) <- Some root;
  let lookup id =
    match states.(id) with
    | Some s -> s
    | None -> assert false (* readiness-checked before apply *)
  in
  let define id s =
    match states.(id) with
    | None -> states.(id) <- Some s
    | Some _ -> raise (Redefined_exn id)
  in
  let ready ev =
    List.for_all (fun id -> states.(id) <> None) (Log_format.inputs ev)
  in
  let remaining = ref (Reader.n_events reader) in
  let replayed = ref 0 in
  let result = ref (Ok ()) in
  (* Greedy topological merge: sweep the streams, draining every ready
     head; real time witnesses that some head is always ready for a log
     produced by the recorder, so a full fruitless sweep means the log is
     inconsistent. *)
  (try
     while !remaining > 0 do
       let progress = ref false in
       for w = 0 to n_workers - 1 do
         let stream = streams.(w) in
         let continue_ = ref true in
         while !continue_ && heads.(w) < Array.length stream do
           let ev = stream.(heads.(w)) in
           if ready ev then begin
             (try apply ~lookup ~define ev
              with Redefined_exn id ->
                result := Error (Redefined { worker = w; index = heads.(w); id });
                raise Exit);
             heads.(w) <- heads.(w) + 1;
             incr replayed;
             decr remaining;
             progress := true
           end
           else continue_ := false
         done
       done;
       if not !progress then begin
         (* name the first blocked stream and the state it waits on *)
         let blocked = ref None in
         for w = n_workers - 1 downto 0 do
           if heads.(w) < Array.length streams.(w) then
             let ev = streams.(w).(heads.(w)) in
             match
               List.find_opt
                 (fun id -> states.(id) = None)
                 (Log_format.inputs ev)
             with
             | Some missing -> blocked := Some (w, heads.(w), missing)
             | None -> ()
         done;
         (match !blocked with
         | Some (worker, index, missing) ->
             result :=
               Error (Stuck { replayed = !replayed; worker; index; missing })
         | None ->
             (* streams drained early: footer count was higher than the
                events decoded — the reader prevents this, but stay total *)
             result :=
               Error
                 (Stuck { replayed = !replayed; worker = 0; index = 0; missing = 0 }));
         raise Exit
       end
     done
   with Exit -> ());
  match !result with
  | Ok () ->
      Metrics.add m_replayed !replayed;
      Ok !replayed
  | Error e -> Error e

let apply_callbacks (cb : Events.callbacks) ~lookup ~define ev =
  match (ev : Log_format.event) with
  | Spawn { cur; child; cont } ->
      let c, t = cb.on_spawn (lookup cur) in
      define child c;
      define cont t
  | Create { cur; child; cont } ->
      let c, t = cb.on_create (lookup cur) in
      define child c;
      define cont t
  | Sync { cur; spawned_lasts; created_firsts; next } ->
      define next
        (cb.on_sync ~cur:(lookup cur)
           ~spawned_lasts:(List.map lookup spawned_lasts)
           ~created_firsts:(List.map lookup created_firsts))
  | Put { cur } -> cb.on_put (lookup cur)
  | Get { cur; put; next } ->
      define next (cb.on_get ~cur:(lookup cur) ~put:(lookup put))
  | Returned { cont; child_last } ->
      cb.on_returned ~cont:(lookup cont) ~child_last:(lookup child_last)
  | Read { cur; loc } -> cb.on_read (lookup cur) loc
  | Write { cur; loc } -> cb.on_write (lookup cur) loc
  | Work { cur; amount } -> cb.on_work (lookup cur) amount

let run reader ~callbacks ~root =
  drive reader ~apply:(apply_callbacks callbacks) ~root

let run_detector reader (det : Sfr_detect.Detector.t) =
  run reader ~callbacks:det.Sfr_detect.Detector.callbacks
    ~root:det.Sfr_detect.Detector.root
