(** Continuous telemetry: a sampler domain that turns the end-of-run
    snapshot surfaces ({!Metrics}, GC quick-stat, scheduler probes) into
    a bounded time-series, exported three ways.

    {2 Model}

    [start] spawns one sampler domain. Every [sample_ms] (default 10) it
    captures one {!sample}: per-interval {e deltas} of every monotone
    {!Metrics} counter (histograms contribute their [.count]), absolute
    gauge values ({!Metrics} [Max] counters, the scheduler probe, GC
    quick-stat), and any {!mark} labels posted since the previous tick.
    Samples land in a bounded ring of immutable records — the single
    writer is the sampler domain, a record store is one pointer write,
    so concurrent readers can at worst miss the newest entry, never see
    a torn one. When the ring wraps, the {e oldest} samples are
    overwritten; a slow (or absent) consumer costs memory-bounded
    history, not unbounded growth.

    A baseline sample is taken immediately at [start] and a final one
    during [stop] after the sampler quiesces, so even a run shorter than
    one period exports at least two samples.

    {2 Exports}

    - {b JSONL} ([?out]): a header line
      [{"telemetry_schema":1,"sample_ms":…,"ring_capacity":…,"unix_time":…}]
      followed by one JSON object per sample
      ([{"seq":…,"t_ms":…,"marks":[…],"counters":{…},"gauges":{…}}]),
      flushed per line; a {!Flight} crash hook flushes the tail so a
      dying process loses no completed sample. Counters that did not
      move since the previous tick are elided from the line.
    - {b Prometheus} text exposition via {!render_prometheus} (and the
      [racedetect metrics-dump] subcommand).
    - {b Chrome counter events}: while {!Trace_event} collection is on,
      every sampled series is mirrored as a [ph:"C"] event, so
      [--trace-out] traces gain filled counter tracks under the spans.

    {2 Cost}

    Disarmed, the probe-side surface ({!armed}, {!mark}) is one atomic
    flag load — the same discipline as {!Prof} and {!Flight}. Armed, all
    sampling work happens on the sampler's own domain; mutator domains
    pay only the plain-int probe counters they already maintain.

    Sampling skew caveat: ticks are scheduled with [Unix.sleepf], so
    under load the actual inter-sample gap exceeds [sample_ms]; consumers
    must use each sample's [t_ms] (monotonic, from {!Prof.now_ns}), never
    assume a fixed period. *)

type sample = {
  seq : int;  (** 0-based tick index (monotonic, never reused) *)
  t_ms : float;  (** monotonic ms since [start] *)
  marks : string list;  (** {!mark} labels posted since the previous tick *)
  counters : (string * int) list;  (** per-interval deltas; zero deltas elided *)
  gauges : (string * int) list;  (** absolute values at the tick *)
}

val schema_version : int
val default_sample_ms : int
val default_ring_capacity : int

(** {1 Lifecycle} *)

val start :
  ?sample_ms:int ->
  ?ring_capacity:int ->
  ?out:string ->
  ?probe:(unit -> (string * int) list) ->
  unit ->
  unit
(** Arm and spawn the sampler. Idempotent: a second [start] while running
    is a no-op (one sampler per process). [ring_capacity] is rounded up
    to a power of two (min 2, default {!default_ring_capacity}). [probe]
    is polled once per tick on the sampler domain and contributes gauge
    series (e.g. [Sfr_runtime.Par_exec.probe_metrics]); it must be safe
    to call from a foreign domain and should never raise. [out] opens a
    JSONL stream (truncating).
    @raise Invalid_argument if [sample_ms < 1].
    @raise Sys_error if [out] cannot be opened. *)

val stop : unit -> unit
(** Take a final sample, join the sampler domain, close the JSONL
    stream. Idempotent. The ring remains readable ({!samples},
    {!pp_timeline}) until the next [start]. *)

val running : unit -> bool

val armed : unit -> bool
(** One atomic load; [true] between [start] and [stop]. Runtime probe
    sites gate their per-worker stat writes on this. *)

val mark : string -> unit
(** Attach a label to the next sample (and, when tracing, emit a
    {!Trace_event.instant}). Thread-safe; a no-op (one atomic load)
    while disarmed. *)

(** {1 Ring access} *)

val samples : unit -> sample list
(** Retained samples, oldest first. Safe (but racy at the newest end)
    while the sampler runs; exact after {!stop}. Empty before the first
    [start]. *)

val sample_count : unit -> int
(** Total samples taken since [start], including ones the ring has
    overwritten. *)

val pp_timeline : Format.formatter -> unit
(** Render the retained ring as a utilization-over-time table (tasks/s,
    steals/s, deque depth, GC heap words, marks). *)

(** {1 Wire formats} *)

val sample_to_json : sample -> string
(** One JSONL line (no trailing newline), parseable by {!Json_min}. *)

val lint_jsonl : string -> (int, string) result
(** Validate a whole JSONL telemetry file (header + samples) and return
    the sample count, or a ["line N: …"] diagnostic. *)

val render_prometheus : ?gauges:(string * int) list -> unit -> string
(** Current {!Metrics.export} state in Prometheus text exposition format
    (version 0.0.4): [# HELP]/[# TYPE] per family, metric names mangled
    to [sfr_]-prefixed snake case, histograms as cumulative
    [_bucket{le="…"}] series closed by [le="+Inf"] plus [_sum]/[_count].
    [gauges] appends extra gauge families (e.g. a live scheduler
    probe). *)

val check_prometheus : string -> (int, string) result
(** Line-by-line grammar check of a text exposition: comment shape,
    metric/label name character sets, label quoting, numeric values,
    every sample preceded by a [# TYPE] for its family ([_bucket]/
    [_sum]/[_count] resolve to their histogram). Returns the number of
    sample lines, or a ["line N: …"] diagnostic. *)
