(* Detector correctness tests.

   Unit tests pin down the canonical racy/race-free patterns (including
   the future-specific ones: serialization through a get edge, Case-3
   non-ancestor reachability through gp, Case-2 ancestor reachability
   gated by cp). The differential property then checks, over random
   structured programs, that every detector's per-location race verdict —
   under serial AND parallel executions, all configurations — equals the
   ground-truth oracle's. *)

module Dag = Sfr_dag.Dag
module Events = Sfr_runtime.Events
module Program = Sfr_runtime.Program
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order
module F_order = Sfr_detect.F_order
module Multibags = Sfr_detect.Multibags
module Naive_detector = Sfr_detect.Naive_detector

let check = Alcotest.check
let int = Alcotest.int

(* run [prog] serially under [det]; return racy locations minus [base] *)
let detect_serial det prog ~base =
  let (), _ = Serial_exec.run det.Detector.callbacks ~root:det.Detector.root prog in
  List.map (fun l -> l - base) (Detector.racy_locations det)

let detect_par ~workers det prog ~base =
  let (), _ =
    Par_exec.run ~workers det.Detector.callbacks ~root:det.Detector.root prog
  in
  List.map (fun l -> l - base) (Detector.racy_locations det)

let oracle prog ~base =
  let trace, cb, root = Trace.make ~log_accesses:true () in
  let (), _ = Serial_exec.run cb ~root prog in
  let v = Naive_detector.analyze (Trace.dag trace) (Trace.accesses trace) in
  List.map (fun l -> l - base) v.Naive_detector.racy_locations

let all_detectors () =
  [
    ("sf-order", Sf_order.make (), true);
    ("sf-order/2pf", Sf_order.make ~readers:`Two_per_future (), true);
    ("sf-order/hashed", Sf_order.make ~sets:`Hashed (), true);
    ("f-order", F_order.make (), true);
    ("multibags", Multibags.make (), false);
  ]

(* ------------------------------------------------------------------ *)
(* Canonical patterns                                                   *)
(* ------------------------------------------------------------------ *)

(* two parallel writes: race *)
let prog_parallel_writes a () =
  Program.spawn (fun () -> Program.wr a 0 1);
  Program.wr a 0 2;
  Program.sync ()

let test_parallel_writes () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_parallel_writes a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": WW race found") [ 0 ] racy)
    (all_detectors ())

(* write then sync then read: no race *)
let prog_sync_serializes a () =
  Program.spawn (fun () -> Program.wr a 0 1);
  Program.sync ();
  ignore (Program.rd a 0)

let test_sync_serializes () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_sync_serializes a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": no race across sync") [] racy)
    (all_detectors ())

(* read before sync races the spawned write *)
let prog_read_races_write a () =
  Program.spawn (fun () -> Program.wr a 0 1);
  ignore (Program.rd a 0);
  Program.sync ()

let test_read_races_write () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_read_races_write a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": RW race") [ 0 ] racy)
    (all_detectors ())

(* a get edge serializes the future's write against the reader *)
let prog_get_serializes a () =
  let h = Program.create (fun () -> Program.wr a 0 1) in
  ignore (Program.get h);
  ignore (Program.rd a 0)

let test_get_serializes () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_get_serializes a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": get serializes") [] racy)
    (all_detectors ())

(* without the get, the future's write races the read *)
let prog_future_races a () =
  let _h = Program.create (fun () -> Program.wr a 0 1) in
  ignore (Program.rd a 0)

let test_future_races () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_future_races a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": ungotten future races") [ 0 ] racy)
    (all_detectors ())

(* Case 3 (gp): F's write reaches a non-descendant reader via the get in
   the root; no race. Sibling futures with a get-chained dependence. *)
let prog_case3_serial a () =
  let f = Program.create (fun () -> Program.wr a 0 1) in
  ignore (Program.get f);
  let g = Program.create (fun () -> ignore (Program.rd a 0)) in
  ignore (Program.get g)

let test_case3_serializes () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_case3_serial a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": case-3 serialization via gp") [] racy)
    (all_detectors ())

(* sibling futures with no dependence: race *)
let prog_case3_race a () =
  let f = Program.create (fun () -> Program.wr a 0 1) in
  let g = Program.create (fun () -> ignore (Program.rd a 0)) in
  ignore (Program.get f);
  ignore (Program.get g)

let test_case3_races () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_case3_race a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": sibling futures race") [ 0 ] racy)
    (all_detectors ())

(* Case 2 (cp + pseudo-SP-dag): ancestor future writes before creating a
   descendant that reads — serialized through the create path. *)
let prog_case2_serial a () =
  Program.wr a 0 1;
  let f =
    Program.create (fun () ->
        let g = Program.create (fun () -> ignore (Program.rd a 0)) in
        ignore (Program.get g))
  in
  ignore (Program.get f)

let test_case2_serializes () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_case2_serial a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": case-2 serialization") [] racy)
    (all_detectors ())

(* Case 2 race: the ancestor writes *after* creating the reading
   descendant (in its continuation), which is parallel with it. *)
let prog_case2_race a () =
  let f =
    Program.create (fun () ->
        let _g = Program.create (fun () -> ignore (Program.rd a 0)) in
        Program.wr a 0 1)
  in
  ignore (Program.get f)

let test_case2_races () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_case2_race a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": descendant races continuation") [ 0 ] racy)
    (all_detectors ())

(* phantom-path guard: the pseudo-SP-dag has a path from a future's last
   node to the creating frame's sync, but the real dag does not. A strand
   after that sync must still race with the ungotten future's write. *)
let prog_phantom_guard a () =
  Program.spawn (fun () -> ());
  let _h = Program.create (fun () -> Program.wr a 0 1) in
  Program.sync ();
  (* fake join would claim the future completed before this read *)
  ignore (Program.rd a 0)

let test_phantom_guard () =
  List.iter
    (fun (name, det, _) ->
      let a = Program.alloc 1 0 in
      let racy = detect_serial det (prog_phantom_guard a) ~base:(Program.base a) in
      check (Alcotest.list int) (name ^ ": phantom path rejected") [ 0 ] racy)
    (all_detectors ())

(* ------------------------------------------------------------------ *)
(* Parallel execution of the canonical patterns                          *)
(* ------------------------------------------------------------------ *)

let test_parallel_patterns () =
  let patterns =
    [
      ("WW race", prog_parallel_writes, [ 0 ]);
      ("sync serializes", prog_sync_serializes, ([] : int list));
      ("get serializes", prog_get_serializes, []);
      ("case3 serial", prog_case3_serial, []);
      ("case3 race", prog_case3_race, [ 0 ]);
      ("case2 serial", prog_case2_serial, []);
      ("phantom guard", prog_phantom_guard, [ 0 ]);
    ]
  in
  List.iter
    (fun workers ->
      List.iter
        (fun (pname, prog, expected) ->
          List.iter
            (fun (dname, det, parallel_ok) ->
              if parallel_ok then begin
                let a = Program.alloc 1 0 in
                let racy = detect_par ~workers det (prog a) ~base:(Program.base a) in
                check (Alcotest.list int)
                  (Printf.sprintf "%s under %s (P=%d)" pname dname workers)
                  expected racy
              end)
            (all_detectors ()))
        patterns)
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Differential property against the oracle                             *)
(* ------------------------------------------------------------------ *)

let gen_seed = QCheck2.Gen.int_bound 1_000_000

let differential_test ~name ~count ~runs =
  QCheck2.Test.make ~name ~count gen_seed (fun seed ->
      let t = Synthetic.generate ~seed ~ops:90 ~depth:5 ~locs:10 () in
      let inst = Synthetic.instantiate t in
      let expected = oracle inst.Synthetic.program ~base:inst.Synthetic.mem_base in
      List.for_all
        (fun run ->
          let inst = Synthetic.instantiate t in
          run inst = expected)
        runs)

let prop_serial_differential =
  differential_test ~name:"all detectors = oracle (serial)" ~count:120
    ~runs:
      (List.map
         (fun make (inst : Synthetic.instance) ->
           detect_serial (make ()) inst.Synthetic.program
             ~base:inst.Synthetic.mem_base)
         [
           (fun () -> Sf_order.make ());
           (fun () -> Sf_order.make ~readers:`Two_per_future ());
           (fun () -> Sf_order.make ~sets:`Hashed ());
           (fun () -> Sf_order.make ~history:`Unsynchronized ());
           (fun () -> Sf_order.make ~history:`Lockfree ());
           (fun () -> F_order.make ());
           (fun () -> F_order.make ~history:`Unsynchronized ());
           (fun () -> Multibags.make ());
         ])

let prop_parallel_differential =
  differential_test ~name:"parallel detectors = oracle (P in 1..3)" ~count:60
    ~runs:
      (List.concat_map
         (fun workers ->
           List.map
             (fun make (inst : Synthetic.instance) ->
               detect_par ~workers (make ()) inst.Synthetic.program
                 ~base:inst.Synthetic.mem_base)
             [
               (fun () -> Sf_order.make ());
               (fun () -> Sf_order.make ~readers:`Two_per_future ());
               (fun () -> Sf_order.make ~history:`Lockfree ());
               (fun () -> F_order.make ~history:`Lockfree ());
               (fun () -> F_order.make ());
             ])
         [ 1; 2; 3 ])

(* The 2k-reader bound: with the Two_per_future policy, at most 2 readers
   per (location, future), hence <= 2k per location overall. *)
let prop_reader_bound =
  QCheck2.Test.make ~name:"Two_per_future stores <= 2k readers per location"
    ~count:80 gen_seed (fun seed ->
      let t = Synthetic.generate ~seed ~ops:120 ~depth:5 ~locs:4 () in
      let inst = Synthetic.instantiate t in
      let det = Sf_order.make ~readers:`Two_per_future () in
      let _ = detect_serial det inst.Synthetic.program ~base:0 in
      let _, futures, _ = Synthetic.stats t in
      det.Detector.max_readers () <= 2 * (futures + 1))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_serial_differential; prop_parallel_differential; prop_reader_bound ]


(* ------------------------------------------------------------------ *)
(* Structured-use discipline checker                                    *)
(* ------------------------------------------------------------------ *)

module Discipline = Sfr_detect.Discipline

let run_discipline prog =
  let d = Discipline.make () in
  let (), _ =
    Serial_exec.run d.Discipline.callbacks ~root:d.Discipline.root prog
  in
  d.Discipline.violations ()

let test_discipline_clean_patterns () =
  List.iter
    (fun (name, prog) ->
      let a = Program.alloc 1 0 in
      check int (name ^ ": no violation") 0 (List.length (run_discipline (prog a))))
    [
      ("get serializes", prog_get_serializes);
      ("case3 serial", prog_case3_serial);
      ("case2 serial", prog_case2_serial);
      ("phantom guard", prog_phantom_guard);
    ]

(* a handle smuggled between parallel spawn branches through a side cell:
   runs fine serially, but the get is unreachable from the create's
   continuation — exactly the unstructured use the checker must flag *)
let test_discipline_flags_smuggled_handle () =
  let prog () =
    let cell : int Program.handle option Atomic.t = Atomic.make None in
    Program.spawn (fun () ->
        let h = Program.create (fun () -> 1) in
        Atomic.set cell (Some h));
    Program.spawn (fun () ->
        match Atomic.get cell with
        | Some h -> ignore (Program.get h)
        | None -> ());
    Program.sync ()
  in
  match run_discipline prog with
  | [ v ] ->
      check Alcotest.bool "flags the smuggled future" true (v.Discipline.future > 0)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let prop_discipline_accepts_structured =
  QCheck2.Test.make ~name:"discipline checker accepts structured programs"
    ~count:120 gen_seed (fun seed ->
      let t = Synthetic.generate ~seed ~ops:120 ~depth:5 ~locs:8 () in
      let inst = Synthetic.instantiate t in
      run_discipline inst.Synthetic.program = [])

(* Discipline and SF-Order composed through Events.pair: both clients see
   the same run; the detector still matches the oracle *)
let test_discipline_pairs_with_detector () =
  let t = Synthetic.generate ~seed:1234 ~ops:120 ~depth:5 ~locs:8 () in
  let inst = Synthetic.instantiate t in
  let expected = oracle inst.Synthetic.program ~base:inst.Synthetic.mem_base in
  let inst = Synthetic.instantiate t in
  let d = Discipline.make () in
  let det = Sf_order.make () in
  let cb = Events.pair d.Discipline.callbacks det.Detector.callbacks in
  let (), _ =
    Serial_exec.run cb
      ~root:(Events.Pair_state (d.Discipline.root, det.Detector.root))
      inst.Synthetic.program
  in
  check int "no violations" 0 (List.length (d.Discipline.violations ()));
  check (Alcotest.list int) "paired detector still matches oracle" expected
    (List.map
       (fun l -> l - inst.Synthetic.mem_base)
       (Detector.racy_locations det))


(* ------------------------------------------------------------------ *)
(* Soundness at scale: race-free programs yield zero reports            *)
(* ------------------------------------------------------------------ *)

let prop_race_free_soundness =
  QCheck2.Test.make ~name:"race-free programs: no detector reports anything"
    ~count:80 gen_seed (fun seed ->
      let t = Synthetic.generate ~race_free:true ~seed ~ops:120 ~depth:5 ~locs:6 () in
      List.for_all
        (fun (make, parallel) ->
          let det : Detector.t = make () in
          let inst = Synthetic.instantiate t in
          let (), _ =
            if parallel then
              Par_exec.run ~workers:2 det.Detector.callbacks
                ~root:det.Detector.root inst.Synthetic.program
            else
              Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
                inst.Synthetic.program
          in
          Detector.racy_locations det = [])
        [
          ((fun () -> Sf_order.make ()), false);
          ((fun () -> Sf_order.make ~readers:`Two_per_future ()), false);
          ((fun () -> Multibags.make ()), false);
          ((fun () -> F_order.make ()), false);
          ((fun () -> Sf_order.make ()), true);
          ((fun () -> Sf_order.make ~history:`Lockfree ()), true);
          ((fun () -> F_order.make ()), true);
        ])

(* ------------------------------------------------------------------ *)
(* SF-Order's Precedes = full-dag reachability, for all strand pairs    *)
(* ------------------------------------------------------------------ *)

(* wrap callbacks so every produced strand state is collected *)
let collecting (cb : Events.callbacks) collect =
  {
    cb with
    Events.on_spawn =
      (fun s ->
        let a, b = cb.Events.on_spawn s in
        collect a;
        collect b;
        (a, b));
    on_create =
      (fun s ->
        let a, b = cb.Events.on_create s in
        collect a;
        collect b;
        (a, b));
    on_sync =
      (fun ~cur ~spawned_lasts ~created_firsts ->
        let r = cb.Events.on_sync ~cur ~spawned_lasts ~created_firsts in
        collect r;
        r);
    on_get =
      (fun ~cur ~put ->
        let r = cb.Events.on_get ~cur ~put in
        collect r;
        r);
  }

let prop_sf_precedes_is_reachability =
  QCheck2.Test.make
    ~name:"sf-order Precedes = ground-truth SF-dag reachability" ~count:60
    gen_seed (fun seed ->
      let t = Synthetic.generate ~seed ~ops:90 ~depth:5 ~locs:8 () in
      let inst = Synthetic.instantiate t in
      let trace, trace_cb, trace_root = Trace.make () in
      let det, precedes = Sf_order.make_with_precedes () in
      let states = ref [] in
      let collect = function
        | Events.Pair_state (tr, sf) -> states := (Trace.node_of tr, sf) :: !states
        | _ -> ()
      in
      let cb = collecting (Events.pair trace_cb det.Detector.callbacks) collect in
      let root = Events.Pair_state (trace_root, det.Detector.root) in
      collect root;
      let (), _ = Serial_exec.run cb ~root inst.Synthetic.program in
      let oracle = Sfr_dag.Dag_algo.build_oracle (Trace.dag trace) Sfr_dag.Dag_algo.Full in
      List.for_all
        (fun (nu, su) ->
          List.for_all
            (fun (nv, sv) ->
              nu = nv
              || precedes su sv = Sfr_dag.Dag_algo.precedes oracle nu nv)
            !states)
        !states)

(* deep differential sweep: larger programs, all detectors, run as a
   single slow case *)
let test_deep_differential () =
  for seed = 1000 to 1011 do
    let t = Synthetic.generate ~seed ~ops:600 ~depth:7 ~locs:24 () in
    let inst = Synthetic.instantiate t in
    let expected = oracle inst.Synthetic.program ~base:inst.Synthetic.mem_base in
    List.iter
      (fun (name, make) ->
        let det : Detector.t = make () in
        let inst = Synthetic.instantiate t in
        let (), _ =
          Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
            inst.Synthetic.program
        in
        Alcotest.(check (list int))
          (Printf.sprintf "%s seed %d" name seed)
          expected
          (List.map
             (fun l -> l - inst.Synthetic.mem_base)
             (Detector.racy_locations det)))
      [
        ("sf-order", fun () -> Sf_order.make ());
        ("sf-order/2pf", fun () -> Sf_order.make ~readers:`Two_per_future ());
        ("f-order", fun () -> F_order.make ());
        ("multibags", fun () -> Multibags.make ());
      ]
  done

let () =
  Alcotest.run "detect"
    [
      ( "patterns",
        [
          Alcotest.test_case "parallel writes race" `Quick test_parallel_writes;
          Alcotest.test_case "sync serializes" `Quick test_sync_serializes;
          Alcotest.test_case "read races write" `Quick test_read_races_write;
          Alcotest.test_case "get serializes" `Quick test_get_serializes;
          Alcotest.test_case "ungotten future races" `Quick test_future_races;
          Alcotest.test_case "case 3 serializes" `Quick test_case3_serializes;
          Alcotest.test_case "case 3 races" `Quick test_case3_races;
          Alcotest.test_case "case 2 serializes" `Quick test_case2_serializes;
          Alcotest.test_case "case 2 races" `Quick test_case2_races;
          Alcotest.test_case "phantom path guard" `Quick test_phantom_guard;
        ] );
      ( "parallel-exec",
        [ Alcotest.test_case "patterns under parallel execution" `Quick test_parallel_patterns ] );
      ("differential", qtests);
      ( "deep",
        [ Alcotest.test_case "600-op differential sweep" `Slow test_deep_differential ] );
      ( "strengthened",
        [
          QCheck_alcotest.to_alcotest prop_race_free_soundness;
          QCheck_alcotest.to_alcotest prop_sf_precedes_is_reachability;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "clean patterns" `Quick test_discipline_clean_patterns;
          Alcotest.test_case "flags smuggled handle" `Quick
            test_discipline_flags_smuggled_handle;
          Alcotest.test_case "pairs with detector" `Quick
            test_discipline_pairs_with_detector;
          QCheck_alcotest.to_alcotest prop_discipline_accepts_structured;
        ] );
    ]
