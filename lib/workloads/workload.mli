(** Common shape of the paper's five benchmarks (Figure 3): matrix
    multiplication, mergesort, Smith-Waterman, Heart Wall, and ferret.

    Each workload builds fresh program instances at several scales; the
    [Paper] scale matches the published input sizes (hours of wall-clock
    under full detection on this substrate — the bench harness defaults
    to [Default] and reports the paper's published characteristics
    alongside; see EXPERIMENTS.md). [inject_race] plants one determinacy
    race by removing a synchronization edge, for detector validation. *)

type scale = Tiny | Small | Default | Large | Paper

type instance = {
  program : unit -> unit;
  verify : unit -> bool;
      (** call after execution: checks the computation's output against an
          uninstrumented reference implementation. *)
  mem_base : int;
      (** smallest location ID used; normalizes race verdicts across
          instances. *)
}

type t = {
  name : string;
  description : string;
  instantiate : ?inject_race:bool -> scale -> instance;
  paper_figure3 : string list;
      (** the paper's Figure 3 row: N, B, reads, writes, queries, futures,
          nodes — republished next to our measured counts. *)
}

val pp_scale : Format.formatter -> scale -> unit
val scale_of_string : string -> scale option
