type caps = {
  supports_parallel : bool;
  oracle_grade : bool;
  shardable : bool;
  figure : bool;
  scale_ceiling : string option;
}

type entry = {
  name : string;
  label : string;
  doc : string;
  make : unit -> Detector.t;
  caps : caps;
}

(* Registration order is presentation order: the harness figure tables
   iterate [all ()] filtered on [caps.figure], so built-ins below keep
   the historical MultiBags / F-Order / SF-Order column order. *)
let table : entry list ref = ref []

let find name = List.find_opt (fun e -> e.name = name) !table
let all () = !table
let names () = List.map (fun e -> e.name) !table

let register e =
  if find e.name <> None then
    invalid_arg
      (Printf.sprintf "Sfr_detect.Registry.register: duplicate detector %S"
         e.name);
  table := !table @ [ e ]

let caps_string c =
  String.concat ","
    ((if c.supports_parallel then [ "parallel" ] else [ "serial" ])
    @ (if c.shardable then [ "shard" ] else [])
    @ (if c.oracle_grade then [ "oracle" ] else [])
    @ match c.scale_ceiling with Some s -> [ "<=" ^ s ] | None -> [])

let listing () =
  let b = Buffer.create 256 in
  Buffer.add_string b "registered detectors (-d NAME):\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %-14s %-22s %s\n" e.name (caps_string e.caps) e.doc))
    !table;
  Buffer.contents b

let unknown name =
  Printf.sprintf "unknown detector %S\n%s" name (listing ())

(* Built-in backends. Constructed here (not via side-effect-only modules)
   so the archive linker cannot drop them: any client that links the
   registry gets the full table. *)
let () =
  register
    {
      name = "multibags";
      label = "MultiBags";
      doc = "sequential MultiBags baseline (depth-first execution only)";
      make = (fun () -> Multibags.make ());
      caps =
        {
          supports_parallel = false;
          oracle_grade = true;
          shardable = false;
          figure = true;
          scale_ceiling = None;
        };
    };
  register
    {
      name = "f-order";
      label = "F-Order";
      doc = "general-futures F-Order baseline (nsp hash tables)";
      make = (fun () -> F_order.make ());
      caps =
        {
          supports_parallel = true;
          oracle_grade = false;
          shardable = false;
          figure = true;
          scale_ceiling = None;
        };
    };
  register
    {
      name = "sf-order";
      label = "SF-Order";
      doc = "the paper's SF-Order detector (default)";
      make = (fun () -> Sf_order.make ());
      caps =
        {
          supports_parallel = true;
          oracle_grade = false;
          shardable = true;
          figure = true;
          scale_ceiling = None;
        };
    };
  register
    {
      name = "sf-order-2pf";
      label = "SF-Order-2pf";
      doc = "SF-Order with the proved 2-readers-per-future bound";
      make = (fun () -> Sf_order.make ~readers:`Two_per_future ());
      caps =
        {
          supports_parallel = true;
          oracle_grade = false;
          shardable = false;
          figure = false;
          scale_ceiling = None;
        };
    };
  register
    {
      name = "vc-order";
      label = "VC-Order";
      doc = "async-finish vector-clock detector (arXiv 2112.04352)";
      make = (fun () -> Vc_order.make ());
      caps =
        {
          supports_parallel = true;
          oracle_grade = true;
          shardable = false;
          figure = false;
          scale_ceiling = None;
        };
    }
