(* Content-based similarity search as a futures pipeline (the ferret
   pattern): segment -> extract -> index -> rank, one structured future
   per stage instance, under parallel execution with on-the-fly race
   detection — demonstrating that SF-Order runs *while* the program runs
   in parallel, which the sequential MultiBags-style detector cannot.

     dune exec examples/pipeline_search.exe                                *)

module Workload = Sfr_workloads.Workload
module Ferret = Sfr_workloads.Ferret
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Multibags = Sfr_detect.Multibags
module Par_exec = Sfr_runtime.Par_exec
module Stats = Sfr_support.Stats
module Mem_meter = Sfr_support.Mem_meter

let () =
  print_endline "ferret-style similarity-search pipeline under detection";
  let scale = Workload.Small in

  (* parallel execution with the parallel detector *)
  List.iter
    (fun workers ->
      let inst = Ferret.workload.Workload.instantiate scale in
      let det = Sf_order.make () in
      let (), dt =
        Stats.time (fun () ->
            Par_exec.run ~workers det.Detector.callbacks ~root:det.Detector.root
              inst.Workload.program
            |> fst)
      in
      Printf.printf
        "SF-Order, %d worker(s): %.3f s, %d queries, %s reach memory, races: \
         %d, verified: %b\n"
        workers dt (det.Detector.queries ())
        (Format.asprintf "%a" Mem_meter.pp_bytes (det.Detector.reach_words ()))
        (List.length (Detector.racy_locations det))
        (inst.Workload.verify ()))
    [ 1; 2; 4 ];

  (* the sequential baseline refuses parallel execution by design *)
  let mb = Multibags.make () in
  Printf.printf "multibags supports parallel execution: %b (sequential only)\n"
    mb.Detector.supports_parallel
