open Log_format

type summary = { s_events : int; s_states : int; s_workers : int }

(* [In_chunk] means [lo] points at the next undecoded payload byte of a
   chunk with [remaining] payload bytes still expected (possibly not all
   fed yet). [At_chunk] means [lo] points at a chunk tag (or the footer
   tag). *)
type phase =
  | Header
  | At_chunk
  | In_chunk of { worker : int; mutable remaining : int }
  | Done of summary
  | Failed of Log_format.error

type t = {
  max_workers : int;
  mutable data : Bytes.t;
  mutable lo : int;  (** first unconsumed byte in [data] *)
  mutable hi : int;  (** end of fed bytes in [data] *)
  mutable abs_lo : int;  (** absolute stream offset of [data.(lo)] *)
  mutable phase : phase;
  mutable crc : int;  (** accumulated over consumed payload bytes *)
  mutable last_locs : int array;  (** per-worker delta base *)
  mutable n_workers_seen : int;
  mutable max_sid : int;  (** largest state ID referenced or defined *)
  mutable events : int;
}

let create ?(max_workers = 1024) () =
  {
    max_workers;
    data = Bytes.create 4096;
    lo = 0;
    hi = 0;
    abs_lo = 0;
    phase = Header;
    crc = crc32_init;
    last_locs = Array.make 4 0;
    n_workers_seen = 0;
    max_sid = 0;
    events = 0;
  }

let consumed t = t.abs_lo
let buffered t = t.hi - t.lo
let events_decoded t = t.events
let finished t = match t.phase with Done s -> Some s | _ -> None

let fail t e =
  t.phase <- Failed e;
  (* drop the buffer: nothing further will be decoded *)
  t.lo <- 0;
  t.hi <- 0;
  Error e

(* Errors from [Log_format] readers carry buffer-relative offsets; remap
   them to absolute stream offsets before surfacing. *)
let remap t = function
  | Truncated { offset; while_ } ->
      Truncated { offset = offset - t.lo + t.abs_lo; while_ }
  | Bad_varint { offset } -> Bad_varint { offset = offset - t.lo + t.abs_lo }
  | Bad_opcode { offset; opcode } ->
      Bad_opcode { offset = offset - t.lo + t.abs_lo; opcode }
  | State_out_of_range { offset; id; bound } ->
      State_out_of_range { offset = offset - t.lo + t.abs_lo; id; bound }
  | Corrupt { offset; what } ->
      Corrupt { offset = offset - t.lo + t.abs_lo; what }
  | (Bad_magic _ | Bad_version _ | Bad_crc _) as e -> e

let feed t bytes ~pos ~len =
  if len < 0 || pos < 0 || pos + len > Bytes.length bytes then
    invalid_arg "Stream_reader.feed: bad slice";
  match t.phase with
  | Failed _ -> ()
  | _ ->
      let cap = Bytes.length t.data in
      if t.hi + len > cap then begin
        let live = t.hi - t.lo in
        if live + len <= cap / 2 then begin
          (* compact in place: plenty of room once the consumed prefix
             goes *)
          Bytes.blit t.data t.lo t.data 0 live;
          t.lo <- 0;
          t.hi <- live
        end
        else begin
          let cap' = max (cap * 2) (live + len) in
          let data' = Bytes.create cap' in
          Bytes.blit t.data t.lo data' 0 live;
          t.data <- data';
          t.lo <- 0;
          t.hi <- live
        end
      end;
      Bytes.blit bytes pos t.data t.hi len;
      t.hi <- t.hi + len

(* Consume [n] bytes at [lo] (already decoded). *)
let advance t n =
  t.lo <- t.lo + n;
  t.abs_lo <- t.abs_lo + n

let track_sid t ev =
  List.iter (fun id -> if id > t.max_sid then t.max_sid <- id) (inputs ev);
  List.iter (fun id -> if id > t.max_sid then t.max_sid <- id) (defines ev)

let ensure_worker t w =
  if w >= Array.length t.last_locs then begin
    let a = Array.make (max (w + 1) (2 * Array.length t.last_locs)) 0 in
    Array.blit t.last_locs 0 a 0 (Array.length t.last_locs);
    t.last_locs <- a
  end;
  if w >= t.n_workers_seen then t.n_workers_seen <- w + 1

let drain t =
  let acc = ref [] in
  let rec loop () =
    match t.phase with
    | Failed e -> Error e
    | Done _ ->
        if t.hi > t.lo then
          fail t
            (Corrupt { offset = t.abs_lo; what = "trailing bytes after footer" })
        else Ok ()
    | Header ->
        let need = String.length magic + 1 in
        if t.hi - t.lo < need then Ok ()
        else if Bytes.sub_string t.data t.lo (String.length magic) <> magic
        then
          fail t
            (Bad_magic
               { got = Bytes.sub_string t.data t.lo (String.length magic) })
        else
          let v = Char.code (Bytes.get t.data (t.lo + String.length magic)) in
          if v <> version then fail t (Bad_version { got = v })
          else begin
            advance t need;
            t.phase <- At_chunk;
            loop ()
          end
    | At_chunk ->
        if t.hi = t.lo then Ok ()
        else begin
          let tag = Char.code (Bytes.get t.data t.lo) in
          if tag = 1 then
            match read_varint t.data ~pos:(t.lo + 1) ~limit:t.hi with
            | Error (Truncated _) -> Ok () (* chunk header split: wait *)
            | Error e -> fail t (remap t e)
            | Ok (worker, p) -> (
                match read_varint t.data ~pos:p ~limit:t.hi with
                | Error (Truncated _) -> Ok ()
                | Error e -> fail t (remap t e)
                | Ok (plen, p) ->
                    if worker >= t.max_workers then
                      fail t
                        (Corrupt
                           {
                             offset = t.abs_lo + 1;
                             what =
                               Printf.sprintf
                                 "implausible worker id %d (limit %d)" worker
                                 t.max_workers;
                           })
                    else begin
                      ensure_worker t worker;
                      advance t (p - t.lo);
                      t.phase <- In_chunk { worker; remaining = plen };
                      loop ()
                    end)
          else if tag = 0 then
            match read_varint t.data ~pos:(t.lo + 1) ~limit:t.hi with
            | Error (Truncated _) -> Ok ()
            | Error e -> fail t (remap t e)
            | Ok (n_events, p) -> (
                match read_varint t.data ~pos:p ~limit:t.hi with
                | Error (Truncated _) -> Ok ()
                | Error e -> fail t (remap t e)
                | Ok (n_states, p) -> (
                    match read_varint t.data ~pos:p ~limit:t.hi with
                    | Error (Truncated _) -> Ok ()
                    | Error e -> fail t (remap t e)
                    | Ok (n_workers, p) ->
                        if p + 4 > t.hi then Ok ()
                        else
                          let expected =
                            Char.code (Bytes.get t.data p)
                            lor (Char.code (Bytes.get t.data (p + 1)) lsl 8)
                            lor (Char.code (Bytes.get t.data (p + 2)) lsl 16)
                            lor (Char.code (Bytes.get t.data (p + 3)) lsl 24)
                          in
                          let footer_off = t.abs_lo in
                          advance t (p + 4 - t.lo);
                          if expected <> t.crc then
                            fail t (Bad_crc { expected; got = t.crc })
                          else if n_states < 1 then
                            fail t
                              (Corrupt
                                 {
                                   offset = footer_off;
                                   what = "footer declares no states";
                                 })
                          else if n_events <> t.events then
                            fail t
                              (Corrupt
                                 {
                                   offset = footer_off;
                                   what =
                                     Printf.sprintf
                                       "footer declares %d events, stream \
                                        decoded %d"
                                       n_events t.events;
                                 })
                          else if t.n_workers_seen > n_workers then
                            fail t
                              (Corrupt
                                 {
                                   offset = footer_off;
                                   what =
                                     Printf.sprintf
                                       "chunks name %d worker stream(s) but \
                                        footer declares %d"
                                       t.n_workers_seen n_workers;
                                 })
                          else if t.max_sid >= n_states then
                            fail t
                              (State_out_of_range
                                 {
                                   offset = footer_off;
                                   id = t.max_sid;
                                   bound = n_states;
                                 })
                          else begin
                            t.phase <-
                              Done
                                {
                                  s_events = n_events;
                                  s_states = n_states;
                                  s_workers = n_workers;
                                };
                            loop ()
                          end))
          else fail t (Bad_opcode { offset = t.abs_lo; opcode = tag })
        end
    | In_chunk ic ->
        if ic.remaining = 0 then begin
          t.phase <- At_chunk;
          loop ()
        end
        else begin
          let available = t.hi - t.lo in
          if available = 0 then Ok ()
          else
            let limit = t.lo + min ic.remaining available in
            (* the stream's own state bound arrives with the footer;
               decode with the loosest bound and validate then *)
            match
              read_event t.data ~pos:t.lo ~limit
                ~last_loc:t.last_locs.(ic.worker) ~states:max_int
            with
            | Ok (ev, p, last_loc) ->
                t.crc <- crc32_update t.crc t.data ~pos:t.lo ~len:(p - t.lo);
                ic.remaining <- ic.remaining - (p - t.lo);
                advance t (p - t.lo);
                t.last_locs.(ic.worker) <- last_loc;
                track_sid t ev;
                t.events <- t.events + 1;
                acc := (ic.worker, ev) :: !acc;
                if ic.remaining = 0 then t.phase <- At_chunk;
                loop ()
            | Error (Truncated _) when available < ic.remaining ->
                Ok () (* event split across feeds: wait *)
            | Error (Truncated { offset; _ }) ->
                (* the event ran past the chunk's declared payload end *)
                fail t
                  (Corrupt
                     {
                       offset = offset - t.lo + t.abs_lo;
                       what = "event record spans a chunk boundary";
                     })
            | Error e -> fail t (remap t e)
        end
  in
  match loop () with Ok () -> Ok (List.rev !acc) | Error e -> Error e

let finish t =
  match drain t with
  | Error e -> Error e
  | Ok _late_events -> (
      (* events surfacing only at finish are lost to the caller, but a
         caller that stopped draining has already abandoned the stream *)
      match t.phase with
      | Done s when t.hi = t.lo -> Ok s
      | Done _ ->
          (* unreachable: drain latches trailing bytes as Corrupt *)
          Error
            (Corrupt { offset = t.abs_lo; what = "trailing bytes after footer" })
      | Failed e -> Error e
      | Header ->
          fail t (Truncated { offset = t.abs_lo + buffered t; while_ = "reading header" })
      | At_chunk ->
          fail t
            (Truncated
               {
                 offset = t.abs_lo + buffered t;
                 while_ = "expecting chunk or footer";
               })
      | In_chunk _ ->
          fail t
            (Truncated
               {
                 offset = t.abs_lo + buffered t;
                 while_ = "stream closed mid-chunk";
               }))
