module Dag = Sfr_dag.Dag

(* array-based binary min-heap of (finish_time, node) *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable len : int }

  let create () = { data = Array.make 64 (0, 0); len = 0 }
  let is_empty h = h.len = 0

  let push h x =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) (0, 0) in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    h.data.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    done

  let pop h =
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
      else continue_ := false
    done;
    top
end

let makespan ?cost t ~workers =
  if workers < 1 then invalid_arg "Sim_sched.makespan: workers must be >= 1";
  let cost = match cost with Some f -> f | None -> fun v -> 1 + Dag.cost_of t v in
  let n = Dag.n_nodes t in
  let indegree = Array.make n 0 in
  for v = 0 to n - 1 do
    indegree.(v) <- List.length (Dag.preds t v)
  done;
  let ready = Queue.create () in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then Queue.push v ready
  done;
  let running = Heap.create () in
  let idle = ref workers in
  let now = ref 0 in
  let finished = ref 0 in
  let final = ref 0 in
  while !finished < n do
    (* start as many ready nodes as there are idle workers *)
    while !idle > 0 && not (Queue.is_empty ready) do
      let v = Queue.pop ready in
      Heap.push running (!now + cost v, v);
      decr idle
    done;
    (* advance to the next completion *)
    assert (not (Heap.is_empty running));
    let t_done, v = Heap.pop running in
    now := t_done;
    if t_done > !final then final := t_done;
    incr idle;
    incr finished;
    List.iter
      (fun (_, w) ->
        indegree.(w) <- indegree.(w) - 1;
        if indegree.(w) = 0 then Queue.push w ready)
      (Dag.succs t v)
  done;
  !final

let speedup t ~workers =
  float_of_int (makespan t ~workers:1) /. float_of_int (makespan t ~workers)
