module Metrics = Sfr_obs.Metrics
module Trace_event = Sfr_obs.Trace_event
module Flight = Sfr_obs.Flight
module Chaos = Sfr_chaos.Chaos

let m_spawns = Metrics.counter "runtime.spawns"
let m_creates = Metrics.counter "runtime.creates"
let m_gets = Metrics.counter "runtime.gets"

type frame = {
  mutable spawned_lasts : Events.state list;
  mutable created_firsts : Events.state list;
}

let run (cb : Events.callbacks) ~root main =
  let cur = ref root in
  let do_sync fr =
    if fr.spawned_lasts <> [] || fr.created_firsts <> [] then begin
      cur :=
        cb.on_sync ~cur:!cur ~spawned_lasts:fr.spawned_lasts
          ~created_firsts:fr.created_firsts;
      fr.spawned_lasts <- [];
      fr.created_firsts <- []
    end
  in
  let rec exec_frame : type a. (unit -> a) -> a =
   fun body ->
    let fr = { spawned_lasts = []; created_firsts = [] } in
    let result =
      Effect.Deep.match_with body ()
        {
          retc = Fun.id;
          exnc = raise;
          effc =
            (fun (type b) (eff : b Effect.t) ->
              match eff with
              | Program.Spawn f ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      Chaos.point Chaos.Spawn;
                      Metrics.incr m_spawns;
                      let child_state, cont_state = cb.on_spawn !cur in
                      cur := child_state;
                      Trace_event.with_span ~cat:"runtime" "spawn" (fun () ->
                          exec_frame f);
                      let child_last = !cur in
                      cb.on_returned ~cont:cont_state ~child_last;
                      fr.spawned_lasts <- child_last :: fr.spawned_lasts;
                      cur := cont_state;
                      Effect.Deep.continue k ())
              | Program.Sync ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      Chaos.point Chaos.Sync;
                      do_sync fr;
                      Effect.Deep.continue k ())
              | Program.Create f ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      Chaos.point Chaos.Create;
                      Metrics.incr m_creates;
                      Flight.note "create";
                      let h = Program.Handle.make () in
                      let child_state, cont_state = cb.on_create !cur in
                      fr.created_firsts <- child_state :: fr.created_firsts;
                      cur := child_state;
                      let r =
                        Trace_event.with_span ~cat:"runtime" "create" (fun () ->
                            exec_frame f)
                      in
                      (* the future task's frame-end sync ran inside
                         exec_frame; the resulting strand is its put node *)
                      cb.on_put !cur;
                      Program.Handle.fulfil h r ~last:!cur;
                      cb.on_returned ~cont:cont_state ~child_last:!cur;
                      cur := cont_state;
                      Effect.Deep.continue k h)
              | Program.Get h ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      Chaos.point Chaos.Get;
                      Metrics.incr m_gets;
                      Trace_event.instant ~cat:"runtime" "get";
                      Flight.note "get";
                      (match Program.Handle.status h with
                      | Program.Handle.Done -> ()
                      | Program.Handle.Running ->
                          raise
                            (Program.Unstructured_use
                               "get would block in a depth-first serial \
                                execution: the program's futures are not \
                                structured"));
                      Program.Handle.claim_touch h;
                      cur := cb.on_get ~cur:!cur ~put:(Program.Handle.last_exn h);
                      Effect.Deep.continue k (Program.Handle.result_exn h))
              | Program.Read loc ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      cb.on_read !cur loc;
                      Effect.Deep.continue k ())
              | Program.Write loc ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      cb.on_write !cur loc;
                      Effect.Deep.continue k ())
              | Program.Work n ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      cb.on_work !cur n;
                      Effect.Deep.continue k ())
              | _ -> None);
        }
    in
    (* frame-end implicit sync *)
    do_sync fr;
    result
  in
  let result = exec_frame main in
  cb.on_put !cur;
  (result, !cur)
