module Program = Sfr_runtime.Program
module Prng = Sfr_support.Prng

type params = { n : int; b : int }

let params_of = function
  | Workload.Tiny -> { n = 8; b = 2 }
  | Workload.Small -> { n = 16; b = 4 }
  | Workload.Default -> { n = 64; b = 8 }
  | Workload.Large -> { n = 128; b = 16 }
  | Workload.Paper -> { n = 2048; b = 64 }

(* base-case kernel: C[i,j] += sum_k A[i,k] * B[k,j] over an n×n block *)
let base_case ~nmat a b c (ar, ac) (br, bc) (cr, cc) n =
  let idx r c_ = (r * nmat) + c_ in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := !acc + (Program.rd a (idx (ar + i) (ac + k)) * Program.rd b (idx (br + k) (bc + j)))
      done;
      let prev = Program.rd c (idx (cr + i) (cc + j)) in
      Program.wr c (idx (cr + i) (cc + j)) (prev + !acc)
    done
  done

let instantiate ?(inject_race = false) scale =
  let { n; b } = params_of scale in
  let a = Program.alloc (n * n) 0 in
  let bm = Program.alloc (n * n) 0 in
  let c = Program.alloc (n * n) 0 in
  let rng = Prng.create 0x4d4d in
  for i = 0 to (n * n) - 1 do
    Program.wr_raw a i (Prng.int rng 10);
    Program.wr_raw bm i (Prng.int rng 10)
  done;
  let program () =
    (* quadrant recursion; [top] skips the phase-1 gets when injecting *)
    let rec mm ~top (ar, ac) (br, bc) (cr, cc) size =
      if size <= b then base_case ~nmat:n a bm c (ar, ac) (br, bc) (cr, cc) size
      else begin
        let h = size / 2 in
        let sub (qr, qc) (dr, dc) = ((qr + (dr * h)), qc + (dc * h)) in
        (* first-half products as structured futures *)
        let quads =
          [ ((0, 0), (0, 0), (0, 0)); ((0, 0), (0, 1), (0, 1));
            ((1, 0), (0, 0), (1, 0)); ((1, 0), (0, 1), (1, 1)) ]
        in
        let handles =
          List.map
            (fun (da, db, dc) ->
              Program.create (fun () ->
                  mm ~top:false (sub (ar, ac) da) (sub (br, bc) db)
                    (sub (cr, cc) dc) h))
            quads
        in
        if not (inject_race && top) then List.iter Program.get handles;
        (* second-half products as spawns *)
        let quads2 =
          [ ((0, 1), (1, 0), (0, 0)); ((0, 1), (1, 1), (0, 1));
            ((1, 1), (1, 0), (1, 0)); ((1, 1), (1, 1), (1, 1)) ]
        in
        List.iter
          (fun (da, db, dc) ->
            Program.spawn (fun () ->
                mm ~top:false (sub (ar, ac) da) (sub (br, bc) db)
                  (sub (cr, cc) dc) h))
          quads2;
        Program.sync ()
      end
    in
    mm ~top:true (0, 0) (0, 0) (0, 0) n
  in
  let verify () =
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let acc = ref 0 in
        for k = 0 to n - 1 do
          acc := !acc + (Program.rd_raw a ((i * n) + k) * Program.rd_raw bm ((k * n) + j))
        done;
        if Program.rd_raw c ((i * n) + j) <> !acc then ok := false
      done
    done;
    !ok
  in
  { Workload.program; verify; mem_base = Program.base a }

let workload =
  {
    Workload.name = "mm";
    description = "divide-and-conquer matrix multiplication (futures + fork-join)";
    instantiate;
    paper_figure3 =
      [ "2048"; "64"; "1.72e10"; "1.43e8"; "1.32e8"; "18724"; "79577" ];
  }
