module Vec = Sfr_support.Vec

type kind = Root | Spawned | Created | Cont | Sync | Get

type edge_kind = Sp | Create_edge | Get_edge

type node = int
type future = int

type node_rec = {
  future : future;
  kind : kind;
  mutable cost : int;
  mutable succs : (edge_kind * node) list;
  mutable preds : (edge_kind * node) list;
}

type future_rec = {
  parent : future option;
  first_node : node;
  create_node : node option;
  create_cont : node option ref;
  (* the continuation strand after the create; filled right after the
     child-first node is allocated *)
  mutable last_node : node option;
  mutable get_node : node option;
}

type t = {
  nodes : node_rec Vec.t;
  futures : future_rec Vec.t;
  mutable fakes : (future * node) list;
  lock : Mutex.t;
}

let dummy_node = { future = -1; kind = Root; cost = 0; succs = []; preds = [] }

let dummy_future =
  {
    parent = None;
    first_node = -1;
    create_node = None;
    create_cont = ref None;
    last_node = None;
    get_node = None;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let add_node t ~future ~kind =
  Vec.push t.nodes { future; kind; cost = 0; succs = []; preds = [] }

let add_edge t ek u v =
  let nu = Vec.get t.nodes u and nv = Vec.get t.nodes v in
  nu.succs <- (ek, v) :: nu.succs;
  nv.preds <- (ek, u) :: nv.preds

let create () =
  let t =
    {
      nodes = Vec.create ~dummy:dummy_node ();
      futures = Vec.create ~dummy:dummy_future ();
      fakes = [];
      lock = Mutex.create ();
    }
  in
  let root = add_node t ~future:0 ~kind:Root in
  let (_ : int) =
    Vec.push t.futures
      {
        parent = None;
        first_node = root;
        create_node = None;
        create_cont = ref None;
        last_node = None;
        get_node = None;
      }
  in
  (t, root)

let spawn t ~cur =
  locked t (fun () ->
      let fid = (Vec.get t.nodes cur).future in
      let child = add_node t ~future:fid ~kind:Spawned in
      let cont = add_node t ~future:fid ~kind:Cont in
      add_edge t Sp cur child;
      add_edge t Sp cur cont;
      (child, cont))

let create_future t ~cur =
  locked t (fun () ->
      let parent_fid = (Vec.get t.nodes cur).future in
      let fid = Vec.length t.futures in
      let child = add_node t ~future:fid ~kind:Created in
      let cont = add_node t ~future:parent_fid ~kind:Cont in
      let (_ : int) =
        Vec.push t.futures
          {
            parent = Some parent_fid;
            first_node = child;
            create_node = Some cur;
            create_cont = ref (Some cont);
            last_node = None;
            get_node = None;
          }
      in
      add_edge t Create_edge cur child;
      add_edge t Sp cur cont;
      (child, cont, fid))

let sync t ~cur ~spawned_lasts ~created =
  locked t (fun () ->
      let fid = (Vec.get t.nodes cur).future in
      let s = add_node t ~future:fid ~kind:Sync in
      add_edge t Sp cur s;
      List.iter (fun last -> add_edge t Sp last s) spawned_lasts;
      List.iter (fun g -> t.fakes <- (g, s) :: t.fakes) created;
      s)

let put t ~cur =
  locked t (fun () ->
      let fid = (Vec.get t.nodes cur).future in
      let f = Vec.get t.futures fid in
      (match f.last_node with
      | Some _ -> invalid_arg "Dag.put: future already has a put node"
      | None -> ());
      f.last_node <- Some cur)

let get t ~cur ~future =
  locked t (fun () ->
      let f = Vec.get t.futures future in
      (match f.get_node with
      | Some _ -> invalid_arg "Dag.get: handle touched twice (single-touch violation)"
      | None -> ());
      let last =
        match f.last_node with
        | Some n -> n
        | None -> invalid_arg "Dag.get: future has not completed (no put node)"
      in
      let fid = (Vec.get t.nodes cur).future in
      let g = add_node t ~future:fid ~kind:Get in
      add_edge t Sp cur g;
      add_edge t Get_edge last g;
      f.get_node <- Some g;
      g)

let add_cost t node n =
  let r = Vec.get t.nodes node in
  r.cost <- r.cost + n

(* -- accessors --------------------------------------------------------- *)

let n_nodes t = Vec.length t.nodes
let n_futures t = Vec.length t.futures
let kind_of t v = (Vec.get t.nodes v).kind
let future_of t v = (Vec.get t.nodes v).future
let cost_of t v = (Vec.get t.nodes v).cost
let succs t v = (Vec.get t.nodes v).succs
let preds t v = (Vec.get t.nodes v).preds
let first_of t f = (Vec.get t.futures f).first_node
let last_of t f = (Vec.get t.futures f).last_node
let fparent t f = (Vec.get t.futures f).parent

let f_ancestors t f =
  let rec up acc f =
    match fparent t f with None -> List.rev acc | Some p -> up (p :: acc) p
  in
  up [] f

let create_node_of t f = (Vec.get t.futures f).create_node
let create_cont_of t f = !((Vec.get t.futures f).create_cont)
let get_node_of t f = (Vec.get t.futures f).get_node
let fake_joins t = t.fakes

let total_cost t = Vec.fold (fun acc n -> acc + n.cost) 0 t.nodes
