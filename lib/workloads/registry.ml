let all =
  [ Mm.workload; Msort.workload; Sw.workload; Heartwall.workload; Ferret.workload ]

let find name = List.find_opt (fun w -> w.Workload.name = name) all
