(** Process-wide detector registry: the single seam through which the
    CLI, the replay/serve paths, the bench harness, and the chaos driver
    enumerate race-detector backends.

    Every backend is a named constructor for a fresh {!Detector.t} plus
    capability flags the callers gate on, so adding a detector here is
    enough to give it run/record/replay, figures, soak, and the CI smoke
    matrix ([make detector-smoke]) without touching any of them.

    Built-ins register at module initialization, in presentation order:
    [multibags], [f-order], [sf-order], [sf-order-2pf], [vc-order]. The
    harness figure tables iterate [all ()] filtered on [caps.figure] —
    exactly the historical MultiBags / F-Order / SF-Order columns.
    [Naive_detector] is deliberately absent: it is an offline dag
    analysis, not an {!Sfr_runtime.Events} client. *)

type caps = {
  supports_parallel : bool;
      (** can run under the parallel executor (mirrors
          {!Detector.t.supports_parallel}). *)
  oracle_grade : bool;
      (** an independent algorithm whose serial run is usable as
          differential ground truth (chaos [--oracle]). *)
  shardable : bool;
      (** supports location-sharded offline replay ([--shards]); only
          SF-Order, whose reachability {!Sfr_eventlog.Shard_replay}
          implements. *)
  figure : bool;  (** appears in the paper-reproduction figure tables. *)
  scale_ceiling : string option;
      (** largest {!Sfr_workloads.Workload.scale} name the detector is
          practical at; [None] = unbounded. *)
}

type entry = {
  name : string;  (** CLI name, e.g. ["sf-order"]. *)
  label : string;  (** display label for figure columns, e.g. ["SF-Order"]. *)
  doc : string;  (** one-line description for listings. *)
  make : unit -> Detector.t;  (** fresh single-use instance. *)
  caps : caps;
}

val find : string -> entry option
val all : unit -> entry list
(** In registration order. *)

val names : unit -> string list

val register : entry -> unit
(** Append an entry (extensions, tests).
    @raise Invalid_argument on a duplicate name. *)

val caps_string : caps -> string
(** Compact flag rendering, e.g. ["parallel,shard"]. *)

val listing : unit -> string
(** Human-readable table of every entry: name, flags, doc. *)

val unknown : string -> string
(** Error text for an unrecognized name — includes the listing. *)
