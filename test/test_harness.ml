(* Harness tests: measurement modes behave as specified (reach mode
   performs no memory-access queries; full mode detects), simulated time
   scales sensibly, and every figure generator runs end-to-end at tiny
   scale (smoke). *)

module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Runner = Sfr_harness.Runner
module Figures = Sfr_harness.Figures
module Sf_order = Sfr_detect.Sf_order

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let mk name scale () = (Option.get (Registry.find name)).Workload.instantiate scale

let test_reach_mode_no_queries () =
  let m =
    Runner.time_serial ~repeats:1 (mk "mm" Workload.Tiny)
      (Runner.Reach (fun () -> Sf_order.make ()))
  in
  check int "reach mode performs no access queries" 0 m.Runner.queries;
  check bool "but builds reachability structures" true (m.Runner.reach_words > 0)

let test_full_mode_queries () =
  let m =
    Runner.time_serial ~repeats:1 (mk "mm" Workload.Tiny)
      (Runner.Full (fun () -> Sf_order.make ()))
  in
  check bool "full mode queries" true (m.Runner.queries > 0);
  check int "race free" 0 m.Runner.racy_locations

let test_base_mode () =
  let m = Runner.time_serial ~repeats:3 (mk "sw" Workload.Tiny) Runner.Base in
  check bool "time measured" true (m.Runner.seconds >= 0.0);
  check int "no detector stats" 0 m.Runner.queries

let test_record_counts () =
  let r = Runner.record (mk "mm" Workload.Tiny) in
  check bool "reads recorded" true (r.Runner.reads > 500);
  check bool "writes recorded" true (r.Runner.writes > 100)

let test_simulated_time () =
  let r = Runner.record (mk "mm" Workload.Tiny) in
  let t1 = Runner.simulated_time r ~measured_t1:10.0 ~workers:1 in
  check (Alcotest.float 1e-9) "P=1 is the measured time" 10.0 t1;
  let t4 = Runner.simulated_time r ~measured_t1:10.0 ~workers:4 in
  check bool "P=4 is faster" true (t4 < 10.0);
  check bool "but bounded by span" true (t4 > 0.0)

let test_reach_only_strips_accesses () =
  let det = Sf_order.make () in
  let cb = Runner.reach_only det.Sfr_detect.Detector.callbacks in
  (* the stripped callbacks must ignore reads/writes *)
  cb.Sfr_runtime.Events.on_read det.Sfr_detect.Detector.root 0;
  cb.Sfr_runtime.Events.on_write det.Sfr_detect.Detector.root 0;
  check int "no queries" 0 (det.Sfr_detect.Detector.queries ())

(* smoke: every table generator runs at tiny scale *)
let test_figures_smoke () =
  Figures.fig3 ~scale:Workload.Tiny;
  Figures.fig4 ~scale:Workload.Tiny ~repeats:1 ~workers:4;
  Figures.fig5 ~scale:Workload.Tiny;
  Figures.sweep ~scale:Workload.Tiny ~repeats:1;
  Figures.ablation_locks ~scale:Workload.Tiny ~repeats:1;
  Figures.ablation_sets ~scale:Workload.Tiny ~repeats:1;
  Figures.ablation_readers ~scale:Workload.Tiny ~repeats:1

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "reach mode: no queries" `Quick test_reach_mode_no_queries;
          Alcotest.test_case "full mode: queries" `Quick test_full_mode_queries;
          Alcotest.test_case "base mode" `Quick test_base_mode;
          Alcotest.test_case "record counts" `Quick test_record_counts;
          Alcotest.test_case "simulated time" `Quick test_simulated_time;
          Alcotest.test_case "reach_only strips accesses" `Quick
            test_reach_only_strips_accesses;
        ] );
      ("figures", [ Alcotest.test_case "all tables smoke" `Slow test_figures_smoke ]);
    ]
