(* Quickstart: write a task-parallel program with structured futures,
   race detect it with SF-Order, find the bug, fix it, and re-check.

     dune exec examples/quickstart.exe                                     *)

module P = Sfr_runtime.Program
module Serial_exec = Sfr_runtime.Serial_exec
module Detector = Sfr_detect.Detector
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order

(* A producer/consumer with a bug: the consumer reads the buffer without
   waiting for the producer future. *)
let buggy_version () =
  let buffer = P.alloc 8 0 in
  let producer =
    P.create (fun () ->
        for i = 0 to 7 do
          P.wr buffer i (i * i)
        done)
  in
  ignore producer (* BUG: should get the handle before consuming *);
  let sum = ref 0 in
  for i = 0 to 7 do
    sum := !sum + P.rd buffer i
  done;
  !sum

(* The fix: a single get on the future's handle orders the accesses. *)
let fixed_version () =
  let buffer = P.alloc 8 0 in
  let producer =
    P.create (fun () ->
        for i = 0 to 7 do
          P.wr buffer i (i * i)
        done)
  in
  P.get producer;
  let sum = ref 0 in
  for i = 0 to 7 do
    sum := !sum + P.rd buffer i
  done;
  !sum

let detect name program =
  let det = Sf_order.make () in
  let result, _ = Serial_exec.run det.Detector.callbacks ~root:det.Detector.root program in
  let reports = Race.reports det.Detector.races in
  Printf.printf "%s: result = %d, races at %d location(s)\n" name result
    (List.length reports);
  List.iter
    (fun (r : Race.report) ->
      Printf.printf "  location %d: %s race between future %d and future %d\n"
        r.Race.loc
        (Format.asprintf "%a" Race.pp_kind r.Race.kind)
        r.Race.prev_future r.Race.cur_future)
    reports;
  reports <> []

let () =
  print_endline "SF-Order quickstart: detecting a producer/consumer race";
  let buggy_raced = detect "buggy " buggy_version in
  let fixed_raced = detect "fixed " fixed_version in
  assert (buggy_raced && not fixed_raced);
  print_endline "the get edge serialized the future against the consumer."
