type access = { node : Dag.node; loc : int; is_write : bool }

type parse_error = { line : int; column : int; message : string }

exception Parse_error of parse_error

let parse_error_to_string e =
  Printf.sprintf "line %d, column %d: %s" e.line e.column e.message

let pp_parse_error fmt e = Format.pp_print_string fmt (parse_error_to_string e)

let () =
  Printexc.register_printer (function
    | Parse_error e -> Some (Printf.sprintf "Dag_io.Parse_error(%s)" (parse_error_to_string e))
    | _ -> None)

let kind_tag = function
  | Dag.Root -> "root"
  | Dag.Spawned -> "spawned"
  | Dag.Created -> "created"
  | Dag.Cont -> "cont"
  | Dag.Sync -> "sync"
  | Dag.Get -> "get"

let save oc ?(accesses = []) t =
  let pr fmt = Printf.fprintf oc fmt in
  pr "sfdag 1\n";
  pr "counts %d %d\n" (Dag.n_nodes t) (Dag.n_futures t);
  for v = 0 to Dag.n_nodes t - 1 do
    pr "node %d %d %s %d\n" v (Dag.future_of t v) (kind_tag (Dag.kind_of t v))
      (Dag.cost_of t v);
    (* preds in stored (prepend) order so the loader can replay exactly *)
    List.iter
      (fun (ek, u) ->
        let tag =
          match ek with Dag.Sp -> "sp" | Dag.Create_edge -> "cr" | Dag.Get_edge -> "gt"
        in
        pr "pred %d %s %d\n" v tag u)
      (Dag.preds t v)
  done;
  for f = 0 to Dag.n_futures t - 1 do
    pr "future %d last %d\n" f
      (match Dag.last_of t f with Some l -> l | None -> -1)
  done;
  List.iter (fun (g, s) -> pr "fake %d %d\n" g s) (Dag.fake_joins t);
  List.iter
    (fun a -> pr "access %d %d %c\n" a.node a.loc (if a.is_write then 'w' else 'r'))
    accesses

(* -- loading: parse, then replay the builder events ------------------- *)

type raw_node = {
  rfuture : int;
  rkind : string;
  rcost : int;
  rline : int; (* declaration line, for replay-stage diagnostics *)
  mutable rpreds : (string * int) list; (* stored order *)
}

(* Split [l] into whitespace-separated tokens, each paired with its
   1-based start column so errors can point at the offending token. *)
let tokenize l =
  let toks = ref [] in
  let n = String.length l in
  let i = ref 0 in
  while !i < n do
    if l.[!i] = ' ' || l.[!i] = '\t' || l.[!i] = '\r' then incr i
    else begin
      let start = !i in
      while !i < n && l.[!i] <> ' ' && l.[!i] <> '\t' && l.[!i] <> '\r' do
        incr i
      done;
      toks := (String.sub l start (!i - start), start + 1) :: !toks
    end
  done;
  List.rev !toks

let load_exn ic =
  let lineno = ref 0 in
  let error ?line ?(column = 1) fmt =
    Printf.ksprintf
      (fun message ->
        let line = match line with Some l -> l | None -> !lineno in
        raise (Parse_error { line; column; message }))
      fmt
  in
  let int_tok what (s, col) =
    match int_of_string_opt s with
    | Some v -> v
    | None -> error ~column:col "expected integer %s, got %S" what s
  in
  let node_id what n_nodes tok =
    let v = int_tok what tok in
    if v < 0 || v >= n_nodes then
      error ~column:(snd tok) "%s %d out of range [0, %d)" what v n_nodes;
    v
  in
  let line () =
    match input_line ic with
    | l ->
        incr lineno;
        Some l
    | exception End_of_file -> None
  in
  (match line () with
  | Some "sfdag 1" -> ()
  | Some l -> error "bad magic %S (expected \"sfdag 1\")" l
  | None -> error "empty input");
  let n_nodes, n_futures =
    match line () with
    | None -> error "missing counts line"
    | Some l -> (
        match tokenize l with
        | [ ("counts", _); a; b ] ->
            let n = int_tok "node count" a and f = int_tok "future count" b in
            if n < 0 then error ~column:(snd a) "negative node count %d" n;
            if f < 0 then error ~column:(snd b) "negative future count %d" f;
            (n, f)
        | _ -> error "expected \"counts <nodes> <futures>\", got %S" l)
  in
  let raw =
    Array.make n_nodes
      { rfuture = 0; rkind = "root"; rcost = 0; rline = 0; rpreds = [] }
  in
  let lasts = Array.make n_futures (-1) in
  let fakes = ref [] in
  let accesses = ref [] in
  let rec read () =
    match line () with
    | None -> ()
    | Some l ->
        (match tokenize l with
        | [] -> () (* blank line *)
        | [ ("node", _); id; fut; (kind, kcol); cost ] ->
            let id = node_id "node id" n_nodes id in
            (match kind with
            | "root" | "spawned" | "created" | "cont" | "sync" | "get" -> ()
            | k -> error ~column:kcol "unknown node kind %S" k);
            raw.(id) <-
              {
                rfuture = int_tok "future id" fut;
                rkind = kind;
                rcost = int_tok "cost" cost;
                rline = !lineno;
                rpreds = [];
              }
        | [ ("pred", _); v; (tag, tcol); u ] ->
            let v = node_id "pred target" n_nodes v in
            (match tag with
            | "sp" | "cr" | "gt" -> ()
            | t -> error ~column:tcol "unknown edge tag %S" t);
            let u = node_id "pred source" n_nodes u in
            raw.(v) <- { (raw.(v)) with rpreds = raw.(v).rpreds @ [ (tag, u) ] }
        | [ ("future", _); f; ("last", _); last ] ->
            let f = int_tok "future id" f in
            if f < 0 || f >= n_futures then
              error "future id %d out of range [0, %d)" f n_futures;
            let last = int_tok "last node" last in
            if last < -1 || last >= n_nodes then
              error "future %d last node %d out of range" f last;
            lasts.(f) <- last
        | [ ("fake", _); g; s ] ->
            let g = node_id "fake-join get node" n_nodes g in
            let s = node_id "fake-join sync node" n_nodes s in
            fakes := (g, s) :: !fakes
        | [ ("access", _); node; loc; (rw, rwcol) ] ->
            let node = node_id "access node" n_nodes node in
            let is_write =
              match rw with
              | "w" -> true
              | "r" -> false
              | s -> error ~column:rwcol "access mode must be 'r' or 'w', got %S" s
            in
            accesses := { node; loc = int_tok "location" loc; is_write } :: !accesses
        | _ -> error "bad line %S" l);
        read ()
  in
  read ();
  (* replay; errors past this point carry the declaring node's line *)
  let t, root = Dag.create () in
  if n_nodes > 0 && raw.(0).rkind <> "root" then
    error ~line:raw.(0).rline "node 0 not root";
  ignore root;
  (* fake joins grouped by sync node, in recorded (reversed-prepend) order *)
  let fakes_by_sync = Hashtbl.create 16 in
  List.iter
    (fun (g, s) ->
      Hashtbl.replace fakes_by_sync s
        (g :: Option.value ~default:[] (Hashtbl.find_opt fakes_by_sync s)))
    !fakes;
  let put_done = Array.make n_futures false in
  let emit_put ~at f =
    if not put_done.(f) then begin
      put_done.(f) <- true;
      if lasts.(f) < 0 then
        error ~line:at "future %d gotten but has no last" f;
      Dag.put t ~cur:lasts.(f)
    end
  in
  let v = ref 1 in
  while !v < n_nodes do
    let node = raw.(!v) in
    let error fmt = error ~line:node.rline fmt in
    (match node.rkind with
    | "spawned" | "created" -> (
        (* this event created nodes !v (child) and !v+1 (continuation) *)
        let cur =
          match node.rpreds with
          | [ (_, u) ] -> u
          | _ -> error "child node %d must have one pred" !v
        in
        if node.rkind = "spawned" then begin
          let child, cont = Dag.spawn t ~cur in
          if child <> !v || cont <> !v + 1 then error "replay drift at spawn %d" !v
        end
        else begin
          let child, cont, _fid = Dag.create_future t ~cur in
          if child <> !v || cont <> !v + 1 then error "replay drift at create %d" !v
        end;
        incr v (* skip the continuation node: same event *))
    | "sync" ->
        (* preds stored as [s_n; ...; s_1; cur] *)
        let cur, spawned =
          match List.rev node.rpreds with
          | (_, cur) :: rest -> (cur, List.map snd rest)
          | [] -> error "sync node %d has no preds" !v
        in
        let created =
          List.rev (Option.value ~default:[] (Hashtbl.find_opt fakes_by_sync !v))
        in
        let s = Dag.sync t ~cur ~spawned_lasts:spawned ~created in
        if s <> !v then error "replay drift at sync %d" !v
    | "get" ->
        let cur, last =
          match node.rpreds with
          | [ ("gt", last); ("sp", cur) ] | [ ("sp", cur); ("gt", last) ] ->
              (cur, last)
          | _ -> error "get node %d has bad preds" !v
        in
        let f = raw.(last).rfuture in
        if f < 0 || f >= n_futures then
          error "get node %d names future %d out of range" !v f;
        emit_put ~at:node.rline f;
        let g = Dag.get t ~cur ~future:f in
        if g <> !v then error "replay drift at get %d" !v
    | k -> error "unexpected kind %s for node %d" k !v);
    incr v
  done;
  (* costs, remaining puts *)
  for i = 0 to n_nodes - 1 do
    if raw.(i).rcost > 0 then Dag.add_cost t i raw.(i).rcost
  done;
  for f = 0 to n_futures - 1 do
    if lasts.(f) >= 0 then emit_put ~at:(!lineno) f
  done;
  (t, List.rev !accesses)

(* The replay calls into [Dag]'s builder, whose own structural checks
   ([Failure]/[Invalid_argument] on e.g. a pred that is not the frontier
   of its strand) fire on inputs that parse but describe an impossible
   dag. Fold those into [Parse_error] too so callers have one error
   type for "this input is not a valid sfdag". *)
let load_result ic =
  match load_exn ic with
  | v -> Ok v
  | exception Parse_error e -> Error e
  | exception Failure m ->
      Error { line = 0; column = 0; message = "replay rejected input: " ^ m }
  | exception Invalid_argument m ->
      Error { line = 0; column = 0; message = "replay rejected input: " ^ m }

let load ic =
  match load_result ic with Ok v -> v | Error e -> raise (Parse_error e)

let save_file path ?accesses t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save oc ?accesses t)

let load_file_result path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load_result ic)

let load_file path =
  match load_file_result path with Ok v -> v | Error e -> raise (Parse_error e)
