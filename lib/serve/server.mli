(** The ingest supervisor: many concurrent {!Session}s, one global byte
    budget, a configurable overload policy, and an optional domain pool
    for the detection work.

    {b Transport-agnostic by construction.} The server never opens a
    socket: a transport calls {!connect} with a [send] callback, pushes
    received bytes through {!on_bytes}, reports hangups with
    {!on_disconnect}, and calls {!tick} periodically. Time comes from
    the [now_ms] function given at {!create} — tests drive a synthetic
    clock and a loopback transport, so every timeout and overload path
    is deterministic; the real Unix transport lives in the CLI.

    {b Concurrency.} Each connection has its own lock; a session's
    frames, queue, and detector are only ever touched under it. The
    server lock guards the table and the global budget. The two are
    never held together, and detection (the expensive part) runs on
    pool domains — or inline in the caller when [pool_domains = 0],
    which makes single-threaded tests fully deterministic.

    {b Isolation.} Every per-session failure — torn frames, bad CRCs,
    protocol violations, detector errors — latches that session's
    typed outcome and leaves every other session running. The only
    fatal path is {!Fatal} (an internal invariant break), which fires
    the {!Sfr_obs.Flight} crash machinery with a per-session dump. *)

type overload =
  | Shed  (** finish the session whose intake broke the budget ([ERR_OVERLOAD], retryable) *)
  | Park
      (** freeze credit grants for everyone until usage falls below half
          the budget; nobody dies, intake stalls *)
  | Block
      (** refuse sessions still in [HELLO] while over budget; streaming
          sessions are untouched *)

val overload_to_string : overload -> string
val overload_of_string : string -> overload option

type config = {
  session : Session.config;
  global_budget : int;  (** bytes queued across all sessions *)
  overload : overload;
  pool_domains : int;  (** 0 = detection inline in the transport thread *)
  defer_ingest : bool;
      (** [false] (default): accepted payloads are analyzed as they
          arrive. [true]: they only queue; {!tick} drains them — a
          batch cadence for step-driven transports, and the lever that
          lets tests hold the global queue at a chosen level to
          exercise the overload policies deterministically. *)
}

val default_config : config
(** Shed at 4 MiB, inline detection, {!Session.default_config}. *)

exception Fatal of string
(** Internal invariant broken — the server cannot trust its own
    accounting. {!Sfr_obs.Flight.crash_dump} has already fired (with
    the per-session dump hook) when this reaches the caller. *)

type t

val create : ?now_ms:(unit -> int) -> config -> t
(** [now_ms] defaults to a monotonic wall clock. *)

type conn

val connect : t -> send:(Bytes.t -> unit) -> conn
(** Register a connection. [send] delivers server-to-client bytes; it
    is called with the connection lock held and must not call back
    into this module. *)

val on_bytes : t -> conn -> Bytes.t -> pos:int -> len:int -> unit
val on_disconnect : t -> conn -> unit

val tick : t -> unit
(** Deadline / idle sweep at [now_ms]. Call periodically. *)

val session_id : conn -> int option
(** The session id assigned at {!connect}; [None] once the connection
    has been reaped after finishing. *)

val quiesce : t -> unit
(** Block until every scheduled ingest job has drained (pool mode);
    no-op inline. Callers must stop feeding bytes first. *)

val shutdown : t -> unit
(** {!quiesce}, stop the pool, unregister from the crash hook. *)

val outcomes : t -> Session.outcome list
(** Finished sessions, in completion order. Outcomes survive their
    connection (a disconnected client's verdict is still here). *)

val active_sessions : t -> int
val queued_bytes : t -> int
val parked : t -> bool

(** {1 Admin plane}

    The payloads behind the [STATS] / [HEALTH] / [METRICS] request
    frames, also callable directly (tests, a future HTTP shim). Session
    fields are read under the server lock only — same single-torn-read
    tolerance as {!dump_sessions}; the admin plane never contends with
    a connection's data plane. *)

val stats_json : t -> string
(** One JSON document: a ["server"] object (overload policy, parked
    bit, budget / queued / headroom bytes, finished-session and
    audit-record counts) and a ["sessions"] array (id, phase, queued
    bytes, credit, age and idle milliseconds, busy / gone bits). *)

val health : t -> bool * string
(** [(healthy, detail)] — healthy iff not parked and the global queue
    is within budget. [detail] is a one-line human summary either way. *)

val prometheus : t -> string
(** {!Sfr_obs.Telemetry.render_prometheus} plus live server gauges
    ([serve.sessions.active], [serve.budget.bytes],
    [serve.queued.bytes.now], [serve.budget.headroom.bytes],
    [serve.parked]). *)

val dump_sessions : t -> string
(** The per-session summary the crash hook prints: one line per live
    session (id, phase, queued bytes, credit, activity) plus global
    accounting — best-effort and lock-free-ish, safe on crash paths. *)
