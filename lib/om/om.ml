(* Two-level order-maintenance list.

   Layout: one circular doubly-linked list of items threaded through all
   groups; a circular doubly-linked list of groups. The base item/group are
   permanent minima (insertion is only ever *after* an existing item).

   Labels: group labels live in [0, 2^group_bits); item labels live in
   [0, 2^item_bits) within their group. An item x precedes y iff
   (x.grp.glabel, x.label) < (y.grp.glabel, y.label).

   Rebalancing:
   - a full group (>= group_capacity items) is split in two;
   - a group with no item-label gap at the insertion point is relabeled
     evenly (O(group_capacity) = O(1) amortized);
   - group labels use the Bender et al. density-threshold relabeling over
     dyadic label ranges, giving amortized O(lg n) per group insertion,
     i.e. amortized O(1) per item insertion since groups hold Theta(lg n)
     items in spirit (we use a fixed capacity, which keeps the practical
     bound and is what race-detector implementations do).

   Concurrency: t.lock serializes mutations. Queries read labels without
   the lock and validate against a seqlock version that relabeling bumps
   (odd while labels are in flux). *)

type group = {
  mutable glabel : int;
  mutable count : int;
  mutable gprev : group;
  mutable gnext : group;
  mutable first : item;
}

and item = {
  mutable label : int;
  mutable grp : group;
  mutable prev : item;
  mutable next : item;
}

type t = {
  mutable base_group : group;
  base_item : item;
  mutable nitems : int;
  mutable ngroups : int;
  lock : Mutex.t;
  version : int Atomic.t;
}

(* Observability: relabel storms are the OM cost the paper's analysis
   amortizes away; the counters let the ablations see them. *)
module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof
module Chaos = Sfr_chaos.Chaos

let m_relabels = Metrics.counter "om.relabels"
let m_splits = Metrics.counter "om.splits"
let m_relabel_span = Metrics.counter ~kind:`Max "om.relabel.max_span"

(* The relabel window is also the interval concurrent seqlock readers
   must retry through, so its latency distribution bounds query-side
   interference, not just insertion cost. *)
let t_relabel = Prof.timer "prof.om.relabel.ns"

let group_bits = 60
let group_label_limit = 1 lsl group_bits
let item_bits = 30
let item_label_limit = 1 lsl item_bits
let group_capacity = 48
let initial_item_gap = item_label_limit / (group_capacity + 2)

let create () =
  let rec base_item =
    { label = 0; grp = base_group; prev = base_item; next = base_item }
  and base_group =
    { glabel = 0; count = 1; gprev = base_group; gnext = base_group; first = base_item }
  in
  let t =
    {
      base_group;
      base_item;
      nitems = 1;
      ngroups = 1;
      lock = Mutex.create ();
      version = Atomic.make 0;
    }
  in
  (t, base_item)

(* -- seqlock helpers -------------------------------------------------- *)

(* Chaos delays inside the odd-version window (perturb-only site: the
   mutation lock is held here) stretch exactly the interval concurrent
   [compare_items] seqlock readers must detect and retry through. *)
let begin_relabel t =
  Atomic.incr t.version;
  Chaos.point Chaos.Relabel;
  Prof.start ()

let end_relabel t t0 =
  Atomic.incr t.version;
  Prof.stop t_relabel t0

(* -- group-level relabeling ------------------------------------------ *)

(* Walk the whole top list and spread group labels evenly over the label
   universe. O(ngroups); triggered only when a dyadic range relabel cannot
   find room (pathological) or the tail runs out of space. *)
let relabel_all_groups t =
  Metrics.incr m_relabels;
  Metrics.add m_relabel_span t.ngroups;
  let t0 = begin_relabel t in
  let gap = max 1 (group_label_limit / (t.ngroups + 1)) in
  let rec loop g label =
    g.glabel <- label;
    if g.gnext != t.base_group then loop g.gnext (label + gap)
  in
  loop t.base_group 0;
  end_relabel t t0

(* Bender-style: find the smallest enclosing dyadic label range around
   [g.glabel] whose population is under the density threshold, then spread
   that population evenly over the range. Threshold for a range of size
   2^i is (2/T)^i with T = 1.5. *)
let rebalance_groups_around t g =
  let threshold = ref 1.0 in
  let rec try_level i =
    if i > group_bits then relabel_all_groups t
    else begin
      let size = 1 lsl i in
      let lo = g.glabel land lnot (size - 1) in
      let hi = lo + size in
      (* collect the contiguous run of groups whose labels are in [lo,hi) *)
      let leftmost = ref g in
      while !leftmost != t.base_group && (!leftmost).gprev.glabel >= lo
            && (!leftmost).gprev != t.base_group do
        leftmost := (!leftmost).gprev
      done;
      if !leftmost == t.base_group || ((!leftmost).gprev == t.base_group
                                       && t.base_group.glabel >= lo)
      then leftmost := t.base_group;
      (* count members of the range *)
      let count = ref 0 in
      let cursor = ref !leftmost in
      let continue = ref true in
      while !continue do
        incr count;
        let next = (!cursor).gnext in
        if next == t.base_group || next.glabel >= hi then continue := false
        else cursor := next
      done;
      threshold := !threshold *. (2.0 /. 1.5);
      (* need even spreading to leave >= 2 of label room between neighbors,
         so a midpoint insertion after the retry is guaranteed to fit *)
      if float_of_int !count < !threshold && 2 * (!count + 1) <= size then begin
        Metrics.incr m_relabels;
        Metrics.add m_relabel_span !count;
        let t0 = begin_relabel t in
        let gap = size / (!count + 1) in
        let c = ref !leftmost in
        for j = 1 to !count do
          (!c).glabel <- lo + (j * gap);
          c := (!c).gnext
        done;
        end_relabel t t0
      end
      else try_level (i + 1)
    end
  in
  try_level 1

(* Insert a fresh empty group after [g] and return it; ensures a distinct
   label strictly between neighbors. *)
let rec insert_group_after t g =
  let next = g.gnext in
  let at_end = next == t.base_group in
  let label_ok =
    if at_end then g.glabel + 2 < group_label_limit else next.glabel - g.glabel >= 2
  in
  if not label_ok then begin
    if at_end then relabel_all_groups t else rebalance_groups_around t g;
    insert_group_after t g
  end
  else begin
    let label =
      if at_end then
        let room = group_label_limit - g.glabel in
        g.glabel + min (room / 2) (1 lsl 32)
      else g.glabel + ((next.glabel - g.glabel) / 2)
    in
    let rec ng =
      { glabel = label; count = 0; gprev = g; gnext = next; first = dummy }
    and dummy = { label = 0; grp = ng; prev = dummy; next = dummy } in
    g.gnext <- ng;
    next.gprev <- ng;
    t.ngroups <- t.ngroups + 1;
    ng
  end

(* -- item-level operations -------------------------------------------- *)

(* Spread the labels of [g]'s items evenly across the item label space. *)
let relabel_group t (g : group) =
  Metrics.incr m_relabels;
  let t0 = begin_relabel t in
  let gap = max 1 (item_label_limit / (g.count + 1)) in
  let rec loop (x : item) j =
    x.label <- j * gap;
    if x.next.grp == g && x.next != g.first then loop x.next (j + 1)
  in
  loop g.first 1;
  end_relabel t t0

(* Move the second half of [g] into a fresh group placed right after it. *)
let split_group t (g : group) =
  Metrics.incr m_splits;
  let ng = insert_group_after t g in
  let half = g.count / 2 in
  (* find the first item of the second half *)
  let rec advance (x : item) n = if n = 0 then x else advance x.next (n - 1) in
  let mover = advance g.first half in
  let t0 = begin_relabel t in
  ng.first <- mover;
  let rec claim (x : item) n =
    if n > 0 then begin
      x.grp <- ng;
      claim x.next (n - 1)
    end
  in
  claim mover (g.count - half);
  ng.count <- g.count - half;
  g.count <- half;
  end_relabel t t0;
  relabel_group t g;
  relabel_group t ng

let rec insert_after t (x : item) =
  Mutex.lock t.lock;
  let result = insert_after_locked t x in
  Mutex.unlock t.lock;
  result

and insert_after_locked t (x : item) =
  let g = x.grp in
  if g.count >= group_capacity then begin
    split_group t g;
    insert_after_locked t x
  end
  else begin
    let next = x.next in
    let x_is_last = next.grp != g || next == g.first in
    let upper = if x_is_last then item_label_limit else next.label in
    if upper - x.label < 2 then begin
      relabel_group t g;
      insert_after_locked t x
    end
    else begin
      let label =
        if x_is_last then x.label + min ((item_label_limit - x.label) / 2) initial_item_gap
        else x.label + ((upper - x.label) / 2)
      in
      let fresh = { label; grp = g; prev = x; next } in
      x.next <- fresh;
      next.prev <- fresh;
      g.count <- g.count + 1;
      t.nitems <- t.nitems + 1;
      fresh
    end
  end

(* -- queries ----------------------------------------------------------- *)

let rec compare_items t x y =
  let v0 = Atomic.get t.version in
  if v0 land 1 = 1 then begin
    Domain.cpu_relax ();
    compare_items t x y
  end
  else begin
    let gx = x.grp and gy = y.grp in
    let c =
      if gx == gy then Int.compare x.label y.label
      else Int.compare gx.glabel gy.glabel
    in
    if Atomic.get t.version = v0 then c
    else begin
      Domain.cpu_relax ();
      compare_items t x y
    end
  end

let precedes t x y = compare_items t x y < 0

let size t = t.nitems

let words t = (6 * t.nitems) + (7 * t.ngroups) + 8

(* -- test hooks --------------------------------------------------------- *)

let to_list t =
  let rec walk (x : item) acc =
    let acc = x :: acc in
    if x.next == t.base_item then List.rev acc else walk x.next acc
  in
  walk t.base_item []

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* group labels strictly ascending *)
  let rec walk_groups (g : group) seen =
    if g.gnext != t.base_group then begin
      if g.gnext.glabel <= g.glabel then
        fail "group labels not ascending: %d then %d" g.glabel g.gnext.glabel;
      walk_groups g.gnext (seen + 1)
    end
    else seen + 1
  in
  let ngroups = walk_groups t.base_group 0 in
  if ngroups <> t.ngroups then fail "ngroups mismatch: %d vs %d" ngroups t.ngroups;
  (* items: ascending (glabel, label), group membership contiguous *)
  let items = to_list t in
  if List.length items <> t.nitems then fail "nitems mismatch";
  let rec check_pairs = function
    | a :: (b :: _ as rest) ->
        let ka = (a.grp.glabel, a.label) and kb = (b.grp.glabel, b.label) in
        if compare ka kb >= 0 then
          fail "items not ascending: (%d,%d) then (%d,%d)" (fst ka) (snd ka)
            (fst kb) (snd kb);
        check_pairs rest
    | [ _ ] | [] -> ()
  in
  check_pairs items;
  (* per-group counts *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let c = try Hashtbl.find tbl x.grp with Not_found -> 0 in
      Hashtbl.replace tbl x.grp (c + 1))
    items;
  Hashtbl.iter
    (fun (g : group) c -> if g.count <> c then fail "group count mismatch: %d vs %d" g.count c)
    tbl
