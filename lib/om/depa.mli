(** DePa-style order maintenance: immutable fork-path labels (Westrick,
    Wang, Acar — "DePa: Simple, Provably Efficient, and Practical Order
    Maintenance for Task Parallelism", arXiv 2204.14168).

    Same operations as {!Om} (both satisfy {!Om_intf.S}); the difference
    is the labeling scheme. Each item carries a dyadic-rational label —
    an integer part plus a bit path packed into a 62-bit word, spilling
    to a heap array when the path outgrows the word. Labels are
    {e immutable once assigned}: there is no relabel phase, hence no
    global relabel window and no seqlock — {!precedes} and
    {!compare_items} are plain lock-free label comparisons with no retry
    loop. Inserting after the list tail or into an integer-part gap is
    O(1) bits; nested insertions between adjacent labels grow the bit
    path by at most the anchor's path length + 2 bits, so path length
    tracks the nesting depth of the insertion pattern (the fork depth of
    the WSP-Order spawn tree).

    Metrics (mirrors of the list backend's relabel counters):
    - [om.depa.path_bits] — high-water significant bits of any label
      ([`Max] counter);
    - [om.depa.heap_spills] — inserts whose label overflowed the packed
      word into a heap path; each spill passes the
      {!Sfr_chaos.Chaos.Label_extend} perturbation point. *)

type t
(** An ordered list. Mutations are serialized by an internal per-list
    mutex; queries never take it. *)

type item
(** An element: an immutable fork-path label. Items are never removed. *)

val create : unit -> t * item
(** A fresh list containing a single base item. *)

val insert_after : t -> item -> item
(** [insert_after t x] inserts a new item immediately after [x]. *)

val precedes : t -> item -> item -> bool
(** [precedes t x y] is true iff [x] is strictly before [y]. Lock-free:
    a plain label comparison, safe against concurrent inserts. *)

val compare_items : t -> item -> item -> int
(** Total order consistent with {!precedes}. Lock-free. *)

val size : t -> int
(** Number of items. *)

val words : t -> int
(** Approximate live machine words: item records plus spilled heap
    paths — the backend-honest analogue of the list backend's group
    array accounting. *)

val check_invariants : t -> unit
(** Raises [Failure] if the circular threading, the strict label
    ascent, or path-label well-formedness (nonzero streams, canonical
    spill arrays, in-range chunks) is violated. Test hook. *)

val to_list : t -> item list
(** All items in list order. Test hook. *)
