(** All paper benchmarks, in Figure 3 order. *)

val all : Workload.t list
val find : string -> Workload.t option
