(* Tests for the dag model: builder semantics, SF validation, ground-truth
   reachability, and the paper's structural lemmas (3.4, 3.7, 3.9) as
   executable properties over randomly generated structured programs. *)

module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Dag_check = Sfr_dag.Dag_check
module Dot = Sfr_dag.Dot
module Prng = Sfr_support.Prng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Hand-built dags                                                     *)
(* ------------------------------------------------------------------ *)

(* Plain fork-join:  root spawns a child, syncs, continues. *)
let build_forkjoin () =
  let t, root = Dag.create () in
  let child, cont = Dag.spawn t ~cur:root in
  let s = Dag.sync t ~cur:cont ~spawned_lasts:[ child ] ~created:[] in
  Dag.put t ~cur:s;
  (t, root, child, cont, s)

let test_forkjoin_shape () =
  let t, root, child, cont, s = build_forkjoin () in
  check int "nodes" 4 (Dag.n_nodes t);
  check int "futures" 1 (Dag.n_futures t);
  check bool "root->child" true (Dag_algo.reaches t Dag_algo.Full root child);
  check bool "root->cont" true (Dag_algo.reaches t Dag_algo.Full root cont);
  check bool "child/cont parallel" false (Dag_algo.reaches t Dag_algo.Full child cont);
  check bool "cont not before child" false (Dag_algo.reaches t Dag_algo.Full cont child);
  check bool "child->sync" true (Dag_algo.reaches t Dag_algo.Full child s);
  check bool "cont->sync" true (Dag_algo.reaches t Dag_algo.Full cont s);
  check bool "is SP dag" true (Dag_check.is_sp_dag t);
  Alcotest.(check (list (pair string string)))
    "valid" []
    (List.map (fun v -> (v.Dag_check.code, "")) (Dag_check.validate_sf t))

(* One structured future: root creates F, continues, gets F. *)
let build_one_future () =
  let t, root = Dag.create () in
  let child, cont, fid = Dag.create_future t ~cur:root in
  (* the future task does some work then puts *)
  Dag.put t ~cur:child;
  let g = Dag.get t ~cur:cont ~future:fid in
  (* root frame-end: implicit sync joining nothing real, fake-join for F *)
  let s = Dag.sync t ~cur:g ~spawned_lasts:[] ~created:[ fid ] in
  Dag.put t ~cur:s;
  (t, root, child, cont, fid, g, s)

let test_one_future () =
  let t, root, child, cont, fid, g, _s = build_one_future () in
  check int "futures" 2 (Dag.n_futures t);
  check bool "root->future" true (Dag_algo.reaches t Dag_algo.Full root child);
  check bool "future/cont parallel" true
    (let o = Dag_algo.build_oracle t Dag_algo.Full in
     Dag_algo.logically_parallel o child cont);
  check bool "future->get (get edge)" true (Dag_algo.reaches t Dag_algo.Full child g);
  check (Alcotest.option int) "last of future" (Some child) (Dag.last_of t fid);
  check (Alcotest.list int) "ancestors" [ 0 ] (Dag.f_ancestors t fid);
  check bool "valid SF" true (Dag_check.validate_sf t = [])

let test_single_touch_enforced () =
  let t, root = Dag.create () in
  let child, cont, fid = Dag.create_future t ~cur:root in
  Dag.put t ~cur:child;
  let g = Dag.get t ~cur:cont ~future:fid in
  Alcotest.check_raises "second get raises"
    (Invalid_argument "Dag.get: handle touched twice (single-touch violation)")
    (fun () -> ignore (Dag.get t ~cur:g ~future:fid))

let test_get_before_put_enforced () =
  let t, root = Dag.create () in
  let _child, cont, fid = Dag.create_future t ~cur:root in
  Alcotest.check_raises "get before put raises"
    (Invalid_argument "Dag.get: future has not completed (no put node)")
    (fun () -> ignore (Dag.get t ~cur:cont ~future:fid))

let test_double_put_enforced () =
  let t, root = Dag.create () in
  Dag.put t ~cur:root;
  Alcotest.check_raises "double put raises"
    (Invalid_argument "Dag.put: future already has a put node")
    (fun () -> Dag.put t ~cur:root)

(* PSP view: get edges disappear, fake joins appear. *)
let test_psp_view () =
  let t, _root, child, cont, fid, g, s = build_one_future () in
  (* In D, child (=last of future) reaches g via the get edge. *)
  check bool "full: future->get" true (Dag_algo.reaches t Dag_algo.Full child g);
  (* In PSP the get edge is gone; child reaches only the fake-join sync. *)
  check bool "psp: future !-> get" false (Dag_algo.reaches t Dag_algo.Psp child g);
  check bool "psp: future -> fake sync" true (Dag_algo.reaches t Dag_algo.Psp child s);
  check bool "psp: cont -> sync" true (Dag_algo.reaches t Dag_algo.Psp cont s);
  ignore fid

let test_validation_catches_missing_put () =
  let t, root = Dag.create () in
  let _child, _cont, _fid = Dag.create_future t ~cur:root in
  let violations = Dag_check.validate_sf t in
  check bool "missing put detected" true
    (List.exists (fun v -> v.Dag_check.code = "no-put") violations)

let test_dot_output () =
  let t, _, _, _, _, _, _ = build_one_future () in
  let dot_full = Dot.of_dag t Dag_algo.Full in
  let dot_psp = Dot.of_dag t Dag_algo.Psp in
  let has s sub =
    let n = String.length sub and h = String.length s in
    let rec scan i = i + n <= h && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  check bool "full has blue get edge" true (has dot_full "color=blue");
  check bool "psp has no blue get edge" false (has dot_psp "color=blue");
  check bool "psp has dashed fake edge" true (has dot_psp "style=dashed");
  check bool "clusters per future" true (has dot_full "cluster_f1")

(* ------------------------------------------------------------------ *)
(* Random structured programs (serial simulation over the builder)     *)
(* ------------------------------------------------------------------ *)

(* Serial depth-first simulation of a random structured-futures program.
   Handles are gettable only in the frame that created them (the full
   escaping-handle generator lives in the workloads library) — creation
   precedes get in the same frame, so the structured-use restriction holds
   by construction. *)
let random_sf_dag rng ~max_ops ~max_depth =
  let t, root = Dag.create () in
  let budget = ref max_ops in
  (* returns the frame's final node *)
  let rec run_frame cur depth =
    let cur = ref cur in
    let spawned = ref [] in
    let created = ref [] in
    let handles = ref [] in
    let steps = Prng.int rng 6 in
    for _ = 0 to steps do
      if !budget > 0 then begin
        decr budget;
        Dag.add_cost t !cur (1 + Prng.int rng 5);
        match Prng.int rng 5 with
        | 0 when depth < max_depth ->
            let child, cont = Dag.spawn t ~cur:!cur in
            let child_last = run_frame child (depth + 1) in
            spawned := child_last :: !spawned;
            cur := cont
        | 1 when depth < max_depth ->
            let child, cont, fid = Dag.create_future t ~cur:!cur in
            let child_last = run_future_frame child (depth + 1) in
            Dag.put t ~cur:child_last;
            created := fid :: !created;
            handles := fid :: !handles;
            cur := cont
        | 2 when !spawned <> [] || !created <> [] ->
            cur := Dag.sync t ~cur:!cur ~spawned_lasts:!spawned ~created:!created;
            spawned := [];
            created := []
        | 3 when !handles <> [] ->
            let i = Prng.int rng (List.length !handles) in
            let h = List.nth !handles i in
            handles := List.filteri (fun j _ -> j <> i) !handles;
            cur := Dag.get t ~cur:!cur ~future:h
        | _ -> Dag.add_cost t !cur 1
      end
    done;
    if !spawned <> [] || !created <> [] then
      cur := Dag.sync t ~cur:!cur ~spawned_lasts:!spawned ~created:!created;
    !cur
  (* a future task's frame: same, but does not put (caller puts) *)
  and run_future_frame first depth = run_frame first depth in
  let final = run_frame root 0 in
  Dag.put t ~cur:final;
  t

let gen_dag =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Prng.create seed in
      random_sf_dag rng ~max_ops:(30 + Prng.int rng 120) ~max_depth:5)
    QCheck2.Gen.(int_bound 1_000_000)

let prop_random_valid =
  QCheck2.Test.make ~name:"random structured dags validate as SF" ~count:200 gen_dag
    (fun t -> Dag_check.validate_sf t = [])

let prop_oracle_matches_bfs =
  QCheck2.Test.make ~name:"reach oracle agrees with BFS (both views)" ~count:60
    gen_dag (fun t ->
      let n = Dag.n_nodes t in
      let of_full = Dag_algo.build_oracle t Dag_algo.Full in
      let of_psp = Dag_algo.build_oracle t Dag_algo.Psp in
      let rng = Prng.create (n * 7919) in
      let ok = ref true in
      for _ = 1 to 200 do
        let u = Prng.int rng n and v = Prng.int rng n in
        if Dag_algo.oracle_reaches of_full u v <> Dag_algo.reaches t Dag_algo.Full u v
        then ok := false;
        if Dag_algo.oracle_reaches of_psp u v <> Dag_algo.reaches t Dag_algo.Psp u v
        then ok := false
      done;
      !ok)

(* Paper Lemma 3.7: for u, v in the same future dag, u ↠ v iff u ≺ v. *)
let prop_lemma_3_7 =
  QCheck2.Test.make ~name:"lemma 3.7: same-future PSP = full reachability"
    ~count:60 gen_dag (fun t ->
      let full = Dag_algo.build_oracle t Dag_algo.Full in
      let psp = Dag_algo.build_oracle t Dag_algo.Psp in
      let n = Dag.n_nodes t in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Dag.future_of t u = Dag.future_of t v then
            if Dag_algo.precedes full u v <> Dag_algo.precedes psp u v then
              ok := false
        done
      done;
      !ok)

(* Paper Lemmas 3.8 + 3.9: for u ∈ F, v ∈ G with F a strict future
   ancestor of G, u ↠ v iff u ≺ v (PSP is exact across ancestor pairs). *)
let prop_lemma_3_9 =
  QCheck2.Test.make ~name:"lemma 3.9: PSP exact for future-ancestor pairs"
    ~count:60 gen_dag (fun t ->
      let full = Dag_algo.build_oracle t Dag_algo.Full in
      let psp = Dag_algo.build_oracle t Dag_algo.Psp in
      let n = Dag.n_nodes t in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let fu = Dag.future_of t u and fv = Dag.future_of t v in
          if fu <> fv && List.mem fu (Dag.f_ancestors t fv) then
            if Dag_algo.precedes full u v <> Dag_algo.precedes psp u v then
              ok := false
        done
      done;
      !ok)

(* Paper Lemma 3.4 (plus Property 1): for u ∈ F, v ∈ G, F not an ancestor
   of G (and F ≠ G): u ≺ v iff last(F) ⪯ v. *)
let prop_lemma_3_4 =
  QCheck2.Test.make ~name:"lemma 3.4: non-ancestor reachability via last(F)"
    ~count:60 gen_dag (fun t ->
      let full = Dag_algo.build_oracle t Dag_algo.Full in
      let n = Dag.n_nodes t in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let fu = Dag.future_of t u and fv = Dag.future_of t v in
          if fu <> fv && not (List.mem fu (Dag.f_ancestors t fv)) then begin
            let expected =
              match Dag.last_of t fu with
              | None -> false
              | Some last -> Dag_algo.oracle_reaches full last v
            in
            if Dag_algo.precedes full u v <> expected then ok := false
          end
        done
      done;
      !ok)

let prop_span_le_work =
  QCheck2.Test.make ~name:"span <= work in both views" ~count:100 gen_dag (fun t ->
      let w = Dag_algo.work t in
      Dag_algo.span t Dag_algo.Full <= w && Dag_algo.span t Dag_algo.Psp <= w)

(* In the full dag, PSP reachability restricted to SP+create edges is a
   sub-relation of... and counts are internally consistent. *)
let prop_counts_consistent =
  QCheck2.Test.make ~name:"edge/node counts consistent" ~count:100 gen_dag (fun t ->
      let c = Dag_algo.counts t in
      c.Dag_algo.nodes = Dag.n_nodes t
      && c.Dag_algo.futures = Dag.n_futures t
      && c.Dag_algo.create_edges = Dag.n_futures t - 1
      (* every gotten future contributes exactly one get edge *)
      && c.Dag_algo.get_edges
         = List.length
             (List.filter
                (fun f -> Dag.get_node_of t f <> None)
                (List.init (Dag.n_futures t) Fun.id)))


(* ------------------------------------------------------------------ *)
(* Serialization round-trip                                            *)
(* ------------------------------------------------------------------ *)

module Dag_io = Sfr_dag.Dag_io

let dag_equal a b =
  let open Dag_algo in
  let ca = counts a and cb = counts b in
  ca = cb
  && List.init (Dag.n_nodes a) Fun.id
     |> List.for_all (fun v ->
            Dag.kind_of a v = Dag.kind_of b v
            && Dag.future_of a v = Dag.future_of b v
            && Dag.cost_of a v = Dag.cost_of b v
            && List.sort compare (Dag.preds a v) = List.sort compare (Dag.preds b v))
  && List.init (Dag.n_futures a) Fun.id
     |> List.for_all (fun f ->
            Dag.last_of a f = Dag.last_of b f
            && Dag.fparent a f = Dag.fparent b f
            && Dag.first_of a f = Dag.first_of b f)
  && List.sort compare (Dag.fake_joins a) = List.sort compare (Dag.fake_joins b)

let prop_io_roundtrip =
  QCheck2.Test.make ~name:"dag save/load round-trip" ~count:120 gen_dag (fun t ->
      let path = Filename.temp_file "sfdag" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let accesses =
            [
              { Dag_io.node = 0; loc = 5; is_write = true };
              { Dag_io.node = Dag.n_nodes t - 1; loc = 7; is_write = false };
            ]
          in
          Dag_io.save_file path ~accesses t;
          let t', accesses' = Dag_io.load_file path in
          dag_equal t t' && accesses = accesses'))

let prop_io_reachability_preserved =
  QCheck2.Test.make ~name:"loaded dag has identical reachability" ~count:40
    gen_dag (fun t ->
      let path = Filename.temp_file "sfdag" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Dag_io.save_file path t;
          let t', _ = Dag_io.load_file path in
          let oa = Dag_algo.build_oracle t Dag_algo.Full in
          let ob = Dag_algo.build_oracle t' Dag_algo.Full in
          let n = Dag.n_nodes t in
          let rng = Sfr_support.Prng.create (n * 31) in
          List.for_all
            (fun _ ->
              let u = Sfr_support.Prng.int rng n and v = Sfr_support.Prng.int rng n in
              Dag_algo.oracle_reaches oa u v = Dag_algo.oracle_reaches ob u v)
            (List.init 200 Fun.id)))


let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_valid;
      prop_oracle_matches_bfs;
      prop_lemma_3_7;
      prop_lemma_3_9;
      prop_lemma_3_4;
      prop_span_le_work;
      prop_counts_consistent;
      prop_io_roundtrip;
      prop_io_reachability_preserved;
    ]

(* Feed [content] to the loader and return its parse error. *)
let parse_error_of content =
  let tmp = Filename.temp_file "sfdag" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc content;
      close_out oc;
      match Dag_io.load_file_result tmp with
      | Error e -> e
      | Ok _ -> Alcotest.fail "expected a parse error")

let test_io_rejects_garbage () =
  let e = parse_error_of "not a dag\n" in
  Alcotest.(check int) "error on line 1" 1 e.Dag_io.line

let test_io_empty_file () =
  let e = parse_error_of "" in
  Alcotest.(check bool) "mentions empty" true
    (String.length e.Dag_io.message > 0)

let test_io_bad_int_token () =
  let e = parse_error_of "sfdag 1\ncounts 3 zero\n" in
  Alcotest.(check int) "line 2" 2 e.Dag_io.line;
  Alcotest.(check int) "column of bad token" 10 e.Dag_io.column

let test_io_node_out_of_range () =
  let e = parse_error_of "sfdag 1\ncounts 1 0\nnode 7 0 root 0\n" in
  Alcotest.(check int) "line 3" 3 e.Dag_io.line;
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "mentions range" true
    (contains e.Dag_io.message "out of range")

let test_io_bad_access_mode () =
  let e = parse_error_of "sfdag 1\ncounts 1 0\nnode 0 0 root 0\naccess 0 5 x\n" in
  Alcotest.(check int) "line 4" 4 e.Dag_io.line

let test_io_negative_counts () =
  let e = parse_error_of "sfdag 1\ncounts -2 0\n" in
  Alcotest.(check int) "line 2" 2 e.Dag_io.line

let test_io_bad_kind () =
  let e = parse_error_of "sfdag 1\ncounts 2 0\nnode 1 0 wobble 0\n" in
  Alcotest.(check int) "line 3" 3 e.Dag_io.line;
  Alcotest.(check int) "column of kind token" 10 e.Dag_io.column

let test_io_raising_wrapper () =
  let tmp = Filename.temp_file "sfdag" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "not a dag\n";
      close_out oc;
      match Dag_io.load_file tmp with
      | exception Dag_io.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected Parse_error on bad magic")

let () =
  Alcotest.run "dag"
    [
      ( "builder",
        [
          Alcotest.test_case "fork-join shape" `Quick test_forkjoin_shape;
          Alcotest.test_case "one future" `Quick test_one_future;
          Alcotest.test_case "single touch" `Quick test_single_touch_enforced;
          Alcotest.test_case "get before put" `Quick test_get_before_put_enforced;
          Alcotest.test_case "double put" `Quick test_double_put_enforced;
          Alcotest.test_case "psp view" `Quick test_psp_view;
          Alcotest.test_case "validation: missing put" `Quick
            test_validation_catches_missing_put;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "io rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "io empty file" `Quick test_io_empty_file;
          Alcotest.test_case "io bad int token" `Quick test_io_bad_int_token;
          Alcotest.test_case "io node out of range" `Quick test_io_node_out_of_range;
          Alcotest.test_case "io bad access mode" `Quick test_io_bad_access_mode;
          Alcotest.test_case "io negative counts" `Quick test_io_negative_counts;
          Alcotest.test_case "io bad kind" `Quick test_io_bad_kind;
          Alcotest.test_case "io raising wrapper" `Quick test_io_raising_wrapper;
        ] );
      ("properties", qtests);
    ]

