module Events = Sfr_runtime.Events
module Sp_order = Sfr_reach.Sp_order
module Fp_sets = Sfr_reach.Fp_sets
module Chunk_vec = Sfr_support.Chunk_vec
module Metrics = Sfr_obs.Metrics
module Prof = Sfr_obs.Prof

(* Same registry entry Fp_sets charges table growth to: the cp container
   itself is part of the reachability tables' footprint, and the
   chunked-vs-copy-on-write ablation shows up here (O(k) vs O(k²) words
   over k future creates). *)
let m_table_words = Metrics.counter "reach.table.alloc_words"

(* Query-case breakdown of Algorithm 1 (Lemmas 3.4-3.9): the three
   counters partition every Precedes call, so they sum to [queries ()].
   The matching prof.*.ns timers attribute wall time to the same cases
   (one atomic load per query while profiling is off). *)
let m_q_same = Metrics.counter "reach.query.same_future"
let m_q_cp = Metrics.counter "reach.query.cp"
let m_q_gp = Metrics.counter "reach.query.gp"
let t_q_same = Prof.timer "prof.reach.query.same_future.ns"
let t_q_cp = Prof.timer "prof.reach.query.cp.ns"
let t_q_gp = Prof.timer "prof.reach.query.gp.ns"

(* Per-strand detector state — the paper's "node". The [gp] table is the
   strand's reference-counted future set; the [block] is its frame's
   current sync-block placeholder in the pseudo-SP-dag orders. *)
type strand = {
  pos : Sp_order.pos;
  block : Sp_order.block option;
  fid : int;
  gp : Fp_sets.table;
}

type Events.state += Sf of strand

let as_sf = function
  | Sf s -> s
  | _ -> Detect_error.foreign_state ~detector:"Sf_order" ~context:"state unwrap"

(* cp(G) per future, indexed by future ID. Both stores give queries a
   lock-free read of immutable-once-installed entries; they differ in
   what a create pays:

   - [Cp_chunked] (default): a chunked vector — push claims a slot under
     a short lock and installs a new 512-slot chunk every 512 creates.
     O(1) amortized, O(k) container words total, and existing entries
     are never copied or moved.
   - [Cp_cow] (ablation): the original copy-on-write array snapshot —
     every create copies the whole pointer array under a mutex, O(k) per
     create and O(k²) container words over the run. *)
type cp_store =
  | Cp_chunked of Fp_sets.table Chunk_vec.t
  | Cp_cow of { arr : Fp_sets.table array Atomic.t; mu : Mutex.t }

let cp_get store fid =
  match store with
  | Cp_chunked cv -> Chunk_vec.get cv fid
  | Cp_cow { arr; _ } -> (Atomic.get arr).(fid)

(* allocate the next future ID with cp(new) = cp(parent) ∪ {parent} *)
let cp_append store eng ~parent_fid =
  match store with
  | Cp_chunked cv ->
      (* the child set doesn't depend on the new ID, so it is computed
         outside the vector's lock; push only claims the slot *)
      let parent_cp = Fp_sets.share (Chunk_vec.get cv parent_fid) in
      let child_cp = Fp_sets.with_added eng parent_cp parent_fid in
      Chunk_vec.push cv child_cp
  | Cp_cow { arr; mu } ->
      Mutex.lock mu;
      let old = Atomic.get arr in
      let fid = Array.length old in
      let parent_cp = Fp_sets.share old.(parent_fid) in
      let child_cp = Fp_sets.with_added eng parent_cp parent_fid in
      Atomic.set arr (Array.append old [| child_cp |]);
      (* the snapshot copy is container growth: fid+1 pointer slots *)
      Metrics.add m_table_words (fid + 1);
      Mutex.unlock mu;
      fid

let make_with_precedes ?(readers = `All) ?(sets = `Bitmap) ?(history = `Mutex)
    ?(fast = true) ?om () =
  let spo, root_pos = Sp_order.create ?backend:om () in
  let eng =
    Fp_sets.create (match sets with `Bitmap -> Fp_sets.Bitmap | `Hashed -> Fp_sets.Hashed)
  in
  let cp =
    if fast then begin
      let cv =
        Chunk_vec.create ~on_alloc:(Metrics.add m_table_words) (Fp_sets.empty eng)
      in
      ignore (Chunk_vec.push cv (Fp_sets.empty eng));
      Cp_chunked cv
    end
    else
      Cp_cow { arr = Atomic.make [| Fp_sets.empty eng |]; mu = Mutex.create () }
  in
  let races = Race.create () in
  (* Query count, striped per domain with one cache line per slot: a
     shared [Atomic.incr] here serializes every domain on one cache line
     and dominates sharded offline replay (millions of queries per
     domain). Concurrently live domain IDs are near-consecutive, so
     slots never collide mod 128 in practice and the sum stays exact. *)
  let q_stride = 8 in
  let q_slots = Array.make (128 * q_stride) 0 in
  let count_query () =
    let s = ((Domain.self () :> int) land 127) * q_stride in
    q_slots.(s) <- q_slots.(s) + 1
  in
  let query_total () = Array.fold_left ( + ) 0 q_slots in
  (* Algorithm 1: Precedes(u, v) for a previous accessor u against the
     currently executing strand v. *)
  let precedes (u : strand) (v : strand) =
    count_query ();
    let t0 = Prof.start () in
    if u == v then begin
      Metrics.incr m_q_same;
      Prof.stop t_q_same t0;
      true
    end
    else if u.fid = v.fid then begin
      Metrics.incr m_q_same;
      let r = Sp_order.precedes spo u.pos v.pos in
      Prof.stop t_q_same t0;
      r
    end
    else if Fp_sets.mem (cp_get cp v.fid) u.fid then begin
      Metrics.incr m_q_cp;
      let r = Sp_order.precedes spo u.pos v.pos in
      Prof.stop t_q_cp t0;
      r
    end
    else begin
      Metrics.incr m_q_gp;
      let r = Fp_sets.mem v.gp u.fid in
      Prof.stop t_q_gp t0;
      r
    end
  in
  let policy =
    match readers with
    | `All -> Access_history.Keep_all
    | `Two_per_future ->
        Access_history.Lr_per_future
          {
            future_of = (fun (s : strand) -> s.fid);
            more_left = (fun a b -> Sp_order.eng_precedes spo a.pos b.pos);
            more_right = (fun a b -> Sp_order.heb_precedes spo a.pos b.pos);
            covers = (fun a b -> a == b || Sp_order.precedes spo a.pos b.pos);
          }
  in
  let history = Access_history.create ~sync:history ~fast policy in
  let metrics = Detector.metrics_since_creation () in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let cur = as_sf cur in
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          let child =
            { pos = c_pos; block = None; fid = cur.fid; gp = Fp_sets.share cur.gp }
          in
          (* the continuation inherits the current strand's gp reference *)
          let cont = { pos = t_pos; block = Some blk; fid = cur.fid; gp = cur.gp } in
          (Sf child, Sf cont));
      on_create =
        (fun cur ->
          let cur = as_sf cur in
          (* cp(G) = cp(parent) ∪ {parent}: one O(k/w) set copy per
             future, the O(k²) construction term of Lemma 3.12 *)
          let fid = cp_append cp eng ~parent_fid:cur.fid in
          let c_pos, t_pos, blk = Sp_order.spawn spo ~cur:cur.pos ~block:cur.block in
          let child = { pos = c_pos; block = None; fid; gp = Fp_sets.share cur.gp } in
          let cont = { pos = t_pos; block = Some blk; fid = cur.fid; gp = cur.gp } in
          (Sf child, Sf cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts:_ ->
          let cur = as_sf cur in
          let pos = Sp_order.sync spo ~cur:cur.pos ~block:cur.block in
          let gp =
            Fp_sets.merge eng cur.gp (List.map (fun s -> (as_sf s).gp) spawned_lasts)
          in
          Sf { pos; block = None; fid = cur.fid; gp });
      on_put = (fun _ -> ());
      on_get =
        (fun ~cur ~put ->
          let cur = as_sf cur and put = as_sf put in
          let pos = Sp_order.step spo ~cur:cur.pos in
          (* gp(g) = gp(cur) ∪ gp(last(G)) ∪ {G} (Section 3.4) *)
          let gp =
            Fp_sets.with_added eng (Fp_sets.merge eng cur.gp [ put.gp ]) put.fid
          in
          Sf { pos; block = cur.block; fid = cur.fid; gp });
      on_returned = (fun ~cont:_ ~child_last:_ -> ());
      on_read =
        (fun state loc ->
          let v = as_sf state in
          Access_history.on_read history ~loc ~accessor:v ~check_writer:(fun w ->
              if not (precedes w v) then
                Race.report races ~loc ~kind:Race.Write_read ~prev_future:w.fid
                  ~cur_future:v.fid));
      on_write =
        (fun state loc ->
          let v = as_sf state in
          Access_history.on_write history ~loc ~accessor:v
            ~check:(fun ~prev ~prev_is_writer ->
              if not (precedes prev v) then
                Race.report races ~loc
                  ~kind:(if prev_is_writer then Race.Write_write else Race.Read_write)
                  ~prev_future:prev.fid ~cur_future:v.fid));
      on_work = (fun _ _ -> ());
    }
  in
  ( {
    Detector.name = "sf-order";
    callbacks;
    root = Sf { pos = root_pos; block = None; fid = 0; gp = Fp_sets.empty eng };
    races;
    queries = query_total;
    reach_words = (fun () -> Sp_order.words spo + Fp_sets.live_words eng);
    reach_table_words = (fun () -> Fp_sets.total_words eng);
    history_words = (fun () -> Access_history.words history);
    max_readers = (fun () -> Access_history.max_readers_at_once history);
    metrics;
    supports_parallel = true;
  },
    fun u v -> precedes (as_sf u) (as_sf v) )

let make ?readers ?sets ?history ?fast ?om () =
  fst (make_with_precedes ?readers ?sets ?history ?fast ?om ())

let strand_future st = (as_sf st).fid
