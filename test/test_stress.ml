(* Robustness and concurrency stress: the multicore executor under deep
   nesting, wide fan-out and worker churn; the order-maintenance lists and
   the lock-free access history hammered from multiple domains; and the
   small support modules not covered elsewhere. *)

module Om = Sfr_om.Om
module Vec = Sfr_support.Vec
module Mem_meter = Sfr_support.Mem_meter
module Program = Sfr_runtime.Program
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Events = Sfr_runtime.Events
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module Access_history = Sfr_detect.Access_history
module Detect_error = Sfr_detect.Detect_error

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Par_exec robustness                                                  *)
(* ------------------------------------------------------------------ *)

(* deep create nesting exercises frame bookkeeping and handle chains *)
let test_par_deep_nest () =
  let rec nest k () = if k = 0 then 0 else 1 + Program.get (Program.create (nest (k - 1))) in
  List.iter
    (fun workers ->
      let r, _ =
        Par_exec.run ~workers Events.null ~root:Events.Unit_state (fun () -> nest 300 ())
      in
      check int (Printf.sprintf "depth 300 (P=%d)" workers) 300 r)
    [ 1; 2; 4 ]

(* wide fan-out: many spawned tasks racing to a single sync *)
let test_par_wide_fan () =
  let prog () =
    let acc = Atomic.make 0 in
    for _ = 1 to 500 do
      Program.spawn (fun () -> Atomic.incr acc)
    done;
    Program.sync ();
    Atomic.get acc
  in
  List.iter
    (fun workers ->
      let r, _ = Par_exec.run ~workers Events.null ~root:Events.Unit_state prog in
      check int (Printf.sprintf "fan 500 (P=%d)" workers) 500 r)
    [ 1; 2; 8 ]

(* many escaped futures must all complete before run returns *)
let test_par_escaped_flood () =
  let acc = Atomic.make 0 in
  let prog () =
    for _ = 1 to 200 do
      ignore (Program.create (fun () -> Atomic.incr acc))
    done
  in
  let (), _ = Par_exec.run ~workers:4 Events.null ~root:Events.Unit_state prog in
  check int "all escaped futures ran" 200 (Atomic.get acc)

(* exceptions thrown inside a future body surface from run *)
let test_par_future_exception () =
  Alcotest.check_raises "future exception" (Failure "future-boom") (fun () ->
      ignore
        (Par_exec.run ~workers:2 Events.null ~root:Events.Unit_state (fun () ->
             let h = Program.create (fun () -> failwith "future-boom") in
             ignore (Program.get h))))

(* back-to-back runs reuse domain-local state safely *)
let test_par_sequential_runs () =
  for i = 1 to 5 do
    let r, _ =
      Par_exec.run ~workers:2 Events.null ~root:Events.Unit_state (fun () ->
          let h = Program.create (fun () -> i * 10) in
          Program.get h)
    in
    check int "run result" (i * 10) r
  done

(* a bigger synthetic program under parallel detection, several times:
   verdicts must be schedule-independent *)
let test_par_detection_stable () =
  let t = Synthetic.generate ~seed:99 ~ops:300 ~depth:6 ~locs:16 () in
  let verdict workers =
    let det = Sf_order.make () in
    let inst = Synthetic.instantiate t in
    let (), _ =
      Par_exec.run ~workers det.Detector.callbacks ~root:det.Detector.root
        inst.Synthetic.program
    in
    List.map (fun l -> l - inst.Synthetic.mem_base) (Detector.racy_locations det)
  in
  let reference = verdict 1 in
  for _ = 1 to 3 do
    check (Alcotest.list int) "stable verdict (P=3)" reference (verdict 3)
  done

(* ------------------------------------------------------------------ *)
(* OM under multi-domain mutation                                       *)
(* ------------------------------------------------------------------ *)

let test_om_concurrent_inserts () =
  let t, base = Om.create () in
  (* each domain owns a private anchor and hammers inserts after it *)
  let anchors = List.init 4 (fun _ -> Om.insert_after t base) in
  let domains =
    List.map
      (fun anchor ->
        Domain.spawn (fun () ->
            let cur = ref anchor in
            for i = 1 to 3_000 do
              if i mod 3 = 0 then cur := Om.insert_after t !cur
              else ignore (Om.insert_after t !cur)
            done))
      anchors
  in
  List.iter Domain.join domains;
  Om.check_invariants t;
  check int "all inserted" (1 + 4 + (4 * 3_000)) (Om.size t);
  (* anchor order is preserved: anchors were inserted right after base in
     reverse order *)
  let rec pairwise = function
    | a :: (b :: _ as rest) ->
        check bool "later anchors precede earlier" true (Om.precedes t b a);
        pairwise rest
    | _ -> ()
  in
  pairwise anchors

(* ------------------------------------------------------------------ *)
(* Lock-free access history under concurrency                           *)
(* ------------------------------------------------------------------ *)

let test_lockfree_history_stress () =
  let h = Access_history.create ~sync:`Lockfree Access_history.Keep_all in
  let checks = Atomic.make 0 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 4_999 do
              let loc = i mod 32 in
              if (i + d) mod 4 = 0 then
                Access_history.on_write h ~loc ~accessor:(d * 100_000 + i)
                  ~check:(fun ~prev:_ ~prev_is_writer:_ -> Atomic.incr checks)
              else
                Access_history.on_read h ~loc ~accessor:(d * 100_000 + i)
                  ~check_writer:(fun _ -> Atomic.incr checks)
            done))
  in
  List.iter Domain.join domains;
  check bool "many checks fired" true (Atomic.get checks > 1_000);
  check int "locations tracked" 32 (Access_history.locations_tracked h);
  (* the completeness skeleton: after a quiescent write, a later read must
     be checked against it *)
  Access_history.on_write h ~loc:999 ~accessor:1 ~check:(fun ~prev:_ ~prev_is_writer:_ -> ());
  let seen = ref [] in
  Access_history.on_read h ~loc:999 ~accessor:2 ~check_writer:(fun w -> seen := w :: !seen);
  check (Alcotest.list int) "writer visible to later reader" [ 1 ] !seen

let test_lockfree_sparse_locations () =
  (* growth of the dense cell array across far-apart locations *)
  let h = Access_history.create ~sync:`Lockfree Access_history.Keep_all in
  List.iter
    (fun loc ->
      Access_history.on_write h ~loc ~accessor:loc
        ~check:(fun ~prev:_ ~prev_is_writer:_ -> ()))
    [ 0; 1_000; 50_000; 200_000 ];
  check int "four cells" 4 (Access_history.locations_tracked h);
  let seen = ref [] in
  Access_history.on_read h ~loc:200_000 ~accessor:7
    ~check_writer:(fun w -> seen := w :: !seen);
  check (Alcotest.list int) "far cell intact" [ 200_000 ] !seen

let test_lockfree_rejects_lr () =
  Alcotest.check_raises "lockfree requires keep-all"
    (Detect_error.Error
       (Detect_error.Unsupported
          {
            detector = "Access_history";
            feature = "`Lockfree with Lr_per_future (requires Keep_all)";
          }))
    (fun () ->
      ignore
        (Access_history.create ~sync:`Lockfree
           (Access_history.Lr_per_future
              {
                future_of = (fun (_ : int) -> 0);
                more_left = (fun _ _ -> false);
                more_right = (fun _ _ -> false);
                covers = (fun _ _ -> false);
              })))

(* ------------------------------------------------------------------ *)
(* Support modules: Vec, Mem_meter                                      *)
(* ------------------------------------------------------------------ *)

let test_vec () =
  let v = Vec.create ~dummy:(-1) () in
  check int "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    check int "push index" i (Vec.push v (i * 2))
  done;
  check int "length" 100 (Vec.length v);
  check int "get" 84 (Vec.get v 42);
  Vec.set v 42 (-5);
  check int "set" (-5) (Vec.get v 42);
  check int "fold" (List.fold_left ( + ) 0 (Vec.to_list v)) (Vec.fold ( + ) 0 v);
  let seen = ref 0 in
  Vec.iteri (fun i x -> if i = 7 then seen := x) v;
  check int "iteri" 14 !seen;
  Alcotest.check_raises "bounds" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 100));
  check bool "words >= length" true (Vec.words v >= Vec.length v)

let test_mem_meter () =
  check int "bytes per word" (Sys.word_size / 8) (Mem_meter.bytes_of_words 1);
  check bool "mib" true (abs_float (Mem_meter.mib_of_words (1024 * 1024 / 8) -. 1.0) < 0.01);
  let fmt w = Format.asprintf "%a" Mem_meter.pp_bytes w in
  check bool "B" true (String.length (fmt 1) > 0);
  check bool "KiB rendered" true
    (let s = fmt 1024 in
     String.length s >= 3 && String.sub s (String.length s - 3) 3 = "KiB");
  check bool "heap probe positive" true (Mem_meter.heap_live_words () > 0)

let () =
  Alcotest.run "stress"
    [
      ( "par_exec",
        [
          Alcotest.test_case "deep nest" `Quick test_par_deep_nest;
          Alcotest.test_case "wide fan" `Quick test_par_wide_fan;
          Alcotest.test_case "escaped flood" `Quick test_par_escaped_flood;
          Alcotest.test_case "future exception" `Quick test_par_future_exception;
          Alcotest.test_case "sequential runs" `Quick test_par_sequential_runs;
          Alcotest.test_case "stable detection" `Quick test_par_detection_stable;
        ] );
      ("om", [ Alcotest.test_case "concurrent inserts" `Quick test_om_concurrent_inserts ]);
      ( "lockfree_history",
        [
          Alcotest.test_case "stress" `Quick test_lockfree_history_stress;
          Alcotest.test_case "sparse locations" `Quick test_lockfree_sparse_locations;
          Alcotest.test_case "rejects Lr policy" `Quick test_lockfree_rejects_lr;
        ] );
      ( "support",
        [
          Alcotest.test_case "vec" `Quick test_vec;
          Alcotest.test_case "mem_meter" `Quick test_mem_meter;
        ] );
    ]
