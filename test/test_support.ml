(* Unit and property tests for the support substrate: bitsets, union-find,
   PRNG determinism, stats, and table rendering. *)

module Bitset = Sfr_support.Bitset
module Chunk_vec = Sfr_support.Chunk_vec
module Union_find = Sfr_support.Union_find
module Prng = Sfr_support.Prng
module Stats = Sfr_support.Stats
module Tablefmt = Sfr_support.Tablefmt

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Bitset unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_bitset_empty () =
  let s = Bitset.create () in
  check bool "empty" true (Bitset.is_empty s);
  check int "cardinal" 0 (Bitset.cardinal s);
  check bool "mem out of range" false (Bitset.mem s 1000)

let test_bitset_add_mem () =
  let s = Bitset.create () in
  Bitset.add s 0;
  Bitset.add s 62;
  Bitset.add s 63;
  Bitset.add s 1000;
  check bool "mem 0" true (Bitset.mem s 0);
  check bool "mem 62" true (Bitset.mem s 62);
  check bool "mem 63" true (Bitset.mem s 63);
  check bool "mem 1000" true (Bitset.mem s 1000);
  check bool "mem 64" false (Bitset.mem s 64);
  check int "cardinal" 4 (Bitset.cardinal s)

let test_bitset_remove () =
  let s = Bitset.singleton 42 in
  check bool "mem before" true (Bitset.mem s 42);
  Bitset.remove s 42;
  check bool "mem after" false (Bitset.mem s 42);
  Bitset.remove s 9999 (* out of range removal is a no-op *)

let test_bitset_union () =
  let a = Bitset.singleton 1 and b = Bitset.singleton 200 in
  Bitset.union_into ~dst:a b;
  check bool "has 1" true (Bitset.mem a 1);
  check bool "has 200" true (Bitset.mem a 200);
  check bool "b unchanged" false (Bitset.mem b 1)

let test_bitset_subset () =
  let a = Bitset.create () and b = Bitset.create () in
  Bitset.add a 3;
  Bitset.add b 3;
  Bitset.add b 70;
  check bool "a subset b" true (Bitset.subset a b);
  check bool "b not subset a" false (Bitset.subset b a);
  check bool "empty subset" true (Bitset.subset (Bitset.create ()) a)

let test_bitset_private_bits () =
  let a = Bitset.singleton 1 and b = Bitset.singleton 2 in
  check bool "disjoint -> both private" true (Bitset.each_side_has_private_bit a b);
  let c = Bitset.copy a in
  Bitset.add c 2;
  check bool "superset -> no" false (Bitset.each_side_has_private_bit a c);
  check bool "symmetric" false (Bitset.each_side_has_private_bit c a);
  check bool "equal -> no" false (Bitset.each_side_has_private_bit a (Bitset.copy a))

let test_bitset_elements () =
  let s = Bitset.create () in
  List.iter (Bitset.add s) [ 5; 1; 300; 64 ];
  check (Alcotest.list int) "sorted elements" [ 1; 5; 64; 300 ] (Bitset.elements s)

(* ------------------------------------------------------------------ *)
(* Bitset property tests vs a reference model                          *)
(* ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> `Add i) (int_bound 500);
        map (fun i -> `Remove i) (int_bound 500);
      ])

let apply_ops ops =
  let s = Bitset.create () in
  let model =
    List.fold_left
      (fun model op ->
        match op with
        | `Add i ->
            Bitset.add s i;
            IntSet.add i model
        | `Remove i ->
            Bitset.remove s i;
            IntSet.remove i model)
      IntSet.empty ops
  in
  (s, model)

let prop_bitset_model =
  QCheck2.Test.make ~name:"bitset agrees with Set model" ~count:300
    QCheck2.Gen.(list_size (int_bound 60) op_gen)
    (fun ops ->
      let s, model = apply_ops ops in
      IntSet.elements model = Bitset.elements s
      && IntSet.cardinal model = Bitset.cardinal s
      && List.for_all (fun i -> Bitset.mem s i = IntSet.mem i model)
           (List.init 501 Fun.id))

let prop_bitset_union =
  QCheck2.Test.make ~name:"bitset union agrees with Set union" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_bound 40) op_gen) (list_size (int_bound 40) op_gen))
    (fun (ops_a, ops_b) ->
      let a, ma = apply_ops ops_a in
      let b, mb = apply_ops ops_b in
      Bitset.union_into ~dst:a b;
      IntSet.elements (IntSet.union ma mb) = Bitset.elements a)

let prop_bitset_subset =
  QCheck2.Test.make ~name:"bitset subset agrees with Set subset" ~count:300
    QCheck2.Gen.(
      pair (list_size (int_bound 40) op_gen) (list_size (int_bound 40) op_gen))
    (fun (ops_a, ops_b) ->
      let a, ma = apply_ops ops_a in
      let b, mb = apply_ops ops_b in
      Bitset.subset a b = IntSet.subset ma mb
      && Bitset.each_side_has_private_bit a b
         = (not (IntSet.subset ma mb) && not (IntSet.subset mb ma)))

(* SWAR popcount vs a bit-probing reference, across the whole word
   including the sign bit (the 63rd bit of an OCaml int). *)
let popcount_ref x =
  let n = ref 0 in
  for i = 0 to Sys.int_size - 1 do
    if x land (1 lsl i) <> 0 then incr n
  done;
  !n

let test_popcount_boundaries () =
  List.iter
    (fun x ->
      check int (Printf.sprintf "popcount %#x" x) (popcount_ref x)
        (Bitset.popcount_word x))
    [ 0; 1; -1; 2; 3; max_int; min_int; min_int + 1; 1 lsl 62; (1 lsl 62) - 1;
      1 lsl 31; (1 lsl 31) - 1; 0x0F0F; -2; lnot 1 ]

let prop_popcount_model =
  QCheck2.Test.make ~name:"SWAR popcount agrees with bit probing" ~count:2000
    QCheck2.Gen.(map Int64.to_int int64)
    (fun x -> Bitset.popcount_word x = popcount_ref x)

(* iter must produce exactly the members, ascending, including bits at
   word boundaries (62/63/64 on a 63-bit-int build) *)
let test_iter_word_boundaries () =
  let s = Bitset.create () in
  let members = [ 0; 1; 61; 62; 63; 64; 125; 126; 127; 500 ] in
  List.iter (Bitset.add s) members;
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) s;
  check (Alcotest.list int) "iter ascending over boundaries" members
    (List.rev !seen)

let prop_iter_model =
  QCheck2.Test.make ~name:"LSB iter visits exactly the members, ascending"
    ~count:300
    QCheck2.Gen.(list_size (int_bound 60) op_gen)
    (fun ops ->
      let s, model = apply_ops ops in
      let seen = ref [] in
      Bitset.iter (fun i -> seen := i :: !seen) s;
      List.rev !seen = IntSet.elements model)

(* ------------------------------------------------------------------ *)
(* Chunk_vec                                                           *)
(* ------------------------------------------------------------------ *)

let test_chunk_vec_roundtrip () =
  let v = Chunk_vec.create (-1) in
  check int "empty length" 0 (Chunk_vec.length v);
  (* cross several chunk boundaries (chunks are 512 slots) *)
  for i = 0 to 1499 do
    check int "push returns the index" i (Chunk_vec.push v (i * 3))
  done;
  check int "length" 1500 (Chunk_vec.length v);
  for i = 0 to 1499 do
    if Chunk_vec.get v i <> i * 3 then
      Alcotest.failf "get %d = %d, expected %d" i (Chunk_vec.get v i) (i * 3)
  done;
  check int "chunk count is ceil(len/512)" 3 (Chunk_vec.chunk_allocs v)

let test_chunk_vec_sharing () =
  (* chunks are shared structurally between spine snapshots: growing the
     spine must reuse the existing chunk arrays, never copy elements *)
  let v = Chunk_vec.create (-1) in
  for i = 0 to 511 do
    ignore (Chunk_vec.push v i)
  done;
  let before = Chunk_vec.debug_chunks v in
  ignore (Chunk_vec.push v 512);
  (* crosses into chunk 1 *)
  let after = Chunk_vec.debug_chunks v in
  check int "one chunk before" 1 (Array.length before);
  check int "two chunks after" 2 (Array.length after);
  check bool "chunk 0 physically shared" true (before.(0) == after.(0));
  for i = 0 to 1000 do
    ignore (Chunk_vec.push v (513 + i))
  done;
  let later = Chunk_vec.debug_chunks v in
  check bool "chunk 0 still shared" true (before.(0) == later.(0));
  check bool "chunk 1 shared" true (after.(1) == later.(1))

let test_chunk_vec_alloc_linear () =
  (* container growth is O(n) words, not the O(n²) of per-push
     copy-on-write snapshots: for n pushes, chunks account 512 words per
     512 pushes and spine copies 1+2+...+ceil(n/512) *)
  let hook_total = ref 0 in
  let v = Chunk_vec.create ~on_alloc:(fun w -> hook_total := !hook_total + w) 0 in
  let n = 8 * 512 in
  for i = 0 to n - 1 do
    ignore (Chunk_vec.push v i)
  done;
  let words = Chunk_vec.alloc_words v in
  check int "on_alloc hook saw every allocation" words !hook_total;
  check bool "linear in n" true (words < 2 * n);
  (* the copy-on-write equivalent would be n*(n+1)/2 words *)
  check bool "far below quadratic" true (words * 100 < n * (n + 1) / 2)

let test_chunk_vec_parallel_push () =
  let v = Chunk_vec.create (-1) in
  let per_domain = 600 in
  let ds =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            List.init per_domain (fun i -> Chunk_vec.push v ((d * per_domain) + i))))
  in
  let idxs = List.concat_map Domain.join ds in
  check int "every push got a slot" (3 * per_domain) (Chunk_vec.length v);
  (* indices are a permutation of 0..n-1 *)
  let sorted = List.sort compare idxs in
  check (Alcotest.list int) "indices dense and unique"
    (List.init (3 * per_domain) Fun.id)
    sorted;
  (* every stored value is read back exactly once across all indices *)
  let vals = List.sort compare (List.map (Chunk_vec.get v) idxs) in
  check (Alcotest.list int) "values all present"
    (List.init (3 * per_domain) Fun.id)
    vals

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_basic () =
  let t = Union_find.create () in
  let a = Union_find.make_set t in
  let b = Union_find.make_set t in
  let c = Union_find.make_set t in
  check bool "distinct" false (Union_find.same t a b);
  let _ = Union_find.union t a b in
  check bool "merged" true (Union_find.same t a b);
  check bool "c apart" false (Union_find.same t a c);
  let _ = Union_find.union t b c in
  check bool "transitive" true (Union_find.same t a c);
  check int "count" 3 (Union_find.count t)

(* Reference model: partition as a map from element to a canonical member
   computed by naive flooding. *)
let prop_uf_model =
  let gen =
    QCheck2.Gen.(
      pair (int_range 1 30) (list_size (int_bound 60) (pair (int_bound 29) (int_bound 29))))
  in
  QCheck2.Test.make ~name:"union-find agrees with naive partition" ~count:200 gen
    (fun (n, unions) ->
      let unions = List.filter (fun (a, b) -> a < n && b < n) unions in
      let t = Union_find.create () in
      for _ = 1 to n do
        ignore (Union_find.make_set t)
      done;
      List.iter (fun (a, b) -> ignore (Union_find.union t a b)) unions;
      (* naive model: repeatedly propagate minimum representative *)
      let repr = Array.init n Fun.id in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (a, b) ->
            let m = min repr.(a) repr.(b) in
            if repr.(a) <> m || repr.(b) <> m then begin
              (* unify the two classes entirely *)
              let ra = repr.(a) and rb = repr.(b) in
              Array.iteri (fun i r -> if r = ra || r = rb then repr.(i) <- m) repr;
              changed := true
            end)
          unions
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Union_find.same t i j <> (repr.(i) = repr.(j)) then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let c = Prng.split a in
  let xs = List.init 50 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 50 (fun _ -> Prng.int c 1_000_000) in
  check bool "split streams differ" true (xs <> ys)

let prop_prng_bounds =
  QCheck2.Test.make ~name:"prng int stays in bounds" ~count:200
    QCheck2.Gen.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      List.for_all
        (fun _ ->
          let v = Prng.int g bound in
          v >= 0 && v < bound)
        (List.init 50 Fun.id))

let prop_prng_float_bounds =
  QCheck2.Test.make ~name:"prng float stays in bounds" ~count:200
    QCheck2.Gen.small_int
    (fun seed ->
      let g = Prng.create seed in
      List.for_all
        (fun _ ->
          let v = Prng.float g 3.5 in
          v >= 0.0 && v < 3.5)
        (List.init 50 Fun.id))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let flt = Alcotest.float 1e-9

let test_stats_mean () =
  check flt "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check bool "mean empty is nan" true (Float.is_nan (Stats.mean []))

let test_stats_stddev () =
  check flt "stddev constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check flt "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_median () =
  check flt "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check flt "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check bool "empty is nan" true (Float.is_nan (Stats.median []))

let test_stats_median_nan () =
  (* Float.compare sorts nan below every number, so the result is
     deterministic — unlike polymorphic compare, whose nan ordering is
     unspecified and could make the median depend on input order. *)
  check bool "all-nan is nan" true (Float.is_nan (Stats.median [ nan ]));
  check flt "nan sorts first (odd)" 1.0 (Stats.median [ 1.0; nan; 3.0 ]);
  check flt "nan sorts first, any order" 1.0 (Stats.median [ 3.0; 1.0; nan ]);
  check flt "nan sorts first (even)" 1.5
    (Stats.median [ nan; 2.0; 1.0; 7.0 ])

let test_stats_minmax () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  check flt "min" (-1.0) lo;
  check flt "max" 7.0 hi

let test_stats_repeat () =
  let result, times = Stats.repeat_timed 5 (fun () -> 42) in
  check int "result" 42 result;
  check int "five timings" 5 (List.length times);
  List.iter (fun t -> check bool "non-negative" true (t >= 0.0)) times

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)
(* ------------------------------------------------------------------ *)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t =
    Tablefmt.create ~title:"demo" [ ("name", Tablefmt.Left); ("n", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_separator t;
  Tablefmt.add_row t [ "b"; "100" ];
  let s = Tablefmt.render t in
  check bool "has title" true (String.length s > 4 && String.sub s 0 4 = "demo");
  check bool "contains alpha" true (contains_substring s "alpha");
  check bool "contains header" true (contains_substring s "name")

let test_table_cells () =
  check Alcotest.string "times" "(37.84x)" (Tablefmt.cell_times 37.84);
  check Alcotest.string "speedup" "[19.10x]" (Tablefmt.cell_speedup 19.1);
  check Alcotest.string "small int" "4200" (Tablefmt.cell_int_compact 4200);
  check Alcotest.string "big int" "1.72e10" (Tablefmt.cell_int_compact 17_200_000_000)

let test_table_mismatch () =
  let t = Tablefmt.create [ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "row width checked" (Invalid_argument "Tablefmt.add_row: cell count mismatch")
    (fun () -> Tablefmt.add_row t [ "x"; "y" ])

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bitset_model;
      prop_bitset_union;
      prop_bitset_subset;
      prop_popcount_model;
      prop_iter_model;
      prop_uf_model;
      prop_prng_bounds;
      prop_prng_float_bounds;
    ]

let () =
  Alcotest.run "support"
    [
      ( "bitset",
        [
          Alcotest.test_case "empty" `Quick test_bitset_empty;
          Alcotest.test_case "add/mem" `Quick test_bitset_add_mem;
          Alcotest.test_case "remove" `Quick test_bitset_remove;
          Alcotest.test_case "union" `Quick test_bitset_union;
          Alcotest.test_case "subset" `Quick test_bitset_subset;
          Alcotest.test_case "private bits" `Quick test_bitset_private_bits;
          Alcotest.test_case "elements sorted" `Quick test_bitset_elements;
          Alcotest.test_case "popcount boundaries" `Quick test_popcount_boundaries;
          Alcotest.test_case "iter word boundaries" `Quick test_iter_word_boundaries;
        ] );
      ( "chunk_vec",
        [
          Alcotest.test_case "roundtrip" `Quick test_chunk_vec_roundtrip;
          Alcotest.test_case "chunk sharing" `Quick test_chunk_vec_sharing;
          Alcotest.test_case "linear allocation" `Quick test_chunk_vec_alloc_linear;
          Alcotest.test_case "parallel push" `Quick test_chunk_vec_parallel_push;
        ] );
      ( "union_find",
        [ Alcotest.test_case "basic" `Quick test_uf_basic ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "median nan" `Quick test_stats_median_nan;
          Alcotest.test_case "min_max" `Quick test_stats_minmax;
          Alcotest.test_case "repeat_timed" `Quick test_stats_repeat;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "mismatch" `Quick test_table_mismatch;
        ] );
      ("properties", qtests);
    ]
