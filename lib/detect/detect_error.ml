type t =
  | Foreign_state of { detector : string; context : string }
  | Unsupported of { detector : string; feature : string }

exception Error of t

let to_string = function
  | Foreign_state { detector; context } ->
      Printf.sprintf "%s: foreign state in %s" detector context
  | Unsupported { detector; feature } ->
      Printf.sprintf "%s: unsupported feature %s" detector feature

let pp fmt e = Format.pp_print_string fmt (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Detect_error.Error(%s)" (to_string e))
    | _ -> None)

let foreign_state ~detector ~context =
  raise (Error (Foreign_state { detector; context }))

let unsupported ~detector ~feature =
  raise (Error (Unsupported { detector; feature }))
