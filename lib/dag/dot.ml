let kind_shape = function
  | Dag.Root -> "doublecircle"
  | Dag.Spawned | Dag.Created -> "circle"
  | Dag.Cont -> "circle"
  | Dag.Sync -> "diamond"
  | Dag.Get -> "box"

let of_dag ?(name = "dag") t view =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph %s {\n  rankdir=TB;\n  node [fontsize=10];\n" name;
  (* cluster nodes by future dag, mirroring the paper's figures *)
  for f = 0 to Dag.n_futures t - 1 do
    pr "  subgraph cluster_f%d {\n    label=\"future %d\";\n    style=dotted;\n" f f;
    for v = 0 to Dag.n_nodes t - 1 do
      if Dag.future_of t v = f then
        pr "    n%d [label=\"%d\", shape=%s];\n" v v (kind_shape (Dag.kind_of t v))
    done;
    pr "  }\n"
  done;
  (* edges *)
  for u = 0 to Dag.n_nodes t - 1 do
    List.iter
      (fun (ek, w) ->
        match (ek, view) with
        | Dag.Sp, _ -> pr "  n%d -> n%d;\n" u w
        | Dag.Create_edge, Dag_algo.Full -> pr "  n%d -> n%d [color=red];\n" u w
        | Dag.Create_edge, Dag_algo.Psp ->
            pr "  n%d -> n%d [color=red, label=\"spawn\"];\n" u w
        | Dag.Get_edge, Dag_algo.Full -> pr "  n%d -> n%d [color=blue];\n" u w
        | Dag.Get_edge, Dag_algo.Psp -> ())
      (Dag.succs t u)
  done;
  (match view with
  | Dag_algo.Full -> ()
  | Dag_algo.Psp ->
      List.iter
        (fun (g, s) ->
          match Dag.last_of t g with
          | None -> ()
          | Some last -> pr "  n%d -> n%d [style=dashed, color=gray];\n" last s)
        (Dag.fake_joins t));
  pr "}\n";
  Buffer.contents buf

let write_file ~path ?name t view =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_dag ?name t view))
