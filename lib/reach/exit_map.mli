(** Per-node non-SP-ancestor tables for the F-Order baseline (general
    futures, Xu et al. PPoPP'20 style).

    Without the structured-future restriction, knowing that {e some} node
    of future [F] NSP-precedes [v] is not enough — F-Order must remember,
    per node [v] and per future [F], the set of [F]'s {e NSP exit points}
    (create nodes and the put node) from which [v] is reachable; a query
    [u ≺ v] then scans the stored exits [w] of [u]'s future checking
    [u ⪯ w] in [F]'s series-parallel order. This full hash-table-per-node
    representation is precisely the overhead SF-Order's bitmaps avoid
    (paper Section 4); the two are contrasted by Figure 5 and the
    ablation bench.

    Same reference-counting / merge-only-when-needed discipline as
    {!Fp_sets}. ['v] is the exit-position type; physical equality
    identifies exits. *)

type 'v eng
type 'v table

val create : unit -> 'v eng
val empty : 'v eng -> 'v table
val share : 'v table -> 'v table
val release : 'v table -> unit

val with_exit : 'v eng -> 'v table -> fid:int -> 'v -> 'v table
(** Consumes the caller's reference; returns an owned table with [v]
    added to [fid]'s exit set (no-op if physically present; otherwise by
    copy — published tables are immutable, like {!Sfr_reach.Fp_sets}). *)

val merge : 'v eng -> 'v table -> 'v table list -> 'v table
(** Union; consumes all references. Allocates only when no input subsumes
    the rest. *)

val exits : 'v table -> fid:int -> 'v list
(** Exit points of future [fid] recorded as reaching this node. *)

val entry_count : 'v table -> int

val allocations : 'v eng -> int
val live_words : 'v eng -> int
val peak_words : 'v eng -> int
val total_words : 'v eng -> int
(** Cumulative words ever allocated (the Figure 5 retain-everything
    metric; see {!Sfr_reach.Fp_sets.total_words}). *)
