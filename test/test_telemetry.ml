(* Tests for Sfr_obs.Telemetry: sampler lifecycle idempotence, ring
   boundedness under a slow consumer, JSONL round-tripping through
   Json_min, Prometheus exposition grammar, percentile estimation, the
   slot-collision counter, and the 4-domain probe-consistency check
   (per-worker scheduler totals reconcile against the Metrics deltas). *)

module Metrics = Sfr_obs.Metrics
module Telemetry = Sfr_obs.Telemetry
module Json_min = Sfr_obs.Json_min
module Par_exec = Sfr_runtime.Par_exec
module Events = Sfr_runtime.Events
module Synthetic = Sfr_workloads.Synthetic

let check = Alcotest.check

(* Wait until the sampler has taken at least [n] samples (bounded; the
   1 ms period makes this tens of milliseconds in practice). *)
let wait_for_samples n =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Telemetry.sample_count () < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  if Telemetry.sample_count () < n then
    Alcotest.failf "sampler produced %d/%d samples within 10 s"
      (Telemetry.sample_count ()) n

(* -- lifecycle --------------------------------------------------------- *)

let test_start_stop_idempotent () =
  Telemetry.stop ();
  (* stop with no sampler is a no-op *)
  check Alcotest.bool "not running initially" false (Telemetry.running ());
  check Alcotest.bool "not armed initially" false (Telemetry.armed ());
  Telemetry.start ~sample_ms:1 ();
  check Alcotest.bool "running after start" true (Telemetry.running ());
  check Alcotest.bool "armed after start" true (Telemetry.armed ());
  let c1 = Telemetry.sample_count () in
  Telemetry.start ~sample_ms:1 ();
  (* second start: same sampler *)
  check Alcotest.bool "still running" true (Telemetry.running ());
  check Alcotest.bool "second start did not reset the ring" true
    (Telemetry.sample_count () >= c1);
  Telemetry.stop ();
  check Alcotest.bool "stopped" false (Telemetry.running ());
  check Alcotest.bool "disarmed" false (Telemetry.armed ());
  let c2 = Telemetry.sample_count () in
  check Alcotest.bool "baseline + final samples exist" true (c2 >= 2);
  Telemetry.stop ();
  check Alcotest.int "second stop changes nothing" c2
    (Telemetry.sample_count ());
  (* restartable: a fresh start opens a fresh ring *)
  Telemetry.start ~sample_ms:1 ();
  check Alcotest.bool "restarted" true (Telemetry.running ());
  Telemetry.stop ()

let test_bad_sample_ms () =
  Alcotest.check_raises "sample_ms 0 rejected"
    (Invalid_argument "Telemetry.start: sample_ms must be >= 1") (fun () ->
      Telemetry.start ~sample_ms:0 ())

(* -- ring bound under a slow consumer ----------------------------------- *)

let test_ring_bounded () =
  Telemetry.stop ();
  Telemetry.start ~sample_ms:1 ~ring_capacity:8 ();
  (* nobody consumes; the sampler must overwrite, not grow *)
  wait_for_samples 40;
  Telemetry.stop ();
  let total = Telemetry.sample_count () in
  let retained = Telemetry.samples () in
  check Alcotest.bool "many samples taken" true (total >= 40);
  check Alcotest.bool "ring retained at most its capacity" true
    (List.length retained <= 8);
  (* the retained window is the newest suffix, in order *)
  let seqs = List.map (fun s -> s.Telemetry.seq) retained in
  let rec consecutive = function
    | a :: (b :: _ as rest) -> a + 1 = b && consecutive rest
    | _ -> true
  in
  check Alcotest.bool "seqs consecutive" true (consecutive seqs);
  check Alcotest.(option int) "newest sample is the last taken"
    (Some (total - 1))
    (match List.rev seqs with [] -> None | s :: _ -> Some s);
  let ts = List.map (fun s -> s.Telemetry.t_ms) retained in
  check Alcotest.bool "timestamps monotone" true (List.sort compare ts = ts)

(* -- marks -------------------------------------------------------------- *)

let test_marks_delivered () =
  Telemetry.stop ();
  Telemetry.mark "dropped while disarmed";
  Telemetry.start ~sample_ms:2 ();
  Telemetry.mark "test.mark.alpha";
  Telemetry.mark "test.mark.beta";
  wait_for_samples 3;
  Telemetry.stop ();
  let all_marks =
    List.concat_map (fun s -> s.Telemetry.marks) (Telemetry.samples ())
  in
  check Alcotest.bool "disarmed mark dropped" true
    (not (List.mem "dropped while disarmed" all_marks));
  check Alcotest.bool "armed marks delivered once, in order" true
    (List.filter (fun m -> String.length m >= 10 && String.sub m 0 10 = "test.mark.") all_marks
    = [ "test.mark.alpha"; "test.mark.beta" ])

(* -- JSONL -------------------------------------------------------------- *)

let test_sample_json_round_trip () =
  let s =
    {
      Telemetry.seq = 3;
      t_ms = 12.625;
      marks = [ "plain"; "with \"quotes\"\nand\tcontrols" ];
      counters = [ ("runtime.tasks", 17); ("a\\b", 1) ];
      gauges = [ ("gc.heap_words", 123456) ];
    }
  in
  match Json_min.parse (Telemetry.sample_to_json s) with
  | Error e -> Alcotest.failf "sample line did not parse: %s" e
  | Ok doc ->
      let num k =
        match Json_min.member k doc with
        | Some (Json_min.Num v) -> v
        | _ -> Alcotest.failf "missing numeric %s" k
      in
      check Alcotest.int "seq" 3 (int_of_float (num "seq"));
      check (Alcotest.float 1e-9) "t_ms" 12.625 (num "t_ms");
      (match Json_min.member "marks" doc with
      | Some (Json_min.Arr [ Json_min.Str a; Json_min.Str b ]) ->
          check Alcotest.string "mark 1" "plain" a;
          check Alcotest.string "escaped mark survives"
            "with \"quotes\"\nand\tcontrols" b
      | _ -> Alcotest.fail "marks array malformed");
      (match Json_min.member "counters" doc with
      | Some (Json_min.Obj kvs) ->
          check
            Alcotest.(list (pair string (float 1e-9)))
            "counters"
            [ ("runtime.tasks", 17.0); ("a\\b", 1.0) ]
            (List.map (fun (k, v) ->
                 match v with
                 | Json_min.Num n -> (k, n)
                 | _ -> Alcotest.fail "non-numeric counter")
               kvs)
      | _ -> Alcotest.fail "counters object malformed")

let test_jsonl_file_round_trip () =
  Telemetry.stop ();
  Metrics.enable ();
  let path = Filename.temp_file "sfr_telemetry" ".jsonl" in
  Telemetry.start ~sample_ms:2 ~out:path ();
  let c = Metrics.counter "test.telemetry.jsonl" in
  Metrics.add c 5;
  wait_for_samples 3;
  Telemetry.stop ();
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Sys.remove path;
  (match Telemetry.lint_jsonl text with
  | Error e -> Alcotest.failf "lint rejected the stream: %s" e
  | Ok n ->
      check Alcotest.int "every sample written" (Telemetry.sample_count ()) n);
  (* each line individually parses through Json_min *)
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  List.iter
    (fun l ->
      match Json_min.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "line %S: %s" l e)
    lines;
  (* the counter delta we caused shows up in exactly one line's counters *)
  let hits =
    List.length
      (List.filter
         (fun l ->
           match Json_min.parse l with
           | Ok doc -> (
               match Json_min.member "counters" doc with
               | Some o -> Json_min.member "test.telemetry.jsonl" o <> None
               | None -> false)
           | Error _ -> false)
         lines)
  in
  check Alcotest.int "delta appears once (then elided as zero)" 1 hits

let test_lint_rejects_garbage () =
  (match Telemetry.lint_jsonl "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty file accepted");
  (match Telemetry.lint_jsonl "{\"telemetry_schema\":99}\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema version accepted");
  match
    Telemetry.lint_jsonl
      "{\"telemetry_schema\":1,\"sample_ms\":5}\n{\"seq\":0}\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sample missing required fields accepted"

(* -- Prometheus --------------------------------------------------------- *)

let test_prometheus_grammar () =
  Metrics.enable ();
  let c = Metrics.counter "test.telemetry.prom_counter" in
  Metrics.add c 3;
  let g = Metrics.counter ~kind:`Max "test.telemetry.prom_gauge" in
  Metrics.add g 9;
  let h = Metrics.histogram "test.telemetry.prom_hist" in
  List.iter (Metrics.observe h) [ 1; 3; 10; 100; 5000 ];
  let text =
    Telemetry.render_prometheus ~gauges:[ ("sched.deque_depth", 4) ] ()
  in
  (match Telemetry.check_prometheus text with
  | Error e -> Alcotest.failf "own exposition rejected: %s" e
  | Ok n -> check Alcotest.bool "has sample lines" true (n > 0));
  (* the families we populated render with mangled names *)
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.bool "counter family" true
    (has "# TYPE sfr_test_telemetry_prom_counter counter");
  check Alcotest.bool "gauge family" true
    (has "# TYPE sfr_test_telemetry_prom_gauge gauge");
  check Alcotest.bool "histogram family" true
    (has "# TYPE sfr_test_telemetry_prom_hist histogram");
  check Alcotest.bool "+Inf bucket closes the histogram" true
    (has "sfr_test_telemetry_prom_hist_bucket{le=\"+Inf\"} 5");
  check Alcotest.bool "histogram count" true
    (has "sfr_test_telemetry_prom_hist_count 5");
  check Alcotest.bool "extra gauge rendered" true (has "sfr_sched_deque_depth 4")

let test_prometheus_check_rejects () =
  let bad =
    [
      ("sample without TYPE", "orphan_metric 1\n");
      ("bad name", "# TYPE 9bad counter\n9bad 1\n");
      ("bad value", "# TYPE m counter\nm notanumber\n");
      ("unterminated label", "# TYPE m counter\nm{le=\"4 1\n");
      ("missing space", "# TYPE m counter\nm1\n");
      ("unknown type", "# TYPE m matrix\nm 1\n");
      ("malformed comment", "# NOPE m counter\n");
    ]
  in
  List.iter
    (fun (what, text) ->
      match Telemetry.check_prometheus text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s accepted" what)
    bad;
  (* cumulative-bucket exposition with only the histogram suffixes and no
     bare family sample is valid *)
  match
    Telemetry.check_prometheus
      "# HELP h help text\n\
       # TYPE h histogram\n\
       h_bucket{le=\"1\"} 1\n\
       h_bucket{le=\"+Inf\"} 2\n\
       h_sum 3\n\
       h_count 2\n"
  with
  | Ok 4 -> ()
  | Ok n -> Alcotest.failf "expected 4 sample lines, got %d" n
  | Error e -> Alcotest.failf "valid histogram rejected: %s" e

(* -- percentiles -------------------------------------------------------- *)

let test_percentiles () =
  check Alcotest.int "empty buckets" 0 (Metrics.percentile_of_buckets [] 0.5);
  let bs = [ (1, 1); (2, 1); (4, 2); (8, 2); (16, 1) ] in
  (* ranks: cum 1,2,4,6,7 of total 7 *)
  check Alcotest.int "p50 -> le 4" 4 (Metrics.percentile_of_buckets bs 0.5);
  check Alcotest.int "p90 -> le 16" 16 (Metrics.percentile_of_buckets bs 0.9);
  check Alcotest.int "p0 -> first bucket" 1
    (Metrics.percentile_of_buckets bs 0.0);
  check Alcotest.int "p100 -> last bucket" 16
    (Metrics.percentile_of_buckets bs 1.0);
  Metrics.enable ();
  let h = Metrics.histogram "test.telemetry.pcts" in
  for _ = 1 to 90 do
    Metrics.observe h 10
  done;
  for _ = 1 to 10 do
    Metrics.observe h 1000
  done;
  let summaries = Metrics.histogram_summaries () in
  match
    List.find_opt
      (fun s -> s.Metrics.h_name = "test.telemetry.pcts")
      summaries
  with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
      check Alcotest.int "count" 100 s.Metrics.h_count;
      check Alcotest.int "sum" (90 * 10 + 10 * 1000) s.Metrics.h_sum;
      check Alcotest.int "p50 in the 10s bucket" 16 s.Metrics.p50;
      check Alcotest.int "p99 in the 1000s bucket" 1024 s.Metrics.p99

(* -- slot collisions ---------------------------------------------------- *)

let test_slot_collisions () =
  let before = Metrics.slot_collisions () in
  (* hold the main domain's slot live, then walk 128 consecutive domain
     IDs through enter/exit: exactly one of them shares the slot mod 128
     and must trip the collision counter *)
  Metrics.domain_enter ();
  for _ = 1 to 128 do
    let d =
      Domain.spawn (fun () ->
          Metrics.domain_enter ();
          Metrics.domain_exit ())
    in
    Domain.join d
  done;
  Metrics.domain_exit ();
  check Alcotest.bool "a mod-128 collision was detected" true
    (Metrics.slot_collisions () > before);
  check Alcotest.bool "collision counter is exported" true
    (List.mem_assoc "obs.metrics.slot_collisions" (Metrics.snapshot ()))

(* -- probe consistency on 4 domains ------------------------------------- *)

let test_probe_consistency () =
  Telemetry.stop ();
  Metrics.enable ();
  let snap name =
    Option.value ~default:0 (List.assoc_opt name (Metrics.snapshot ()))
  in
  (* a long period keeps the sampler quiet; we only need [armed] high so
     the workers maintain their per-worker counters *)
  Telemetry.start ~sample_ms:1000 ();
  let tasks0 = snap "runtime.tasks" and steals0 = snap "runtime.steals" in
  let t = Synthetic.generate ~seed:11 ~ops:600 ~depth:6 ~locs:24 () in
  let inst = Synthetic.instantiate t in
  let (), _ =
    Par_exec.run ~workers:4 Events.null ~root:Events.Unit_state
      inst.Synthetic.program
  in
  let tasks1 = snap "runtime.tasks" and steals1 = snap "runtime.steals" in
  Telemetry.stop ();
  match Par_exec.last_probe () with
  | None -> Alcotest.fail "no end-of-run probe"
  | Some p ->
      let sum a = Array.fold_left ( + ) 0 a in
      check Alcotest.int "4 workers" 4 p.Par_exec.workers;
      check Alcotest.int "per-worker tasks sum to the runtime total"
        (tasks1 - tasks0)
        (sum p.Par_exec.tasks);
      check Alcotest.int "per-worker steals sum to the runtime total"
        (steals1 - steals0)
        (sum p.Par_exec.steals);
      check Alcotest.int "deques drained at quiescence" 0
        (sum p.Par_exec.deque_depths);
      check Alcotest.bool "probe_metrics flattens aggregates + per-worker"
        true
        (let pm = Par_exec.probe_metrics () in
         List.assoc_opt "sched.workers" pm = Some 4
         && List.assoc_opt "sched.tasks" pm = Some (sum p.Par_exec.tasks)
         && List.mem_assoc "sched.w3.tasks" pm)

(* -- timeline rendering -------------------------------------------------- *)

let test_timeline_renders () =
  Telemetry.stop ();
  Telemetry.start ~sample_ms:2 ();
  wait_for_samples 3;
  Telemetry.stop ();
  let out = Format.asprintf "%t" Telemetry.pp_timeline in
  check Alcotest.bool "timeline has header and rows" true
    (String.length out > 0 && String.contains out '\n')

let () =
  Alcotest.run "telemetry"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "start/stop idempotent" `Quick
            test_start_stop_idempotent;
          Alcotest.test_case "bad sample_ms" `Quick test_bad_sample_ms;
        ] );
      ( "ring",
        [ Alcotest.test_case "bounded under slow consumer" `Quick
            test_ring_bounded ] );
      ("marks", [ Alcotest.test_case "delivered once" `Quick test_marks_delivered ]);
      ( "jsonl",
        [
          Alcotest.test_case "sample round trip" `Quick
            test_sample_json_round_trip;
          Alcotest.test_case "file round trip" `Quick
            test_jsonl_file_round_trip;
          Alcotest.test_case "lint rejects garbage" `Quick
            test_lint_rejects_garbage;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "own exposition passes grammar" `Quick
            test_prometheus_grammar;
          Alcotest.test_case "grammar rejects malformed" `Quick
            test_prometheus_check_rejects;
        ] );
      ( "percentiles",
        [ Alcotest.test_case "bucket quantiles" `Quick test_percentiles ] );
      ( "collisions",
        [ Alcotest.test_case "mod-128 slot collision counted" `Quick
            test_slot_collisions ] );
      ( "probe",
        [ Alcotest.test_case "4-domain consistency" `Quick
            test_probe_consistency ] );
      ( "timeline",
        [ Alcotest.test_case "renders" `Quick test_timeline_renders ] );
    ]
