(** Structural validation of recorded dags.

    [validate_sf] checks both the generic dag-with-futures properties
    (paper Properties 1–2) and the {e structured-use} restrictions
    (single-touch; create-to-get sequential dependence through the
    continuation). The synthetic program generator and the runtime are
    both tested against this. *)

type violation = {
  code : string;  (** stable identifier, e.g. ["get-before-put"] *)
  message : string;
}

val validate_sf : Dag.t -> violation list
(** Empty list iff the dag is a well-formed SF-dag. Completed dags only
    (every future must have a put node). *)

val validate_sf_exn : Dag.t -> unit
(** @raise Failure with all violation messages if any. *)

val is_sp_dag : Dag.t -> bool
(** True iff the dag uses no futures at all (single future dag). *)
