(** Differential replay driver: the executable spec of the chaos layer.

    For each seed, generate a random structured-futures program
    ({!Sfr_workloads.Synthetic}), compute ground truth with the serial
    naive oracle (chaos disarmed), then run the detector under test —
    parallel when it supports it — with seeded fault injection armed
    around the execution. The run fails the seed when racy-location
    verdicts (normalized to the instance's memory base) or checksums
    diverge, or the run crashes with anything other than the synthetic
    {!Sfr_chaos.Chaos.Injected} fault.

    Failures re-run deterministically (same seed, same chaos stream) and
    optionally shrink to a minimal reproducer ({!Shrink}), dumped as an
    sfdag file for [racedetect analyze]. Counters: [chaos.seeds],
    [chaos.mismatches] (plus [chaos.shrink_steps] from the shrinker). *)

module Chaos = Sfr_chaos.Chaos

type oracle_spec =
  | Naive
      (** serial trace + {!Sfr_detect.Naive_detector.analyze}: the O(n²)
          exhaustive ground truth, practical only at tiny DAG sizes *)
  | Oracle_detector of (unit -> Sfr_detect.Detector.t)
      (** a serial, chaos-free run of an independent on-the-fly detector
          (registry entries with [caps.oracle_grade], e.g. vc-order) —
          cheap enough to push the differential and the shrinker to
          10–100× the naive sizes *)

type config = {
  seeds : int;  (** number of seeds to sweep *)
  base_seed : int;  (** first seed; seed [i] is [base_seed + i] *)
  ops : int;  (** generator op budget per program *)
  depth : int;  (** generator nesting depth *)
  locs : int;  (** shared-location space size *)
  workers : int;  (** parallel workers (1 = serial even for parallel-capable) *)
  chaos : Chaos.config option;  (** [None] disables injection entirely *)
  shrink : bool;  (** delta-debug failures to minimal reproducers *)
  out_dir : string option;  (** where to dump reproducer sfdag files *)
  oracle : oracle_spec;  (** how ground truth is computed *)
}

val default_config : config

type verdict = { racy : int list; checksum : int }
(** Normalized racy locations (sorted, memory-base-relative) plus the
    deterministic future-result checksum. *)

type mismatch = {
  seed : int;
  expected : verdict;  (** the serial oracle's verdict *)
  got : verdict option;  (** [None] when the run crashed instead *)
  crash : string option;
  reduced : Sfr_workloads.Synthetic.t option;
  shrink_steps : int;
  repro_path : string option;
}

type outcome =
  | Match
  | Fault_surfaced
      (** an injected fault aborted the run and surfaced as
          [Chaos.Injected] — the exception-safety contract held *)
  | Failed of mismatch

type report = {
  seeds_run : int;
  matched : int;
  faults_surfaced : int;
  injected : int;  (** total faults injected across all runs *)
  mismatches : mismatch list;
}

val oracle : Sfr_workloads.Synthetic.t -> verdict
(** The [Naive] serial ground truth for a program (chaos must be
    disarmed by the caller; {!run_seed} arms only around the detector
    run). *)

val ground_truth : config -> Sfr_workloads.Synthetic.t -> verdict
(** Ground truth per [config.oracle]; same disarming contract. *)

val run_seed :
  config -> make:(unit -> Sfr_detect.Detector.t) -> seed:int -> outcome
(** Deterministic given (config, detector, seed) under serial execution;
    under parallel execution the program and chaos decision streams are
    still seed-determined, only interleaving varies. *)

val run :
  ?progress:(int -> unit) ->
  config ->
  make:(unit -> Sfr_detect.Detector.t) ->
  report
(** Sweep [config.seeds] seeds. [progress] is called after each seed
    with the number completed. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_mismatch : Format.formatter -> mismatch -> unit
