module Chaos = Sfr_chaos.Chaos
module Metrics = Sfr_obs.Metrics
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Naive_detector = Sfr_detect.Naive_detector
module Dag_io = Sfr_dag.Dag_io

let m_mismatches = Metrics.counter "chaos.mismatches"
let m_seeds = Metrics.counter "chaos.seeds"

type oracle_spec = Naive | Oracle_detector of (unit -> Detector.t)

type config = {
  seeds : int;
  base_seed : int;
  ops : int;
  depth : int;
  locs : int;
  workers : int;
  chaos : Chaos.config option;
  shrink : bool;
  out_dir : string option;
  oracle : oracle_spec;
}

let default_config =
  {
    seeds = 50;
    base_seed = 1;
    ops = 120;
    depth = 4;
    locs = 6;
    workers = 4;
    chaos = Some Chaos.default_config;
    shrink = false;
    out_dir = None;
    oracle = Naive;
  }

type verdict = { racy : int list; checksum : int }

type mismatch = {
  seed : int;
  expected : verdict;
  got : verdict option;  (** [None] when the run crashed instead *)
  crash : string option;
  reduced : Synthetic.t option;
  shrink_steps : int;
  repro_path : string option;
}

type outcome = Match | Fault_surfaced | Failed of mismatch

type report = {
  seeds_run : int;
  matched : int;
  faults_surfaced : int;
  injected : int;
  mismatches : mismatch list;
}

(* Ground truth: depth-first serial execution recorded into a dag, then
   the O(n^2)-ish naive analysis. Chaos must be disarmed here — the
   oracle defines expected behavior, it is not under test. *)
let oracle t =
  let inst = Synthetic.instantiate t in
  let trace, cb, root = Trace.make ~log_accesses:true () in
  let (), _ = Serial_exec.run cb ~root inst.Synthetic.program in
  let v = Naive_detector.analyze (Trace.dag trace) (Trace.accesses trace) in
  {
    racy =
      List.sort compare
        (List.map
           (fun l -> l - inst.Synthetic.mem_base)
           v.Naive_detector.racy_locations);
    checksum = inst.Synthetic.checksum ();
  }

(* Alternative ground truth: a serial, chaos-free run of an oracle-grade
   on-the-fly detector (registry [caps.oracle_grade], e.g. vc-order).
   O(n·width) instead of the naive O(n²) pair sweep, which is what lets
   the differential and the shrinker run at 10–100× the naive sizes. *)
let detector_oracle ~make t =
  let det = make () in
  let inst = Synthetic.instantiate t in
  ignore
    (Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
       inst.Synthetic.program);
  {
    racy =
      List.sort compare
        (List.map
           (fun l -> l - inst.Synthetic.mem_base)
           (Detector.racy_locations det));
    checksum = inst.Synthetic.checksum ();
  }

let ground_truth cfg t =
  match cfg.oracle with
  | Naive -> oracle t
  | Oracle_detector make -> detector_oracle ~make t

(* One detector run: parallel when the detector supports it and the
   config asks for workers, serial otherwise; chaos armed around exactly
   the execution (never the oracle or the comparison). *)
let run_one cfg ~make ~chaos_seed t =
  let det = make () in
  let inst = Synthetic.instantiate t in
  let exec () =
    if det.Detector.supports_parallel && cfg.workers > 1 then
      ignore
        (Par_exec.run ~workers:cfg.workers det.Detector.callbacks
           ~root:det.Detector.root inst.Synthetic.program)
    else
      ignore
        (Serial_exec.run det.Detector.callbacks ~root:det.Detector.root
           inst.Synthetic.program)
  in
  (match cfg.chaos with
  | Some config -> Chaos.with_armed ~config ~seed:chaos_seed exec
  | None -> exec ());
  {
    racy =
      List.sort compare
        (List.map
           (fun l -> l - inst.Synthetic.mem_base)
           (Detector.racy_locations det));
    checksum = inst.Synthetic.checksum ();
  }

let verdicts_agree a b = a.racy = b.racy && a.checksum = b.checksum

(* Does (program, detector) still fail? Used both for the initial check
   and as the shrink predicate. *)
let check cfg ~make ~chaos_seed t =
  let expected = ground_truth cfg t in
  match run_one cfg ~make ~chaos_seed t with
  | got -> if verdicts_agree expected got then `Match else `Diff (expected, got)
  | exception Chaos.Injected _ -> `Fault
  | exception e -> `Crash (expected, Printexc.to_string e)

let dump_repro cfg ~seed t =
  match cfg.out_dir with
  | None -> None
  | Some dir ->
      let inst = Synthetic.instantiate t in
      let trace, cb, root = Trace.make ~log_accesses:true () in
      let (), _ = Serial_exec.run cb ~root inst.Synthetic.program in
      let accesses =
        List.rev_map
          (fun (a : Trace.access) ->
            {
              Dag_io.node = a.Trace.node;
              loc = a.Trace.loc;
              is_write = a.Trace.is_write;
            })
          (Trace.accesses trace)
      in
      let path = Filename.concat dir (Printf.sprintf "chaos-repro-%d.sfdag" seed) in
      Dag_io.save_file path ~accesses (Trace.dag trace);
      Some path

let run_seed cfg ~make ~seed =
  Metrics.incr m_seeds;
  let t =
    Synthetic.generate ~seed ~ops:cfg.ops ~depth:cfg.depth ~locs:cfg.locs ()
  in
  match check cfg ~make ~chaos_seed:seed t with
  | `Match -> Match
  | `Fault -> Fault_surfaced
  | (`Diff _ | `Crash _) as failure ->
      Metrics.incr m_mismatches;
      (* the recorder still holds the scheduling window of the failing
         run; dump it before shrinking re-executions overwrite it *)
      Sfr_obs.Flight.crash_dump
        ~reason:(Printf.sprintf "chaos differential mismatch (seed %d)" seed);
      let expected, got, crash =
        match failure with
        | `Diff (e, g) -> (e, Some g, None)
        | `Crash (e, msg) -> (e, None, Some msg)
      in
      let reduced, shrink_steps =
        if not cfg.shrink then (None, 0)
        else begin
          let still_fails t' =
            match check cfg ~make ~chaos_seed:seed t' with
            | `Diff _ | `Crash _ -> true
            | `Match | `Fault -> false
          in
          let r = Shrink.shrink ~test:still_fails t in
          (Some r.Shrink.reduced, r.Shrink.steps)
        end
      in
      let repro_path =
        dump_repro cfg ~seed (Option.value reduced ~default:t)
      in
      Failed { seed; expected; got; crash; reduced; shrink_steps; repro_path }

let run ?(progress = fun _ -> ()) cfg ~make =
  let matched = ref 0 in
  let faults = ref 0 in
  let injected = ref 0 in
  let mismatches = ref [] in
  for i = 0 to cfg.seeds - 1 do
    let seed = cfg.base_seed + i in
    (match run_seed cfg ~make ~seed with
    | Match -> incr matched
    | Fault_surfaced -> incr faults
    | Failed m -> mismatches := m :: !mismatches);
    injected := !injected + Chaos.injected_count ();
    progress (i + 1)
  done;
  {
    seeds_run = cfg.seeds;
    matched = !matched;
    faults_surfaced = !faults;
    injected = !injected;
    mismatches = List.rev !mismatches;
  }

let pp_verdict fmt v =
  Format.fprintf fmt "racy=[%s] checksum=%d"
    (String.concat ";" (List.map string_of_int v.racy))
    v.checksum

let pp_mismatch fmt m =
  Format.fprintf fmt "seed %d: " m.seed;
  (match (m.got, m.crash) with
  | _, Some c -> Format.fprintf fmt "crash %s" c
  | Some got, None ->
      Format.fprintf fmt "oracle {%a} vs detector {%a}" pp_verdict m.expected
        pp_verdict got
  | None, None -> Format.fprintf fmt "oracle {%a} vs ???" pp_verdict m.expected);
  (match m.reduced with
  | Some r ->
      Format.fprintf fmt " (shrunk to %d nodes in %d steps)" (Synthetic.size r)
        m.shrink_steps
  | None -> ());
  match m.repro_path with
  | Some p -> Format.fprintf fmt " repro: %s" p
  | None -> ()
