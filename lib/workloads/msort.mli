(** Parallel mergesort (paper benchmark [sort]; N=10⁷, B=8192 at paper
    scale).

    The two halves sort as structured futures (gotten before merging);
    the merge is a divide-and-conquer fork-join merge (median split plus
    binary search) into a scratch buffer, copied back with spawned
    halves. [inject_race] skips the top-level gets so the merge races
    the half-sorting futures. *)

val workload : Workload.t
