(** Uniform view of an on-the-fly race detector instance.

    A detector is an {!Events.callbacks} client plus introspection used by
    the benchmark harness (query counts, reachability-structure memory for
    Figure 5) and the tests (per-location race verdicts). Instances are
    single-use: make one per execution. *)

type t = {
  name : string;
  callbacks : Sfr_runtime.Events.callbacks;
  root : Sfr_runtime.Events.state;
  races : Race.t;
  queries : unit -> int;
      (** reachability queries performed (Figure 3's "# queries"). *)
  reach_words : unit -> int;
      (** live machine words in reachability structures. *)
  reach_table_words : unit -> int;
      (** cumulative words allocated into the per-node future tables
          (gp/cp bitmaps or nsp hash tables) — the Figure 5 metric; our
          tables are reference-counted and freed, whereas the paper's
          implementations retain one per node, so the cumulative count is
          what corresponds to their measurement. *)
  history_words : unit -> int;
  max_readers : unit -> int;
      (** access-history high-water mark of readers per location. *)
  supports_parallel : bool;
      (** false for the sequential (MultiBags-style) detector, whose
          reachability is only meaningful under depth-first execution. *)
}

val racy_locations : t -> int list
