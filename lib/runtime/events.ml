type state = ..

type state += Unit_state | Pair_state of state * state

type callbacks = {
  on_spawn : state -> state * state;
  on_create : state -> state * state;
  on_sync : cur:state -> spawned_lasts:state list -> created_firsts:state list -> state;
  on_put : state -> unit;
  on_get : cur:state -> put:state -> state;
  on_returned : cont:state -> child_last:state -> unit;
  on_read : state -> int -> unit;
  on_write : state -> int -> unit;
  on_work : state -> int -> unit;
}

let null =
  {
    on_spawn = (fun _ -> (Unit_state, Unit_state));
    on_create = (fun _ -> (Unit_state, Unit_state));
    on_sync = (fun ~cur:_ ~spawned_lasts:_ ~created_firsts:_ -> Unit_state);
    on_put = ignore;
    on_get = (fun ~cur:_ ~put:_ -> Unit_state);
    on_returned = (fun ~cont:_ ~child_last:_ -> ());
    on_read = (fun _ _ -> ());
    on_write = (fun _ _ -> ());
    on_work = (fun _ _ -> ());
  }

let unpair = function
  | Pair_state (a, b) -> (a, b)
  | Unit_state | _ -> invalid_arg "Events.pair: foreign state"

let pair a b =
  {
    on_spawn =
      (fun s ->
        let sa, sb = unpair s in
        let ca, ta = a.on_spawn sa and cb, tb = b.on_spawn sb in
        (Pair_state (ca, cb), Pair_state (ta, tb)));
    on_create =
      (fun s ->
        let sa, sb = unpair s in
        let ca, ta = a.on_create sa and cb, tb = b.on_create sb in
        (Pair_state (ca, cb), Pair_state (ta, tb)));
    on_sync =
      (fun ~cur ~spawned_lasts ~created_firsts ->
        let ca, cb = unpair cur in
        let la = List.map (fun s -> fst (unpair s)) spawned_lasts
        and lb = List.map (fun s -> snd (unpair s)) spawned_lasts in
        let fa = List.map (fun s -> fst (unpair s)) created_firsts
        and fb = List.map (fun s -> snd (unpair s)) created_firsts in
        Pair_state
          ( a.on_sync ~cur:ca ~spawned_lasts:la ~created_firsts:fa,
            b.on_sync ~cur:cb ~spawned_lasts:lb ~created_firsts:fb ));
    on_put =
      (fun s ->
        let sa, sb = unpair s in
        a.on_put sa;
        b.on_put sb);
    on_get =
      (fun ~cur ~put ->
        let ca, cb = unpair cur and pa, pb = unpair put in
        Pair_state (a.on_get ~cur:ca ~put:pa, b.on_get ~cur:cb ~put:pb));
    on_returned =
      (fun ~cont ~child_last ->
        let ca, cb = unpair cont and la, lb = unpair child_last in
        a.on_returned ~cont:ca ~child_last:la;
        b.on_returned ~cont:cb ~child_last:lb);
    on_read =
      (fun s loc ->
        let sa, sb = unpair s in
        a.on_read sa loc;
        b.on_read sb loc);
    on_write =
      (fun s loc ->
        let sa, sb = unpair s in
        a.on_write sa loc;
        b.on_write sb loc);
    on_work =
      (fun s n ->
        let sa, sb = unpair s in
        a.on_work sa n;
        b.on_work sb n);
  }
