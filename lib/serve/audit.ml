(* Structured audit log for the ingest daemon: one typed record per
   session-lifecycle edge, streamed as JSONL with the Telemetry writer
   discipline (schema header line, per-record flush, a Flight crash
   hook flushing the OS tail) plus a bounded in-memory tail ring so the
   crash dump and the admin plane can show recent history without
   touching the file. Disarmed (no sink open), [emit] is one atomic
   flag load. *)

module Flight = Sfr_obs.Flight
module Prof = Sfr_obs.Prof
module Json_min = Sfr_obs.Json_min

let schema_version = 1
let default_tail_capacity = 64

type record =
  | Session_open of { session : int }
  | Hello of { session : int; version : int }
  | Credit of { session : int; grant : int }
  | Park of { queued : int; budget : int }
  | Thaw of { queued : int; budget : int }
  | Shed of { session : int; evicted : int }
  | Block of { session : int }
  | Deadline of { session : int; age_ms : int }
  | Idle of { session : int; quiet_ms : int }
  | Disconnect of { session : int; bytes_analyzed : int }
  | Verdict of {
      session : int;
      code : string;
      races : int;
      events : int;
      bytes_analyzed : int;
    }

let event_name = function
  | Session_open _ -> "session_open"
  | Hello _ -> "hello"
  | Credit _ -> "credit"
  | Park _ -> "park"
  | Thaw _ -> "thaw"
  | Shed _ -> "shed"
  | Block _ -> "block"
  | Deadline _ -> "deadline"
  | Idle _ -> "idle"
  | Disconnect _ -> "disconnect"
  | Verdict _ -> "verdict"

let session_of = function
  | Park _ | Thaw _ -> None
  | Session_open { session }
  | Hello { session; _ }
  | Credit { session; _ }
  | Shed { session; _ }
  | Block { session }
  | Deadline { session; _ }
  | Idle { session; _ }
  | Disconnect { session; _ }
  | Verdict { session; _ } ->
      Some session

(* Event-specific integer fields beyond [session]. *)
let int_fields = function
  | Session_open _ | Block _ -> []
  | Hello { version; _ } -> [ ("version", version) ]
  | Credit { grant; _ } -> [ ("grant", grant) ]
  | Park { queued; budget } | Thaw { queued; budget } ->
      [ ("queued", queued); ("budget", budget) ]
  | Shed { evicted; _ } -> [ ("evicted", evicted) ]
  | Deadline { age_ms; _ } -> [ ("age_ms", age_ms) ]
  | Idle { quiet_ms; _ } -> [ ("quiet_ms", quiet_ms) ]
  | Disconnect { bytes_analyzed; _ } ->
      [ ("bytes_analyzed", bytes_analyzed) ]
  | Verdict { races; events; bytes_analyzed; _ } ->
      [ ("races", races); ("events", events); ("bytes_analyzed", bytes_analyzed) ]

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_json ~seq ~t_ms r =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"seq\":%d,\"t_ms\":%.3f,\"event\":\"%s\"" seq t_ms
    (event_name r);
  (match session_of r with
  | Some s -> Printf.bprintf b ",\"session\":%d" s
  | None -> ());
  (match r with
  | Verdict { code; _ } ->
      Buffer.add_string b ",\"code\":\"";
      escape b code;
      Buffer.add_char b '"'
  | _ -> ());
  List.iter (fun (k, v) -> Printf.bprintf b ",\"%s\":%d" k v) (int_fields r);
  Buffer.add_char b '}';
  Buffer.contents b

let pp_record fmt r =
  Format.fprintf fmt "%s" (event_name r);
  (match session_of r with
  | Some s -> Format.fprintf fmt " session=%d" s
  | None -> ());
  (match r with
  | Verdict { code; _ } -> Format.fprintf fmt " code=%s" code
  | _ -> ());
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%d" k v) (int_fields r)

(* -- the sink ----------------------------------------------------------- *)

type sink = {
  oc : out_channel;
  epoch_ns : int;
  mutable seq : int;
  ring : (float * record) option array;  (** bounded recent-record tail *)
  cap : int;
  mutable closed : bool;
}

let mu = Mutex.create ()
let armed_flag = Atomic.make false

(* [current] survives [close_sink] so the tail stays inspectable (crash
   dumps fire after the daemon's own teardown began). *)
let current : sink option ref = ref None

let armed () = Atomic.get armed_flag

let header_json () =
  Printf.sprintf "{\"audit_schema\":%d,\"unix_time\":%.3f}" schema_version
    (Unix.gettimeofday ())

let open_sink ?(tail_capacity = default_tail_capacity) ~path () =
  if tail_capacity < 1 then
    invalid_arg "Audit.open_sink: tail_capacity must be >= 1";
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      (match !current with
      | Some s when not s.closed ->
          s.closed <- true;
          close_out s.oc
      | _ -> ());
      let oc = open_out path in
      output_string oc (header_json ());
      output_char oc '\n';
      flush oc;
      current :=
        Some
          {
            oc;
            epoch_ns = Prof.now_ns ();
            seq = 0;
            ring = Array.make tail_capacity None;
            cap = tail_capacity;
            closed = false;
          };
      Atomic.set armed_flag true)

let close_sink () =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      Atomic.set armed_flag false;
      match !current with
      | Some s when not s.closed ->
          s.closed <- true;
          close_out s.oc
      | _ -> ())

let emit r =
  if Atomic.get armed_flag then begin
    Mutex.lock mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mu)
      (fun () ->
        match !current with
        | Some s when not s.closed ->
            let t_ms = float_of_int (Prof.now_ns () - s.epoch_ns) /. 1e6 in
            output_string s.oc (to_json ~seq:s.seq ~t_ms r);
            output_char s.oc '\n';
            (* flushed per record: the crash hook then only has to flush
               the OS-buffered tail, and a killed daemon loses nothing *)
            flush s.oc;
            s.ring.(s.seq mod s.cap) <- Some (t_ms, r);
            s.seq <- s.seq + 1
        | _ -> ())
  end

let record_count () =
  Mutex.lock mu;
  let n = match !current with Some s -> s.seq | None -> 0 in
  Mutex.unlock mu;
  n

let tail () =
  Mutex.lock mu;
  let r =
    match !current with
    | None -> []
    | Some s ->
        let first = max 0 (s.seq - s.cap) in
        List.filter_map
          (fun i -> s.ring.(i mod s.cap))
          (List.init (s.seq - first) (fun k -> first + k))
  in
  Mutex.unlock mu;
  r

let tail_to_text () =
  let b = Buffer.create 256 in
  List.iter
    (fun (t_ms, r) ->
      Buffer.add_string b
        (Format.asprintf "audit: t=%.1fms %a\n" t_ms pp_record r))
    (tail ());
  Buffer.contents b

(* crash safety: flush the stream even if the process dies mid-write *)
let () =
  Flight.add_crash_hook (fun () ->
      match !current with
      | Some { oc; closed = false; _ } -> ( try flush oc with _ -> ())
      | _ -> ())

(* -- lint --------------------------------------------------------------- *)

let known_events =
  [
    "session_open";
    "hello";
    "credit";
    "park";
    "thaw";
    "shed";
    "block";
    "deadline";
    "idle";
    "disconnect";
    "verdict";
  ]

(* Fields every record of the given event must carry (beyond the
   universal seq/t_ms/event). *)
let required_fields = function
  | "session_open" | "block" -> [ "session" ]
  | "hello" -> [ "session"; "version" ]
  | "credit" -> [ "session"; "grant" ]
  | "park" | "thaw" -> [ "queued"; "budget" ]
  | "shed" -> [ "session"; "evicted" ]
  | "deadline" -> [ "session"; "age_ms" ]
  | "idle" -> [ "session"; "quiet_ms" ]
  | "disconnect" -> [ "session"; "bytes_analyzed" ]
  | "verdict" -> [ "session"; "code"; "races"; "events"; "bytes_analyzed" ]
  | _ -> []

let lint_jsonl text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty audit file"
  | header :: rest -> (
      match Json_min.parse header with
      | Error e -> Error (Printf.sprintf "header: %s" e)
      | Ok h -> (
          match Json_min.member "audit_schema" h with
          | Some (Json_min.Num v) when int_of_float v = schema_version ->
              let rec check ln prev_seq n = function
                | [] -> Ok n
                | line :: rest -> (
                    match Json_min.parse line with
                    | Error e -> Error (Printf.sprintf "line %d: %s" ln e)
                    | Ok j -> (
                        let num k =
                          match Json_min.member k j with
                          | Some (Json_min.Num v) -> Some v
                          | _ -> None
                        in
                        match (num "seq", num "t_ms", Json_min.member "event" j)
                        with
                        | None, _, _ ->
                            Error (Printf.sprintf "line %d: missing seq" ln)
                        | _, None, _ ->
                            Error (Printf.sprintf "line %d: missing t_ms" ln)
                        | _, _, (None | Some (Json_min.Null | Json_min.Bool _
                                | Json_min.Num _ | Json_min.Arr _
                                | Json_min.Obj _)) ->
                            Error
                              (Printf.sprintf "line %d: missing event name" ln)
                        | Some seq, Some _, Some (Json_min.Str ev) ->
                            if not (List.mem ev known_events) then
                              Error
                                (Printf.sprintf "line %d: unknown event %S" ln
                                   ev)
                            else if int_of_float seq <= prev_seq then
                              Error
                                (Printf.sprintf
                                   "line %d: seq %d not increasing (prev %d)"
                                   ln (int_of_float seq) prev_seq)
                            else
                              let missing =
                                List.find_opt
                                  (fun k -> Json_min.member k j = None)
                                  (required_fields ev)
                              in
                              (match missing with
                              | Some k ->
                                  Error
                                    (Printf.sprintf
                                       "line %d: %s record missing %S" ln ev k)
                              | None ->
                                  check (ln + 1) (int_of_float seq) (n + 1)
                                    rest)))
              in
              check 2 (-1) 0 rest
          | Some _ ->
              Error
                (Printf.sprintf "header: audit_schema is not %d" schema_version)
          | None -> Error "header: missing audit_schema"))
