(** Disjoint-set forest with path compression and union by rank.

    Substrate for the SP-bags-style sequential reachability component of the
    MultiBags-equivalent detector. Amortized inverse-Ackermann per
    operation — the "almost constant" overhead the paper attributes to
    Feng–Leiserson-style sequential detectors. *)

type t

val create : ?capacity:int -> unit -> t

val make_set : t -> int
(** Allocate a fresh singleton set; returns its element ID (dense, from 0). *)

val find : t -> int -> int
(** Representative of the set containing the element. *)

val union : t -> int -> int -> int
(** [union t a b] merges the two sets and returns the new representative. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of elements allocated so far. *)

val words : t -> int
(** Approximate memory footprint in machine words. *)
