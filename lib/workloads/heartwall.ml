module Program = Sfr_runtime.Program

type params = {
  frames : int;
  points : int;
  groups : int;
  img : int; (* image side *)
  window : int; (* search radius *)
  template : int; (* template side *)
}

let params_of = function
  | Workload.Tiny -> { frames = 3; points = 8; groups = 2; img = 16; window = 1; template = 2 }
  | Workload.Small -> { frames = 4; points = 16; groups = 4; img = 32; window = 2; template = 3 }
  | Workload.Default ->
      { frames = 8; points = 96; groups = 24; img = 64; window = 4; template = 5 }
  | Workload.Large ->
      { frames = 10; points = 192; groups = 48; img = 128; window = 5; template = 6 }
  | Workload.Paper ->
      { frames = 10; points = 366; groups = 366; img = 512; window = 6; template = 8 }

(* deterministic synthetic "ultrasound" intensity at (x, y) in frame f:
   a drifting wavy wall pattern *)
let intensity f x y = ((x * 7) + (y * 13) + (f * 5) + ((x * y) mod 31)) mod 256

(* response of placing the template at (cx, cy): sum of absolute
   difference between the image and the previous frame's local pattern *)
let response rd img_arr ~img ~template ~f cx cy =
  let acc = ref 0 in
  for dx = 0 to template - 1 do
    for dy = 0 to template - 1 do
      let x = (cx + dx) mod img and y = (cy + dy) mod img in
      let pixel = rd img_arr ((x * img) + y) in
      let expected = intensity (f - 1) x y in
      acc := !acc + abs (pixel - expected)
    done
  done;
  !acc

let track_point rd img_arr ~img ~window ~template ~f (px, py) =
  let best = ref max_int and bx = ref px and by = ref py in
  for ox = -window to window do
    for oy = -window to window do
      let cx = (px + ox + img) mod img and cy = (py + oy + img) mod img in
      let r = response rd img_arr ~img ~template ~f cx cy in
      if r < !best then begin
        best := r;
        bx := cx;
        by := cy
      end
    done
  done;
  (!bx, !by)

let instantiate ?(inject_race = false) scale =
  let p = params_of scale in
  (* per-frame images and per-frame point positions (x at 2i, y at 2i+1) *)
  let images = Array.init p.frames (fun _ -> Program.alloc (p.img * p.img) 0) in
  let positions = Array.init (p.frames + 1) (fun _ -> Program.alloc (2 * p.points) 0) in
  (* initial positions, spread deterministically *)
  for i = 0 to p.points - 1 do
    Program.wr_raw positions.(0) (2 * i) ((i * 17) mod p.img);
    Program.wr_raw positions.(0) ((2 * i) + 1) ((i * 29) mod p.img)
  done;
  let racy_frame = p.frames / 2 in
  let group_size = (p.points + p.groups - 1) / p.groups in
  let run_frame f =
    let img_arr = images.(f) in
    (* fork-join image generation: spawn over row halves *)
    let rec gen_rows lo n =
      if n <= 8 then
        for x = lo to lo + n - 1 do
          for y = 0 to p.img - 1 do
            Program.wr img_arr ((x * p.img) + y) (intensity f x y)
          done
        done
      else begin
        let h = n / 2 in
        Program.spawn (fun () -> gen_rows lo h);
        gen_rows (lo + h) (n - h);
        Program.sync ()
      end
    in
    gen_rows 0 p.img;
    (* track point groups as sub-futures, gotten inside the frame *)
    let track_group g () =
      let lo = g * group_size in
      let hi = min p.points (lo + group_size) - 1 in
      for i = lo to hi do
        let px = Program.rd positions.(f) (2 * i) in
        let py = Program.rd positions.(f) ((2 * i) + 1) in
        let nx, ny =
          track_point Program.rd img_arr ~img:p.img ~window:p.window
            ~template:p.template ~f (px, py)
        in
        Program.wr positions.(f + 1) (2 * i) nx;
        Program.wr positions.(f + 1) ((2 * i) + 1) ny
      done;
      0
    in
    let handles = List.init p.groups (fun g -> Program.create (track_group g)) in
    List.iter (fun h -> ignore (Program.get h)) handles;
    0
  in
  let program () =
    let prev = ref None in
    for f = 0 to p.frames - 1 do
      let prev_h = !prev in
      let h =
        Program.create (fun () ->
            (match prev_h with
            | Some h when not (inject_race && f = racy_frame) ->
                ignore (Program.get h)
            | Some _ | None -> ());
            run_frame f)
      in
      prev := Some h
    done;
    match !prev with Some h -> ignore (Program.get h) | None -> ()
  in
  let verify () =
    (* serial reference of the whole pipeline *)
    let pos = Array.init p.points (fun i -> ((i * 17) mod p.img, (i * 29) mod p.img)) in
    let ok = ref true in
    for f = 0 to p.frames - 1 do
      let rd_ref _arr idx =
        (* reference reads the synthetic image directly *)
        let x = idx / p.img and y = idx mod p.img in
        intensity f x y
      in
      for i = 0 to p.points - 1 do
        pos.(i) <-
          track_point rd_ref () ~img:p.img ~window:p.window ~template:p.template ~f
            pos.(i)
      done
    done;
    for i = 0 to p.points - 1 do
      let x, y = pos.(i) in
      if
        Program.rd_raw positions.(p.frames) (2 * i) <> x
        || Program.rd_raw positions.(p.frames) ((2 * i) + 1) <> y
      then ok := false
    done;
    !ok
  in
  { Workload.program; verify; mem_base = Program.base images.(0) }

let workload =
  {
    Workload.name = "hw";
    description = "Heart Wall: per-frame fork-join tracking pipelined with futures";
    instantiate;
    paper_figure3 =
      [ "10 (images)"; "-"; "1.73e10"; "1.64e8"; "1.75e10"; "3672"; "9914" ];
  }
