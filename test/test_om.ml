(* Tests for the order-maintenance backends: ordering correctness against
   a reference list model, invariant checks across rebalancing / label
   extension, adversarial insertion patterns, and cross-domain query
   consistency. The whole suite runs once per registered backend through
   Om_intf.S, so the list and DePa implementations face identical
   adversaries; depa-specific cases pin the spill accounting. *)

module Metrics = Sfr_obs.Metrics

let check = Alcotest.check
let bool = Alcotest.bool

module Suite (Om : Sfr_om.Om_intf.S) = struct
  let test_base_only () =
    let t, base = Om.create () in
    check bool "base does not precede itself" false (Om.precedes t base base);
    check Alcotest.int "size" 1 (Om.size t);
    Om.check_invariants t

  let test_simple_chain () =
    let t, base = Om.create () in
    let a = Om.insert_after t base in
    let b = Om.insert_after t a in
    let c = Om.insert_after t b in
    check bool "base < a" true (Om.precedes t base a);
    check bool "a < b" true (Om.precedes t a b);
    check bool "b < c" true (Om.precedes t b c);
    check bool "base < c" true (Om.precedes t base c);
    check bool "c < a is false" false (Om.precedes t c a);
    check bool "a < a is false" false (Om.precedes t a a);
    Om.check_invariants t

  let test_insert_between () =
    let t, base = Om.create () in
    let z = Om.insert_after t base in
    let m = Om.insert_after t base in
    (* now order is base, m, z *)
    check bool "base < m" true (Om.precedes t base m);
    check bool "m < z" true (Om.precedes t m z);
    Om.check_invariants t

  (* Adversarial: always insert right after base. For the list backend
     this forces item-label exhaustion, group relabeling, and group
     splits; for DePa it is the worst-case nesting chain (one path bit
     per insert, heap spills past 62). *)
  let test_hammer_front () =
    let t, base = Om.create () in
    let items = ref [] in
    for _ = 1 to 5_000 do
      items := Om.insert_after t base :: !items
    done;
    Om.check_invariants t;
    (* later-inserted items come earlier (inserted closer to base) *)
    let rec check_desc = function
      | a :: (b :: _ as rest) ->
          check bool "later insert precedes earlier" true (Om.precedes t a b);
          check_desc rest
      | _ -> ()
    in
    check_desc !items;
    check Alcotest.int "size" 5_001 (Om.size t)

  (* Adversarial: always append at the end. Forces tail label growth and
     eventually full relabels on the list; O(1)-bit integer-part bumps on
     DePa. *)
  let test_hammer_back () =
    let t, base = Om.create () in
    let last = ref base in
    let all = ref [ base ] in
    for _ = 1 to 5_000 do
      last := Om.insert_after t !last;
      all := !last :: !all
    done;
    Om.check_invariants t;
    let rec check_asc = function
      | a :: (b :: _ as rest) ->
          check bool "append order" true (Om.precedes t b a);
          check_asc rest
      | _ -> ()
    in
    check_asc !all

  (* Insert in the middle repeatedly: splits propagate (list) / the pivot
     gap is subdivided ever finer (depa). *)
  let test_hammer_middle () =
    let t, base = Om.create () in
    let pivot = Om.insert_after t base in
    let _end_ = Om.insert_after t pivot in
    for _ = 1 to 3_000 do
      ignore (Om.insert_after t pivot)
    done;
    Om.check_invariants t

  (* Reference-model property: apply a random sequence of insert-after-
     position(i) operations to both the OM list and a plain OCaml list;
     all pairwise order queries must agree. *)
  let prop_model =
    QCheck2.Test.make ~name:"om agrees with reference list" ~count:150
      QCheck2.Gen.(list_size (int_range 1 120) (int_bound 1000))
      (fun positions ->
        let t, base = Om.create () in
        (* model: items in order; start with base at index 0 *)
        let model = ref [| base |] in
        List.iter
          (fun raw ->
            let n = Array.length !model in
            let idx = raw mod n in
            let fresh = Om.insert_after t !model.(idx) in
            let before = Array.sub !model 0 (idx + 1) in
            let after = Array.sub !model (idx + 1) (n - idx - 1) in
            model := Array.concat [ before; [| fresh |]; after ])
          positions;
        Om.check_invariants t;
        let m = !model in
        let n = Array.length m in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            let expected = i < j in
            if Om.precedes t m.(i) m.(j) <> expected then ok := false;
            let cmp = Om.compare_items t m.(i) m.(j) in
            if compare i j <> cmp && (cmp = 0) <> (i = j) then ok := false
          done
        done;
        !ok && Om.size t = n)

  (* to_list must be consistent with precedes. *)
  let prop_to_list_sorted =
    QCheck2.Test.make ~name:"to_list is in precedes order" ~count:100
      QCheck2.Gen.(list_size (int_range 1 80) (int_bound 1000))
      (fun positions ->
        let t, base = Om.create () in
        let items = ref [ base ] in
        List.iter
          (fun raw ->
            let anchor = List.nth !items (raw mod List.length !items) in
            items := Om.insert_after t anchor :: !items)
          positions;
        let listed = Om.to_list t in
        let rec ascending = function
          | a :: (b :: _ as rest) -> Om.precedes t a b && ascending rest
          | _ -> true
        in
        ascending listed && List.length listed = Om.size t)

  (* Concurrent readers during writer churn: queries must never deadlock
     or return inconsistent answers for a pair whose order is fixed. The
     writer pattern forces relabels on the list backend and heap-path
     extension on DePa. *)
  let test_concurrent_queries () =
    let t, base = Om.create () in
    let a = Om.insert_after t base in
    let b = Om.insert_after t a in
    let stop = Atomic.make false in
    let failures = Atomic.make 0 in
    let reader () =
      while not (Atomic.get stop) do
        if not (Om.precedes t a b) then Atomic.incr failures;
        if Om.precedes t b a then Atomic.incr failures
      done
    in
    let readers = List.init 2 (fun _ -> Domain.spawn reader) in
    (* writer: hammer inserts between a and b *)
    for _ = 1 to 20_000 do
      ignore (Om.insert_after t a)
    done;
    Atomic.set stop true;
    List.iter Domain.join readers;
    check Alcotest.int "no ordering violations under concurrency" 0
      (Atomic.get failures);
    Om.check_invariants t

  let test_words_grow () =
    let t, base = Om.create () in
    let w0 = Om.words t in
    for _ = 1 to 100 do
      ignore (Om.insert_after t base)
    done;
    check bool "words grow" true (Om.words t > w0)

  let qtests =
    List.map QCheck_alcotest.to_alcotest [ prop_model; prop_to_list_sorted ]

  let cases name =
    [
      ( name ^ ":unit",
        [
          Alcotest.test_case "base only" `Quick test_base_only;
          Alcotest.test_case "simple chain" `Quick test_simple_chain;
          Alcotest.test_case "insert between" `Quick test_insert_between;
          Alcotest.test_case "hammer front" `Quick test_hammer_front;
          Alcotest.test_case "hammer back" `Quick test_hammer_back;
          Alcotest.test_case "hammer middle" `Quick test_hammer_middle;
          Alcotest.test_case "words grow" `Quick test_words_grow;
        ] );
      ( name ^ ":concurrency",
        [ Alcotest.test_case "queries vs inserts" `Quick test_concurrent_queries ]
      );
      (name ^ ":properties", qtests);
    ]
end

(* Depa-specific: packed labels must spill to heap paths once the bit
   path outgrows one word, the spill must be visible in the backend's
   honest words accounting and metrics, and tail appends must never
   spill (the O(1) integer-part path). *)
let test_depa_spills () =
  let module D = Sfr_om.Depa in
  let spills0 = Metrics.value (Metrics.counter "om.depa.heap_spills") in
  let t, base = D.create () in
  let words_flat = D.words t in
  (* 200 tail appends: integer-part bumps, no path growth *)
  let last = ref base in
  for _ = 1 to 200 do
    last := D.insert_after t !last
  done;
  check bool "appends never spill" true
    (D.words t - words_flat = 5 * 200);
  (* 200 front inserts: a nesting chain ~1 bit per insert, so the path
     crosses 62 bits and spills *)
  for _ = 1 to 200 do
    ignore (D.insert_after t base)
  done;
  let spills = Metrics.value (Metrics.counter "om.depa.heap_spills") - spills0 in
  check bool "nesting chain spilled to heap paths" true (spills > 0);
  check bool "spilled words accounted" true (D.words t > 5 * D.size t + 6);
  D.check_invariants t;
  (* path-bits high water saw the ~200-bit chain *)
  check bool "path_bits high water" true
    (Metrics.value (Metrics.counter ~kind:`Max "om.depa.path_bits") >= 62)

module List_suite = Suite (Sfr_om.Om)
module Depa_suite = Suite (Sfr_om.Depa)

let () =
  Alcotest.run "om"
    (List_suite.cases "list"
    @ Depa_suite.cases "depa"
    @ [ ("depa:spills", [ Alcotest.test_case "heap spills" `Quick test_depa_spills ]) ]
    )
