(** The event interface between executors and their clients (race
    detectors, the dag recorder, or nothing at all for baseline runs).

    An executor threads one client {e state} per strand — the paper's
    "node" — through the computation: control constructs consume the
    current strand's state and produce states for the strands they begin.
    This mirrors exactly the instrumentation points the paper's modified
    Cilk-F runtime exposes (spawn/sync/create/get hooks plus a memory
    access hook from compiler instrumentation).

    [state] is an extensible variant: each client declares its own
    constructor, so clients compose ([pair]) without existential
    gymnastics and without [Obj]. *)

type state = ..

type state += Unit_state | Pair_state of state * state

type callbacks = {
  on_spawn : state -> state * state;
      (** [(child_first, continuation)] for a [spawn]. *)
  on_create : state -> state * state;
      (** [(future_first, continuation)] for a [create]. The child state
          identifies the new future dag. *)
  on_sync : cur:state -> spawned_lasts:state list -> created_firsts:state list -> state;
      (** Explicit or frame-end implicit sync. [spawned_lasts] are the
          final states of the spawned children being joined;
          [created_firsts] are the first states of futures created in this
          sync block (they fake-join in the pseudo-SP-dag only). Called
          only when at least one list is nonempty. *)
  on_put : state -> unit;
      (** The current strand is the put node — [last(F)] of its future. *)
  on_get : cur:state -> put:state -> state;
      (** A get: [put] is the gotten future's final (put-node) state. *)
  on_returned : cont:state -> child_last:state -> unit;
      (** A spawned or created child task finished and its completion is
          now ordered before the frame's continuation. In a serial
          execution this fires at the depth-first return point — the hook
          the sequential (MultiBags-style) detector's bag moves need. *)
  on_read : state -> int -> unit;  (** memory read at a location. *)
  on_write : state -> int -> unit;  (** memory write at a location. *)
  on_work : state -> int -> unit;  (** abstract compute ticks (cost model). *)
}

val null : callbacks
(** No-op client (baseline executions); threads [Unit_state]. *)

val pair : callbacks -> callbacks -> callbacks
(** Run two clients side by side; threads [Pair_state]. Useful to record
    the dag while race detecting, e.g. for post-mortem scheduling
    simulation of the same run. *)
