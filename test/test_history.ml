(* Direct unit tests for the detector substrate pieces not fully pinned by
   the differential tests: the access history's policies and update rules,
   the race collector, the exit maps, and the Events.pair combinator. *)

module Access_history = Sfr_detect.Access_history
module Race = Sfr_detect.Race
module Exit_map = Sfr_reach.Exit_map
module Events = Sfr_runtime.Events

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Access history — Keep_all                                            *)
(* ------------------------------------------------------------------ *)

(* toy accessors: integers compared by a fake "dag order" where a < b
   means a precedes b *)
let test_keepall_writer_checked_on_read () =
  let h = Access_history.create Access_history.Keep_all in
  let seen = ref [] in
  Access_history.on_write h ~loc:0 ~accessor:1 ~check:(fun ~prev:_ ~prev_is_writer:_ -> ());
  Access_history.on_read h ~loc:0 ~accessor:2 ~check_writer:(fun w -> seen := w :: !seen);
  check (Alcotest.list int) "read checked against last writer" [ 1 ] !seen;
  (* a different location is independent *)
  let seen2 = ref [] in
  Access_history.on_read h ~loc:1 ~accessor:3 ~check_writer:(fun w -> seen2 := w :: !seen2);
  check (Alcotest.list int) "fresh location has no writer" [] !seen2

let test_keepall_write_checks_all_readers () =
  let h = Access_history.create Access_history.Keep_all in
  List.iter
    (fun r -> Access_history.on_read h ~loc:7 ~accessor:r ~check_writer:(fun _ -> ()))
    [ 10; 20; 30 ];
  let checked = ref [] in
  Access_history.on_write h ~loc:7 ~accessor:99 ~check:(fun ~prev ~prev_is_writer ->
      check bool "readers are not writers" false prev_is_writer;
      checked := prev :: !checked);
  check (Alcotest.list int) "all readers checked" [ 10; 20; 30 ]
    (List.sort compare !checked);
  (* readers were cleared; next write checks only the last writer *)
  let checked2 = ref [] in
  Access_history.on_write h ~loc:7 ~accessor:100 ~check:(fun ~prev ~prev_is_writer ->
      check bool "now a writer" true prev_is_writer;
      checked2 := prev :: !checked2);
  check (Alcotest.list int) "only the writer remains" [ 99 ] !checked2

let test_keepall_same_strand_collapse () =
  let h = Access_history.create Access_history.Keep_all in
  let accessor = 42 in
  for _ = 1 to 100 do
    Access_history.on_read h ~loc:0 ~accessor ~check_writer:(fun _ -> ())
  done;
  check int "consecutive same-strand reads collapse" 1
    (Access_history.readers_stored h);
  check int "high-water mark" 1 (Access_history.max_readers_at_once h)

(* ------------------------------------------------------------------ *)
(* Access history — Lr_per_future                                       *)
(* ------------------------------------------------------------------ *)

(* accessors: (future, eng, heb) triples; covers = both orders less *)
type acc = { f : int; eng : int; heb : int }

let lr_policy =
  Access_history.Lr_per_future
    {
      future_of = (fun a -> a.f);
      more_left = (fun a b -> a.eng < b.eng);
      more_right = (fun a b -> a.heb < b.heb);
      covers = (fun a b -> a == b || (a.eng < b.eng && a.heb < b.heb));
    }

let test_lr_two_per_future () =
  let h = Access_history.create lr_policy in
  (* five pairwise-parallel readers in one future: eng ascending, heb
     descending *)
  for i = 1 to 5 do
    Access_history.on_read h ~loc:0
      ~accessor:{ f = 3; eng = i; heb = 6 - i }
      ~check_writer:(fun _ -> ())
  done;
  check int "at most two stored" 2 (Access_history.readers_stored h);
  let checked = ref [] in
  Access_history.on_write h ~loc:0 ~accessor:{ f = 0; eng = 100; heb = 100 }
    ~check:(fun ~prev ~prev_is_writer:_ -> checked := prev :: !checked);
  (* the two extremes survive: (eng 1, heb 5) and (eng 5, heb 1) *)
  let engs = List.sort compare (List.map (fun a -> a.eng) !checked) in
  check (Alcotest.list int) "extremes kept" [ 1; 5 ] engs

let test_lr_covered_replacement () =
  let h = Access_history.create lr_policy in
  (* serial chain: each reader covers the previous; only the last stays *)
  for i = 1 to 5 do
    Access_history.on_read h ~loc:0
      ~accessor:{ f = 1; eng = i; heb = i }
      ~check_writer:(fun _ -> ())
  done;
  let checked = ref [] in
  Access_history.on_write h ~loc:0 ~accessor:{ f = 0; eng = 10; heb = 10 }
    ~check:(fun ~prev ~prev_is_writer:_ -> checked := prev :: !checked);
  let uniq = List.sort_uniq compare (List.map (fun a -> a.eng) !checked) in
  check (Alcotest.list int) "only the covering reader remains" [ 5 ] uniq

let test_lr_per_future_isolation () =
  let h = Access_history.create lr_policy in
  List.iter
    (fun f ->
      Access_history.on_read h ~loc:0
        ~accessor:{ f; eng = f; heb = f }
        ~check_writer:(fun _ -> ()))
    [ 1; 2; 3 ];
  (* one (doubled) slot per future *)
  check int "2 per future" 6 (Access_history.readers_stored h)

(* ------------------------------------------------------------------ *)
(* Race collector                                                       *)
(* ------------------------------------------------------------------ *)

let test_race_collector () =
  let t = Race.create () in
  check (Alcotest.list int) "empty" [] (Race.racy_locations t);
  Race.report t ~loc:5 ~kind:Race.Write_write ~prev_future:1 ~cur_future:2;
  Race.report t ~loc:5 ~kind:Race.Read_write ~prev_future:3 ~cur_future:4;
  Race.report t ~loc:2 ~kind:Race.Write_read ~prev_future:0 ~cur_future:1;
  check (Alcotest.list int) "locations deduplicated and sorted" [ 2; 5 ]
    (Race.racy_locations t);
  check int "total witnessed" 3 (Race.total_witnessed t);
  match Race.reports t with
  | [ r2; r5 ] ->
      check int "loc 2 first" 2 r2.Race.loc;
      check int "loc 5 count" 2 r5.Race.count;
      check bool "first kind kept" true (r5.Race.kind = Race.Write_write)
  | _ -> Alcotest.fail "expected two reports"

let test_race_collector_concurrent () =
  let t = Race.create () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 249 do
              Race.report t ~loc:(i mod 10) ~kind:Race.Write_write
                ~prev_future:d ~cur_future:d
            done))
  in
  List.iter Domain.join domains;
  check int "all witnessed" 1000 (Race.total_witnessed t);
  check int "ten locations" 10 (List.length (Race.racy_locations t))

(* ------------------------------------------------------------------ *)
(* Exit maps                                                            *)
(* ------------------------------------------------------------------ *)

let test_exit_map_basic () =
  let eng = Exit_map.create () in
  let e = Exit_map.empty eng in
  let p1 = ref 1 and p2 = ref 2 in
  let t1 = Exit_map.with_exit eng e ~fid:4 p1 in
  let t1 = Exit_map.with_exit eng t1 ~fid:4 p2 in
  check int "two exits" 2 (List.length (Exit_map.exits t1 ~fid:4));
  check int "other fid empty" 0 (List.length (Exit_map.exits t1 ~fid:9));
  (* physical dedup *)
  let t1 = Exit_map.with_exit eng t1 ~fid:4 p1 in
  check int "no duplicate" 2 (List.length (Exit_map.exits t1 ~fid:4));
  Exit_map.release t1

let test_exit_map_cow () =
  let eng = Exit_map.create () in
  let p1 = ref 1 and p2 = ref 2 in
  let a = Exit_map.with_exit eng (Exit_map.empty eng) ~fid:1 p1 in
  let b = Exit_map.share a in
  let a' = Exit_map.with_exit eng a ~fid:1 p2 in
  check int "a' extended" 2 (List.length (Exit_map.exits a' ~fid:1));
  check int "b untouched" 1 (List.length (Exit_map.exits b ~fid:1));
  Exit_map.release a';
  Exit_map.release b

let test_exit_map_merge () =
  let eng = Exit_map.create () in
  let p1 = ref 1 and p2 = ref 2 in
  let a = Exit_map.with_exit eng (Exit_map.empty eng) ~fid:1 p1 in
  let b = Exit_map.with_exit eng (Exit_map.empty eng) ~fid:2 p2 in
  let m = Exit_map.merge eng a [ b ] in
  check int "merged entries" 2 (Exit_map.entry_count m);
  (* subsuming merge avoids allocation *)
  let small = Exit_map.with_exit eng (Exit_map.empty eng) ~fid:1 p1 in
  let allocs = Exit_map.allocations eng in
  let m2 = Exit_map.merge eng small [ Exit_map.share m ] in
  check int "subsumed merge allocates nothing" allocs (Exit_map.allocations eng);
  Exit_map.release m2;
  Exit_map.release m

(* ------------------------------------------------------------------ *)
(* Events.pair                                                          *)
(* ------------------------------------------------------------------ *)

type Events.state += Tag of string

let counting_client tag log =
  let fresh op = Tag (tag ^ op) in
  {
    Events.on_spawn =
      (fun _ ->
        log := "spawn" :: !log;
        (fresh "c", fresh "t"));
    on_create =
      (fun _ ->
        log := "create" :: !log;
        (fresh "c", fresh "t"));
    on_sync =
      (fun ~cur:_ ~spawned_lasts:_ ~created_firsts:_ ->
        log := "sync" :: !log;
        fresh "s");
    on_put = (fun _ -> log := "put" :: !log);
    on_get =
      (fun ~cur:_ ~put:_ ->
        log := "get" :: !log;
        fresh "g");
    on_returned = (fun ~cont:_ ~child_last:_ -> log := "ret" :: !log);
    on_read = (fun _ _ -> log := "read" :: !log);
    on_write = (fun _ _ -> log := "write" :: !log);
    on_work = (fun _ _ -> log := "work" :: !log);
  }

let test_events_pair () =
  let la = ref [] and lb = ref [] in
  let cb = Events.pair (counting_client "a" la) (counting_client "b" lb) in
  let module P = Sfr_runtime.Program in
  let prog () =
    let arr = P.alloc 1 0 in
    P.spawn (fun () -> P.wr arr 0 1);
    P.sync ();
    let h = P.create (fun () -> P.rd arr 0) in
    ignore (P.get h);
    P.work 3
  in
  let (), _ =
    Sfr_runtime.Serial_exec.run cb
      ~root:(Events.Pair_state (Tag "ra", Tag "rb"))
      prog
  in
  check bool "both clients saw identical event streams" true (!la = !lb);
  List.iter
    (fun ev -> check bool (ev ^ " seen") true (List.mem ev !la))
    [ "spawn"; "sync"; "create"; "get"; "read"; "write"; "work"; "put" ]

let test_events_pair_rejects_foreign () =
  let cb = Events.pair Events.null Events.null in
  Alcotest.check_raises "foreign state rejected"
    (Invalid_argument "Events.pair: foreign state") (fun () ->
      ignore (cb.Events.on_spawn Events.Unit_state))

let () =
  Alcotest.run "history"
    [
      ( "keep_all",
        [
          Alcotest.test_case "writer checked on read" `Quick
            test_keepall_writer_checked_on_read;
          Alcotest.test_case "write checks all readers" `Quick
            test_keepall_write_checks_all_readers;
          Alcotest.test_case "same-strand collapse" `Quick
            test_keepall_same_strand_collapse;
        ] );
      ( "lr_per_future",
        [
          Alcotest.test_case "two per future" `Quick test_lr_two_per_future;
          Alcotest.test_case "covered replacement" `Quick test_lr_covered_replacement;
          Alcotest.test_case "per-future isolation" `Quick test_lr_per_future_isolation;
        ] );
      ( "race_collector",
        [
          Alcotest.test_case "dedup and counts" `Quick test_race_collector;
          Alcotest.test_case "concurrent reports" `Quick test_race_collector_concurrent;
        ] );
      ( "exit_map",
        [
          Alcotest.test_case "basic" `Quick test_exit_map_basic;
          Alcotest.test_case "copy-on-write" `Quick test_exit_map_cow;
          Alcotest.test_case "merge" `Quick test_exit_map_merge;
        ] );
      ( "events",
        [
          Alcotest.test_case "pair mirrors events" `Quick test_events_pair;
          Alcotest.test_case "pair rejects foreign state" `Quick
            test_events_pair_rejects_foreign;
        ] );
    ]
