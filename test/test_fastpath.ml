(* Differential tests for the hot-path optimizations (chunked cp store,
   access-history write filter + inline readers + mixed stripe hashing).

   The ablation contract: [Sf_order.make ~fast:false] is the reference
   implementation, and the optimized default must be observationally
   identical — byte-identical race reports (location, kind, attributed
   futures, witness count), identical reachability-query totals, and the
   identical reader high-water mark — on every workload, every synthetic
   program, and every history synchronization mode. The perf counters are
   the only thing allowed to differ, and on the cp container they must
   differ in the optimized direction. *)

module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Synthetic = Sfr_workloads.Synthetic
module Detector = Sfr_detect.Detector
module Race = Sfr_detect.Race
module Sf_order = Sfr_detect.Sf_order
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Chaos = Sfr_chaos.Chaos

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

type outcome = {
  o_reports : (int * Race.kind * int * int * int) list;
  o_queries : int;
  o_max_readers : int;
}

let outcome_pp ppf o =
  Format.fprintf ppf "{queries=%d; max_readers=%d; reports=[%a]}" o.o_queries
    o.o_max_readers
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (l, k, p, c, n) ->
         Format.fprintf ppf "%d:%a:%d->%d x%d" l Race.pp_kind k p c n))
    o.o_reports

let outcome = Alcotest.testable outcome_pp ( = )

(* [base] rebases locations: each instantiation allocates fresh global
   location IDs, so reports are only comparable relative to the
   instance's own memory base *)
let run_full ?workers ?(base = 0) det prog =
  (match workers with
  | None ->
      Serial_exec.run det.Detector.callbacks ~root:det.Detector.root prog |> fst
  | Some w ->
      Par_exec.run ~workers:w det.Detector.callbacks ~root:det.Detector.root
        prog
      |> fst);
  {
    o_reports =
      List.map
        (fun (r : Race.report) ->
          (r.Race.loc - base, r.Race.kind, r.Race.prev_future,
           r.Race.cur_future, r.Race.count))
        (Race.reports det.Detector.races);
    o_queries = det.Detector.queries ();
    o_max_readers = det.Detector.max_readers ();
  }

let histories = [ (`Mutex, "mutex"); (`Lockfree, "lockfree") ]

(* fast and compat must agree on every real workload, both history
   synchronization modes, serial execution (deterministic schedule, so
   the outcomes must be exactly equal, not just race-equivalent) *)
let test_workloads_differential () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun (history, hname) ->
          let run fast =
            let inst = w.Workload.instantiate Workload.Tiny in
            run_full (Sf_order.make ~history ~fast ()) inst.Workload.program
          in
          let opt = run true in
          let ref_ = run false in
          check outcome
            (Printf.sprintf "%s/%s fast = compat" w.Workload.name hname)
            ref_ opt;
          check bool
            (Printf.sprintf "%s/%s nonzero queries" w.Workload.name hname)
            true (opt.o_queries > 0))
        histories)
    Registry.all

(* ... and on random synthetic dags, racy and race-free *)
let test_synthetic_differential () =
  List.iter
    (fun race_free ->
      for seed = 1 to 12 do
        let t = Synthetic.generate ~race_free ~seed ~ops:150 ~depth:5 ~locs:8 () in
        List.iter
          (fun (history, hname) ->
            let run fast =
              let inst = Synthetic.instantiate t in
              run_full ~base:inst.Synthetic.mem_base
                (Sf_order.make ~history ~fast ())
                inst.Synthetic.program
            in
            check outcome
              (Printf.sprintf "seed %d race_free=%b %s" seed race_free hname)
              (run false) (run true)
          )
          histories
      done)
    [ false; true ]

(* under a parallel schedule the witnessed interleaving (hence counts and
   query totals) may differ run to run, but the racy-location set is
   schedule-independent — fast and compat must find the same one *)
let racy_set o = List.map (fun (l, _, _, _, _) -> l) o.o_reports

let test_parallel_differential () =
  for seed = 1 to 6 do
    let t = Synthetic.generate ~seed ~ops:200 ~depth:5 ~locs:8 () in
    let run fast workers =
      let inst = Synthetic.instantiate t in
      run_full ?workers ~base:inst.Synthetic.mem_base (Sf_order.make ~fast ())
        inst.Synthetic.program
    in
    let serial = run true None in
    let par_fast = run true (Some 4) in
    let par_ref = run false (Some 4) in
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: 4-domain fast = serial race set" seed)
      (racy_set serial) (racy_set par_fast);
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: 4-domain compat = serial race set" seed)
      (racy_set serial) (racy_set par_ref)
  done

(* chaos-perturbed schedules stress the publication paths (chunk installs,
   write-cache invalidation, lock-free drains) without injecting faults:
   the race set must still match the serial run's *)
let test_chaos_parallel () =
  for seed = 1 to 4 do
    let t = Synthetic.generate ~seed:(100 + seed) ~ops:200 ~depth:5 ~locs:8 () in
    let serial =
      let inst = Synthetic.instantiate t in
      run_full ~base:inst.Synthetic.mem_base (Sf_order.make ())
        inst.Synthetic.program
    in
    let perturbed =
      Chaos.arm ~seed ();
      Fun.protect ~finally:Chaos.disarm (fun () ->
          let inst = Synthetic.instantiate t in
          run_full ~workers:4 ~base:inst.Synthetic.mem_base (Sf_order.make ())
            inst.Synthetic.program)
    in
    check (Alcotest.list int)
      (Printf.sprintf "seed %d: chaos 4-domain race set = serial" seed)
      (racy_set serial) (racy_set perturbed)
  done

(* the ablation direction on the cp container: over a run with many
   future creates, the chunked store must charge strictly fewer container
   words to reach.table.alloc_words than copy-on-write snapshots, while
   agreeing on every observable. The set-table words (identical tables
   either way) cancel in the comparison because both runs allocate the
   same Fp_sets tables. *)
let test_cp_container_ablation () =
  let module P = Sfr_runtime.Program in
  let rec create_nest k () =
    if k = 0 then 0
    else begin
      let h = P.create (create_nest (k - 1)) in
      P.work 1;
      P.get h
    end
  in
  let alloc_words fast =
    let det = Sf_order.make ~fast () in
    Serial_exec.run det.Detector.callbacks ~root:det.Detector.root (fun () ->
        ignore (create_nest 1500 ()))
    |> fst;
    match List.assoc_opt "reach.table.alloc_words" (det.Detector.metrics ()) with
    | Some w -> w
    | None -> Alcotest.fail "reach.table.alloc_words not in metrics"
  in
  let chunked = alloc_words true in
  let cow = alloc_words false in
  if not (chunked < cow) then
    Alcotest.failf "chunked cp words (%d) not below copy-on-write (%d)" chunked
      cow;
  (* the gap must be the k² container term, not noise: for k=1500 the
     snapshots alone are > k²/2 = 1.1M words *)
  check bool "gap is quadratic-scale" true (cow - chunked > 500_000)

(* the write filter must actually absorb consecutive same-strand writes
   (the counter moving is what the scaling bench reports) *)
let test_write_fastpath_counter () =
  let module P = Sfr_runtime.Program in
  let metric det name =
    match List.assoc_opt name (det.Detector.metrics ()) with
    | Some v -> v
    | None -> 0
  in
  let run fast =
    let a = P.alloc 4 0 in
    let det = Sf_order.make ~fast () in
    Serial_exec.run det.Detector.callbacks ~root:det.Detector.root (fun () ->
        for _ = 1 to 100 do
          P.wr a 0 1;
          P.wr a 1 1
        done)
    |> fst;
    det
  in
  let opt = run true in
  check bool "fast path taken" true
    (metric opt "history.write.fastpath" >= 190);
  let ref_ = run false in
  check int "compat never takes it" 0 (metric ref_ "history.write.fastpath");
  check int "identical queries" (ref_.Detector.queries ())
    (opt.Detector.queries ())

let () =
  Alcotest.run "fastpath"
    [
      ( "differential",
        [
          Alcotest.test_case "workloads fast=compat" `Quick
            test_workloads_differential;
          Alcotest.test_case "synthetic fast=compat" `Quick
            test_synthetic_differential;
          Alcotest.test_case "4-domain race sets" `Quick
            test_parallel_differential;
          Alcotest.test_case "chaos 4-domain race sets" `Quick
            test_chaos_parallel;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "cp container words" `Quick
            test_cp_container_ablation;
          Alcotest.test_case "write fastpath counter" `Quick
            test_write_fastpath_counter;
        ] );
    ]
