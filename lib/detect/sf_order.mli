(** SF-Order — the paper's contribution: a parallel on-the-fly determinacy
    race detector for programs with structured futures.

    Reachability (Algorithm 1, Section 3.2) combines three structures:

    + WSP-Order English/Hebrew order maintenance over the pseudo-SP-dag
      ({!Sfr_reach.Sp_order}), answering [u ↠ v] in O(1);
    + [cp(G)] — per-future bitmap of future ancestors;
    + [gp(v)] — per-strand bitmap of futures whose last node NSP-precedes
      [v] ({!Sfr_reach.Fp_sets}).

    A query [Precedes(u, v)] for a previous accessor [u ∈ F] against the
    current strand [v ∈ G]:

    - [F = G]: answer [u ↠ v]                                  (Lemma 3.7)
    - [F ∈ cp(G)]: answer [u ↠ v]                        (Lemmas 3.8, 3.9)
    - otherwise: answer [F ∈ gp(v)]                            (Lemma 3.4)

    All three cases are O(1); total reachability-maintenance work is
    O(T1 + k²) (Lemma 3.12).

    Options mirror the paper's design space:
    - [readers]: [`All] stores every reader between writes (what the
      paper's own implementation does, Section 4); [`Two_per_future]
      stores only the leftmost/rightmost reader per future — the 2k bound
      of Lemmas 3.10/3.11.
    - [sets]: [`Bitmap] (the paper's arrays of 64-bit words) or [`Hashed]
      (hash tables, for the ablation against F-Order's representation).
    - [history]: access-history synchronization — [`Mutex] (the paper's
      fine-grained locks), [`Unsynchronized] (serial runs only; isolates
      the locking overhead the paper discusses), or [`Lockfree] (the
      redesigned low-synchronization history the paper's conclusion asks
      for; see {!Access_history}).
    - [fast]: hot-path optimizations, on by default. [~fast:true] stores
      [cp(G)] in a lock-free chunked vector (O(1) amortized per create,
      O(k) container words) and enables the access-history fast paths
      (see {!Access_history}); [~fast:false] is the reference ablation —
      copy-on-write [cp] snapshots (O(k) copy per create under a mutex)
      and the unoptimized history. Race reports, query counts, and
      [max_readers] are identical between the two. *)

val make :
  ?readers:[ `All | `Two_per_future ] ->
  ?sets:[ `Bitmap | `Hashed ] ->
  ?history:Access_history.sync_mode ->
  ?fast:bool ->
  ?om:Sfr_om.Backend.name ->
  unit ->
  Detector.t
(** Defaults: [`All] readers, [`Bitmap] sets, [`Mutex] history,
    [~fast:true]. [om] selects the order-maintenance backend for the
    English/Hebrew lists (default: the process-wide
    {!Sfr_om.Backend.default}); reports are backend-invariant. *)

val make_with_precedes :
  ?readers:[ `All | `Two_per_future ] ->
  ?sets:[ `Bitmap | `Hashed ] ->
  ?history:Access_history.sync_mode ->
  ?fast:bool ->
  ?om:Sfr_om.Backend.name ->
  unit ->
  Detector.t * (Sfr_runtime.Events.state -> Sfr_runtime.Events.state -> bool)
(** The detector plus its raw [Precedes] query over strand states (for
    reachability differential tests and power users); valid during and
    after the execution. *)

val strand_future : Sfr_runtime.Events.state -> int
(** The future dag a strand state belongs to — lets offline drivers
    (e.g. {!Sfr_eventlog}'s sharded replay) attribute race reports to
    futures without reaching into the detector.
    @raise Detect_error.Error on a foreign state. *)
