module Events = Sfr_runtime.Events
module Metrics = Sfr_obs.Metrics
module Chaos = Sfr_chaos.Chaos

let m_events = Metrics.counter "eventlog.events"
let m_bytes = Metrics.counter "eventlog.bytes_written"
let m_flushes = Metrics.counter "eventlog.flushes"

type Events.state += Rec of int

let id_of = function
  | Rec i -> i
  | _ -> invalid_arg "Eventlog.Recorder: foreign state"

(* Per-worker (per-domain) append buffer. Only its owning domain touches
   [buf]/[last_loc]/[events] while the run is live; [close] reads them
   after every domain has joined. *)
type wbuf = {
  worker : int;
  buf : Buffer.t;
  mutable last_loc : int;
  mutable events : int;
}

type stats = {
  events : int;
  bytes : int;
  flushes : int;
  workers : int;
  states : int;
}

type t = {
  oc : out_channel;
  buf_cap : int;
  file_mu : Mutex.t;
  mutable crc : int;  (** guarded by [file_mu] *)
  mutable payload_bytes : int;
  mutable flushes : int;
  next_state : int Atomic.t;
  next_worker : int Atomic.t;
  bufs_mu : Mutex.t;
  mutable bufs : wbuf list;
  dls : wbuf option Domain.DLS.key;
  mutable closed : stats option;
}

let wbuf t =
  match Domain.DLS.get t.dls with
  | Some w -> w
  | None ->
      let w =
        {
          worker = Atomic.fetch_and_add t.next_worker 1;
          buf = Buffer.create t.buf_cap;
          last_loc = 0;
          events = 0;
        }
      in
      Mutex.lock t.bufs_mu;
      t.bufs <- w :: t.bufs;
      Mutex.unlock t.bufs_mu;
      Domain.DLS.set t.dls (Some w);
      w

let flush_buf t w =
  if Buffer.length w.buf > 0 then begin
    Chaos.point Chaos.Log_flush;
    let payload = Buffer.to_bytes w.buf in
    Buffer.clear w.buf;
    let len = Bytes.length payload in
    let hdr = Buffer.create 16 in
    Buffer.add_char hdr '\001';
    Log_format.write_varint hdr w.worker;
    Log_format.write_varint hdr len;
    Mutex.lock t.file_mu;
    Buffer.output_buffer t.oc hdr;
    output_bytes t.oc payload;
    t.crc <- Log_format.crc32_update t.crc payload ~pos:0 ~len;
    t.payload_bytes <- t.payload_bytes + len;
    t.flushes <- t.flushes + 1;
    Mutex.unlock t.file_mu;
    Metrics.add m_bytes len;
    Metrics.incr m_flushes
  end

let append t ev =
  let w = wbuf t in
  w.events <- w.events + 1;
  w.last_loc <- Log_format.write_event w.buf ~last_loc:w.last_loc ev;
  if Buffer.length w.buf >= t.buf_cap then flush_buf t w

let append_structural t ev =
  Chaos.point Chaos.Record;
  append t ev

let create ?(buf_size = 64 * 1024) ~path () =
  let oc = open_out_bin path in
  output_string oc Log_format.magic;
  output_char oc (Char.chr Log_format.version);
  let t =
    {
      oc;
      buf_cap = max 64 buf_size;
      file_mu = Mutex.create ();
      crc = Log_format.crc32_init;
      payload_bytes = 0;
      flushes = 0;
      next_state = Atomic.make 1;
      next_worker = Atomic.make 0;
      bufs_mu = Mutex.create ();
      bufs = [];
      dls = Domain.DLS.new_key (fun () -> None);
      closed = None;
    }
  in
  let callbacks =
    {
      Events.on_spawn =
        (fun cur ->
          let child = Atomic.fetch_and_add t.next_state 2 in
          let cont = child + 1 in
          append_structural t (Log_format.Spawn { cur = id_of cur; child; cont });
          (Rec child, Rec cont));
      on_create =
        (fun cur ->
          let child = Atomic.fetch_and_add t.next_state 2 in
          let cont = child + 1 in
          append_structural t (Log_format.Create { cur = id_of cur; child; cont });
          (Rec child, Rec cont));
      on_sync =
        (fun ~cur ~spawned_lasts ~created_firsts ->
          let next = Atomic.fetch_and_add t.next_state 1 in
          append_structural t
            (Log_format.Sync
               {
                 cur = id_of cur;
                 spawned_lasts = List.map id_of spawned_lasts;
                 created_firsts = List.map id_of created_firsts;
                 next;
               });
          Rec next);
      on_put =
        (fun cur -> append_structural t (Log_format.Put { cur = id_of cur }));
      on_get =
        (fun ~cur ~put ->
          let next = Atomic.fetch_and_add t.next_state 1 in
          append_structural t
            (Log_format.Get { cur = id_of cur; put = id_of put; next });
          Rec next);
      on_returned =
        (fun ~cont ~child_last ->
          append_structural t
            (Log_format.Returned
               { cont = id_of cont; child_last = id_of child_last }));
      on_read =
        (fun cur loc -> append t (Log_format.Read { cur = id_of cur; loc }));
      on_write =
        (fun cur loc -> append t (Log_format.Write { cur = id_of cur; loc }));
      on_work =
        (fun cur amount ->
          append t (Log_format.Work { cur = id_of cur; amount }));
    }
  in
  (t, callbacks, Rec 0)

let close t =
  match t.closed with
  | Some stats -> stats
  | None ->
      Mutex.lock t.bufs_mu;
      let bufs = t.bufs in
      Mutex.unlock t.bufs_mu;
      List.iter (fun w -> flush_buf t w) bufs;
      let events =
        List.fold_left (fun acc (w : wbuf) -> acc + w.events) 0 bufs
      in
      let states = Atomic.get t.next_state in
      let footer = Buffer.create 32 in
      Buffer.add_char footer '\000';
      Log_format.write_varint footer events;
      Log_format.write_varint footer states;
      Log_format.write_varint footer (Atomic.get t.next_worker);
      for i = 0 to 3 do
        Buffer.add_char footer (Char.chr ((t.crc lsr (8 * i)) land 0xFF))
      done;
      Buffer.output_buffer t.oc footer;
      close_out t.oc;
      Metrics.add m_events events;
      let stats =
        {
          events;
          bytes = t.payload_bytes;
          flushes = t.flushes;
          workers = Atomic.get t.next_worker;
          states;
        }
      in
      t.closed <- Some stats;
      stats
