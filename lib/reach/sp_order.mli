(** On-the-fly series-parallel reachability over the pseudo-SP-dag
    (the WSP-Order component of SF-Order).

    Two order-maintenance lists hold every strand in the {e English}
    (left-to-right depth-first) and {e Hebrew} (right-to-left depth-first)
    orders; [u] precedes [v] in the SP dag iff it precedes it in both
    (Nudler–Rudolph). Insertion rules, at a spawn (or create — the
    pseudo-SP-dag treats them identically) from current strand [u] with
    child-first strand [c] and continuation strand [t]:

    - English: insert [c] after [u], then [t] after [c]   (child first);
    - Hebrew:  insert [t] after [u], then [c] after [t]   (child last).

    Sync handling uses a {e join placeholder} per sync block: at the first
    spawn of a block, a placeholder [j] is inserted in the Hebrew order
    immediately after the child [c]. Every strand subsequently inserted in
    the block lands strictly before [j] (order-maintenance inserts are
    immediately-after, so anchors below [j] stay below [j]), making [j] the
    Hebrew-maximum of the block. The strand following the sync takes [j] as
    its Hebrew position and a fresh English position after the pre-sync
    strand (the English maximum of the block). This reproduces the in-order
    positions of the SP parse tree and is differential-tested against
    ground-truth PSP reachability.

    Thread safety: the underlying OM lists serialize mutations and make
    queries safe against concurrent inserts (seqlock validation for the
    list backend, immutable labels for DePa); the relative order of
    already-inserted strands never changes, so [precedes] is
    linearizable.

    Backends: the construction is a functor {!Make} over
    {!Sfr_om.Om_intf.S}, instantiated once per registered OM backend.
    The top-level API dispatches on {!Sfr_om.Backend.name} so detector
    strand records hold one [pos] type regardless of backend; mixing
    positions across structures of different backends raises
    [Invalid_argument]. *)

(** The WSP-Order construction over an arbitrary OM backend. *)
module Make (Om : Sfr_om.Om_intf.S) : sig
  type t
  type pos
  type block

  val create : unit -> t * pos
  val spawn : t -> cur:pos -> block:block option -> pos * pos * block
  val sync : t -> cur:pos -> block:block option -> pos
  val step : t -> cur:pos -> pos
  val precedes : t -> pos -> pos -> bool
  val parallel : t -> pos -> pos -> bool
  val size : t -> int
  val words : t -> int
  val eng_precedes : t -> pos -> pos -> bool
  val heb_precedes : t -> pos -> pos -> bool
end

type t
type pos
(** A strand's position in both orders. *)

type block
(** A sync block's Hebrew join placeholder. *)

val create : ?backend:Sfr_om.Backend.name -> unit -> t * pos
(** Fresh structure with the root strand's position, on [backend]
    (default: the process-wide {!Sfr_om.Backend.default}). *)

val backend : t -> Sfr_om.Backend.name
(** The OM backend this structure was created on. *)

val spawn : t -> cur:pos -> block:block option -> pos * pos * block
(** [(child, continuation, block')] — [block'] is the existing block, or a
    fresh one if this is the block's first spawn. Use for both [spawn] and
    [create] events. *)

val sync : t -> cur:pos -> block:block option -> pos
(** Position of the strand following the sync. With [block = None] (no
    spawn or create since the last sync) the current position is reused. *)

val step : t -> cur:pos -> pos
(** Fresh position immediately after [cur] in both orders — for strands
    beginning at a get (the pseudo-SP-dag drops get edges, so a get is a
    plain serial step). *)

val precedes : t -> pos -> pos -> bool
(** [u ↠ v]: strictly before in both orders. O(1). *)

val parallel : t -> pos -> pos -> bool

val size : t -> int
val words : t -> int

val eng_precedes : t -> pos -> pos -> bool
(** Strictly before in the English (left-to-right depth-first) order
    alone — the "leftmost" comparison of Mellor-Crummey reader caching. *)

val heb_precedes : t -> pos -> pos -> bool
(** Strictly before in the Hebrew (right-to-left) order alone — the
    "rightmost" comparison. *)
