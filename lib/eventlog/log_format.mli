(** The .sflog binary event-log format (version 1): wire-level codecs
    shared by {!Recorder} (writer) and {!Reader}.

    A log is a header, a sequence of {e chunks}, and a footer:

    {v
    header  ::= magic "SFLG" (4 bytes) | version (1 byte, = 1)
    chunk   ::= 0x01 | worker:varint | len:varint | payload (len bytes)
    footer  ::= 0x00 | events:varint | states:varint | workers:varint
                     | crc32 (4 bytes, little-endian)
    v}

    Chunk payloads are event records. Concatenating one worker's chunk
    payloads in file order yields that worker's {e stream}: a total order
    of the events the worker executed, consistent with real time on that
    worker. Events never span a chunk boundary (the recorder flushes only
    at event boundaries). The footer CRC covers every chunk payload byte
    in file order; [states] is the exclusive upper bound on state IDs, so
    a reader can validate every reference (and size its replay table)
    before replaying anything.

    Integers are LEB128-style varints (7 bits per byte, low bits first,
    high bit = continue; at most 10 bytes — OCaml's 63-bit int range).
    Access locations are delta-encoded per worker stream (zigzag of the
    difference from the previous access location in the same stream), so
    the dominant record — an access to a nearby location — is 3 bytes. *)

val magic : string
(** ["SFLG"]. *)

val version : int

(** Event records. State IDs are dense from 0 (the root strand); every ID
    is {e defined} by exactly one event (or is the root) and may be
    referenced by later events of any worker. *)
type event =
  | Spawn of { cur : int; child : int; cont : int }
  | Create of { cur : int; child : int; cont : int }
  | Sync of {
      cur : int;
      spawned_lasts : int list;
      created_firsts : int list;
      next : int;
    }
  | Put of { cur : int }
  | Get of { cur : int; put : int; next : int }
  | Returned of { cont : int; child_last : int }
  | Read of { cur : int; loc : int }
  | Write of { cur : int; loc : int }
  | Work of { cur : int; amount : int }

val is_access : event -> bool

val inputs : event -> int list
(** State IDs the event references (must be defined before it applies). *)

val defines : event -> int list
(** State IDs the event defines (fresh; at most 2). *)

(** Typed decode errors. [offset] is the absolute byte offset in the
    file, so a corrupt log names the exact byte. *)
type error =
  | Bad_magic of { got : string }
  | Bad_version of { got : int }
  | Truncated of { offset : int; while_ : string }
  | Bad_varint of { offset : int }
  | Bad_opcode of { offset : int; opcode : int }
  | Bad_crc of { expected : int; got : int }
  | State_out_of_range of { offset : int; id : int; bound : int }
  | Corrupt of { offset : int; what : string }

val error_to_string : error -> string

(* -- varints ----------------------------------------------------------- *)

val write_varint : Buffer.t -> int -> unit
(** @raise Invalid_argument on negative input. *)

val write_zigzag : Buffer.t -> int -> unit
(** Signed variant (zigzag then varint). *)

val read_varint : Bytes.t -> pos:int -> limit:int -> (int * int, error) result
(** [(value, next_pos)]; fails with [Bad_varint] (overflow / more than 10
    bytes) or [Truncated]. *)

val read_zigzag : Bytes.t -> pos:int -> limit:int -> (int * int, error) result

(* -- events ------------------------------------------------------------ *)

val write_event : Buffer.t -> last_loc:int -> event -> int
(** Append one event record; returns the new [last_loc] (the delta base
    for the stream's next access). *)

val read_event :
  Bytes.t ->
  pos:int ->
  limit:int ->
  last_loc:int ->
  states:int ->
  (event * int * int, error) result
(** [(event, next_pos, last_loc')]. Validates opcodes and that every
    state ID is in [0, states). *)

(* -- crc32 ------------------------------------------------------------- *)

val crc32_init : int
val crc32_update : int -> Bytes.t -> pos:int -> len:int -> int
(** Standard CRC-32 (polynomial 0xEDB88320), kept in an int in
    [0, 0xFFFFFFFF]. *)
